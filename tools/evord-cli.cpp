// evord-cli — command-line client for a running evordd.
//
//   evord-cli --socket /tmp/evord.sock [--tenant NAME] COMMAND ...
//
// Commands:
//   register FILE                 register a trace file, print fingerprint
//   pair FP REL SEM A B           one pair query (REL 0..5, SEM 0..2)
//   deadlock FP                   can any feasible prefix wedge?
//   races FP [DETECTOR]           race report (0 exact, 1 observed, 2 guar.)
//   anytime FP WHICH SEM A B [DEADLINE_MS]
//                                 budgeted verdict (WHICH 0 mhb, 1 ccw,
//                                 2 deadlock); DEADLINE_MS time-boxes it
//   health                        daemon counters
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "daemon/client.hpp"

namespace {

using evord::daemon::ClientOptions;
using evord::daemon::DaemonClient;
using evord::daemon::ReplyEnvelope;
using evord::daemon::RequestStatus;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH | --port N] [--tenant NAME]\n"
               "          [--timeout-ms N] COMMAND ...\n"
               "commands: register FILE | pair FP REL SEM A B |\n"
               "          deadlock FP | races FP [DETECTOR] |\n"
               "          anytime FP WHICH SEM A B [DEADLINE_MS] | health\n",
               argv0);
}

/// Non-ok replies exit with a distinct status so scripts can tell
/// backpressure (75, EX_TEMPFAIL-ish) from hard errors (1).
int fail(const ReplyEnvelope& env) {
  std::fprintf(stderr, "evord-cli: %s", to_string(env.status));
  if (!env.message.empty()) {
    std::fprintf(stderr, ": %s", env.message.c_str());
  }
  std::fprintf(stderr, "\n");
  switch (env.status) {
    case RequestStatus::kRejected:
    case RequestStatus::kOverloaded:
    case RequestStatus::kShuttingDown:
      return 75;
    default:
      return 1;
  }
}

std::uint64_t parse_u64(const char* s) {
  return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 0));
}

}  // namespace

int main(int argc, char** argv) {
  ClientOptions options;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      options.socket_path = next();
    } else if (arg == "--port") {
      options.tcp_port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--tenant") {
      options.tenant = next();
    } else if (arg == "--timeout-ms") {
      options.timeout_ms = std::atoi(next());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      break;  // first command word
    }
  }
  if (i >= argc ||
      (options.socket_path.empty() && options.tcp_port == 0)) {
    usage(argv[0]);
    return 2;
  }
  const std::string command = argv[i++];
  const int remaining = argc - i;
  DaemonClient client(options);

  if (command == "register") {
    if (remaining < 1) {
      usage(argv[0]);
      return 2;
    }
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "evord-cli: cannot read %s\n", argv[i]);
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const auto reply = client.register_trace(text.str());
    if (!reply.ok()) return fail(reply);
    std::printf("fingerprint 0x%llx events %u%s\n",
                static_cast<unsigned long long>(reply.fingerprint),
                reply.num_events, reply.dedup ? " (dedup)" : "");
    return 0;
  }
  if (command == "pair") {
    if (remaining < 5) {
      usage(argv[0]);
      return 2;
    }
    evord::daemon::PairQuerySpec q;
    const std::uint64_t fp = parse_u64(argv[i]);
    q.relation = static_cast<std::uint8_t>(std::atoi(argv[i + 1]));
    q.semantics = static_cast<std::uint8_t>(std::atoi(argv[i + 2]));
    q.a = static_cast<std::uint32_t>(std::atoi(argv[i + 3]));
    q.b = static_cast<std::uint32_t>(std::atoi(argv[i + 4]));
    const auto reply = client.pair_query(fp, q);
    if (!reply.ok()) return fail(reply);
    std::printf("%s\n", reply.value ? "true" : "false");
    return 0;
  }
  if (command == "deadlock") {
    if (remaining < 1) {
      usage(argv[0]);
      return 2;
    }
    const auto reply = client.deadlock_query(parse_u64(argv[i]));
    if (!reply.ok()) return fail(reply);
    std::printf("%s\n", reply.value ? "true" : "false");
    return 0;
  }
  if (command == "races") {
    if (remaining < 1) {
      usage(argv[0]);
      return 2;
    }
    const std::uint8_t detector =
        remaining >= 2 ? static_cast<std::uint8_t>(std::atoi(argv[i + 1])) : 0;
    const auto reply = client.race_query(parse_u64(argv[i]), detector);
    if (!reply.ok()) return fail(reply);
    std::printf("%zu races of %u candidate pairs%s\n", reply.races.size(),
                reply.candidate_pairs, reply.truncated ? " (truncated)" : "");
    for (const auto& race : reply.races) {
      std::printf("  (%u, %u)%s\n", race.a, race.b,
                  race.hidden_in_observed ? " hidden" : "");
    }
    return 0;
  }
  if (command == "anytime") {
    if (remaining < 5) {
      usage(argv[0]);
      return 2;
    }
    const std::uint64_t fp = parse_u64(argv[i]);
    const auto which = static_cast<std::uint8_t>(std::atoi(argv[i + 1]));
    const auto sem = static_cast<std::uint8_t>(std::atoi(argv[i + 2]));
    const auto a = static_cast<std::uint32_t>(std::atoi(argv[i + 3]));
    const auto b = static_cast<std::uint32_t>(std::atoi(argv[i + 4]));
    const std::uint32_t deadline_ms =
        remaining >= 6 ? static_cast<std::uint32_t>(std::atoi(argv[i + 5]))
                       : 0;
    const auto reply = client.anytime_query(fp, which, sem, a, b, deadline_ms);
    if (!reply.ok()) return fail(reply);
    static const char* kStates[] = {"unknown", "proven", "refuted"};
    std::printf("%s via %s (%u rungs%s%s)\n",
                reply.state < 3 ? kStates[reply.state] : "?",
                reply.engine.c_str(), reply.rungs_tried,
                reply.degraded ? ", degraded" : "",
                reply.oracle_exhausted ? ", oracle exhausted" : "");
    return 0;
  }
  if (command == "health") {
    const auto reply = client.health();
    if (!reply.ok()) return fail(reply);
    std::printf("accepted %llu dropped %llu frames %llu replies %llu\n"
                "served %llu protocol-errors %llu bad-requests %llu\n"
                "sheds %llu rejections %llu shutting-down %llu\n"
                "deadline-degraded %llu breaker-trips %llu in-flight %llu\n",
                static_cast<unsigned long long>(reply.connections_accepted),
                static_cast<unsigned long long>(reply.connections_dropped),
                static_cast<unsigned long long>(reply.frames_received),
                static_cast<unsigned long long>(reply.replies_sent),
                static_cast<unsigned long long>(reply.requests_served),
                static_cast<unsigned long long>(reply.protocol_errors),
                static_cast<unsigned long long>(reply.bad_requests),
                static_cast<unsigned long long>(reply.sheds),
                static_cast<unsigned long long>(reply.rejections),
                static_cast<unsigned long long>(reply.shutting_down_replies),
                static_cast<unsigned long long>(reply.deadline_degraded),
                static_cast<unsigned long long>(reply.breaker_trips),
                static_cast<unsigned long long>(reply.in_flight));
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  usage(argv[0]);
  return 2;
}
