// evordd — the evord analysis daemon.
//
// Serves the event-ordering analysis library over a Unix-domain socket
// and/or loopback TCP (see docs/DAEMON.md for the protocol and the
// robustness model).  SIGTERM / SIGINT trigger a graceful drain: the
// daemon stops accepting, answers new requests with kShuttingDown,
// finishes and flushes every admitted request, then exits 0.
//
//   evordd --socket /tmp/evord.sock [--port 7453] [--threads 2]
//          [--max-queue 64] [--quota-rate 0] [--quota-burst 0]
//          [--cache-mb 64] [--idle-timeout-ms 10000] [--breaker 3]
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "daemon/daemon.hpp"

namespace {

evord::daemon::Daemon* g_daemon = nullptr;

extern "C" void handle_signal(int) {
  // Async-signal-safe: request_stop is one write(2) on a private pipe.
  if (g_daemon != nullptr) g_daemon->request_stop();
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--socket PATH] [--port N] [--threads N] [--max-queue N]\n"
      "          [--max-connections N] [--quota-rate R] [--quota-burst N]\n"
      "          [--cache-mb N] [--idle-timeout-ms N] [--breaker N]\n"
      "At least one of --socket / --port is required.\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  evord::daemon::DaemonOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      options.socket_path = next();
    } else if (arg == "--port") {
      options.tcp_port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--threads") {
      options.executor_threads = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--max-queue") {
      options.max_queue_depth = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--max-connections") {
      options.max_connections = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--quota-rate") {
      options.tenant_rate_per_sec = std::atof(next());
    } else if (arg == "--quota-burst") {
      options.tenant_burst = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--cache-mb") {
      options.cache_budget_bytes =
          static_cast<std::uint64_t>(std::atoll(next())) << 20;
    } else if (arg == "--idle-timeout-ms") {
      options.idle_timeout_ms = std::atoi(next());
    } else if (arg == "--breaker") {
      options.breaker_threshold =
          static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (options.socket_path.empty() && options.tcp_port == 0) {
    usage(argv[0]);
    return 2;
  }

  evord::daemon::Daemon daemon(options);
  g_daemon = &daemon;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);
#endif

  try {
    daemon.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "evordd: %s\n", e.what());
    return 1;
  }
  if (!options.socket_path.empty()) {
    std::fprintf(stderr, "evordd: listening on %s\n",
                 options.socket_path.c_str());
  }
  if (options.tcp_port != 0) {
    std::fprintf(stderr, "evordd: listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(options.tcp_port));
  }

  daemon.wait();
  std::fprintf(stderr, "evordd: draining...\n");
  daemon.stop();
  const evord::daemon::DaemonStats stats = daemon.stats();
  std::fprintf(stderr,
               "evordd: served %llu requests (%llu sheds, %llu rejections, "
               "%llu protocol errors), exiting\n",
               static_cast<unsigned long long>(stats.requests_served),
               static_cast<unsigned long long>(stats.sheds),
               static_cast<unsigned long long>(stats.rejections),
               static_cast<unsigned long long>(stats.protocol_errors));
  return 0;
}
