file(REMOVE_RECURSE
  "CMakeFiles/bench_vector_clock.dir/bench_vector_clock.cpp.o"
  "CMakeFiles/bench_vector_clock.dir/bench_vector_clock.cpp.o.d"
  "bench_vector_clock"
  "bench_vector_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vector_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
