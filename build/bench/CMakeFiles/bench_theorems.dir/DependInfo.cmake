
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_theorems.cpp" "bench/CMakeFiles/bench_theorems.dir/bench_theorems.cpp.o" "gcc" "bench/CMakeFiles/bench_theorems.dir/bench_theorems.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/evord_core.dir/DependInfo.cmake"
  "/root/repo/build/src/reductions/CMakeFiles/evord_reductions.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/evord_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/evord_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/evord_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/evord_race.dir/DependInfo.cmake"
  "/root/repo/build/src/approx/CMakeFiles/evord_approx.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/evord_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/feasible/CMakeFiles/evord_feasible.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/evord_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/evord_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/evord_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
