# Empty dependencies file for bench_enumerate.
# This may be replaced when dependencies are built.
