file(REMOVE_RECURSE
  "CMakeFiles/bench_enumerate.dir/bench_enumerate.cpp.o"
  "CMakeFiles/bench_enumerate.dir/bench_enumerate.cpp.o.d"
  "bench_enumerate"
  "bench_enumerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enumerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
