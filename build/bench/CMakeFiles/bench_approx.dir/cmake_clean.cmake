file(REMOVE_RECURSE
  "CMakeFiles/bench_approx.dir/bench_approx.cpp.o"
  "CMakeFiles/bench_approx.dir/bench_approx.cpp.o.d"
  "bench_approx"
  "bench_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
