# Empty dependencies file for bench_approx.
# This may be replaced when dependencies are built.
