# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_figure1 "/root/repo/build/examples/figure1")
set_tests_properties(example_figure1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_race_hunt "/root/repo/build/examples/race_hunt")
set_tests_properties(example_race_hunt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sat_via_ordering "/root/repo/build/examples/sat_via_ordering")
set_tests_properties(example_sat_via_ordering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_inspect "/root/repo/build/examples/trace_inspect" "/root/repo/data/hidden_race.evord" "--races" "--grid" "--json" "--csv" "MHB" "--deadlocks" "--dot")
set_tests_properties(example_trace_inspect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_reduction_tool "/root/repo/build/examples/reduction_tool" "/root/repo/data/unsat.cnf" "--analyze")
set_tests_properties(example_reduction_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ordering_study "/root/repo/build/examples/ordering_study" "1")
set_tests_properties(example_ordering_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
