# Empty dependencies file for sat_via_ordering.
# This may be replaced when dependencies are built.
