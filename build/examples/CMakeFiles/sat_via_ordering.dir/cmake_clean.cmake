file(REMOVE_RECURSE
  "CMakeFiles/sat_via_ordering.dir/sat_via_ordering.cpp.o"
  "CMakeFiles/sat_via_ordering.dir/sat_via_ordering.cpp.o.d"
  "sat_via_ordering"
  "sat_via_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_via_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
