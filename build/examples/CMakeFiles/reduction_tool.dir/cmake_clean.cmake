file(REMOVE_RECURSE
  "CMakeFiles/reduction_tool.dir/reduction_tool.cpp.o"
  "CMakeFiles/reduction_tool.dir/reduction_tool.cpp.o.d"
  "reduction_tool"
  "reduction_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
