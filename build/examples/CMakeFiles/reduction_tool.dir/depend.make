# Empty dependencies file for reduction_tool.
# This may be replaced when dependencies are built.
