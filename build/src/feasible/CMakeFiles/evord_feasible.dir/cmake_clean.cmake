file(REMOVE_RECURSE
  "CMakeFiles/evord_feasible.dir/deadlock.cpp.o"
  "CMakeFiles/evord_feasible.dir/deadlock.cpp.o.d"
  "CMakeFiles/evord_feasible.dir/enumerate.cpp.o"
  "CMakeFiles/evord_feasible.dir/enumerate.cpp.o.d"
  "CMakeFiles/evord_feasible.dir/feasibility.cpp.o"
  "CMakeFiles/evord_feasible.dir/feasibility.cpp.o.d"
  "CMakeFiles/evord_feasible.dir/schedule_space.cpp.o"
  "CMakeFiles/evord_feasible.dir/schedule_space.cpp.o.d"
  "CMakeFiles/evord_feasible.dir/stepper.cpp.o"
  "CMakeFiles/evord_feasible.dir/stepper.cpp.o.d"
  "libevord_feasible.a"
  "libevord_feasible.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evord_feasible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
