
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/feasible/deadlock.cpp" "src/feasible/CMakeFiles/evord_feasible.dir/deadlock.cpp.o" "gcc" "src/feasible/CMakeFiles/evord_feasible.dir/deadlock.cpp.o.d"
  "/root/repo/src/feasible/enumerate.cpp" "src/feasible/CMakeFiles/evord_feasible.dir/enumerate.cpp.o" "gcc" "src/feasible/CMakeFiles/evord_feasible.dir/enumerate.cpp.o.d"
  "/root/repo/src/feasible/feasibility.cpp" "src/feasible/CMakeFiles/evord_feasible.dir/feasibility.cpp.o" "gcc" "src/feasible/CMakeFiles/evord_feasible.dir/feasibility.cpp.o.d"
  "/root/repo/src/feasible/schedule_space.cpp" "src/feasible/CMakeFiles/evord_feasible.dir/schedule_space.cpp.o" "gcc" "src/feasible/CMakeFiles/evord_feasible.dir/schedule_space.cpp.o.d"
  "/root/repo/src/feasible/stepper.cpp" "src/feasible/CMakeFiles/evord_feasible.dir/stepper.cpp.o" "gcc" "src/feasible/CMakeFiles/evord_feasible.dir/stepper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/evord_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/evord_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/evord_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
