# Empty compiler generated dependencies file for evord_feasible.
# This may be replaced when dependencies are built.
