file(REMOVE_RECURSE
  "libevord_feasible.a"
)
