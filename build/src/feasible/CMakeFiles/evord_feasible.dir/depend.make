# Empty dependencies file for evord_feasible.
# This may be replaced when dependencies are built.
