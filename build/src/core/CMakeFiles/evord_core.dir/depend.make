# Empty dependencies file for evord_core.
# This may be replaced when dependencies are built.
