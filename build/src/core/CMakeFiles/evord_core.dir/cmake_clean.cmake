file(REMOVE_RECURSE
  "CMakeFiles/evord_core.dir/analyzer.cpp.o"
  "CMakeFiles/evord_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/evord_core.dir/report.cpp.o"
  "CMakeFiles/evord_core.dir/report.cpp.o.d"
  "libevord_core.a"
  "libevord_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evord_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
