file(REMOVE_RECURSE
  "libevord_core.a"
)
