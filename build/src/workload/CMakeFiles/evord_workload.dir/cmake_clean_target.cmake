file(REMOVE_RECURSE
  "libevord_workload.a"
)
