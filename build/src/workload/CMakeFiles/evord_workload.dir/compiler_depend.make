# Empty compiler generated dependencies file for evord_workload.
# This may be replaced when dependencies are built.
