file(REMOVE_RECURSE
  "CMakeFiles/evord_workload.dir/generators.cpp.o"
  "CMakeFiles/evord_workload.dir/generators.cpp.o.d"
  "libevord_workload.a"
  "libevord_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evord_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
