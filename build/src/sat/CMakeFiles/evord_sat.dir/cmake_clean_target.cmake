file(REMOVE_RECURSE
  "libevord_sat.a"
)
