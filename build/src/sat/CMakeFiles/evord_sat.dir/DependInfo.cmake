
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sat/cdcl.cpp" "src/sat/CMakeFiles/evord_sat.dir/cdcl.cpp.o" "gcc" "src/sat/CMakeFiles/evord_sat.dir/cdcl.cpp.o.d"
  "/root/repo/src/sat/dpll.cpp" "src/sat/CMakeFiles/evord_sat.dir/dpll.cpp.o" "gcc" "src/sat/CMakeFiles/evord_sat.dir/dpll.cpp.o.d"
  "/root/repo/src/sat/formula.cpp" "src/sat/CMakeFiles/evord_sat.dir/formula.cpp.o" "gcc" "src/sat/CMakeFiles/evord_sat.dir/formula.cpp.o.d"
  "/root/repo/src/sat/gen.cpp" "src/sat/CMakeFiles/evord_sat.dir/gen.cpp.o" "gcc" "src/sat/CMakeFiles/evord_sat.dir/gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/evord_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
