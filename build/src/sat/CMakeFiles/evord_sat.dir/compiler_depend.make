# Empty compiler generated dependencies file for evord_sat.
# This may be replaced when dependencies are built.
