file(REMOVE_RECURSE
  "CMakeFiles/evord_sat.dir/cdcl.cpp.o"
  "CMakeFiles/evord_sat.dir/cdcl.cpp.o.d"
  "CMakeFiles/evord_sat.dir/dpll.cpp.o"
  "CMakeFiles/evord_sat.dir/dpll.cpp.o.d"
  "CMakeFiles/evord_sat.dir/formula.cpp.o"
  "CMakeFiles/evord_sat.dir/formula.cpp.o.d"
  "CMakeFiles/evord_sat.dir/gen.cpp.o"
  "CMakeFiles/evord_sat.dir/gen.cpp.o.d"
  "libevord_sat.a"
  "libevord_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evord_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
