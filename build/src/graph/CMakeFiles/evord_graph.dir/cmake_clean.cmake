file(REMOVE_RECURSE
  "CMakeFiles/evord_graph.dir/ancestor.cpp.o"
  "CMakeFiles/evord_graph.dir/ancestor.cpp.o.d"
  "CMakeFiles/evord_graph.dir/digraph.cpp.o"
  "CMakeFiles/evord_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/evord_graph.dir/dot.cpp.o"
  "CMakeFiles/evord_graph.dir/dot.cpp.o.d"
  "CMakeFiles/evord_graph.dir/reachability.cpp.o"
  "CMakeFiles/evord_graph.dir/reachability.cpp.o.d"
  "CMakeFiles/evord_graph.dir/topo.cpp.o"
  "CMakeFiles/evord_graph.dir/topo.cpp.o.d"
  "CMakeFiles/evord_graph.dir/transitive_reduction.cpp.o"
  "CMakeFiles/evord_graph.dir/transitive_reduction.cpp.o.d"
  "libevord_graph.a"
  "libevord_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evord_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
