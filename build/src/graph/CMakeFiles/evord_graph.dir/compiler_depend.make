# Empty compiler generated dependencies file for evord_graph.
# This may be replaced when dependencies are built.
