file(REMOVE_RECURSE
  "libevord_graph.a"
)
