file(REMOVE_RECURSE
  "CMakeFiles/evord_race.dir/race_detector.cpp.o"
  "CMakeFiles/evord_race.dir/race_detector.cpp.o.d"
  "libevord_race.a"
  "libevord_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evord_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
