# Empty dependencies file for evord_race.
# This may be replaced when dependencies are built.
