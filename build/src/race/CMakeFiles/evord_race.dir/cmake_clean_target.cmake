file(REMOVE_RECURSE
  "libevord_race.a"
)
