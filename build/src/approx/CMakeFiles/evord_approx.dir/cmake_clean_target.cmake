file(REMOVE_RECURSE
  "libevord_approx.a"
)
