# Empty dependencies file for evord_approx.
# This may be replaced when dependencies are built.
