file(REMOVE_RECURSE
  "CMakeFiles/evord_approx.dir/combined.cpp.o"
  "CMakeFiles/evord_approx.dir/combined.cpp.o.d"
  "CMakeFiles/evord_approx.dir/comparison.cpp.o"
  "CMakeFiles/evord_approx.dir/comparison.cpp.o.d"
  "CMakeFiles/evord_approx.dir/egp.cpp.o"
  "CMakeFiles/evord_approx.dir/egp.cpp.o.d"
  "CMakeFiles/evord_approx.dir/hmw.cpp.o"
  "CMakeFiles/evord_approx.dir/hmw.cpp.o.d"
  "CMakeFiles/evord_approx.dir/vector_clock.cpp.o"
  "CMakeFiles/evord_approx.dir/vector_clock.cpp.o.d"
  "libevord_approx.a"
  "libevord_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evord_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
