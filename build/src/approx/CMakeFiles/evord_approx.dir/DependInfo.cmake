
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/approx/combined.cpp" "src/approx/CMakeFiles/evord_approx.dir/combined.cpp.o" "gcc" "src/approx/CMakeFiles/evord_approx.dir/combined.cpp.o.d"
  "/root/repo/src/approx/comparison.cpp" "src/approx/CMakeFiles/evord_approx.dir/comparison.cpp.o" "gcc" "src/approx/CMakeFiles/evord_approx.dir/comparison.cpp.o.d"
  "/root/repo/src/approx/egp.cpp" "src/approx/CMakeFiles/evord_approx.dir/egp.cpp.o" "gcc" "src/approx/CMakeFiles/evord_approx.dir/egp.cpp.o.d"
  "/root/repo/src/approx/hmw.cpp" "src/approx/CMakeFiles/evord_approx.dir/hmw.cpp.o" "gcc" "src/approx/CMakeFiles/evord_approx.dir/hmw.cpp.o.d"
  "/root/repo/src/approx/vector_clock.cpp" "src/approx/CMakeFiles/evord_approx.dir/vector_clock.cpp.o" "gcc" "src/approx/CMakeFiles/evord_approx.dir/vector_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/evord_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/evord_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/evord_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/feasible/CMakeFiles/evord_feasible.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/evord_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
