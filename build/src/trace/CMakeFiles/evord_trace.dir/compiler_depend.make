# Empty compiler generated dependencies file for evord_trace.
# This may be replaced when dependencies are built.
