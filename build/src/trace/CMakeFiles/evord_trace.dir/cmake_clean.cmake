file(REMOVE_RECURSE
  "CMakeFiles/evord_trace.dir/axioms.cpp.o"
  "CMakeFiles/evord_trace.dir/axioms.cpp.o.d"
  "CMakeFiles/evord_trace.dir/builder.cpp.o"
  "CMakeFiles/evord_trace.dir/builder.cpp.o.d"
  "CMakeFiles/evord_trace.dir/dependence.cpp.o"
  "CMakeFiles/evord_trace.dir/dependence.cpp.o.d"
  "CMakeFiles/evord_trace.dir/event.cpp.o"
  "CMakeFiles/evord_trace.dir/event.cpp.o.d"
  "CMakeFiles/evord_trace.dir/trace.cpp.o"
  "CMakeFiles/evord_trace.dir/trace.cpp.o.d"
  "CMakeFiles/evord_trace.dir/trace_io.cpp.o"
  "CMakeFiles/evord_trace.dir/trace_io.cpp.o.d"
  "libevord_trace.a"
  "libevord_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evord_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
