file(REMOVE_RECURSE
  "libevord_trace.a"
)
