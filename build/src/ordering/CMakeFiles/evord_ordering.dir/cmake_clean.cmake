file(REMOVE_RECURSE
  "CMakeFiles/evord_ordering.dir/causal.cpp.o"
  "CMakeFiles/evord_ordering.dir/causal.cpp.o.d"
  "CMakeFiles/evord_ordering.dir/class_enumerate.cpp.o"
  "CMakeFiles/evord_ordering.dir/class_enumerate.cpp.o.d"
  "CMakeFiles/evord_ordering.dir/exact.cpp.o"
  "CMakeFiles/evord_ordering.dir/exact.cpp.o.d"
  "CMakeFiles/evord_ordering.dir/intervals.cpp.o"
  "CMakeFiles/evord_ordering.dir/intervals.cpp.o.d"
  "CMakeFiles/evord_ordering.dir/relations.cpp.o"
  "CMakeFiles/evord_ordering.dir/relations.cpp.o.d"
  "CMakeFiles/evord_ordering.dir/witness.cpp.o"
  "CMakeFiles/evord_ordering.dir/witness.cpp.o.d"
  "libevord_ordering.a"
  "libevord_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evord_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
