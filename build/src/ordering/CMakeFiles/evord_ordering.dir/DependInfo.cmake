
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ordering/causal.cpp" "src/ordering/CMakeFiles/evord_ordering.dir/causal.cpp.o" "gcc" "src/ordering/CMakeFiles/evord_ordering.dir/causal.cpp.o.d"
  "/root/repo/src/ordering/class_enumerate.cpp" "src/ordering/CMakeFiles/evord_ordering.dir/class_enumerate.cpp.o" "gcc" "src/ordering/CMakeFiles/evord_ordering.dir/class_enumerate.cpp.o.d"
  "/root/repo/src/ordering/exact.cpp" "src/ordering/CMakeFiles/evord_ordering.dir/exact.cpp.o" "gcc" "src/ordering/CMakeFiles/evord_ordering.dir/exact.cpp.o.d"
  "/root/repo/src/ordering/intervals.cpp" "src/ordering/CMakeFiles/evord_ordering.dir/intervals.cpp.o" "gcc" "src/ordering/CMakeFiles/evord_ordering.dir/intervals.cpp.o.d"
  "/root/repo/src/ordering/relations.cpp" "src/ordering/CMakeFiles/evord_ordering.dir/relations.cpp.o" "gcc" "src/ordering/CMakeFiles/evord_ordering.dir/relations.cpp.o.d"
  "/root/repo/src/ordering/witness.cpp" "src/ordering/CMakeFiles/evord_ordering.dir/witness.cpp.o" "gcc" "src/ordering/CMakeFiles/evord_ordering.dir/witness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/evord_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/feasible/CMakeFiles/evord_feasible.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/evord_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/evord_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
