file(REMOVE_RECURSE
  "libevord_ordering.a"
)
