# Empty dependencies file for evord_ordering.
# This may be replaced when dependencies are built.
