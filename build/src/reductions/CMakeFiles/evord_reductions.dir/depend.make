# Empty dependencies file for evord_reductions.
# This may be replaced when dependencies are built.
