file(REMOVE_RECURSE
  "CMakeFiles/evord_reductions.dir/figure1.cpp.o"
  "CMakeFiles/evord_reductions.dir/figure1.cpp.o.d"
  "CMakeFiles/evord_reductions.dir/oracle.cpp.o"
  "CMakeFiles/evord_reductions.dir/oracle.cpp.o.d"
  "CMakeFiles/evord_reductions.dir/reduction.cpp.o"
  "CMakeFiles/evord_reductions.dir/reduction.cpp.o.d"
  "CMakeFiles/evord_reductions.dir/smmcc.cpp.o"
  "CMakeFiles/evord_reductions.dir/smmcc.cpp.o.d"
  "libevord_reductions.a"
  "libevord_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evord_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
