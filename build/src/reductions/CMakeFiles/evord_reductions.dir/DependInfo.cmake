
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reductions/figure1.cpp" "src/reductions/CMakeFiles/evord_reductions.dir/figure1.cpp.o" "gcc" "src/reductions/CMakeFiles/evord_reductions.dir/figure1.cpp.o.d"
  "/root/repo/src/reductions/oracle.cpp" "src/reductions/CMakeFiles/evord_reductions.dir/oracle.cpp.o" "gcc" "src/reductions/CMakeFiles/evord_reductions.dir/oracle.cpp.o.d"
  "/root/repo/src/reductions/reduction.cpp" "src/reductions/CMakeFiles/evord_reductions.dir/reduction.cpp.o" "gcc" "src/reductions/CMakeFiles/evord_reductions.dir/reduction.cpp.o.d"
  "/root/repo/src/reductions/smmcc.cpp" "src/reductions/CMakeFiles/evord_reductions.dir/smmcc.cpp.o" "gcc" "src/reductions/CMakeFiles/evord_reductions.dir/smmcc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sat/CMakeFiles/evord_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/evord_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/evord_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/feasible/CMakeFiles/evord_feasible.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/evord_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/evord_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/evord_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
