file(REMOVE_RECURSE
  "libevord_reductions.a"
)
