file(REMOVE_RECURSE
  "libevord_util.a"
)
