# Empty dependencies file for evord_util.
# This may be replaced when dependencies are built.
