file(REMOVE_RECURSE
  "CMakeFiles/evord_util.dir/dynamic_bitset.cpp.o"
  "CMakeFiles/evord_util.dir/dynamic_bitset.cpp.o.d"
  "CMakeFiles/evord_util.dir/logging.cpp.o"
  "CMakeFiles/evord_util.dir/logging.cpp.o.d"
  "CMakeFiles/evord_util.dir/rng.cpp.o"
  "CMakeFiles/evord_util.dir/rng.cpp.o.d"
  "CMakeFiles/evord_util.dir/string_util.cpp.o"
  "CMakeFiles/evord_util.dir/string_util.cpp.o.d"
  "CMakeFiles/evord_util.dir/thread_pool.cpp.o"
  "CMakeFiles/evord_util.dir/thread_pool.cpp.o.d"
  "libevord_util.a"
  "libevord_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evord_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
