# Empty compiler generated dependencies file for evord_util.
# This may be replaced when dependencies are built.
