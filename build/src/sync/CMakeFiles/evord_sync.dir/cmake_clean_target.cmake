file(REMOVE_RECURSE
  "libevord_sync.a"
)
