# Empty compiler generated dependencies file for evord_sync.
# This may be replaced when dependencies are built.
