
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/program.cpp" "src/sync/CMakeFiles/evord_sync.dir/program.cpp.o" "gcc" "src/sync/CMakeFiles/evord_sync.dir/program.cpp.o.d"
  "/root/repo/src/sync/scheduler.cpp" "src/sync/CMakeFiles/evord_sync.dir/scheduler.cpp.o" "gcc" "src/sync/CMakeFiles/evord_sync.dir/scheduler.cpp.o.d"
  "/root/repo/src/sync/sync_state.cpp" "src/sync/CMakeFiles/evord_sync.dir/sync_state.cpp.o" "gcc" "src/sync/CMakeFiles/evord_sync.dir/sync_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/evord_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/evord_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/evord_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
