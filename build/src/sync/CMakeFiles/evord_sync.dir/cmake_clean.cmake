file(REMOVE_RECURSE
  "CMakeFiles/evord_sync.dir/program.cpp.o"
  "CMakeFiles/evord_sync.dir/program.cpp.o.d"
  "CMakeFiles/evord_sync.dir/scheduler.cpp.o"
  "CMakeFiles/evord_sync.dir/scheduler.cpp.o.d"
  "CMakeFiles/evord_sync.dir/sync_state.cpp.o"
  "CMakeFiles/evord_sync.dir/sync_state.cpp.o.d"
  "libevord_sync.a"
  "libevord_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evord_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
