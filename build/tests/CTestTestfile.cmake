# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/approx_test[1]_include.cmake")
include("/root/repo/build/tests/class_enumerate_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/explore_test[1]_include.cmake")
include("/root/repo/build/tests/deadlock_test[1]_include.cmake")
include("/root/repo/build/tests/feasible_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/ordering_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/race_test[1]_include.cmake")
include("/root/repo/build/tests/reductions_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/smmcc_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
