# Empty compiler generated dependencies file for class_enumerate_test.
# This may be replaced when dependencies are built.
