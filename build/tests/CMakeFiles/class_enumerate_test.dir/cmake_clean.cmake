file(REMOVE_RECURSE
  "CMakeFiles/class_enumerate_test.dir/class_enumerate_test.cpp.o"
  "CMakeFiles/class_enumerate_test.dir/class_enumerate_test.cpp.o.d"
  "class_enumerate_test"
  "class_enumerate_test.pdb"
  "class_enumerate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/class_enumerate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
