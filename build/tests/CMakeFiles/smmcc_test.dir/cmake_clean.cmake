file(REMOVE_RECURSE
  "CMakeFiles/smmcc_test.dir/smmcc_test.cpp.o"
  "CMakeFiles/smmcc_test.dir/smmcc_test.cpp.o.d"
  "smmcc_test"
  "smmcc_test.pdb"
  "smmcc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smmcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
