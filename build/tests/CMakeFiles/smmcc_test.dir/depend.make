# Empty dependencies file for smmcc_test.
# This may be replaced when dependencies are built.
