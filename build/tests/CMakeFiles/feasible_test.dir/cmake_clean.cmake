file(REMOVE_RECURSE
  "CMakeFiles/feasible_test.dir/feasible_test.cpp.o"
  "CMakeFiles/feasible_test.dir/feasible_test.cpp.o.d"
  "feasible_test"
  "feasible_test.pdb"
  "feasible_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feasible_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
