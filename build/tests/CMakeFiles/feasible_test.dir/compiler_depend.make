# Empty compiler generated dependencies file for feasible_test.
# This may be replaced when dependencies are built.
