#include "feasible/deadlock.hpp"

#include <unordered_set>

#include "util/timer.hpp"

namespace evord {

namespace {

struct KeyHash {
  std::size_t operator()(const std::vector<std::uint64_t>& key) const {
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint64_t w : key) {
      h ^= w;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

class DeadlockSearch {
 public:
  DeadlockSearch(const Trace& trace, const DeadlockOptions& options)
      : options_(options),
        stepper_(trace, options.stepper),
        deadline_(options.time_budget_seconds) {}

  DeadlockReport run() {
    explore();
    report_.states_visited = visited_.size();
    return std::move(report_);
  }

 private:
  bool out_of_budget() {
    if (options_.max_states != 0 && visited_.size() >= options_.max_states) {
      report_.truncated = true;
      return true;
    }
    if ((++budget_poll_ & 1023u) == 0 && deadline_.expired()) {
      report_.truncated = true;
      return true;
    }
    return false;
  }

  void explore() {
    if (stepper_.complete()) return;
    stepper_.encode_key(key_scratch_);
    if (!visited_.insert(key_scratch_).second) return;
    if (out_of_budget()) return;

    enabled_stack_.emplace_back();
    stepper_.enabled_events(enabled_stack_.back());
    if (enabled_stack_.back().empty()) {
      ++report_.stuck_states;
      if (!report_.can_deadlock ||
          path_.size() < report_.witness_prefix.size()) {
        report_.witness_prefix = path_;
      }
      report_.can_deadlock = true;
      enabled_stack_.pop_back();
      return;
    }
    for (std::size_t i = 0; i < enabled_stack_.back().size(); ++i) {
      const EventId e = enabled_stack_.back()[i];
      const TraceStepper::Undo u = stepper_.apply(e);
      path_.push_back(e);
      explore();
      path_.pop_back();
      stepper_.undo(u);
    }
    enabled_stack_.pop_back();
  }

  const DeadlockOptions& options_;
  TraceStepper stepper_;
  Deadline deadline_;
  DeadlockReport report_;
  std::unordered_set<std::vector<std::uint64_t>, KeyHash> visited_;
  std::vector<std::uint64_t> key_scratch_;
  std::vector<EventId> path_;
  std::vector<std::vector<EventId>> enabled_stack_;
  std::uint32_t budget_poll_ = 0;
};

}  // namespace

DeadlockReport analyze_deadlocks(const Trace& trace,
                                 const DeadlockOptions& options) {
  return DeadlockSearch(trace, options).run();
}

}  // namespace evord
