#include "feasible/deadlock.hpp"

#include <optional>

#include "search/engine.hpp"

namespace evord {

namespace {

/// Deadlock hooks: terminals just continue; stuck states update the
/// per-instance best witness (strictly shorter replaces, so the
/// first-discovered witness of the minimal length is kept) and, in
/// parallel mode, a shared stuck-state fingerprint set that counts each
/// distinct stuck state once across workers.
struct DeadlockHooks {
  search::ShardedFingerprintSet* stuck_set;  ///< null in serial mode
  bool* can_deadlock;
  std::vector<EventId>* witness;

  bool on_terminal(const std::vector<EventId>& /*schedule*/) { return true; }

  void on_stuck(const std::vector<EventId>& path, std::uint64_t fp) {
    // No payload: any colliding fingerprints already tripped the visited
    // set's collision check (stuck fingerprints are claim fingerprints).
    if (stuck_set != nullptr) stuck_set->insert(fp);
    if (!*can_deadlock || path.size() < witness->size()) *witness = path;
    *can_deadlock = true;
  }
};

template <class Dedup>
using DeadlockSearch =
    search::EnumerationSearch<search::NullTracker, Dedup, DeadlockHooks>;

search::SearchOptions to_search_options(const DeadlockOptions& options) {
  search::SearchOptions so;
  so.max_states = options.max_states;
  so.time_budget_seconds = options.time_budget_seconds;
  so.num_threads = options.num_threads;
  return so;
}

constexpr std::uint64_t kVisitedBytesPerState = 8;  ///< one fingerprint

DeadlockReport run_serial(const Trace& trace, const DeadlockOptions& options) {
  const search::SearchOptions so = to_search_options(options);
  search::SharedContext ctx(so);
  search::ShardedFingerprintSet visited(1);
  DeadlockReport report;
  DeadlockSearch<search::SharedSetDedup> engine(
      trace, options.stepper, so, &ctx, search::NullTracker{},
      search::SharedSetDedup(&visited),
      DeadlockHooks{nullptr, &report.can_deadlock, &report.witness_prefix});
  report.search = engine.run();
  report.search.memo_bytes = visited.size() * kVisitedBytesPerState;
  report.stuck_states = report.search.deadlocked_prefixes;
  report.states_visited = static_cast<std::size_t>(visited.size());
  report.truncated = report.search.truncated;
  return report;
}

DeadlockReport run_parallel(const Trace& trace, const DeadlockOptions& options,
                            const std::vector<EventId>& roots,
                            std::size_t threads) {
  const search::SearchOptions so = to_search_options(options);
  search::SharedContext ctx(so);
  search::ShardedFingerprintSet visited(4 * threads);
  // Claim fingerprints double as stuck-state identity, so this set can
  // skip payload verification (see DeadlockHooks::on_stuck).
  search::ShardedFingerprintSet stuck(4 * threads,
                                      /*verify_collisions=*/false);

  // Count the root state once, as the serial search would at its first
  // explore() entry (workers start one event in and never revisit it).
  {
    TraceStepper root(trace, options.stepper);
    std::vector<std::uint64_t> key;
    const std::vector<std::uint64_t>* payload = nullptr;
    if (visited.verify_collisions()) {
      root.encode_key(key);
      payload = &key;
    }
    visited.insert(root.state_hash(), payload);
    ctx.states.fetch_add(1, std::memory_order_relaxed);
  }

  // Per-subtree witness candidates, merged deterministically below.
  // (char, not bool: vector<bool> bit-packs and adjacent-index writes
  // from different workers would race.)
  std::vector<char> sub_deadlock(roots.size(), 0);
  std::vector<std::vector<EventId>> sub_witness(roots.size());

  search::SearchStats total = search::run_root_split(
      roots.size(), threads, ctx, [&](std::size_t i) {
        bool local_deadlock = false;
        DeadlockSearch<search::PrivateSetDedup> engine(
            trace, options.stepper, so, &ctx, search::NullTracker{},
            search::PrivateSetDedup(&visited),
            DeadlockHooks{&stuck, &local_deadlock, &sub_witness[i]});
        engine.seed({roots[i]});
        const search::SearchStats stats = engine.run();
        sub_deadlock[i] = local_deadlock;
        return stats;
      });
  total.states_visited += 1;  // the root claim above

  DeadlockReport report;
  // Deterministic witness: minimal length wins; among equals, the lowest
  // subtree index — exactly the prefix the serial search would keep,
  // because each worker's private-set traversal of its subtree matches
  // the serial traversal order there (docs/SEARCH.md).
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (!sub_deadlock[i]) continue;
    if (!report.can_deadlock ||
        sub_witness[i].size() < report.witness_prefix.size()) {
      report.witness_prefix = sub_witness[i];
    }
    report.can_deadlock = true;
  }
  report.search = total;
  // Workers overcount stuck prefixes they both reach; the shared set has
  // the distinct total.
  report.search.deadlocked_prefixes = stuck.size();
  report.search.states_visited = visited.size();
  report.search.memo_bytes = visited.size() * kVisitedBytesPerState;
  report.stuck_states = stuck.size();
  report.states_visited = static_cast<std::size_t>(visited.size());
  report.truncated = report.search.truncated;
  return report;
}

}  // namespace

DeadlockReport analyze_deadlocks(const Trace& trace,
                                 const DeadlockOptions& options) {
  const std::size_t threads =
      search::resolve_num_threads(options.num_threads);
  if (threads > 1) {
    const std::vector<EventId> roots =
        search::root_events(trace, options.stepper);
    if (roots.size() > 1) return run_parallel(trace, options, roots, threads);
  }
  return run_serial(trace, options);
}

}  // namespace evord
