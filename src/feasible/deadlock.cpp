#include "feasible/deadlock.hpp"

#include <memory>
#include <mutex>
#include <optional>

#include "search/engine.hpp"

namespace evord {

namespace {

/// One witness candidate with its canonical DFS key.  The serial search
/// reports the first stuck prefix of minimal length it finds; because
/// DFS visits states in lexicographic dewey order, that is exactly the
/// minimum under (length, dewey) — a characterization independent of how
/// the tree was partitioned into tasks, which is what makes the parallel
/// merge bit-identical to serial under any split/steal pattern.
struct WitnessCandidate {
  bool found = false;
  std::vector<EventId> path;
  std::vector<std::uint32_t> dewey;
  /// When set, the held witness buffers are charged against the search's
  /// byte budget (and re-charged as better candidates replace them).
  search::MemoryAccountant* memory = nullptr;

  ~WitnessCandidate() { drop_charge(); }

  void offer(const std::vector<EventId>& p,
             const std::vector<std::uint32_t>& d) {
    if (found && !wins(p.size(), d)) return;
    found = true;
    path = p;
    dewey = d;
    recharge();
  }

  void merge(WitnessCandidate&& other) {
    if (!other.found) return;
    other.drop_charge();
    if (found && !wins(other.path.size(), other.dewey)) return;
    found = true;
    path = std::move(other.path);
    dewey = std::move(other.dewey);
    recharge();
  }

 private:
  bool wins(std::size_t len, const std::vector<std::uint32_t>& d) const {
    if (len != path.size()) return len < path.size();
    return d < dewey;
  }

  void recharge() {
    if (memory == nullptr) return;
    memory->release(charged_);
    charged_ = path.size() * sizeof(EventId) +
               dewey.size() * sizeof(std::uint32_t);
    memory->charge(charged_);
  }

  void drop_charge() {
    if (memory == nullptr) return;
    memory->release(charged_);
    charged_ = 0;
  }

  std::uint64_t charged_ = 0;
};

/// Deadlock hooks: terminals just continue; stuck states update the
/// per-task witness candidate and, in parallel mode, a shared
/// stuck-state fingerprint set that counts each distinct stuck state
/// once across tasks.
struct DeadlockHooks {
  search::ShardedFingerprintSet* stuck_set;  ///< null in serial mode
  WitnessCandidate* witness;

  bool on_terminal(const std::vector<EventId>& /*schedule*/) { return true; }

  void on_stuck(const std::vector<EventId>& path, std::uint64_t fp,
                const std::vector<std::uint32_t>& dewey) {
    // No payload: any colliding fingerprints already tripped the visited
    // set's collision check (stuck fingerprints are claim fingerprints).
    if (stuck_set != nullptr) stuck_set->insert(fp);
    witness->offer(path, dewey);
  }
};

template <class Dedup>
using DeadlockSearch =
    search::EnumerationSearch<search::NullTracker, Dedup, DeadlockHooks>;

search::SearchOptions to_search_options(const DeadlockOptions& options) {
  search::SearchOptions so;
  so.max_states = options.max_states;
  so.time_budget_seconds = options.time_budget_seconds;
  so.max_memory_bytes = options.max_memory_bytes;
  so.num_threads = options.num_threads;
  so.steal = options.steal;
  so.reduction = options.reduction;
  // The verdict, witness validity and distinct-stuck-state count are all
  // functions of reachable stepper states, so the broader stepper-state
  // excusals apply.
  so.state_only_excusals = true;
  so.spill = options.spill;
  return so;
}

/// The stuck-state set always keys raw 64-bit state fingerprints (they
/// already went through the visited set's collision check), so it skips
/// verification; it spills alongside the visited set.
search::PackedStateRegistry::Config stuck_config(
    const search::SearchOptions& so, std::size_t num_shards) {
  search::PackedStateRegistry::Config cfg;
  cfg.num_shards = num_shards;
  cfg.verify_collisions = false;
  cfg.spill = so.spill;
  return cfg;
}

DeadlockReport run_serial(const Trace& trace, const DeadlockOptions& options,
                          const search::IndependenceRelation* indep) {
  const search::SearchOptions so = to_search_options(options);
  search::SharedContext ctx(so);
  search::ShardedFingerprintSet visited(
      search::make_store_config(trace, so, 1));
  visited.set_accountant(&ctx.memory);
  // Under reduction the visited claims key (state, sleep set) pairs, so
  // the engine's per-visit deadlocked_prefixes can count one physical
  // stuck frontier once per sleep context; a raw-fingerprint stuck set
  // restores the distinct-stuck-state count (exactly as parallel mode
  // always has).
  const bool reduced = so.reduction != search::ReductionMode::kOff;
  std::optional<search::ShardedFingerprintSet> stuck;
  if (reduced) {
    stuck.emplace(stuck_config(so, 1));
    stuck->set_accountant(&ctx.memory);
  }
  WitnessCandidate witness;
  witness.memory = &ctx.memory;
  DeadlockReport report;
  DeadlockSearch<search::SharedSetDedup> engine(
      trace, options.stepper, so, &ctx, search::NullTracker{},
      search::SharedSetDedup(&visited),
      DeadlockHooks{reduced ? &*stuck : nullptr, &witness}, indep);
  report.search = engine.run();
  report.can_deadlock = witness.found;
  report.witness_prefix = std::move(witness.path);
  report.search.memo_bytes = visited.bytes();
  report.search.spilled_bytes =
      visited.spilled_bytes() + (reduced ? stuck->spilled_bytes() : 0);
  report.search.spill_events =
      visited.spill_events() + (reduced ? stuck->spill_events() : 0);
  report.search.shard_sizes = visited.shard_sizes();
  if (reduced) report.search.deadlocked_prefixes = stuck->size();
  report.stuck_states = report.search.deadlocked_prefixes;
  report.states_visited = static_cast<std::size_t>(visited.size());
  report.truncated = report.search.truncated;
  return report;
}

DeadlockReport run_parallel(const Trace& trace, const DeadlockOptions& options,
                            std::vector<search::SearchTask> roots,
                            std::size_t threads,
                            const search::IndependenceRelation* indep) {
  search::SearchOptions so = to_search_options(options);
  const bool reduced = so.reduction != search::ReductionMode::kOff;
  // Private-set tasks re-explore states their regions share (that is
  // what makes the witness deterministic), so on DAG-shaped state
  // spaces every extra task multiplies duplicated work.  Unless the
  // caller tuned the cutoff, cap donations to the shallow levels:
  // enough to balance first-level skew, bounded duplication.  Never
  // affects results — only who explores what.
  if (so.steal.max_split_depth == 0) so.steal.max_split_depth = 3;
  search::SharedContext ctx(so);
  search::ShardedFingerprintSet visited(
      search::make_store_config(trace, so, 4 * threads));
  visited.set_accountant(&ctx.memory);
  // Stuck states are identified by their raw state fingerprint (without
  // reduction that IS the claim fingerprint, which already went through
  // the visited set's collision check; under reduction the raw
  // fingerprint is the same stepper hash, just not sleep-folded), so
  // this set skips payload verification.
  search::ShardedFingerprintSet stuck(stuck_config(so, 4 * threads));
  stuck.set_accountant(&ctx.memory);

  // Count the root state once, as the serial search would at its first
  // explore() entry (tasks start at least one event in and never revisit
  // it).  Under reduction the serial claim keys the (state, sleep set)
  // pair — the root sleeps on nothing.
  {
    TraceStepper root(trace, options.stepper);
    std::vector<std::uint64_t> key;
    const std::vector<std::uint64_t>* payload = nullptr;
    const std::vector<EventId> root_sleep;
    if (visited.verify_collisions()) {
      root.encode_key(key);
      if (reduced) search::extend_key_with_sleep(root_sleep, key);
      payload = &key;
    }
    std::uint64_t root_fp =
        visited.exact_keys() ? root.packed_word() : root.state_hash();
    if (reduced) {
      root_fp = search::fold_sleep(root_fp,
                                   search::sleep_set_hash(root_sleep));
    }
    visited.insert(root_fp, payload);
    ctx.states.fetch_add(1, std::memory_order_relaxed);
  }

  std::mutex witness_mu;
  WitnessCandidate best;
  const search::SearchStats total = search::run_work_stealing(
      std::move(roots), threads, so.steal.seed, ctx,
      [&](const search::SearchTask& task, search::WorkerHandle& worker) {
        WitnessCandidate local;
        local.memory = &ctx.memory;
        DeadlockSearch<search::PrivateSetDedup> engine(
            trace, options.stepper, so, &ctx, search::NullTracker{},
            search::PrivateSetDedup(&visited),
            DeadlockHooks{&stuck, &local}, indep);
        engine.seed(task.seed);
        engine.attach_worker(&worker, &task);
        if (reduced) engine.set_initial_sleep(task.sleep);
        const search::SearchStats stats = engine.run();
        if (local.found) {
          std::lock_guard<std::mutex> lock(witness_mu);
          best.merge(std::move(local));
        }
        return stats;
      });

  DeadlockReport report;
  report.can_deadlock = best.found;
  report.witness_prefix = std::move(best.path);
  report.search = total;
  // The shared stores are authoritative: tasks overcount states and
  // stuck prefixes they both reach (private-set walks), so the distinct
  // totals come from the sets, never from summing per task.
  report.search.deadlocked_prefixes = stuck.size();
  report.search.states_visited = visited.size();
  // The manually claimed root lands in the depth histogram here (tasks
  // start one event in); a state's depth is its done-set size, so the
  // histogram is deterministic no matter which task first-claims a state.
  if (report.search.depth_states.empty()) {
    report.search.depth_states.resize(1, 0);
  }
  report.search.depth_states[0] += 1;
  report.search.memo_bytes = visited.bytes();
  report.search.spilled_bytes =
      visited.spilled_bytes() + stuck.spilled_bytes();
  report.search.spill_events = visited.spill_events() + stuck.spill_events();
  report.search.shard_sizes = visited.shard_sizes();
  report.stuck_states = stuck.size();
  report.states_visited = static_cast<std::size_t>(visited.size());
  report.truncated = report.search.truncated;
  return report;
}

/// Reduction-aware canonical witness.  Which (length, dewey)-minimal
/// stuck prefix the search surfaces depends on which interleavings the
/// reduction explored, so two ReductionModes (or a mode change across
/// releases) can report different — equally valid — witnesses for the
/// same stuck state.  Re-permute the witness's own event set greedily,
/// always executing its smallest schedulable event next, and accept the
/// permutation only when it runs to full length AND stops in exactly the
/// reported witness's state (binary-semaphore clamping makes final
/// states order-dependent, and the stuck frontier is a function of the
/// state).  The result is a deterministic function of the witness's
/// event set and final state alone; on failure the original prefix is
/// returned unchanged.
std::vector<EventId> canonicalize_witness(
    const Trace& trace, const StepperOptions& stepper_options,
    const std::vector<EventId>& witness) {
  if (witness.size() < 2) return witness;
  TraceStepper ref(trace, stepper_options);
  for (EventId e : witness) {
    if (!ref.enabled(e)) return witness;  // defensive: replay must hold
    ref.apply(e);
  }
  std::vector<std::uint64_t> want;
  ref.encode_key(want);

  DynamicBitset members(trace.num_events());
  for (EventId e : witness) members.set(e);
  TraceStepper s(trace, stepper_options);
  std::vector<EventId> out;
  out.reserve(witness.size());
  std::vector<EventId> enabled;
  for (std::size_t step = 0; step < witness.size(); ++step) {
    s.enabled_events(enabled);
    EventId pick = kNoEvent;
    for (EventId e : enabled) {
      if (members.test(e) && (pick == kNoEvent || e < pick)) pick = e;
    }
    if (pick == kNoEvent) return witness;  // set not greedily schedulable
    s.apply(pick);
    out.push_back(pick);
  }
  std::vector<std::uint64_t> got;
  s.encode_key(got);
  return got == want ? out : witness;
}

}  // namespace

DeadlockReport analyze_deadlocks(const Trace& trace,
                                 const DeadlockOptions& options) {
  const std::size_t threads =
      search::resolve_num_threads(options.num_threads);
  std::unique_ptr<search::IndependenceRelation> indep;
  if (options.reduction != search::ReductionMode::kOff) {
    indep = std::make_unique<search::IndependenceRelation>(trace);
  }
  DeadlockReport report;
  bool ran = false;
  if (threads > 1) {
    // NullTracker engine: stepper-state (untracked) dynamic independence.
    std::vector<search::SearchTask> roots = search::root_tasks(
        trace, options.stepper, {}, options.reduction, indep.get(),
        /*tracker_sensitive=*/false);
    if (!roots.empty()) {
      report = run_parallel(trace, options, std::move(roots), threads,
                            indep.get());
      ran = true;
    }
  }
  if (!ran) report = run_serial(trace, options, indep.get());
  // Unreduced searches already report the global (length, dewey) minimum,
  // which is canonical by itself; leave it untouched.
  if (options.reduction != search::ReductionMode::kOff &&
      report.can_deadlock && !report.truncated) {
    report.witness_prefix =
        canonicalize_witness(trace, options.stepper, report.witness_prefix);
  }
  return report;
}

std::uint64_t DeadlockReport::approx_bytes() const {
  return sizeof(DeadlockReport) + search.approx_bytes() +
         witness_prefix.capacity() * sizeof(EventId);
}

}  // namespace evord
