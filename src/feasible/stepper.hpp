// Incremental replay of a trace's events under arbitrary valid schedules.
//
// A TraceStepper holds the frontier of a partial schedule: per-process
// positions, semaphore counts, event-variable flags and the executed set.
// It answers "which events may execute next" under the validity rules of
// DESIGN.md §3 (program order, fork/join, semaphore and event-variable
// semantics, and — unless disabled for the paper's §5.3 mode — the
// shared-data dependences F3).  Both feasible-execution engines (the
// memoized state-space search and the exhaustive schedule enumerator) are
// built on it.
//
// apply()/undo() are O(1); the stepper is designed for DFS use.
#pragma once

#include <cstdint>
#include <vector>

#include "search/state_registry.hpp"
#include "trace/trace.hpp"
#include "util/dynamic_bitset.hpp"

namespace evord {

struct StepperOptions {
  /// Enforce F3: every D edge (a, b) forces a before b.  Disable to
  /// explore all executions with the same events regardless of the
  /// original dependences (paper §5.3).
  bool respect_dependences = true;
};

class TraceStepper {
 public:
  explicit TraceStepper(const Trace& trace, StepperOptions options = {});

  const Trace& trace() const { return *trace_; }

  // ----- frontier queries ---------------------------------------------
  bool complete() const { return executed_count_ == trace_->num_events(); }
  std::size_t num_executed() const { return executed_count_; }
  const DynamicBitset& done_bits() const { return done_; }
  bool executed(EventId e) const { return done_.test(e); }

  /// The next unexecuted event of process `p`, or kNoEvent if finished.
  EventId next_of(ProcId p) const;

  /// True iff `e` is the next event of its process and every validity
  /// rule permits executing it now.
  bool enabled(EventId e) const;

  /// Appends all currently enabled events to `out` (cleared first),
  /// in process-id order.
  void enabled_events(std::vector<EventId>& out) const;

  // ----- mutation -------------------------------------------------------
  /// Opaque undo record for one apply().
  struct Undo {
    EventId event = kNoEvent;
    int old_count = 0;     ///< semaphore ops
    bool old_posted = false;  ///< post/clear
  };

  /// Executes `e` (must be enabled) and returns the undo record.
  Undo apply(EventId e);
  /// Reverts the most recent un-reverted apply (LIFO discipline).
  void undo(const Undo& u);

  // ----- state fingerprint ----------------------------------------------
  /// Encodes the scheduling-relevant state: per-process positions, event
  /// variable flags and binary-semaphore counts.  (Counting-semaphore
  /// counts are a function of the positions; binary counts are not,
  /// because clamped V operations do not commute with P.)  Two partial
  /// schedules with equal keys have identical futures.  The buffer is
  /// sized exactly (assign, no incremental push_back), so a reused
  /// buffer never reallocates after its first call.
  void encode_key(std::vector<std::uint64_t>& out) const;

  /// The bit-packed state layout (search/state_registry.hpp): positions
  /// at ceil(log2(len+1)) bits, event-variable and binary-parity bits
  /// inline.  Maintained incrementally, O(1) per apply/undo.
  const search::PackedStateLayout& layout() const { return layout_; }
  /// All packed words of the current state.
  const std::vector<std::uint64_t>& packed_words() const { return packed_; }
  /// The packed state as a single word — an exact, collision-free state
  /// key when layout().single_word().
  std::uint64_t packed_word() const { return packed_[0]; }

  /// Incrementally maintained 64-bit Zobrist hash of exactly the
  /// encode_key() state: equal keys always yield equal hashes, regardless
  /// of the schedule that reached the state.  O(1) to read and O(1) per
  /// apply/undo to maintain, so dedup engines fingerprint states without
  /// materializing keys (debug builds still materialize them for the
  /// collision cross-check; see search/fingerprint_set.hpp).
  std::uint64_t state_hash() const { return state_hash_; }

  int sem_count(ObjectId sem) const { return counts_[sem]; }
  bool posted(ObjectId ev) const { return posted_.test(ev); }
  std::uint32_t position(ProcId p) const { return positions_[p]; }
  /// P operations executed so far on `sem` (maintained O(1) per
  /// apply/undo).  Dynamic independence (search/independence.hpp) uses it
  /// to decide when surplus tokens make V/V order causally invisible:
  /// the pops a semaphore will ever perform are fixed by the trace, so
  /// sem_count(sem) >= total P ops - executed_p(sem) means no token
  /// pushed from here on is ever consumed.
  std::uint32_t executed_p(ObjectId sem) const { return p_executed_[sem]; }
  /// Whether this stepper enforces the trace's D edges (F3).
  bool respects_dependences() const { return options_.respect_dependences; }

 private:
  const Trace* trace_;
  StepperOptions options_;

  std::vector<std::uint32_t> positions_;  ///< per-process executed prefix
  std::vector<int> counts_;               ///< semaphore counts
  std::vector<std::uint32_t> p_executed_;  ///< executed P ops per semaphore
  std::vector<bool> binary_;
  DynamicBitset posted_;
  DynamicBitset done_;
  std::size_t executed_count_ = 0;
  std::uint64_t state_hash_ = 0;
  search::PackedStateLayout layout_;
  std::vector<std::uint64_t> packed_;  ///< bit-packed state, incremental

  /// D-predecessors per event (empty when dependences are ignored).
  std::vector<std::vector<EventId>> dep_preds_;
};

}  // namespace evord
