#include "feasible/enumerate.hpp"

#include <atomic>
#include <mutex>
#include <optional>

#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace evord {

namespace {

class Enumerator {
 public:
  Enumerator(const Trace& trace, const EnumerateOptions& options,
             const ScheduleVisitor& visit)
      : options_(options),
        stepper_(trace, options.stepper),
        visit_(visit),
        deadline_(options.time_budget_seconds) {
    schedule_.reserve(trace.num_events());
    seed(options.seed_prefix);
  }

  /// Fast-forwards through `prefix` before enumerating (for root-split
  /// parallelism).  Every prefix event must be enabled in sequence.
  void seed(const std::vector<EventId>& prefix) {
    for (EventId e : prefix) {
      EVORD_CHECK(stepper_.enabled(e), "seed prefix is not schedulable");
      stepper_.apply(e);
      schedule_.push_back(e);
    }
  }

  EnumerateStats run() {
    // Depth is bounded by the event count; reserving keeps the per-depth
    // references below stable across recursive emplace_backs.
    enabled_stack_.reserve(stepper_.trace().num_events() + 1);
    dfs();
    return stats_;
  }

 private:
  bool budget_hit() {
    if (options_.max_schedules != 0 &&
        stats_.schedules >= options_.max_schedules) {
      stats_.truncated = true;
      return true;
    }
    if ((++budget_poll_ & 255u) == 0 && deadline_.expired()) {
      stats_.truncated = true;
      return true;
    }
    return false;
  }

  /// Returns false to unwind the whole search (stop / budget).
  bool dfs(std::size_t depth = 0) {
    if (stepper_.complete()) {
      ++stats_.schedules;
      if (!visit_(schedule_)) {
        stats_.stopped_by_visitor = true;
        return false;
      }
      return !budget_hit();
    }
    // One vector per depth, reused across siblings (capacity kept).
    if (depth == enabled_stack_.size()) enabled_stack_.emplace_back();
    std::vector<EventId>& enabled = enabled_stack_[depth];
    stepper_.enabled_events(enabled);
    if (enabled.empty()) {
      ++stats_.deadlocked_prefixes;
      return true;
    }
    bool keep_going = true;
    for (std::size_t i = 0; keep_going && i < enabled.size(); ++i) {
      const EventId e = enabled[i];
      const TraceStepper::Undo u = stepper_.apply(e);
      schedule_.push_back(e);
      keep_going = dfs(depth + 1);
      schedule_.pop_back();
      stepper_.undo(u);
    }
    return keep_going;
  }

  const EnumerateOptions& options_;
  TraceStepper stepper_;
  const ScheduleVisitor& visit_;
  Deadline deadline_;
  EnumerateStats stats_;
  std::vector<EventId> schedule_;
  std::vector<std::vector<EventId>> enabled_stack_;
  std::uint32_t budget_poll_ = 0;
};

}  // namespace

EnumerateStats enumerate_schedules(const Trace& trace,
                                   const EnumerateOptions& options,
                                   const ScheduleVisitor& visit) {
  return Enumerator(trace, options, visit).run();
}

EnumerateStats enumerate_schedules_parallel(const Trace& trace,
                                            const EnumerateOptions& options,
                                            const ScheduleVisitor& visit,
                                            std::size_t num_threads) {
  // Partition on the first-level enabled events; each subtree gets its own
  // stepper.  Budgets apply per subtree (the combined schedule count can
  // therefore exceed max_schedules by up to a factor of the root width;
  // callers that need a strict cap use the serial variant).
  TraceStepper root(trace, options.stepper);
  std::vector<EventId> first;
  root.enabled_events(first);
  if (first.empty()) {
    EnumerateStats stats;
    if (trace.num_events() == 0) {
      ++stats.schedules;
      visit({});
    } else {
      ++stats.deadlocked_prefixes;
    }
    return stats;
  }

  ThreadPool pool(num_threads);
  std::mutex stats_mu;
  EnumerateStats total;
  std::atomic<bool> stop{false};
  pool.parallel_for(first.size(), [&](std::size_t i) {
    if (stop.load(std::memory_order_relaxed)) return;
    ScheduleVisitor wrapped = [&](const std::vector<EventId>& s) {
      if (stop.load(std::memory_order_relaxed)) return false;
      if (!visit(s)) {
        stop.store(true, std::memory_order_relaxed);
        return false;
      }
      return true;
    };
    Enumerator e(trace, options, wrapped);
    e.seed({first[i]});
    const EnumerateStats stats = e.run();
    std::lock_guard<std::mutex> lock(stats_mu);
    total.schedules += stats.schedules;
    total.deadlocked_prefixes += stats.deadlocked_prefixes;
    total.truncated = total.truncated || stats.truncated;
    total.stopped_by_visitor =
        total.stopped_by_visitor || stats.stopped_by_visitor;
  });
  return total;
}

std::optional<std::vector<EventId>> find_schedule_where(
    const Trace& trace, const EnumerateOptions& options,
    const std::function<bool(const std::vector<EventId>&)>& pred) {
  std::optional<std::vector<EventId>> found;
  enumerate_schedules(trace, options, [&](const std::vector<EventId>& s) {
    if (pred(s)) {
      found = s;
      return false;
    }
    return true;
  });
  return found;
}

std::optional<std::vector<EventId>> find_schedule_with_order(
    const Trace& trace, EventId first, EventId second,
    const EnumerateOptions& options) {
  return find_schedule_where(
      trace, options, [&](const std::vector<EventId>& s) {
        for (EventId e : s) {
          if (e == first) return true;  // first came first
          if (e == second) return false;
        }
        return false;
      });
}

std::uint64_t count_schedules(const Trace& trace,
                              const EnumerateOptions& options) {
  return enumerate_schedules(trace, options,
                             [](const std::vector<EventId>&) { return true; })
      .schedules;
}

}  // namespace evord
