#include "feasible/enumerate.hpp"

#include <memory>
#include <optional>

#include "search/engine.hpp"

namespace evord {

namespace {

/// Enumeration hooks: forward terminals to the caller's visitor; stuck
/// prefixes are only counted (by the engine).
struct EnumHooks {
  const ScheduleVisitor* visit;
  bool on_terminal(const std::vector<EventId>& schedule) {
    return (*visit)(schedule);
  }
  void on_stuck(const std::vector<EventId>& /*path*/, std::uint64_t /*fp*/,
                const std::vector<std::uint32_t>& /*dewey*/) {}
};

using EnumSearch =
    search::EnumerationSearch<search::NullTracker, search::NoDedup, EnumHooks>;

search::SearchOptions to_search_options(const EnumerateOptions& options) {
  search::SearchOptions so;
  so.max_terminals = options.max_schedules;
  so.time_budget_seconds = options.time_budget_seconds;
  so.max_memory_bytes = options.max_memory_bytes;
  so.steal = options.steal;
  if (options.representatives_only) {
    so.reduction = search::ReductionMode::kSourceWakeup;
  }
  return so;
}

EnumerateStats finish(const search::SearchStats& stats) {
  EnumerateStats out;
  out.schedules = stats.terminals;
  out.deadlocked_prefixes = stats.deadlocked_prefixes;
  out.truncated = stats.truncated;
  out.stopped_by_visitor = stats.stopped_by_visitor;
  out.search = stats;
  return out;
}

}  // namespace

EnumerateStats enumerate_schedules(const Trace& trace,
                                   const EnumerateOptions& options,
                                   const ScheduleVisitor& visit) {
  const search::SearchOptions so = to_search_options(options);
  search::SharedContext ctx(so);
  const search::ScopedAccountant charge_guard(options.charge_store,
                                              &ctx.memory);
  std::unique_ptr<search::IndependenceRelation> indep;
  if (so.reduction != search::ReductionMode::kOff) {
    indep = std::make_unique<search::IndependenceRelation>(trace);
  }
  EnumSearch engine(trace, options.stepper, so, &ctx, search::NullTracker{},
                    search::NoDedup{}, EnumHooks{&visit}, indep.get());
  engine.seed(options.seed_prefix);
  return finish(engine.run());
}

std::size_t num_enumerate_subtrees(const Trace& trace,
                                   const EnumerateOptions& options) {
  return search::root_events(trace, options.stepper, options.seed_prefix)
      .size();
}

EnumerateStats enumerate_schedules_parallel_indexed(
    const Trace& trace, const EnumerateOptions& options,
    const IndexedScheduleVisitor& visit, std::size_t num_threads) {
  // One initial task per first-level enabled event; the work-stealing
  // scheduler splits further subtrees off adaptively, so even a single
  // root child parallelises.  All budgets stay strict and global: the
  // tasks share one SharedContext, so max_schedules caps the combined
  // visit count exactly.
  const std::size_t threads = search::resolve_num_threads(num_threads);
  const search::ReductionMode reduction =
      options.representatives_only ? search::ReductionMode::kSourceWakeup
                                   : search::ReductionMode::kOff;
  std::unique_ptr<search::IndependenceRelation> indep;
  if (reduction != search::ReductionMode::kOff) {
    indep = std::make_unique<search::IndependenceRelation>(trace);
  }
  std::vector<search::SearchTask> roots = search::root_tasks(
      trace, options.stepper, options.seed_prefix, reduction, indep.get(),
      /*tracker_sensitive=*/true);
  if (threads <= 1 || roots.empty()) {
    // Serial fallback also covers empty traces and deadlocked roots.
    const ScheduleVisitor wrapped = [&](const std::vector<EventId>& s) {
      return visit(0, s);
    };
    return enumerate_schedules(trace, options, wrapped);
  }

  const search::SearchOptions so = to_search_options(options);
  search::SharedContext ctx(so);
  const search::ScopedAccountant charge_guard(options.charge_store,
                                              &ctx.memory);
  const search::SearchStats total = search::run_work_stealing(
      std::move(roots), threads, so.steal.seed, ctx,
      [&](const search::SearchTask& task, search::WorkerHandle& worker) {
        const ScheduleVisitor sub =
            [&visit, slot = worker.worker_id()](const std::vector<EventId>& s) {
              return visit(slot, s);
            };
        EnumSearch engine(trace, options.stepper, so, &ctx,
                          search::NullTracker{}, search::NoDedup{},
                          EnumHooks{&sub}, indep.get());
        engine.seed(options.seed_prefix);
        engine.seed(task.seed);
        engine.attach_worker(&worker, &task);
        if (indep != nullptr) engine.set_initial_sleep(task.sleep);
        return engine.run();
      });
  return finish(total);
}

EnumerateStats enumerate_schedules_parallel(const Trace& trace,
                                            const EnumerateOptions& options,
                                            const ScheduleVisitor& visit,
                                            std::size_t num_threads) {
  return enumerate_schedules_parallel_indexed(
      trace, options,
      [&visit](std::size_t /*slot*/, const std::vector<EventId>& s) {
        return visit(s);
      },
      num_threads);
}

std::optional<std::vector<EventId>> find_schedule_where(
    const Trace& trace, const EnumerateOptions& options,
    const std::function<bool(const std::vector<EventId>&)>& pred) {
  std::optional<std::vector<EventId>> found;
  enumerate_schedules(trace, options, [&](const std::vector<EventId>& s) {
    if (pred(s)) {
      found = s;
      return false;
    }
    return true;
  });
  return found;
}

std::optional<std::vector<EventId>> find_schedule_with_order(
    const Trace& trace, EventId first, EventId second,
    const EnumerateOptions& options) {
  return find_schedule_where(
      trace, options, [&](const std::vector<EventId>& s) {
        for (EventId e : s) {
          if (e == first) return true;  // first came first
          if (e == second) return false;
        }
        return false;
      });
}

std::uint64_t count_schedules(const Trace& trace,
                              const EnumerateOptions& options) {
  return enumerate_schedules(trace, options,
                             [](const std::vector<EventId>&) { return true; })
      .schedules;
}

}  // namespace evord
