// Engine B: exhaustive enumeration of every valid complete schedule.
//
// Unlike the state-merged search (schedule_space.hpp), this engine visits
// each complete schedule individually, which is what per-execution causal
// analysis needs: two schedules through the same state can induce
// different causal orders.  The cost is exponential in general — that is
// the paper's theorem — so callers bound it with max_schedules and a time
// budget, and the tests/benches use it on deliberately small traces.
//
// Both variants run on the unified search core (search/engine.hpp).  The
// parallel variant runs the schedule tree on the work-stealing scheduler
// (search/scheduler.hpp): one initial task per first-level choice, with
// further subtrees split off adaptively whenever a worker runs dry; each
// task gets its own stepper, so the visitor must be thread-safe.
// Budgets are strict and global: max_schedules is enforced through a
// shared atomic counter, so the combined visit count never exceeds it
// even in parallel mode.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "feasible/stepper.hpp"
#include "search/search.hpp"
#include "trace/trace.hpp"

namespace evord::search {
class PackedStateRegistry;
}

namespace evord {

struct EnumerateOptions {
  StepperOptions stepper;
  /// Stop after this many complete schedules (0 = unlimited).  Strict and
  /// global, including in the parallel variant.
  std::uint64_t max_schedules = 0;
  /// Stop after this many seconds (0 = unlimited).
  double time_budget_seconds = 0.0;
  /// Stop once the search's charged memory reaches this many bytes
  /// (0 = unlimited).  Strict and global across workers; see
  /// search::SearchOptions::max_memory_bytes.
  std::uint64_t max_memory_bytes = 0;
  /// Optional caller-owned store (e.g. an exact solver's class-dedup
  /// set) attached to the search's memory accountant for the duration of
  /// the run, so its footprint counts against max_memory_bytes; detached
  /// before return.
  search::PackedStateRegistry* charge_store = nullptr;
  /// Fast-forward through this schedule prefix before enumerating (every
  /// event must be enabled in sequence).  Callers doing their own
  /// root-split parallelism seed each subtree this way.
  std::vector<EventId> seed_prefix;
  /// Work-stealing scheduler tuning (parallel variant only; never
  /// affects results).
  search::StealOptions steal;
  /// Opt-in partial-order reduction: visit only representative schedules
  /// (at least one per Mazurkiewicz trace / causal class) instead of all
  /// of them.  OFF by default because it changes this engine's contract:
  /// schedule counts drop, and per-schedule accumulation (e.g. "does any
  /// schedule order a before b") under-approximates when a/b commute.
  /// Feasibility ("does a complete schedule exist") and deadlocked-
  /// prefix reachability remain exact.  When set, SearchOptions
  /// ReductionMode::kSourceWakeup is applied with the class-preserving
  /// conditional excusals, so every complete causal class keeps at least
  /// one representative (pruned schedules are causally invisible
  /// permutations of visited ones — the set of causal classes is
  /// unchanged, tested in tests/por_test.cpp).
  bool representatives_only = false;
};

struct EnumerateStats {
  std::uint64_t schedules = 0;           ///< complete schedules visited
  std::uint64_t deadlocked_prefixes = 0; ///< maximal incomplete prefixes
  bool truncated = false;                ///< a budget stopped the search
  bool stopped_by_visitor = false;       ///< the visitor returned false
  search::SearchStats search;            ///< unified engine statistics
};

/// Called with each complete schedule; return false to stop the search.
using ScheduleVisitor =
    std::function<bool(const std::vector<EventId>& schedule)>;

/// Parallel visitor that also receives the executing worker's slot index
/// (in [0, resolved thread count)): calls with the same slot never
/// overlap, so callers can keep per-slot accumulators and merge without
/// locking.  Must be thread-safe across slots.
using IndexedScheduleVisitor = std::function<bool(
    std::size_t slot, const std::vector<EventId>& schedule)>;

EnumerateStats enumerate_schedules(const Trace& trace,
                                   const EnumerateOptions& options,
                                   const ScheduleVisitor& visit);

/// Number of initial scheduler tasks the parallel variant starts from:
/// the count of first-level enabled events after the seed prefix.
std::size_t num_enumerate_subtrees(const Trace& trace,
                                   const EnumerateOptions& options);

/// Work-stealing parallel variant; `visit` must be thread-safe.  With
/// num_threads == 0 the hardware concurrency is used; every request is
/// clamped to search::max_worker_threads().
EnumerateStats enumerate_schedules_parallel(const Trace& trace,
                                            const EnumerateOptions& options,
                                            const ScheduleVisitor& visit,
                                            std::size_t num_threads = 0);

/// As above, but the visitor also learns which worker slot delivered
/// each schedule — callers keeping per-slot accumulators merge without
/// locking.
EnumerateStats enumerate_schedules_parallel_indexed(
    const Trace& trace, const EnumerateOptions& options,
    const IndexedScheduleVisitor& visit, std::size_t num_threads = 0);

/// Convenience: the first complete schedule satisfying `pred`, if any
/// exists within the budget.
std::optional<std::vector<EventId>> find_schedule_where(
    const Trace& trace, const EnumerateOptions& options,
    const std::function<bool(const std::vector<EventId>&)>& pred);

/// Convenience: a schedule in which `first` executes before `second`.
/// This witnesses could-have-happened-before under interleaving
/// semantics.
std::optional<std::vector<EventId>> find_schedule_with_order(
    const Trace& trace, EventId first, EventId second,
    const EnumerateOptions& options = {});

/// Counts complete schedules (exactly if within budget).
std::uint64_t count_schedules(const Trace& trace,
                              const EnumerateOptions& options = {});

}  // namespace evord
