#include "feasible/schedule_space.hpp"

#include <memory>
#include <mutex>

#include "search/engine.hpp"

namespace evord {

namespace {

/// Matrix-building hooks for the memoized sweep.  The matrices are
/// per-instance (per worker in parallel mode) and OR-merged afterwards:
/// every mark is deterministic — a function of the state and the
/// completability predicate — so whichever worker expands a state
/// produces the same bits.
struct CanPrecedeHooks {
  static constexpr bool kFirstHit = false;

  std::vector<DynamicBitset>* can_precede;  ///< null = no matrix
  std::vector<DynamicBitset>* can_coexist;  ///< null = no coexistence

  bool child_allowed(EventId /*e*/, const TraceStepper& /*stepper*/) const {
    return true;
  }

  void on_child_completable(EventId e, const DynamicBitset& done_before) {
    // Every already-executed event can precede e in some complete
    // schedule that goes through this state.
    if (can_precede != nullptr) (*can_precede)[e] |= done_before;
  }

  /// For each pair of simultaneously enabled events, check that running
  /// them back-to-back (either order) still completes; the recursive
  /// explore() calls hit the memo, so this is cheap after the main DFS.
  template <class Search>
  void on_completable_state(Search& search, std::size_t depth) {
    if (can_coexist == nullptr) return;
    const std::size_t n = search.enabled_at(depth).size();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const EventId x = search.enabled_at(depth)[i];
        const EventId y = search.enabled_at(depth)[j];
        if ((*can_coexist)[x].test(y)) continue;  // already known
        if (search.pair_completable(x, y, depth + 2) ||
            search.pair_completable(y, x, depth + 2)) {
          (*can_coexist)[x].set(y);
          (*can_coexist)[y].set(x);
        }
      }
    }
  }
};

using SpaceSearch = search::MemoizedSearch<CanPrecedeHooks>;

search::SearchOptions to_search_options(const ScheduleSpaceOptions& options) {
  search::SearchOptions so;
  so.max_states = options.max_states;
  so.time_budget_seconds = options.time_budget_seconds;
  so.max_memory_bytes = options.max_memory_bytes;
  so.num_threads = options.num_threads;
  so.steal = options.steal;
  so.spill = options.spill;
  return so;
}

void init_matrices(const Trace& trace, const ScheduleSpaceOptions& options,
                   bool build_matrix, CanPrecedeResult& result) {
  if (build_matrix) {
    result.can_precede.assign(trace.num_events(),
                              DynamicBitset(trace.num_events()));
  }
  if (options.build_coexist) {
    result.can_coexist.assign(trace.num_events(),
                              DynamicBitset(trace.num_events()));
  }
}

void or_merge(std::vector<DynamicBitset>& into,
              const std::vector<DynamicBitset>& from) {
  for (std::size_t i = 0; i < into.size(); ++i) into[i] |= from[i];
}

CanPrecedeResult run_search(const Trace& trace,
                            const ScheduleSpaceOptions& options,
                            bool build_matrix) {
  search::SearchOptions so = to_search_options(options);
  if (options.representatives_only) {
    so.reduction = search::ReductionMode::kSourceWakeup;
  }
  std::unique_ptr<search::IndependenceRelation> indep;
  if (so.reduction != search::ReductionMode::kOff) {
    indep = std::make_unique<search::IndependenceRelation>(trace);
  }
  const std::size_t threads =
      search::resolve_num_threads(options.num_threads);
  std::vector<search::SearchTask> roots = search::root_tasks(
      trace, options.stepper, {}, so.reduction, indep.get(),
      /*tracker_sensitive=*/false);

  CanPrecedeResult result;
  init_matrices(trace, options, build_matrix, result);
  search::SharedContext ctx(so);

  // Warm-store reuse (ScheduleSpaceOptions::warm_memo contract): a
  // caller-owned memo may only replace the private one when its entries
  // mean exactly the same thing in every run — serial, unreduced,
  // unbudgeted, unspilled — and when a non-empty store cannot
  // short-circuit matrix marks (verdict-only sweep, or the store is
  // still empty and this run is the one that fills it).  The warm store
  // is never attached to this run's accountant: it outlives the run and
  // its bytes belong to its owner, not to this search's budget (which
  // the gate forces to "unlimited" anyway).
  const bool verdict_only = !build_matrix && !options.build_coexist;
  search::FingerprintBoolMap* const warm = options.warm_memo;
  const bool use_warm = warm != nullptr && threads <= 1 &&
                        so.reduction == search::ReductionMode::kOff &&
                        so.max_memory_bytes == 0 && !so.spill &&
                        (verdict_only || warm->size() == 0);

  if (threads <= 1 || roots.empty()) {
    std::unique_ptr<search::FingerprintBoolMap> own;
    search::FingerprintBoolMap* memo = warm;
    const std::uint64_t preexisting = use_warm ? warm->size() : 0;
    if (!use_warm) {
      own = std::make_unique<search::FingerprintBoolMap>(
          search::make_store_config(trace, so, 1, /*synchronized=*/false));
      own->set_accountant(&ctx.memory);
      memo = own.get();
    }
    SpaceSearch engine(
        trace, options.stepper, so, &ctx, memo,
        CanPrecedeHooks{build_matrix ? &result.can_precede : nullptr,
                        options.build_coexist ? &result.can_coexist
                                              : nullptr},
        indep.get());
    result.feasible_nonempty = engine.explore(0);
    result.search = engine.stats();
    result.search.memo_bytes = memo->bytes();
    result.search.spilled_bytes = memo->spilled_bytes();
    result.search.spill_events = memo->spill_events();
    result.search.shard_sizes = memo->shard_sizes();
    // With a warm store, memo->size() counts entries from earlier runs
    // too; report only the states THIS run added, so a run through a
    // still-empty warm store is byte-identical to a private-memo run.
    result.states_visited =
        static_cast<std::size_t>(memo->size() - preexisting);
    result.truncated = result.search.truncated;
    return result;
  }

  // Work-stealing warm-up: tasks warm the shared memo (building
  // per-worker matrices), then the main thread finishes from the root —
  // its children all hit the memo, so root-level marks and the
  // feasibility verdict are computed deterministically.  Matrix slots
  // are per worker, not per task: tasks on the same worker run
  // sequentially, so the slot is never written concurrently.
  search::FingerprintBoolMap memo(
      search::make_store_config(trace, so, 4 * threads));
  memo.set_accountant(&ctx.memory);
  std::vector<CanPrecedeResult> locals(threads);
  for (CanPrecedeResult& local : locals) {
    init_matrices(trace, options, build_matrix, local);
  }
  const search::SearchStats worker_stats = search::run_work_stealing(
      std::move(roots), threads, so.steal.seed, ctx,
      [&](const search::SearchTask& task, search::WorkerHandle& worker) {
        CanPrecedeResult& local = locals[worker.worker_id()];
        SpaceSearch engine(
            trace, options.stepper, so, &ctx, &memo,
            CanPrecedeHooks{build_matrix ? &local.can_precede : nullptr,
                            options.build_coexist ? &local.can_coexist
                                                  : nullptr},
            indep.get());
        engine.seed(task.seed);
        engine.attach_worker(&worker, &task);
        if (indep != nullptr) engine.set_initial_sleep(task.sleep);
        engine.explore(0);
        return engine.take_stats();
      });
  for (const CanPrecedeResult& local : locals) {
    if (build_matrix) or_merge(result.can_precede, local.can_precede);
    if (options.build_coexist) or_merge(result.can_coexist, local.can_coexist);
  }

  SpaceSearch engine(
      trace, options.stepper, so, &ctx, &memo,
      CanPrecedeHooks{build_matrix ? &result.can_precede : nullptr,
                      options.build_coexist ? &result.can_coexist : nullptr},
      indep.get());
  result.feasible_nonempty = engine.explore(0);
  result.search = engine.stats();
  result.search.merge(worker_stats);
  result.search.memo_bytes = memo.bytes();
  result.search.spilled_bytes = memo.spilled_bytes();
  result.search.spill_events = memo.spill_events();
  result.search.shard_sizes = memo.shard_sizes();
  result.states_visited = static_cast<std::size_t>(memo.size());
  result.truncated = result.search.truncated;
  return result;
}

}  // namespace

std::uint64_t CanPrecedeResult::approx_bytes() const {
  std::uint64_t bytes = sizeof(CanPrecedeResult) + search.approx_bytes();
  bytes += can_precede.capacity() * sizeof(DynamicBitset);
  for (const DynamicBitset& row : can_precede) {
    bytes += row.word_count() * sizeof(std::uint64_t);
  }
  bytes += can_coexist.capacity() * sizeof(DynamicBitset);
  for (const DynamicBitset& row : can_coexist) {
    bytes += row.word_count() * sizeof(std::uint64_t);
  }
  return bytes;
}

CanPrecedeResult compute_can_precede(const Trace& trace,
                                     const ScheduleSpaceOptions& options) {
  return run_search(trace, options, /*build_matrix=*/true);
}

bool has_feasible_schedule(const Trace& trace,
                           const ScheduleSpaceOptions& options) {
  return run_search(trace, options, /*build_matrix=*/false).feasible_nonempty;
}

CanPrecedeResult compute_feasibility(const Trace& trace,
                                     const ScheduleSpaceOptions& options) {
  return run_search(trace, options, /*build_matrix=*/false);
}

std::unique_ptr<search::FingerprintBoolMap> make_feasibility_memo(
    const Trace& trace, const ScheduleSpaceOptions& options) {
  const search::SearchOptions so = to_search_options(options);
  return std::make_unique<search::FingerprintBoolMap>(
      search::make_store_config(trace, so, 1, /*synchronized=*/false));
}

namespace {

/// Early-exit pruning for can_precede_pair: explore only prefixes in
/// which `second` never runs while `first` is pending; succeed at the
/// first complete schedule reached.
struct PairHooks {
  static constexpr bool kFirstHit = true;

  EventId first;
  EventId second;

  bool child_allowed(EventId e, const TraceStepper& stepper) const {
    return !(e == second && !stepper.executed(first));  // prune
  }
  void on_child_completable(EventId /*e*/,
                            const DynamicBitset& /*done_before*/) {}
  template <class Search>
  void on_completable_state(Search& /*search*/, std::size_t /*depth*/) {}
};

}  // namespace

PairQueryResult can_precede_pair(const Trace& trace, EventId first,
                                 EventId second,
                                 const ScheduleSpaceOptions& options) {
  // Never reduced (representatives_only is deliberately ignored): the
  // query's verdict is an exact "does such a schedule exist", and the
  // pruning hooks already restrict the walk.
  const search::SearchOptions so = to_search_options(options);
  search::SharedContext ctx(so);
  search::FingerprintBoolMap memo(
      search::make_store_config(trace, so, 1, /*synchronized=*/false));
  memo.set_accountant(&ctx.memory);
  search::MemoizedSearch<PairHooks> engine(trace, options.stepper, so, &ctx,
                                           &memo, PairHooks{first, second});
  PairQueryResult result;
  result.possible = engine.explore(0);
  result.search = engine.stats();
  result.search.memo_bytes = memo.bytes();
  result.search.spilled_bytes = memo.spilled_bytes();
  result.search.spill_events = memo.spill_events();
  result.search.shard_sizes = memo.shard_sizes();
  result.states_visited = static_cast<std::size_t>(memo.size());
  result.truncated = result.search.truncated;
  return result;
}

}  // namespace evord
