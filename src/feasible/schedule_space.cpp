#include "feasible/schedule_space.hpp"

#include <unordered_map>

#include "util/timer.hpp"

namespace evord {

namespace {

struct KeyHash {
  std::size_t operator()(const std::vector<std::uint64_t>& key) const {
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint64_t w : key) {
      h ^= w;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

class Search {
 public:
  Search(const Trace& trace, const ScheduleSpaceOptions& options,
         bool build_matrix)
      : options_(options),
        stepper_(trace, options.stepper),
        deadline_(options.time_budget_seconds),
        build_matrix_(build_matrix) {
    if (build_matrix_) {
      result_.can_precede.assign(trace.num_events(),
                                 DynamicBitset(trace.num_events()));
    }
    if (options.build_coexist) {
      result_.can_coexist.assign(trace.num_events(),
                                 DynamicBitset(trace.num_events()));
    }
  }

  CanPrecedeResult run() {
    result_.feasible_nonempty = explore();
    result_.states_visited = memo_.size();
    return std::move(result_);
  }

 private:
  bool out_of_budget() {
    if (options_.max_states != 0 && memo_.size() >= options_.max_states) {
      result_.truncated = true;
      return true;
    }
    if ((++budget_poll_ & 1023u) == 0 && deadline_.expired()) {
      result_.truncated = true;
      return true;
    }
    return false;
  }

  /// True iff the current state can be extended to a complete schedule.
  /// Memoized on the stepper's state key; the state graph is acyclic.
  bool explore() {
    if (stepper_.complete()) return true;
    stepper_.encode_key(key_scratch_);
    if (const auto it = memo_.find(key_scratch_); it != memo_.end()) {
      return it->second;
    }
    if (out_of_budget()) return false;  // unsound once truncated; flagged
    const std::vector<std::uint64_t> key = key_scratch_;

    bool completable = false;
    enabled_stack_.emplace_back();
    stepper_.enabled_events(enabled_stack_.back());
    // Iterate by index: recursion reuses enabled_stack_.
    for (std::size_t i = 0; i < enabled_stack_.back().size(); ++i) {
      const EventId e = enabled_stack_.back()[i];
      const TraceStepper::Undo u = stepper_.apply(e);
      const bool child_ok = explore();
      stepper_.undo(u);
      if (child_ok) {
        completable = true;
        if (build_matrix_) {
          // Every already-executed event can precede e in some complete
          // schedule that goes through this state.
          result_.can_precede[e] |= stepper_.done_bits();
        }
      }
    }
    if (options_.build_coexist && completable) {
      mark_coexistence();
    }
    enabled_stack_.pop_back();
    memo_.emplace(key, completable);
    return completable;
  }

  /// For each pair of simultaneously enabled events, check that running
  /// them back-to-back (either order) still completes; the recursive
  /// explore() calls hit the memo, so this is cheap after the main DFS.
  void mark_coexistence() {
    const std::vector<EventId>& enabled = enabled_stack_.back();
    for (std::size_t i = 0; i < enabled.size(); ++i) {
      for (std::size_t j = i + 1; j < enabled.size(); ++j) {
        const EventId x = enabled[i];
        const EventId y = enabled[j];
        if (result_.can_coexist[x].test(y)) continue;  // already known
        if (pair_completable(x, y) || pair_completable(y, x)) {
          result_.can_coexist[x].set(y);
          result_.can_coexist[y].set(x);
        }
      }
    }
  }

  bool pair_completable(EventId first, EventId second) {
    const TraceStepper::Undo u1 = stepper_.apply(first);
    bool ok = false;
    if (stepper_.enabled(second)) {
      const TraceStepper::Undo u2 = stepper_.apply(second);
      ok = explore();
      stepper_.undo(u2);
    }
    stepper_.undo(u1);
    return ok;
  }

  const ScheduleSpaceOptions& options_;
  TraceStepper stepper_;
  Deadline deadline_;
  bool build_matrix_;
  CanPrecedeResult result_;
  std::unordered_map<std::vector<std::uint64_t>, bool, KeyHash> memo_;
  std::vector<std::uint64_t> key_scratch_;
  std::vector<std::vector<EventId>> enabled_stack_;
  std::uint32_t budget_poll_ = 0;
};

}  // namespace

CanPrecedeResult compute_can_precede(const Trace& trace,
                                     const ScheduleSpaceOptions& options) {
  return Search(trace, options, /*build_matrix=*/true).run();
}

bool has_feasible_schedule(const Trace& trace,
                           const ScheduleSpaceOptions& options) {
  return Search(trace, options, /*build_matrix=*/false).run()
      .feasible_nonempty;
}

namespace {

/// Early-exit DFS for can_precede_pair: explore only prefixes in which
/// `second` never runs while `first` is pending; succeed at the first
/// complete schedule reached.  Memoized on state keys (a state that
/// failed to complete under this pruning once will fail again).
class PairSearch {
 public:
  PairSearch(const Trace& trace, EventId first, EventId second,
             const ScheduleSpaceOptions& options)
      : options_(options),
        stepper_(trace, options.stepper),
        first_(first),
        second_(second),
        deadline_(options.time_budget_seconds) {}

  PairQueryResult run() {
    result_.possible = explore();
    result_.states_visited = memo_.size();
    return result_;
  }

 private:
  bool out_of_budget() {
    if (options_.max_states != 0 && memo_.size() >= options_.max_states) {
      result_.truncated = true;
      return true;
    }
    if ((++budget_poll_ & 1023u) == 0 && deadline_.expired()) {
      result_.truncated = true;
      return true;
    }
    return false;
  }

  bool explore() {
    if (stepper_.complete()) return true;
    stepper_.encode_key(key_scratch_);
    if (const auto it = memo_.find(key_scratch_); it != memo_.end()) {
      return it->second;
    }
    if (out_of_budget()) return false;
    const std::vector<std::uint64_t> key = key_scratch_;

    bool found = false;
    enabled_stack_.emplace_back();
    stepper_.enabled_events(enabled_stack_.back());
    for (std::size_t i = 0;
         !found && i < enabled_stack_.back().size(); ++i) {
      const EventId e = enabled_stack_.back()[i];
      if (e == second_ && !stepper_.executed(first_)) continue;  // prune
      const TraceStepper::Undo u = stepper_.apply(e);
      found = explore();
      stepper_.undo(u);
    }
    enabled_stack_.pop_back();
    memo_.emplace(key, found);
    return found;
  }

  const ScheduleSpaceOptions& options_;
  TraceStepper stepper_;
  EventId first_;
  EventId second_;
  Deadline deadline_;
  PairQueryResult result_;
  std::unordered_map<std::vector<std::uint64_t>, bool, KeyHash> memo_;
  std::vector<std::uint64_t> key_scratch_;
  std::vector<std::vector<EventId>> enabled_stack_;
  std::uint32_t budget_poll_ = 0;
};

}  // namespace

PairQueryResult can_precede_pair(const Trace& trace, EventId first,
                                 EventId second,
                                 const ScheduleSpaceOptions& options) {
  return PairSearch(trace, first, second, options).run();
}

}  // namespace evord
