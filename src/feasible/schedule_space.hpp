// Engine A: memoized search over the *state space* of valid schedules.
//
// The states of a trace under partial replay form a DAG (every step
// executes one more event), so a memoized DFS visits each distinct state
// once even though the number of schedules through it is exponential.
// This engine answers interleaving-semantics questions:
//
//   * is F(P) non-empty (does any valid complete schedule exist)?
//   * for every ordered pair (a, b): does some valid complete schedule
//     run a before b?  ("can-precede", the could-have-happened-before
//     relation under interleaving semantics; its complement transposed is
//     must-have-happened-before).
//
// The sweep marks can_precede[b] |= done(s) at every completable state s
// from which b can execute into a completable successor — a bit-parallel
// union, so the whole matrix costs one pass over the state space.
//
// The state space itself is exponential in the worst case (that is
// Theorem 1); max_states and the time budget bound the work, and results
// are flagged `truncated` when the bound was hit (can_precede is then an
// under-approximation).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "feasible/stepper.hpp"
#include "search/search.hpp"
#include "trace/trace.hpp"
#include "util/dynamic_bitset.hpp"

namespace evord::search {
class FingerprintBoolMap;
}  // namespace evord::search

namespace evord {

struct ScheduleSpaceOptions {
  StepperOptions stepper;
  /// Abort after visiting this many distinct states (0 = unlimited).
  std::size_t max_states = 4'000'000;
  /// Abort after this many seconds (0 = unlimited).
  double time_budget_seconds = 0.0;
  /// Abort once the memo store (plus scheduler task descriptors) has
  /// charged this many bytes (0 = unlimited).  Strict and global across
  /// workers; see search::SearchOptions::max_memory_bytes.
  std::uint64_t max_memory_bytes = 0;
  /// Spill cold dedup/memo shards to an mmap-backed temp file when the
  /// byte budget nears exhaustion instead of stopping with
  /// StopReason::kMemory; results stay bit-identical.  Only meaningful
  /// with max_memory_bytes set.  See search::SearchOptions::spill.
  bool spill = false;
  /// Also compute the coexistence matrix: can_coexist(x, y) iff some
  /// completable state has x and y simultaneously enabled and executing
  /// them back-to-back (in some order) still completes.  This is the
  /// operational "could have run at the same instant" relation — for
  /// conflicting accesses, a simultaneous-access race.  Adds O(p^2)
  /// memo lookups per state.
  bool build_coexist = false;
  /// Worker count for the memoized sweep: 1 = serial (the default),
  /// 0 = hardware concurrency; clamped to search::max_worker_threads().
  /// Workers run warming tasks on the work-stealing scheduler and share
  /// one memo table; results are identical to the serial sweep (see
  /// docs/SEARCH.md).
  std::size_t num_threads = 1;
  /// Work-stealing scheduler tuning (never affects results).
  search::StealOptions steal;
  /// Opt-in partial-order reduction for the sweep.  OFF by default
  /// because it changes the contract: the feasibility verdict stays
  /// exact (sleep + source sets preserve terminal reachability), but
  /// can_precede / can_coexist become under-approximations — marks come
  /// only from states and children the reduced walk expands.  Ignored by
  /// can_precede_pair (the pair query's verdict must stay exact).  When
  /// set, SearchOptions ReductionMode::kSourceWakeup is applied with the
  /// stepper-state (untracked) dynamic-independence excusals.
  bool representatives_only = false;
  /// Caller-owned completability memo that survives across sweeps on the
  /// same trace (service layer: AnalysisSession keeps one per trace, so
  /// a repeated feasibility query answers from the root memo hit without
  /// expanding a single state).  Create it with make_feasibility_memo()
  /// from the SAME options.  The engine engages it only when reuse is
  /// provably sound: serial, unreduced, no byte budget / spill, and
  /// either a verdict-only sweep or a still-empty store — matrix marks
  /// are emitted per *expanded* child, so a warm (non-empty) store would
  /// short-circuit them and leave matrix bits unset.  Otherwise a fresh
  /// private memo is used and this pointer is untouched.  Never shared
  /// with can_precede_pair (its pruned walk memoizes a different
  /// predicate).  nullptr (the default) = always private.
  search::FingerprintBoolMap* warm_memo = nullptr;
};

struct CanPrecedeResult {
  /// True iff at least one valid complete schedule exists.
  bool feasible_nonempty = false;
  /// True iff a budget was exhausted; can_precede is then partial.
  bool truncated = false;
  std::size_t states_visited = 0;
  /// can_precede[b].test(a) == some valid complete schedule runs a
  /// strictly before b.
  std::vector<DynamicBitset> can_precede;
  /// Only with options.build_coexist: symmetric simultaneous-enabledness
  /// relation (see ScheduleSpaceOptions).
  std::vector<DynamicBitset> can_coexist;
  /// Unified engine statistics (dedup hits, memo bytes, stop reason...).
  search::SearchStats search;

  /// Approximate resident bytes of the whole result (matrices plus
  /// search-stats vectors); the unit the service result cache charges
  /// per cached CanPrecedeResult.
  std::uint64_t approx_bytes() const;
};

/// Full can-precede sweep (see file comment).
CanPrecedeResult compute_can_precede(const Trace& trace,
                                     const ScheduleSpaceOptions& options = {});

/// Just the F(P) != empty-set check (same search, no matrix marking).
bool has_feasible_schedule(const Trace& trace,
                           const ScheduleSpaceOptions& options = {});

/// The F(P) != empty-set check with full provenance (truncation flag,
/// SearchStats) — the cacheable form of has_feasible_schedule().  The
/// matrices of the returned result stay empty.
CanPrecedeResult compute_feasibility(const Trace& trace,
                                     const ScheduleSpaceOptions& options = {});

/// A completability memo configured exactly as the sweep engine would
/// configure its private store for `options` — pass it back in via
/// ScheduleSpaceOptions::warm_memo to reuse it across sweeps on one
/// trace (see the warm_memo contract above).
std::unique_ptr<search::FingerprintBoolMap> make_feasibility_memo(
    const Trace& trace, const ScheduleSpaceOptions& options = {});

/// Targeted single-pair query: does some valid complete schedule run
/// `first` strictly before `second`?  (Interleaving could-have-happened-
/// before for one pair.)  Prunes every branch that executes `second`
/// while `first` is pending and stops at the first witness, so it is
/// usually far cheaper than the full matrix sweep.
struct PairQueryResult {
  bool possible = false;
  bool truncated = false;  ///< budget hit; `possible == false` is then unproven
  std::size_t states_visited = 0;
  search::SearchStats search;  ///< unified engine statistics
};

PairQueryResult can_precede_pair(const Trace& trace, EventId first,
                                 EventId second,
                                 const ScheduleSpaceOptions& options = {});

}  // namespace evord
