#include "feasible/feasibility.hpp"

#include "trace/builder.hpp"
#include "util/check.hpp"

namespace evord {

ScheduleCheck check_schedule(const Trace& trace,
                             const std::vector<EventId>& schedule,
                             StepperOptions options) {
  if (schedule.size() != trace.num_events()) {
    return {false, "schedule has " + std::to_string(schedule.size()) +
                       " entries for " + std::to_string(trace.num_events()) +
                       " events (F1)"};
  }
  std::vector<bool> seen(trace.num_events(), false);
  for (EventId e : schedule) {
    if (e >= trace.num_events() || seen[e]) {
      return {false, "schedule is not a permutation of E (F1)"};
    }
    seen[e] = true;
  }
  TraceStepper stepper(trace, options);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (!stepper.enabled(schedule[i])) {
      return {false, "event " + describe(trace.event(schedule[i])) +
                         " is not executable at position " +
                         std::to_string(i)};
    }
    stepper.apply(schedule[i]);
  }
  return {true, {}};
}

Trace reorder_trace(const Trace& trace, const std::vector<EventId>& schedule,
                    std::vector<EventId>* old_to_new) {
  const ScheduleCheck check = check_schedule(trace, schedule);
  EVORD_CHECK(check.valid, "reorder_trace: " << check.reason);

  TraceBuilder b;
  for (const SemaphoreInfo& s : trace.semaphores()) {
    if (s.binary) {
      b.binary_semaphore(s.name, s.initial);
    } else {
      b.semaphore(s.name, s.initial);
    }
  }
  for (const EventVarInfo& v : trace.event_vars()) {
    b.event_var(v.name, v.initially_posted);
  }
  for (const std::string& v : trace.variables()) b.variable(v);
  for (ProcId p = 1; p < trace.num_processes(); ++p) b.add_process();

  std::vector<EventId> mapping(trace.num_events(), kNoEvent);
  for (EventId old_id : schedule) {
    const Event& e = trace.event(old_id);
    EventId new_id = kNoEvent;
    switch (e.kind) {
      case EventKind::kCompute:
        new_id = b.compute(e.process, e.label, e.reads, e.writes);
        break;
      case EventKind::kSemP:
        new_id = b.sem_p(e.process, e.object, e.label);
        break;
      case EventKind::kSemV:
        new_id = b.sem_v(e.process, e.object, e.label);
        break;
      case EventKind::kPost:
        new_id = b.post(e.process, e.object, e.label);
        break;
      case EventKind::kWait:
        new_id = b.wait(e.process, e.object, e.label);
        break;
      case EventKind::kClear:
        new_id = b.clear(e.process, e.object, e.label);
        break;
      case EventKind::kFork:
        new_id = b.fork_existing(e.process, e.object);
        break;
      case EventKind::kJoin:
        new_id = b.join(e.process, e.object);
        break;
    }
    mapping[old_id] = new_id;
  }
  if (old_to_new != nullptr) *old_to_new = mapping;
  return b.build();
}

}  // namespace evord
