// Feasibility checking (paper §3.1).
//
// A feasible program execution for P is any valid execution with the same
// events (F1), obeying the model axioms (F2) and preserving P's
// shared-data dependences (F3).  `check_schedule` decides whether one
// candidate schedule qualifies — an independent validator used to
// cross-check both enumeration engines — and `reorder_trace` materializes
// the feasible execution P' = <E, T', D'> induced by a schedule.
#pragma once

#include <string>
#include <vector>

#include "feasible/stepper.hpp"
#include "trace/trace.hpp"

namespace evord {

struct ScheduleCheck {
  bool valid = false;
  std::string reason;  ///< empty when valid; diagnostic otherwise
};

/// Replays `schedule` against the validity rules (F1: it must be a
/// permutation of E; F2: program order, fork/join, semaphore and
/// event-variable semantics; F3: D edges, unless disabled in `options`).
ScheduleCheck check_schedule(const Trace& trace,
                             const std::vector<EventId>& schedule,
                             StepperOptions options = {});

/// Builds the feasible program execution whose observed order is
/// `schedule`.  Events are renumbered by schedule position; if
/// `old_to_new` is non-null it receives the id mapping.  The new trace's
/// D is recomputed from the read/write sets under the new order, so it is
/// the execution's own dependence relation D' (a superset-in-spirit of D:
/// every edge of D maps to an edge of D' because the schedule was
/// validated against D).
Trace reorder_trace(const Trace& trace, const std::vector<EventId>& schedule,
                    std::vector<EventId>* old_to_new = nullptr);

}  // namespace evord
