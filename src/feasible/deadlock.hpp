// Could-have-deadlocked analysis.
//
// A trace is an observed COMPLETED execution, but other feasible
// schedules of the same events may wedge: a reachable state with
// unexecuted events and nothing enabled (a Wait whose posts were all
// cleared, a P whose tokens were consumed by rival P's, a join whose
// child is stuck...).  The paper notes this for its event-style gadgets
// ("Although these processes can deadlock").  This module decides
// whether any feasible schedule prefix gets stuck, with a witness.
//
// Implemented as a memoized search over the same state space as Engine A
// (exponential in the worst case, like everything interesting here).
#pragma once

#include <cstdint>
#include <vector>

#include "feasible/stepper.hpp"
#include "search/search.hpp"
#include "trace/trace.hpp"

namespace evord {

struct DeadlockOptions {
  StepperOptions stepper;
  std::size_t max_states = 4'000'000;  ///< 0 = unlimited
  double time_budget_seconds = 0.0;    ///< 0 = unlimited
  /// Byte budget over the visited/stuck stores, witness buffers and
  /// queued task descriptors (0 = unlimited).  Strict and global across
  /// workers; see search::SearchOptions::max_memory_bytes.
  std::uint64_t max_memory_bytes = 0;
  /// Spill cold dedup/memo shards to an mmap-backed temp file when the
  /// byte budget nears exhaustion instead of stopping with
  /// StopReason::kMemory; results stay bit-identical.  Only meaningful
  /// with max_memory_bytes set.  See search::SearchOptions::spill.
  bool spill = false;
  /// Worker count: 1 = serial (default), 0 = hardware concurrency;
  /// clamped to search::max_worker_threads().  The parallel search runs
  /// on the work-stealing scheduler and returns bit-identical reports
  /// (verdict, witness, counts) under any split/steal pattern; see
  /// docs/SEARCH.md for the argument.
  std::size_t num_threads = 1;
  /// Work-stealing scheduler tuning (never affects results).  This
  /// engine's tasks deliberately re-explore states their regions share
  /// (witness determinism), so a max_split_depth of 0 is replaced by a
  /// small default cap rather than unlimited splitting.
  search::StealOptions steal;
  /// Partial-order reduction (search/independence.hpp).  ON by default
  /// (kSourceWakeup — source sets + wakeup frames + stepper-state
  /// dynamic independence): the reduction preserves every reachable
  /// transition-less state, so the verdict and the distinct-stuck-state
  /// count are exact and the witness is a valid stuck prefix (though
  /// not necessarily the globally shortest one — turn reduction off for
  /// that).  Reduced witnesses are canonicalized after the search: the
  /// prefix is re-permuted to the greedy smallest-event-first order over
  /// its own event set when that permutation provably reaches the same
  /// stuck state, so the reported witness does not depend on WHICH
  /// equivalent interleaving the reduced walk happened to explore.
  search::ReductionMode reduction = search::ReductionMode::kSourceWakeup;
};

struct DeadlockReport {
  /// True iff some valid schedule prefix reaches a stuck state.
  bool can_deadlock = false;
  /// A shortest-found schedule prefix ending in a stuck state.
  std::vector<EventId> witness_prefix;
  /// Number of distinct stuck states encountered.
  std::uint64_t stuck_states = 0;
  std::size_t states_visited = 0;
  /// True iff a budget stopped the search (result may miss deadlocks).
  bool truncated = false;
  search::SearchStats search;  ///< unified engine statistics

  /// Approximate resident bytes (witness + search-stats vectors); the
  /// unit the service result cache charges per cached DeadlockReport.
  std::uint64_t approx_bytes() const;
};

DeadlockReport analyze_deadlocks(const Trace& trace,
                                 const DeadlockOptions& options = {});

}  // namespace evord
