#include "feasible/stepper.hpp"

#include "util/check.hpp"
#include "util/dynamic_bitset.hpp"
#include "util/hash.hpp"

namespace evord {

namespace {
// Independent Zobrist families for the three encode_key() components.
constexpr std::uint64_t kPositionSalt = 0xa0761d6478bd642full;
constexpr std::uint64_t kPostedSalt = 0xe7037ed1a0b428dbull;
constexpr std::uint64_t kBinaryCountSalt = 0x8ebc6af09c88c6e3ull;
}  // namespace

TraceStepper::TraceStepper(const Trace& trace, StepperOptions options)
    : trace_(&trace),
      options_(options),
      positions_(trace.num_processes(), 0),
      posted_(trace.event_vars().size()),
      done_(trace.num_events()) {
  counts_.reserve(trace.semaphores().size());
  p_executed_.assign(trace.semaphores().size(), 0);
  binary_.reserve(trace.semaphores().size());
  for (const SemaphoreInfo& s : trace.semaphores()) {
    counts_.push_back(s.initial);
    binary_.push_back(s.binary);
  }
  for (std::size_t i = 0; i < trace.event_vars().size(); ++i) {
    posted_.set(i, trace.event_vars()[i].initially_posted);
  }
  if (options_.respect_dependences) {
    dep_preds_.resize(trace.num_events());
    for (const auto& [a, b] : trace.dependences()) dep_preds_[b].push_back(a);
  }
  layout_ = search::PackedStateLayout(trace);
  layout_.encode(positions_, posted_, counts_, binary_, packed_);
  // One Zobrist term per component of the current value; apply/undo swap
  // terms in and out by XOR, so equal states always hash equal.
  state_hash_ = DynamicBitset::kHashSeed;
  for (ProcId p = 0; p < trace.num_processes(); ++p) {
    state_hash_ ^= hash_mix(kPositionSalt, p, 0);
  }
  for (std::size_t v = 0; v < trace.event_vars().size(); ++v) {
    state_hash_ ^= hash_mix(kPostedSalt, v, posted_.test(v) ? 1 : 0);
  }
  for (std::size_t s = 0; s < counts_.size(); ++s) {
    if (binary_[s]) {
      state_hash_ ^= hash_mix(kBinaryCountSalt, s, counts_[s] & 1);
    }
  }
}

EventId TraceStepper::next_of(ProcId p) const {
  const auto po = trace_->program_order(p);
  return positions_[p] < po.size() ? po[positions_[p]] : kNoEvent;
}

bool TraceStepper::enabled(EventId id) const {
  const Event& e = trace_->event(id);
  if (next_of(e.process) != id) return false;
  // A process's first event needs its creating fork to have executed.
  if (e.index_in_process == 0) {
    const EventId creator = trace_->process(e.process).creating_fork;
    if (creator != kNoEvent && !done_.test(creator)) return false;
  }
  switch (e.kind) {
    case EventKind::kSemP:
      if (counts_[e.object] <= 0) return false;
      break;
    case EventKind::kWait:
      if (!posted_.test(e.object)) return false;
      break;
    case EventKind::kJoin: {
      const auto child_po = trace_->program_order(e.object);
      if (positions_[e.object] < child_po.size()) return false;
      // An empty forked process still requires its fork to have run for
      // the join to make sense; without the fork the child never existed.
      const EventId creator = trace_->process(e.object).creating_fork;
      if (child_po.empty() && creator != kNoEvent && !done_.test(creator)) {
        return false;
      }
      break;
    }
    default:
      break;
  }
  if (options_.respect_dependences) {
    for (EventId pred : dep_preds_[id]) {
      if (!done_.test(pred)) return false;
    }
  }
  return true;
}

void TraceStepper::enabled_events(std::vector<EventId>& out) const {
  out.clear();
  for (ProcId p = 0; p < trace_->num_processes(); ++p) {
    const EventId e = next_of(p);
    if (e != kNoEvent && enabled(e)) out.push_back(e);
  }
}

TraceStepper::Undo TraceStepper::apply(EventId id) {
  EVORD_DCHECK(enabled(id), "apply of disabled event " << id);
  const Event& e = trace_->event(id);
  Undo u;
  u.event = id;
  switch (e.kind) {
    case EventKind::kSemP:
      u.old_count = counts_[e.object];
      --counts_[e.object];
      ++p_executed_[e.object];
      if (binary_[e.object]) {
        state_hash_ ^= hash_mix(kBinaryCountSalt, e.object, u.old_count & 1) ^
                       hash_mix(kBinaryCountSalt, e.object,
                                counts_[e.object] & 1);
        // A semaphore op changes the count by one: the parity flips.
        search::PackedStateLayout::toggle_bit(packed_.data(),
                                              layout_.binary_offset(e.object));
      }
      break;
    case EventKind::kSemV:
      u.old_count = counts_[e.object];
      if (!(binary_[e.object] && counts_[e.object] == 1)) {
        ++counts_[e.object];
        if (binary_[e.object]) {
          state_hash_ ^=
              hash_mix(kBinaryCountSalt, e.object, u.old_count & 1) ^
              hash_mix(kBinaryCountSalt, e.object, counts_[e.object] & 1);
          search::PackedStateLayout::toggle_bit(
              packed_.data(), layout_.binary_offset(e.object));
        }
      }
      break;
    case EventKind::kPost:
      u.old_posted = posted_.test(e.object);
      posted_.set(e.object);
      if (!u.old_posted) {
        state_hash_ ^= hash_mix(kPostedSalt, e.object, 0) ^
                       hash_mix(kPostedSalt, e.object, 1);
        search::PackedStateLayout::toggle_bit(packed_.data(),
                                              layout_.posted_offset(e.object));
      }
      break;
    case EventKind::kClear:
      u.old_posted = posted_.test(e.object);
      posted_.reset(e.object);
      if (u.old_posted) {
        state_hash_ ^= hash_mix(kPostedSalt, e.object, 1) ^
                       hash_mix(kPostedSalt, e.object, 0);
        search::PackedStateLayout::toggle_bit(packed_.data(),
                                              layout_.posted_offset(e.object));
      }
      break;
    default:
      break;
  }
  state_hash_ ^= hash_mix(kPositionSalt, e.process, positions_[e.process]) ^
                 hash_mix(kPositionSalt, e.process,
                          positions_[e.process] + 1);
  ++positions_[e.process];
  layout_.set_position(packed_.data(), e.process, positions_[e.process]);
  done_.set(id);
  ++executed_count_;
  return u;
}

void TraceStepper::undo(const Undo& u) {
  const Event& e = trace_->event(u.event);
  switch (e.kind) {
    case EventKind::kSemP:
    case EventKind::kSemV:
      if (e.kind == EventKind::kSemP) --p_executed_[e.object];
      if (binary_[e.object] && counts_[e.object] != u.old_count) {
        state_hash_ ^=
            hash_mix(kBinaryCountSalt, e.object, counts_[e.object] & 1) ^
            hash_mix(kBinaryCountSalt, e.object, u.old_count & 1);
        search::PackedStateLayout::toggle_bit(packed_.data(),
                                              layout_.binary_offset(e.object));
      }
      counts_[e.object] = u.old_count;
      break;
    case EventKind::kPost:
    case EventKind::kClear:
      if (posted_.test(e.object) != u.old_posted) {
        state_hash_ ^=
            hash_mix(kPostedSalt, e.object, posted_.test(e.object) ? 1 : 0) ^
            hash_mix(kPostedSalt, e.object, u.old_posted ? 1 : 0);
        search::PackedStateLayout::toggle_bit(packed_.data(),
                                              layout_.posted_offset(e.object));
      }
      posted_.set(e.object, u.old_posted);
      break;
    default:
      break;
  }
  state_hash_ ^= hash_mix(kPositionSalt, e.process, positions_[e.process]) ^
                 hash_mix(kPositionSalt, e.process,
                          positions_[e.process] - 1);
  --positions_[e.process];
  layout_.set_position(packed_.data(), e.process, positions_[e.process]);
  done_.reset(u.event);
  --executed_count_;
}

void TraceStepper::encode_key(std::vector<std::uint64_t>& out) const {
  layout_.to_legacy_key(packed_.data(), out);
}

}  // namespace evord
