// The single-semaphore hardness remark (paper §5.1):
//
//   "the above results can be shown to hold for a program execution that
//    uses a single counting semaphore by a reduction from the problem of
//    sequencing to minimize maximum cumulative cost [Garey & Johnson]."
//
// SMMCC: given tasks with integer costs (positive = consumes resource,
// negative = releases) and precedence constraints, does a linear
// extension exist whose every prefix cost stays <= a budget K?
// NP-complete (G&J problem SS7).
//
// The reduction here builds a program with EXACTLY ONE semaphore:
//   * the semaphore starts at K; a task of cost c > 0 performs c P
//     operations, a task of cost c < 0 performs -c V operations — so a
//     prefix is schedulable without help iff its cumulative cost never
//     exceeds K;
//   * precedence edges are enforced with join operations (no extra
//     semaphores needed);
//   * process Pa runs "a: skip" and then floods the semaphore with
//     enough V operations to unblock anything (the pass-2 relief valve);
//   * process Pb joins every task process and then runs "b: skip".
//
// Consequently  b CHB a  iff the tasks can all complete without the
// relief valve  iff the SMMCC instance is a YES instance; equivalently
// a MHB b iff it is a NO instance.  Deciding the ordering relations on
// single-semaphore executions therefore inherits SMMCC's hardness.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "reductions/reduction.hpp"

namespace evord {

struct SmmccTask {
  int cost = 0;  ///< > 0 consumes budget, < 0 releases
  /// Indices of tasks that must complete before this one starts.
  std::vector<std::size_t> predecessors;
};

struct SmmccInstance {
  std::vector<SmmccTask> tasks;
  int budget = 0;  ///< K >= 0

  /// Total positive cost; the relief valve floods this many tokens.
  int total_positive_cost() const;
};

/// Exact decision by DFS with memoization on (done-set), feasible for
/// ~20 tasks.  Returns true iff a valid sequencing exists.
bool solve_smmcc(const SmmccInstance& instance);

/// Enumeration-free witness: one valid task order, if any.
std::optional<std::vector<std::size_t>> smmcc_witness(
    const SmmccInstance& instance);

/// Builds the single-semaphore program described above.  The designated
/// events carry labels "a" and "b" as in the 3SAT reductions.
ReductionProgram reduce_smmcc_single_semaphore(const SmmccInstance& instance);

/// Random SMMCC instances for tests/benches: `num_tasks` tasks, costs in
/// [-max_cost, max_cost], each pair (i < j) gets an i -> j precedence
/// edge with probability `edge_probability`.
SmmccInstance random_smmcc(std::size_t num_tasks, int max_cost,
                           double edge_probability, int budget, Rng& rng);

}  // namespace evord
