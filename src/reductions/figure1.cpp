#include "reductions/figure1.hpp"

#include "sync/scheduler.hpp"
#include "util/check.hpp"

namespace evord {

Program figure1_program() {
  Program prog;
  const VarId x = prog.variable("X");
  const ObjectId ev = prog.event_var("ev");
  const ProcId main_proc = prog.add_process("main");
  const ProcId t1 = prog.add_process("t1", /*static_start=*/false);
  const ProcId t2 = prog.add_process("t2", /*static_start=*/false);
  const ProcId t3 = prog.add_process("t3", /*static_start=*/false);

  prog.append_all(main_proc,
                  {Stmt::fork(t1), Stmt::fork(t2), Stmt::fork(t3),
                   Stmt::join(t1), Stmt::join(t2), Stmt::join(t3)});
  Stmt post1 = Stmt::post(ev);
  post1.label = "post-t1";
  prog.append_all(t1, {std::move(post1), Stmt::assign(x, 1, "X := 1")});
  Stmt post2 = Stmt::post(ev);
  post2.label = "post-t2";
  Stmt wait2 = Stmt::wait(ev);
  wait2.label = "wait-t2";
  prog.append(t2, Stmt::if_eq(x, 1, {std::move(post2)}, {std::move(wait2)},
                              "if X=1 then"));
  Stmt wait3 = Stmt::wait(ev);
  wait3.label = "wait-t3";
  prog.append(t3, {std::move(wait3)});
  return prog;
}

Figure1Execution figure1_execution() {
  const Program prog = figure1_program();
  // t1 first and to completion, then t2, then t3, then main's joins —
  // "the first created task completely executes before the other two".
  PriorityPolicy policy({1, 2, 3, 0});
  // main must fork everyone first; with priority p1 > p0, p1 is not yet
  // runnable until forked, so main's forks interleave naturally.
  const RunResult run = run_program(prog, policy);
  EVORD_CHECK(run.status == RunStatus::kCompleted,
              "figure 1 program failed to complete");

  Figure1Execution out;
  out.post_t1 = run.trace.find_event_by_label("post-t1");
  out.assign_x = run.trace.find_event_by_label("X := 1");
  out.if_test = run.trace.find_event_by_label("if X=1 then");
  out.post_t2 = run.trace.find_event_by_label("post-t2");
  out.wait_t3 = run.trace.find_event_by_label("wait-t3");
  EVORD_CHECK(out.post_t1 != kNoEvent && out.assign_x != kNoEvent &&
                  out.if_test != kNoEvent && out.post_t2 != kNoEvent &&
                  out.wait_t3 != kNoEvent,
              "figure 1 events not found; the observed schedule must take "
              "the then-branch");
  out.trace = std::move(run.trace);
  return out;
}

}  // namespace evord
