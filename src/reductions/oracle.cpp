#include "reductions/oracle.hpp"

namespace evord {

OrderingSatDecision decide_sat_via_ordering(const CnfFormula& formula,
                                            SyncStyle style,
                                            Semantics semantics,
                                            const ExactOptions& options) {
  OrderingSatDecision out;
  const ReductionProgram reduction = reduce_3sat(formula, style);
  out.execution = execute_reduction(reduction);
  out.relations = compute_exact(out.execution.trace, semantics, options);
  out.satisfiable = !out.relations.holds(RelationKind::kMHB,
                                         out.execution.a, out.execution.b);
  return out;
}

SatOrderingDecision decide_ordering_via_sat(const CnfFormula& formula) {
  SatOrderingDecision out;
  out.sat = solve(formula);
  out.mhb_a_b = !out.sat.satisfiable;
  out.chb_b_a = out.sat.satisfiable;
  return out;
}

}  // namespace evord
