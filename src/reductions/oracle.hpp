// The two directions of the hardness equivalence, executable:
//
//   * decide_sat_via_ordering — decides satisfiability of a 3CNF formula
//     by building the reduction program, executing it once, and running
//     the EXACT ordering analysis on the execution (a MHB b iff UNSAT).
//     This is the paper's reduction made operational; its cost grows
//     exponentially with the formula (see bench_scaling).
//
//   * decide_ordering_via_sat — decides the designated ordering queries
//     on a reduction instance with the CDCL solver instead of exhaustive
//     search.  For reduction instances the two agree by Theorems 1-4;
//     this is the fast path a practical tool would take if it knew the
//     trace came from a reduction.
#pragma once

#include "ordering/exact.hpp"
#include "reductions/reduction.hpp"
#include "sat/cdcl.hpp"

namespace evord {

struct OrderingSatDecision {
  bool satisfiable = false;
  ReductionExecution execution;   ///< the analyzed program execution
  OrderingRelations relations;    ///< full exact analysis (all six)
};

/// Decides B via the must-have-happened-before relation of its reduction:
/// satisfiable iff NOT (a MHB b).  `semantics` must make MHB exact for
/// the construction (causal and interleaving both do; see reduction.hpp).
OrderingSatDecision decide_sat_via_ordering(
    const CnfFormula& formula, SyncStyle style,
    Semantics semantics = Semantics::kInterleaving,
    const ExactOptions& options = {});

struct SatOrderingDecision {
  bool mhb_a_b = false;  ///< a MHB b (== formula unsatisfiable)
  bool chb_b_a = false;  ///< b CHB a under interleaving (== satisfiable)
  SatResult sat;         ///< the underlying solver run
};

/// Decides the designated ordering queries of `formula`'s reduction with
/// the CDCL solver (no trace ever built).
SatOrderingDecision decide_ordering_via_sat(const CnfFormula& formula);

}  // namespace evord
