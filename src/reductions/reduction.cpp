#include "reductions/reduction.hpp"

#include <array>

#include "util/check.hpp"

namespace evord {

const char* to_string(SyncStyle style) {
  switch (style) {
    case SyncStyle::kSemaphore:
      return "semaphore";
    case SyncStyle::kEventStyle:
      return "event-style";
  }
  return "?";
}

namespace {

void check_3cnf(const CnfFormula& formula) {
  EVORD_CHECK(formula.is_kcnf(3), "reduction input must be 3CNF");
  EVORD_CHECK(formula.num_vars() >= 1, "formula must use variables");
}

/// Occurrence counts of each literal polarity.
struct Occurrences {
  std::vector<std::size_t> positive;  // index: variable (1-based)
  std::vector<std::size_t> negative;
};

Occurrences count_occurrences(const CnfFormula& formula) {
  Occurrences occ;
  occ.positive.assign(static_cast<std::size_t>(formula.num_vars()) + 1, 0);
  occ.negative.assign(static_cast<std::size_t>(formula.num_vars()) + 1, 0);
  for (const Clause& c : formula.clauses()) {
    for (Lit l : c.lits) {
      auto& counts = is_positive(l) ? occ.positive : occ.negative;
      ++counts[static_cast<std::size_t>(var_of(l))];
    }
  }
  return occ;
}

}  // namespace

ReductionProgram reduce_3sat_semaphores(const CnfFormula& formula) {
  check_3cnf(formula);
  const auto n = static_cast<std::size_t>(formula.num_vars());
  const std::size_t m = formula.num_clauses();
  const Occurrences occ = count_occurrences(formula);

  ReductionProgram out;
  out.style = SyncStyle::kSemaphore;
  out.num_vars = n;
  out.num_clauses = m;
  Program& prog = out.program;

  // Semaphores: X_i, notX_i, A_i per variable; C_j per clause; Pass2.
  std::vector<ObjectId> sem_pos(n + 1), sem_neg(n + 1), sem_gate(n + 1);
  for (std::size_t i = 1; i <= n; ++i) {
    sem_pos[i] = prog.semaphore("X" + std::to_string(i));
    sem_neg[i] = prog.semaphore("notX" + std::to_string(i));
    sem_gate[i] = prog.semaphore("A" + std::to_string(i));
  }
  std::vector<ObjectId> sem_clause(m);
  for (std::size_t j = 0; j < m; ++j) {
    sem_clause[j] = prog.semaphore("C" + std::to_string(j + 1));
  }
  const ObjectId sem_pass2 = prog.semaphore("Pass2");

  // Variable gadgets: T_i and F_i race for one A_i token in pass 1; the
  // gate releases the loser only after Pass2 is signaled.
  for (std::size_t i = 1; i <= n; ++i) {
    const ProcId t = prog.add_process("T" + std::to_string(i));
    prog.append(t, Stmt::sem_p(sem_gate[i]));
    for (std::size_t k = 0; k < occ.positive[i]; ++k) {
      prog.append(t, Stmt::sem_v(sem_pos[i]));
    }
    const ProcId f = prog.add_process("F" + std::to_string(i));
    prog.append(f, Stmt::sem_p(sem_gate[i]));
    for (std::size_t k = 0; k < occ.negative[i]; ++k) {
      prog.append(f, Stmt::sem_v(sem_neg[i]));
    }
    const ProcId g = prog.add_process("G" + std::to_string(i));
    prog.append_all(g, {Stmt::sem_v(sem_gate[i]), Stmt::sem_p(sem_pass2),
                        Stmt::sem_v(sem_gate[i])});
  }

  // Clause gadgets: three processes per clause, one per literal.
  for (std::size_t j = 0; j < m; ++j) {
    const Clause& c = formula.clause(j);
    for (std::size_t k = 0; k < 3; ++k) {
      const Lit l = c.lits[k];
      const ObjectId lit =
          is_positive(l) ? sem_pos[static_cast<std::size_t>(var_of(l))]
                         : sem_neg[static_cast<std::size_t>(var_of(l))];
      const ProcId p = prog.add_process(
          "K" + std::to_string(j + 1) + "_" + std::to_string(k + 1));
      prog.append_all(p, {Stmt::sem_p(lit), Stmt::sem_v(sem_clause[j])});
    }
  }

  // The two designated processes.
  const ProcId proc_a = prog.add_process("Pa");
  prog.append(proc_a, Stmt::skip(out.label_a));
  for (std::size_t i = 0; i < n; ++i) {
    prog.append(proc_a, Stmt::sem_v(sem_pass2));
  }
  const ProcId proc_b = prog.add_process("Pb");
  for (std::size_t j = 0; j < m; ++j) {
    prog.append(proc_b, Stmt::sem_p(sem_clause[j]));
  }
  prog.append(proc_b, Stmt::skip(out.label_b));

  EVORD_DCHECK(prog.num_processes() == 3 * n + 3 * m + 2,
               "process count mismatch");
  EVORD_DCHECK(prog.semaphores().size() == 3 * n + m + 1,
               "semaphore count mismatch");
  return out;
}

ReductionProgram reduce_3sat_binary_semaphores(const CnfFormula& formula) {
  check_3cnf(formula);
  const auto n = static_cast<std::size_t>(formula.num_vars());
  const std::size_t m = formula.num_clauses();

  ReductionProgram out;
  out.style = SyncStyle::kSemaphore;
  out.num_vars = n;
  out.num_clauses = m;
  Program& prog = out.program;

  // Binary semaphores: one gate A_i and one Pass2_i per variable; one
  // semaphore per literal occurrence (clause j, slot k); one per clause.
  std::vector<ObjectId> sem_gate(n + 1), sem_pass2(n + 1);
  for (std::size_t i = 1; i <= n; ++i) {
    sem_gate[i] = prog.binary_semaphore("A" + std::to_string(i));
    sem_pass2[i] = prog.binary_semaphore("Pass2_" + std::to_string(i));
  }
  std::vector<std::array<ObjectId, 3>> sem_occ(m);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = 0; k < 3; ++k) {
      sem_occ[j][k] = prog.binary_semaphore(
          "L" + std::to_string(j + 1) + "_" + std::to_string(k + 1));
    }
  }
  std::vector<ObjectId> sem_clause(m);
  for (std::size_t j = 0; j < m; ++j) {
    sem_clause[j] = prog.binary_semaphore("C" + std::to_string(j + 1));
  }

  // Occurrence lists per literal polarity.
  const auto occurrences_of = [&](Lit lit) {
    std::vector<ObjectId> result;
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t k = 0; k < 3; ++k) {
        if (formula.clause(j).lits[k] == lit) result.push_back(sem_occ[j][k]);
      }
    }
    return result;
  };

  // Variable gadgets.
  for (std::size_t i = 1; i <= n; ++i) {
    const auto lit = static_cast<Lit>(i);
    const ProcId t = prog.add_process("T" + std::to_string(i));
    prog.append(t, Stmt::sem_p(sem_gate[i]));
    for (ObjectId occ : occurrences_of(lit)) {
      prog.append(t, Stmt::sem_v(occ));
    }
    const ProcId f = prog.add_process("F" + std::to_string(i));
    prog.append(f, Stmt::sem_p(sem_gate[i]));
    for (ObjectId occ : occurrences_of(-lit)) {
      prog.append(f, Stmt::sem_v(occ));
    }
    const ProcId g = prog.add_process("G" + std::to_string(i));
    prog.append_all(g, {Stmt::sem_v(sem_gate[i]), Stmt::sem_p(sem_pass2[i]),
                        Stmt::sem_v(sem_gate[i])});
  }

  // Clause gadgets: one process per occurrence.
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = 0; k < 3; ++k) {
      const ProcId p = prog.add_process(
          "K" + std::to_string(j + 1) + "_" + std::to_string(k + 1));
      prog.append_all(p, {Stmt::sem_p(sem_occ[j][k]),
                          Stmt::sem_v(sem_clause[j])});
    }
  }

  // Designated processes.
  const ProcId proc_a = prog.add_process("Pa");
  prog.append(proc_a, Stmt::skip(out.label_a));
  for (std::size_t i = 1; i <= n; ++i) {
    prog.append(proc_a, Stmt::sem_v(sem_pass2[i]));
  }
  const ProcId proc_b = prog.add_process("Pb");
  for (std::size_t j = 0; j < m; ++j) {
    prog.append(proc_b, Stmt::sem_p(sem_clause[j]));
  }
  prog.append(proc_b, Stmt::skip(out.label_b));

  EVORD_DCHECK(prog.num_processes() == 3 * n + 3 * m + 2,
               "process count mismatch");
  EVORD_DCHECK(prog.semaphores().size() == 2 * n + 4 * m,
               "semaphore count mismatch");
  return out;
}

ReductionProgram reduce_3sat_events(const CnfFormula& formula) {
  check_3cnf(formula);
  const auto n = static_cast<std::size_t>(formula.num_vars());
  const std::size_t m = formula.num_clauses();

  ReductionProgram out;
  out.style = SyncStyle::kEventStyle;
  out.num_vars = n;
  out.num_clauses = m;
  Program& prog = out.program;

  // Event variables: A_i, B_i (the mutual-exclusion flags), X_i, notX_i
  // per variable; C_j per clause.
  std::vector<ObjectId> ev_a(n + 1), ev_b(n + 1), ev_pos(n + 1),
      ev_neg(n + 1);
  for (std::size_t i = 1; i <= n; ++i) {
    ev_a[i] = prog.event_var("A" + std::to_string(i));
    ev_b[i] = prog.event_var("B" + std::to_string(i));
    ev_pos[i] = prog.event_var("X" + std::to_string(i));
    ev_neg[i] = prog.event_var("notX" + std::to_string(i));
  }
  std::vector<ObjectId> ev_clause(m);
  for (std::size_t j = 0; j < m; ++j) {
    ev_clause[j] = prog.event_var("C" + std::to_string(j + 1));
  }

  // Variable gadgets.  The parent posts A_i and B_i and forks two
  // children that race under Clear-based mutual exclusion; in executions
  // not helped by pass 2, at most one of Post(X_i) / Post(notX_i) fires.
  std::vector<ProcId> parents;
  for (std::size_t i = 1; i <= n; ++i) {
    const ProcId parent = prog.add_process("V" + std::to_string(i));
    parents.push_back(parent);
    // Children are declared after all parents; fill bodies below.
  }
  for (std::size_t i = 1; i <= n; ++i) {
    const ProcId parent = parents[i - 1];
    const ProcId c1 =
        prog.add_process("V" + std::to_string(i) + "t", /*static=*/false);
    const ProcId c2 =
        prog.add_process("V" + std::to_string(i) + "f", /*static=*/false);
    prog.append_all(parent,
                    {Stmt::post(ev_a[i]), Stmt::post(ev_b[i]),
                     Stmt::fork(c1), Stmt::fork(c2), Stmt::join(c1),
                     Stmt::join(c2)});
    prog.append_all(c1, {Stmt::clear(ev_a[i]), Stmt::wait(ev_b[i]),
                         Stmt::post(ev_pos[i])});
    prog.append_all(c2, {Stmt::clear(ev_b[i]), Stmt::wait(ev_a[i]),
                         Stmt::post(ev_neg[i])});
  }

  // Clause gadgets.
  for (std::size_t j = 0; j < m; ++j) {
    const Clause& c = formula.clause(j);
    for (std::size_t k = 0; k < 3; ++k) {
      const Lit l = c.lits[k];
      const ObjectId lit =
          is_positive(l) ? ev_pos[static_cast<std::size_t>(var_of(l))]
                         : ev_neg[static_cast<std::size_t>(var_of(l))];
      const ProcId p = prog.add_process(
          "K" + std::to_string(j + 1) + "_" + std::to_string(k + 1));
      prog.append_all(p, {Stmt::wait(lit), Stmt::post(ev_clause[j])});
    }
  }

  // Designated processes.  Pass 2 reposts every A_i / B_i so a blocked
  // child always gets released after `a`.
  const ProcId proc_a = prog.add_process("Pa");
  prog.append(proc_a, Stmt::skip(out.label_a));
  for (std::size_t i = 1; i <= n; ++i) {
    prog.append(proc_a, Stmt::post(ev_a[i]));
    prog.append(proc_a, Stmt::post(ev_b[i]));
  }
  const ProcId proc_b = prog.add_process("Pb");
  for (std::size_t j = 0; j < m; ++j) {
    prog.append(proc_b, Stmt::wait(ev_clause[j]));
  }
  prog.append(proc_b, Stmt::skip(out.label_b));

  EVORD_DCHECK(prog.num_processes() == 3 * n + 3 * m + 2,
               "process count mismatch");
  return out;
}

ReductionProgram reduce_3sat(const CnfFormula& formula, SyncStyle style) {
  return style == SyncStyle::kSemaphore ? reduce_3sat_semaphores(formula)
                                        : reduce_3sat_events(formula);
}

ReductionExecution execute_reduction(const ReductionProgram& reduction,
                                     std::uint64_t seed) {
  // The semaphore construction is deadlock-free; the event-style variable
  // gadgets "can deadlock" (paper, Theorem 3) when pass 2 races ahead of
  // the children's Clears.  The observed execution P must be a completed
  // one, so retry random schedules and finally fall back to a priority
  // schedule that runs the pass-2 process (Pa, second-to-last) only when
  // everything else blocks — that schedule always completes: the children
  // are past their Clears by the time the reposts arrive.
  RunResult run = run_program_random(reduction.program, seed);
  for (std::uint64_t attempt = 1;
       run.status != RunStatus::kCompleted && attempt <= 64; ++attempt) {
    run = run_program_random(reduction.program,
                             seed + 0x9e3779b97f4a7c15ull * attempt);
  }
  if (run.status != RunStatus::kCompleted) {
    std::vector<ProcId> priority;
    const auto num_procs =
        static_cast<ProcId>(reduction.program.num_processes());
    for (ProcId p = 0; p < num_procs; ++p) {
      if (p != num_procs - 2) priority.push_back(p);  // Pa goes last
    }
    priority.push_back(num_procs - 2);
    PriorityPolicy policy(priority);
    run = run_program(reduction.program, policy);
  }
  EVORD_CHECK(run.status == RunStatus::kCompleted,
              "reduction program failed to complete under every schedule "
              "tried; this is a bug");
  ReductionExecution out;
  out.a = run.trace.find_event_by_label(reduction.label_a);
  out.b = run.trace.find_event_by_label(reduction.label_b);
  EVORD_CHECK(out.a != kNoEvent && out.b != kNoEvent,
              "designated events not found in the execution");
  out.trace = std::move(run.trace);
  return out;
}

}  // namespace evord
