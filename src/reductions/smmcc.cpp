#include "reductions/smmcc.hpp"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "util/check.hpp"

namespace evord {

int SmmccInstance::total_positive_cost() const {
  int total = 0;
  for (const SmmccTask& t : tasks) total += std::max(t.cost, 0);
  return total;
}

namespace {

/// DFS over done-sets (task-level sequencing).  Negative tasks never
/// block, so they are taken eagerly — a safe move that prunes hard.
class SmmccSolver {
 public:
  explicit SmmccSolver(const SmmccInstance& instance) : inst_(instance) {
    EVORD_CHECK(inst_.tasks.size() <= 24,
                "exact SMMCC limited to 24 tasks");
    EVORD_CHECK(inst_.budget >= 0, "budget must be >= 0");
  }

  std::optional<std::vector<std::size_t>> run() {
    order_.clear();
    if (search(0u, 0)) {
      return order_;
    }
    return std::nullopt;
  }

 private:
  bool ready(std::size_t t, std::uint32_t done) const {
    if ((done >> t) & 1u) return false;
    for (std::size_t p : inst_.tasks[t].predecessors) {
      if (((done >> p) & 1u) == 0) return false;
    }
    return true;
  }

  bool search(std::uint32_t done, int cum) {
    if (done == (1u << inst_.tasks.size()) - 1u) return true;
    const auto it = failed_.find(done);
    if (it != failed_.end()) return false;

    // Eagerly run any ready negative-or-zero task: it cannot hurt.
    for (std::size_t t = 0; t < inst_.tasks.size(); ++t) {
      if (inst_.tasks[t].cost <= 0 && ready(t, done)) {
        order_.push_back(t);
        if (search(done | (1u << t), cum + inst_.tasks[t].cost)) {
          return true;
        }
        order_.pop_back();
        failed_.insert(done);
        return false;  // if it fails with the free move, it always fails
      }
    }
    for (std::size_t t = 0; t < inst_.tasks.size(); ++t) {
      if (inst_.tasks[t].cost > 0 && ready(t, done) &&
          cum + inst_.tasks[t].cost <= inst_.budget) {
        order_.push_back(t);
        if (search(done | (1u << t), cum + inst_.tasks[t].cost)) {
          return true;
        }
        order_.pop_back();
      }
    }
    failed_.insert(done);
    return false;
  }

  const SmmccInstance& inst_;
  std::vector<std::size_t> order_;
  std::unordered_set<std::uint32_t> failed_;
};

}  // namespace

bool solve_smmcc(const SmmccInstance& instance) {
  return smmcc_witness(instance).has_value();
}

std::optional<std::vector<std::size_t>> smmcc_witness(
    const SmmccInstance& instance) {
  return SmmccSolver(instance).run();
}

ReductionProgram reduce_smmcc_single_semaphore(
    const SmmccInstance& instance) {
  EVORD_CHECK(instance.budget >= 0, "budget must be >= 0");
  ReductionProgram out;
  out.style = SyncStyle::kSemaphore;
  out.num_vars = instance.tasks.size();
  out.num_clauses = 0;
  Program& prog = out.program;

  const ObjectId sem =
      prog.semaphore("S", instance.budget);  // the ONLY semaphore

  // One process per task; precedence via joins.
  std::vector<ProcId> task_procs;
  for (std::size_t t = 0; t < instance.tasks.size(); ++t) {
    task_procs.push_back(prog.add_process("T" + std::to_string(t)));
  }
  for (std::size_t t = 0; t < instance.tasks.size(); ++t) {
    for (std::size_t p : instance.tasks[t].predecessors) {
      EVORD_CHECK(p < instance.tasks.size(), "bad predecessor index");
      prog.append(task_procs[t], Stmt::join(task_procs[p]));
    }
    const int cost = instance.tasks[t].cost;
    for (int i = 0; i < cost; ++i) prog.append(task_procs[t], Stmt::sem_p(sem));
    for (int i = 0; i < -cost; ++i) {
      prog.append(task_procs[t], Stmt::sem_v(sem));
    }
    // A final marker event so even zero-cost tasks have a body (joins on
    // empty processes would be vacuous otherwise).
    prog.append(task_procs[t], Stmt::skip("end-T" + std::to_string(t)));
  }

  // The relief valve: after `a`, flood the semaphore.
  const ProcId proc_a = prog.add_process("Pa");
  prog.append(proc_a, Stmt::skip(out.label_a));
  for (int i = 0; i < instance.total_positive_cost(); ++i) {
    prog.append(proc_a, Stmt::sem_v(sem));
  }

  // b waits for every task.
  const ProcId proc_b = prog.add_process("Pb");
  for (ProcId t : task_procs) prog.append(proc_b, Stmt::join(t));
  prog.append(proc_b, Stmt::skip(out.label_b));

  return out;
}

SmmccInstance random_smmcc(std::size_t num_tasks, int max_cost,
                           double edge_probability, int budget, Rng& rng) {
  SmmccInstance inst;
  inst.budget = budget;
  inst.tasks.resize(num_tasks);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    inst.tasks[t].cost =
        static_cast<int>(rng.range(-max_cost, max_cost));
    for (std::size_t p = 0; p < t; ++p) {
      if (rng.chance(edge_probability)) {
        inst.tasks[t].predecessors.push_back(p);
      }
    }
  }
  return inst;
}

}  // namespace evord
