// The paper's hardness reductions (Theorems 1-4), as executable program
// constructions.
//
// Given a 3CNF formula B with n variables and m clauses, both reductions
// build a program of 3n+3m+2 processes whose executions simulate a
// nondeterministic evaluation of B in two passes: pass 1 guesses a truth
// assignment (each variable gadget lets exactly one of "true" / "false"
// proceed), and pass 2 — gated on the designated event `a` — releases
// everything that pass 1 held back, guaranteeing the program never gets
// stuck.  The designated event `b` becomes reachable without pass 2 iff
// the guessed assignment satisfies every clause.  Consequently:
//
//   a MHB b            iff  B is unsatisfiable   (Theorem 1 / 3)
//   b CHB a  (interleaving/interval semantics)
//                      iff  B is satisfiable     (Theorem 2 / 4)
//   a CCW b  (causal)  iff  B is satisfiable     (could-concurrent)
//   a MOW b  (causal)  iff  B is unsatisfiable   (must-ordered)
//
// The semaphore reduction uses 3n+m+1 counting semaphores (Theorem 1);
// the event-style reduction uses Post/Wait/Clear on 4n+m event variables
// and fork/join, with Clear implementing two-process mutual exclusion
// inside each variable gadget (Theorem 3).
#pragma once

#include <string>

#include "sat/formula.hpp"
#include "sync/program.hpp"
#include "sync/scheduler.hpp"
#include "trace/trace.hpp"

namespace evord {

enum class SyncStyle : std::uint8_t {
  kSemaphore,   ///< counting semaphores (Theorems 1, 2)
  kEventStyle,  ///< Post/Wait/Clear (Theorems 3, 4)
};

const char* to_string(SyncStyle style);

struct ReductionProgram {
  Program program;
  SyncStyle style = SyncStyle::kSemaphore;
  std::size_t num_vars = 0;
  std::size_t num_clauses = 0;
  /// Labels of the designated skip events in the program.
  std::string label_a = "a";
  std::string label_b = "b";
};

/// Theorem 1/2 construction.  `formula` must be 3CNF.
ReductionProgram reduce_3sat_semaphores(const CnfFormula& formula);

/// Theorem 3/4 construction.  `formula` must be 3CNF.
ReductionProgram reduce_3sat_events(const CnfFormula& formula);

/// The binary-semaphore variant of Theorem 1/2 ("the above proofs do not
/// make use of the general counting ability of counting semaphores, and
/// therefore also hold for programs that use binary semaphores").
/// Counting is avoided by giving every literal OCCURRENCE its own
/// binary semaphore and every gate its own Pass2_i semaphore, so no
/// semaphore ever needs a count above one; clause semaphores may receive
/// several (clamped) V operations, which is harmless.  Uses 2n + 4m
/// binary semaphores and the same 3n+3m+2 processes.
ReductionProgram reduce_3sat_binary_semaphores(const CnfFormula& formula);

ReductionProgram reduce_3sat(const CnfFormula& formula, SyncStyle style);

/// One observed execution of a reduction program (the trace P handed to
/// the ordering analyses), with the designated events located.
struct ReductionExecution {
  Trace trace;
  EventId a = kNoEvent;
  EventId b = kNoEvent;
};

/// Runs the program until a COMPLETED execution is observed.  The
/// semaphore construction is deadlock-free; the event-style gadgets can
/// deadlock under unlucky schedules (the paper says as much in Theorem
/// 3), so random schedules are retried and a deadlock-avoiding priority
/// schedule serves as the deterministic fallback.
ReductionExecution execute_reduction(const ReductionProgram& reduction,
                                     std::uint64_t seed = 1);

}  // namespace evord
