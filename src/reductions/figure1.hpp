// The paper's Figure 1: a program fragment whose execution carries an
// ordering that is enforced only by a shared-data dependence, which the
// EGP task graph (synchronization events only) cannot see.
//
//   main:  fork t1; fork t2; fork t3; join t1; join t2; join t3
//   t1:    Post(ev); X := 1
//   t2:    if X = 1 then Post(ev) else Wait(ev)
//   t3:    Wait(ev)
//
// Observed execution (the figure's caption: "the first created task
// completely executes before the other two"): t1 runs to completion,
// then t2 (reads X = 1, takes the then-branch and posts), then t3.
//
// In that execution the dependence  X := 1  --D-->  "if X=1"  orders
// t1's Post before t2's Post in EVERY feasible execution (t1's Post
// precedes X := 1 in program order, and the if precedes t2's Post), yet
// the task graph contains no path between the two Post nodes.  EGP draws
// only a synchronization edge from the Posts' closest common ancestor
// (the fork node) to t3's Wait.
#pragma once

#include "sync/program.hpp"
#include "trace/trace.hpp"

namespace evord {

/// The Figure 1 program.
Program figure1_program();

/// Key events of the observed Figure 1 execution.
struct Figure1Execution {
  Trace trace;
  EventId post_t1 = kNoEvent;   ///< the left-most Post
  EventId assign_x = kNoEvent;  ///< X := 1
  EventId if_test = kNoEvent;   ///< if X=1 then
  EventId post_t2 = kNoEvent;   ///< the right-most Post
  EventId wait_t3 = kNoEvent;   ///< the Wait
};

/// Runs the program so that t1 completes before t2 and t3 start, exactly
/// as in the figure, and locates the interesting events.
Figure1Execution figure1_execution();

}  // namespace evord
