// The evord daemon: a hardened socket front end over the analysis
// service (src/service/) — the "event-ordering as a network service"
// deployment of the library, built to DEGRADE under hostile load
// rather than fail.
//
//   * transport: Unix-domain socket (socket_path) and/or loopback TCP
//     (tcp_port), length-prefixed versioned frames (protocol.hpp), one
//     reader thread per connection, request execution on the shared
//     bounded ThreadPool (util/thread_pool.hpp);
//   * tenancy: the first frame on every connection is kHello naming a
//     tenant; each tenant gets its OWN TraceRegistry and ResultCache
//     whose byte budget is an equal share of cache_budget_bytes,
//     re-carved whenever a tenant appears — one tenant's adversarial
//     traces can evict only its own cache, never a neighbour's;
//   * admission control: a per-tenant token bucket (quota.hpp) answers
//     kRejected when a tenant is over quota; global watermarks on
//     admitted-request count (max_queue_depth) and admitted payload
//     bytes (max_inflight_bytes) answer kOverloaded — explicit shed
//     signals, never silent stalls;
//   * deadline propagation: an anytime query carrying deadline_ms runs
//     under resilience::deadline_ladder, so an expiring deadline
//     surfaces as a SOUND degraded BoundedVerdict (provenance intact)
//     instead of a timeout error;
//   * circuit breaker: breaker_threshold consecutive oracle
//     conflict-budget exhaustions on one (tenant, trace) disable the
//     SAT-oracle rung for that session (AnalysisSession::
//     set_use_sat_oracle) — queries fall back to the explicit engines
//     until the breaker is reset out of band;
//   * graceful drain: stop() (or request_stop() from a signal handler)
//     stops accepting, answers new requests with kShuttingDown, lets
//     every admitted request finish and flush its reply, then severs
//     connections and joins all threads — zero lost in-flight replies;
//   * robustness: malformed frames get a protocol-error reply (framing
//     garbage closes the connection, payload garbage does not); the
//     fault hooks (util/fault.hpp kAcceptFail / kMidFrameDisconnect /
//     kSlowLoris) exercise the network failure paths deterministically.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "daemon/protocol.hpp"
#include "daemon/quota.hpp"
#include "ordering/exact.hpp"
#include "resilience/anytime.hpp"
#include "service/registry.hpp"
#include "trace/trace_io.hpp"
#include "util/thread_pool.hpp"

namespace evord::daemon {

struct DaemonOptions {
  /// Unix-domain socket path; empty disables the UDS listener.  Bound
  /// paths are limited to sizeof(sockaddr_un::sun_path) - 1 bytes.
  std::string socket_path;
  /// Loopback TCP port; 0 disables, otherwise binds 127.0.0.1:port.
  std::uint16_t tcp_port = 0;
  /// Workers on the shared request executor (0 = hardware concurrency).
  std::size_t executor_threads = 2;
  std::size_t max_connections = 64;
  /// Overload watermarks: admitted-but-unfinished request count and
  /// admitted payload bytes.  At either watermark new work is SHED with
  /// an explicit kOverloaded reply.
  std::size_t max_queue_depth = 64;
  std::uint64_t max_inflight_bytes = std::uint64_t{64} << 20;
  /// Total result-cache budget, split equally among active tenants.
  std::uint64_t cache_budget_bytes = service::ResultCache::kDefaultBudgetBytes;
  /// Per-tenant token bucket: sustained rate (0 = refill disabled) and
  /// burst capacity (0 = quota checks disabled entirely).
  double tenant_rate_per_sec = 0.0;
  std::size_t tenant_burst = 0;
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Receive AND send timeout per connection: a peer silent (or stalled
  /// mid-frame — the slow-loris case) this long is disconnected, and a
  /// peer that stops READING replies for this long is dropped too, so a
  /// reader thread can never wedge in send and stall the drain.
  int idle_timeout_ms = 10'000;
  /// Consecutive oracle conflict-budget exhaustions on one trace that
  /// trip the breaker; 0 disables the breaker.
  std::uint32_t breaker_threshold = 3;
  /// Exact configuration every tenant session analyzes under.
  ExactOptions exact;
  /// Budget ladder for anytime queries that carry NO deadline (empty =
  /// the session default).  Deadline-carrying queries always use
  /// resilience::deadline_ladder instead.  Small explicit rungs here
  /// make oracle exhaustion — and therefore the circuit breaker —
  /// deterministic, which the tests rely on.
  std::vector<QueryBudget> anytime_ladder;
  /// Parser hardening for kRegisterTrace payloads.
  TraceParseLimits parse_limits;
};

/// Monotonic daemon-wide counters (all fields cumulative since start).
struct DaemonStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dropped = 0;  ///< accept fault or error / at capacity
  std::uint64_t frames_received = 0;
  std::uint64_t replies_sent = 0;
  std::uint64_t requests_served = 0;   ///< admitted AND answered kOk-style
  std::uint64_t protocol_errors = 0;   ///< framing garbage (closes)
  std::uint64_t bad_requests = 0;      ///< payload garbage (survives)
  std::uint64_t sheds = 0;             ///< kOverloaded replies
  std::uint64_t rejections = 0;        ///< kRejected replies (quota)
  std::uint64_t shutting_down_replies = 0;
  std::uint64_t deadline_degraded = 0; ///< deadline queries that truncated
  std::uint64_t breaker_trips = 0;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the listeners and starts serving.  Throws std::runtime_error
  /// when neither transport is configured or a bind fails.
  void start();

  /// Async-signal-safe stop request (one write(2) on a private pipe):
  /// the accept loop wakes, stops accepting, and wait() returns.  Safe
  /// to call from a SIGTERM handler.
  void request_stop() noexcept;

  /// Blocks until request_stop() (or stop()) has been called.
  void wait();

  /// Graceful drain: stop accepting, answer new requests with
  /// kShuttingDown, wait for every admitted request to finish AND flush
  /// its reply, then sever connections and join every thread.
  /// Idempotent; called by the destructor.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const DaemonOptions& options() const { return options_; }
  /// The bound TCP port (after start(); useful with tcp_port = 0 ...
  /// which is not supported — fixed ports only — so simply echoes it).
  std::uint16_t tcp_port() const { return options_.tcp_port; }
  DaemonStats stats() const;

 private:
  struct Tenant {
    explicit Tenant(std::uint64_t cache_budget, double rate, double burst)
        : registry(nullptr, cache_budget), bucket(burst, rate) {}
    service::TraceRegistry registry;
    TokenBucket bucket;
    /// Consecutive oracle conflict-budget exhaustions per fingerprint
    /// (the circuit breaker's memory); guarded by the daemon mutex.
    std::unordered_map<std::uint64_t, std::uint32_t> oracle_exhaustions;
  };

  struct Connection {
    int fd = -1;
    std::shared_ptr<Tenant> tenant;
    std::string tenant_name;
  };

  void accept_loop();
  void serve_connection(int fd);
  /// Dispatches one request frame; returns the reply to send.
  Frame handle_frame(Connection& conn, const Frame& frame);
  Frame handle_register(Connection& conn, const Frame& frame);
  Frame run_pair_query(Connection& conn, const Frame& frame);
  Frame run_batch_query(Connection& conn, const Frame& frame);
  Frame run_deadlock_query(Connection& conn, const Frame& frame);
  Frame run_race_query(Connection& conn, const Frame& frame);
  Frame run_anytime_query(Connection& conn, const Frame& frame);
  Frame health_reply(std::uint64_t request_id);

  std::shared_ptr<Tenant> tenant_for(const std::string& name);
  std::shared_ptr<service::AnalysisSession> session_for(
      Connection& conn, std::uint64_t fingerprint);
  /// Admission control for one request; fills `reply` and returns false
  /// when the request must NOT run (rejected / shed / draining).
  bool admit(Connection& conn, const Frame& frame, Frame& reply);
  /// Attributes a quota/watermark bounce to the named trace's existing
  /// session (SessionStats::shed / ::rejected); no-op when the request
  /// carries no fingerprint or the session was never built.
  void note_bounce(Connection& conn, const Frame& frame, bool shed);
  /// Joins connection threads that finished since the last sweep.
  void reap_finished_threads();
  void breaker_account(Connection& conn, std::uint64_t fingerprint,
                       service::AnalysisSession& session, bool unknown,
                       bool oracle_exhausted);

  int make_uds_listener();
  int make_tcp_listener();

  DaemonOptions options_;
  ThreadPool pool_;

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  std::condition_variable stop_cv_;
  DaemonStats stats_;
  std::unordered_map<std::string, std::shared_ptr<Tenant>> tenants_;
  /// Reader threads of LIVE connections.  A finishing reader moves its
  /// own handle to finished_threads_ (and closes + erases its fd), so a
  /// churning daemon never accumulates dead fds or thread handles; the
  /// accept loop reaps finished handles each wakeup, stop() the rest.
  std::vector<std::thread> conn_threads_;
  std::vector<std::thread> finished_threads_;
  std::vector<int> conn_fds_;        ///< open connection sockets
  std::size_t live_connections_ = 0;
  /// Admitted-but-not-yet-replied requests and their payload bytes (the
  /// overload watermarks; also what drain waits on).
  std::size_t in_flight_ = 0;
  std::uint64_t in_flight_bytes_ = 0;
  bool stop_requested_ = false;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;
  int uds_fd_ = -1;
  int tcp_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
};

}  // namespace evord::daemon
