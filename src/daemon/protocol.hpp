// Wire protocol of the evord daemon (src/daemon/daemon.hpp).
//
// Every message — request or reply — is one length-prefixed frame:
//
//   [u32 length LE] [u8 version] [u8 type] [u64 request_id LE] [payload]
//
// `length` counts everything AFTER itself (version through payload), so
// a frame occupies 4 + length bytes on the wire and the minimum legal
// length is 10 (empty payload).  All integers are little-endian;
// strings are a u32 byte count followed by raw bytes.  The payload
// layout is per-type (see FrameType).  A reply's request_id echoes the
// request's, which is what makes retries idempotent end to end: every
// request the protocol offers is naturally idempotent (queries are
// pure, trace registration dedups by content fingerprint), so a client
// that resends after a transport error — SAME id — can never corrupt
// state, and the id lets it match whichever reply arrives.
//
// Robustness contract: a malformed frame must never crash or wedge a
// peer.  Framing-level garbage (bad magic version, oversize or
// undersize length, truncated stream) throws ProtocolError — the
// daemon answers with kError/kProtocolError and CLOSES the connection,
// since stream sync is lost.  Payload-level garbage (truncated fields,
// unknown enum values, out-of-range event ids) is caught by the
// bounds-checked WireReader and answered with kError/kBadRequest while
// the connection keeps serving.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace evord::daemon {

inline constexpr std::uint8_t kProtocolVersion = 1;
/// Frame header past the length prefix: version + type + request id.
inline constexpr std::uint32_t kFrameOverhead = 1 + 1 + 8;
/// Default ceiling on `length` (guards the daemon against a hostile
/// 4 GiB allocation from one u32).
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 4u << 20;

enum class FrameType : std::uint8_t {
  // ---- requests ----
  kHello = 1,          ///< tenant name (string); MUST be the first frame
  kRegisterTrace = 2,  ///< trace text (string)
  kPairQuery = 3,      ///< fp u64, relation u8, semantics u8, a u32, b u32
  kBatchQuery = 4,     ///< fp u64, count u32, count x (rel, sem, a, b)
  kDeadlockQuery = 5,  ///< fp u64
  kRaceQuery = 6,      ///< fp u64, detector u8
  kAnytimeQuery = 7,   ///< fp u64, which u8, semantics u8, a u32, b u32,
                       ///< deadline_ms u32 (0 = default ladder)
  kHealth = 8,         ///< empty payload; served even under overload
  // ---- replies ----
  kHelloOk = 128,      ///< empty payload
  kTraceOk = 129,      ///< fp u64, num_events u32, dedup u8
  kBoolOk = 130,       ///< value u8
  kBatchOk = 131,      ///< count u32, count x u8
  kRaceOk = 132,       ///< candidates u32, truncated u8,
                       ///< count u32, count x (a u32, b u32, hidden u8)
  kVerdictOk = 133,    ///< state u8, degraded u8, rungs u8,
                       ///< oracle_exhausted u8, engine string
  kHealthOk = 134,     ///< 13 x u64: the 12 DaemonStats counters + in_flight
  kError = 192,        ///< code u8, message string
  kRejected = 193,     ///< tenant quota bounced the request (code+message)
  kOverloaded = 194,   ///< load shed at a watermark (code+message)
  kShuttingDown = 195, ///< daemon is draining (code+message)
};

enum class ErrorCode : std::uint8_t {
  kNone = 0,
  kProtocolError = 1,  ///< framing-level garbage; connection closes
  kUnknownTrace = 2,   ///< fingerprint never registered by this tenant
  kParseError = 3,     ///< trace text rejected by the parser
  kBadRequest = 4,     ///< payload-level garbage; connection survives
  kInternal = 5,
};

const char* to_string(FrameType type);
const char* to_string(ErrorCode code);

/// Framing-level violation: stream sync is lost, close the connection.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error(what) {}
};

struct Frame {
  std::uint8_t version = kProtocolVersion;
  std::uint8_t type = 0;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

// ---------------------------------------------------------------- codec

/// Bounds-checked little-endian payload reader; every underflow throws
/// ProtocolError (the caller maps it to kBadRequest for payloads).
class WireReader {
 public:
  explicit WireReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::string string();
  bool done() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
};

class WireWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void string(const std::string& s);
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

// ------------------------------------------------------------- frame I/O

enum class ReadResult : std::uint8_t {
  kFrame = 0,  ///< a complete frame was read
  kEof,        ///< clean close before any byte of a frame
  kTimeout,    ///< the socket's receive timeout expired (idle / stalled)
};

/// Reads one frame from `fd` (blocking; honours SO_RCVTIMEO).  Throws
/// ProtocolError on framing garbage: bad version, length < overhead or
/// > max_frame_bytes, or a stream truncated mid-frame.
ReadResult read_frame(int fd, Frame& frame,
                      std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Writes one frame to `fd`.  Returns false when the peer is gone
/// (EPIPE / ECONNRESET) or the send could not complete — the caller
/// drops the connection; no exception, sending to a dead peer is an
/// expected event, not a program error.  The fault hooks
/// (fault::on_frame_send) can sever or stall the send mid-frame.
bool write_frame(int fd, const Frame& frame);

/// Builds a reply frame echoing `request_id`.
Frame make_frame(FrameType type, std::uint64_t request_id,
                 std::vector<std::uint8_t> payload);
/// The shared shape of kError / kRejected / kOverloaded / kShuttingDown.
Frame make_error(FrameType type, std::uint64_t request_id, ErrorCode code,
                 const std::string& message);

}  // namespace evord::daemon
