// DaemonClient: the library side of the evord daemon protocol.
//
// A client owns one connection (Unix-domain or loopback TCP), speaks
// the framed protocol (protocol.hpp) and exposes typed calls mirroring
// AnalysisSession.  Its robustness half:
//
//   * every request carries a fresh monotonic request id drawn from a
//     seeded splitmix64 stream; replies are matched on the echoed id;
//   * transport failures (connect refused, send failure, truncated or
//     garbled reply stream) are retried up to max_retries times with
//     jittered exponential backoff, RESENDING THE SAME request id — the
//     protocol's requests are all idempotent (queries are pure, trace
//     registration dedups by fingerprint), so a retry after a reply
//     lost in flight cannot corrupt state;
//   * application-level bounces (kRejected / kOverloaded /
//     kShuttingDown / kError) are NOT retried: they are explicit
//     backpressure signals surfaced in RequestStatus for the caller's
//     own policy;
//   * timeout_ms bounds each receive via SO_RCVTIMEO, so a stalled
//     daemon degrades to RequestStatus::kTransport, never a hang.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "daemon/protocol.hpp"

namespace evord::daemon {

struct ClientOptions {
  /// Unix-domain socket path; empty means use TCP instead.
  std::string socket_path;
  /// Loopback TCP port (used when socket_path is empty).
  std::uint16_t tcp_port = 0;
  /// Tenant announced in the kHello frame on (re)connect.
  std::string tenant = "default";
  /// Per-receive timeout; a silent daemon surfaces kTransport.
  int timeout_ms = 5'000;
  /// Transport-failure retries per request (0 = single attempt).
  std::size_t max_retries = 2;
  /// Base of the jittered exponential backoff between retries.
  std::uint32_t backoff_base_ms = 10;
  /// Seeds both the request-id stream and the backoff jitter.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
};

enum class RequestStatus : std::uint8_t {
  kOk = 0,
  kRejected,      ///< tenant over quota — back off and retry later
  kOverloaded,    ///< daemon shed the request at a watermark
  kShuttingDown,  ///< daemon is draining — find another instance
  kError,         ///< application error (see code/message)
  kTransport,     ///< connection failed after every retry
};

const char* to_string(RequestStatus status);

/// Shared envelope of every reply: status plus the error detail when
/// status != kOk.
struct ReplyEnvelope {
  RequestStatus status = RequestStatus::kTransport;
  ErrorCode code = ErrorCode::kNone;
  std::string message;

  bool ok() const { return status == RequestStatus::kOk; }
};

struct TraceReply : ReplyEnvelope {
  std::uint64_t fingerprint = 0;
  std::uint32_t num_events = 0;
  bool dedup = false;  ///< the daemon already knew this trace
};

struct BoolReply : ReplyEnvelope {
  bool value = false;
};

struct BatchReply : ReplyEnvelope {
  std::vector<bool> values;
};

struct RaceInfo {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  bool hidden_in_observed = false;
};

struct RaceReply : ReplyEnvelope {
  std::uint32_t candidate_pairs = 0;
  bool truncated = false;
  std::vector<RaceInfo> races;
};

struct VerdictReply : ReplyEnvelope {
  /// VerdictState as u8: 0 unknown, 1 proven, 2 refuted.
  std::uint8_t state = 0;
  bool degraded = false;  ///< not an exact-complete answer
  std::uint8_t rungs_tried = 0;
  bool oracle_exhausted = false;
  std::string engine;
};

struct HealthReply : ReplyEnvelope {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dropped = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t replies_sent = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t sheds = 0;
  std::uint64_t rejections = 0;
  std::uint64_t shutting_down_replies = 0;
  std::uint64_t deadline_degraded = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t in_flight = 0;
};

struct PairQuerySpec {
  std::uint8_t relation = 0;   ///< RelationKind as u8
  std::uint8_t semantics = 1;  ///< Semantics as u8 (default kCausal)
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

class DaemonClient {
 public:
  explicit DaemonClient(ClientOptions options);
  ~DaemonClient();

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  /// Registers (or dedups) a trace from its text form.
  TraceReply register_trace(const std::string& trace_text);

  BoolReply pair_query(std::uint64_t fingerprint, const PairQuerySpec& q);
  BatchReply batch_query(std::uint64_t fingerprint,
                         const std::vector<PairQuerySpec>& queries);
  BoolReply deadlock_query(std::uint64_t fingerprint);
  /// `detector`: RaceDetector as u8 (0 exact, 1 observed, 2 guaranteed).
  RaceReply race_query(std::uint64_t fingerprint, std::uint8_t detector);
  /// `which`: 0 must-have-happened-before, 1 could-have-been-concurrent,
  /// 2 can-deadlock.  deadline_ms > 0 propagates a client deadline into
  /// the daemon's budget ladder (degraded sound verdicts, no timeouts).
  VerdictReply anytime_query(std::uint64_t fingerprint, std::uint8_t which,
                             std::uint8_t semantics, std::uint32_t a,
                             std::uint32_t b, std::uint32_t deadline_ms = 0);
  HealthReply health();

  /// Sends a raw pre-built frame and returns the raw reply (fuzzing and
  /// protocol tests; no retries, no envelope mapping).  Returns false
  /// when the transport failed before a reply arrived.
  bool raw_roundtrip(const Frame& request, Frame& reply);

  /// Drops the connection; the next request reconnects and re-hellos.
  void disconnect();
  bool connected() const { return fd_ >= 0; }
  const ClientOptions& options() const { return options_; }

 private:
  std::uint64_t next_id();
  std::uint32_t backoff_ms(std::size_t attempt);
  /// Connects and sends kHello; returns false on any failure.
  bool connect_and_hello();
  /// One attempt: send `request`, read the matching reply (skipping any
  /// stale reply whose id differs).  False = transport failure.
  bool attempt(const Frame& request, Frame& reply);
  /// Full request path: retries attempt() with backoff on transport
  /// failure, reconnecting in between.  False = kTransport.
  bool roundtrip(FrameType type, std::vector<std::uint8_t> payload,
                 Frame& reply);
  /// Maps a reply frame's type onto the envelope (kOk / bounce / error);
  /// returns true when the payload should be decoded further.
  static bool decode_envelope(const Frame& reply, FrameType expected,
                              ReplyEnvelope& env);

  ClientOptions options_;
  int fd_ = -1;
  std::uint64_t id_state_;   ///< splitmix64 state for request ids
  std::uint64_t rng_state_;  ///< xorshift state for backoff jitter
};

}  // namespace evord::daemon
