#include "daemon/daemon.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "race/race_detector.hpp"
#include "resilience/anytime.hpp"
#include "util/fault.hpp"

namespace evord::daemon {

namespace {

void set_io_timeouts(int fd, int millis) {
  if (millis <= 0) return;
  timeval tv;
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  // The send side needs the same bound: a peer that floods requests but
  // never reads replies would otherwise park the reader thread in
  // send_all() forever with in_flight_ > 0, wedging stop()'s drain.  A
  // timed-out send fails write_frame, which drops the connection like
  // any other dead peer.
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), pool_(options_.executor_threads) {}

Daemon::~Daemon() { stop(); }

DaemonStats Daemon::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ----------------------------------------------------------- listeners

int Daemon::make_uds_listener() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long for sockaddr_un: " +
                             options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket(AF_UNIX) failed: ") +
                             std::strerror(errno));
  }
  // A stale socket file from a crashed predecessor would fail the bind.
  ::unlink(options_.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string err = std::strerror(errno);
    close_quietly(fd);
    throw std::runtime_error("bind/listen on " + options_.socket_path +
                             " failed: " + err);
  }
  return fd;
}

int Daemon::make_tcp_listener() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket(AF_INET) failed: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.tcp_port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string err = std::strerror(errno);
    close_quietly(fd);
    throw std::runtime_error("bind/listen on 127.0.0.1:" +
                             std::to_string(options_.tcp_port) +
                             " failed: " + err);
  }
  return fd;
}

void Daemon::start() {
  if (running_.load(std::memory_order_acquire)) return;
  if (options_.socket_path.empty() && options_.tcp_port == 0) {
    throw std::runtime_error(
        "daemon needs a socket_path and/or a tcp_port to listen on");
  }
  if (::pipe(stop_pipe_) < 0) {
    throw std::runtime_error(std::string("pipe failed: ") +
                             std::strerror(errno));
  }
  if (!options_.socket_path.empty()) uds_fd_ = make_uds_listener();
  if (options_.tcp_port != 0) {
    try {
      tcp_fd_ = make_tcp_listener();
    } catch (...) {
      close_quietly(uds_fd_);
      uds_fd_ = -1;
      throw;
    }
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

// ------------------------------------------------------------ stop path

void Daemon::request_stop() noexcept {
  if (stop_pipe_[1] < 0) {
    // start() never ran: make wait()/stop() return without the pipe.
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
    stop_cv_.notify_all();
    return;
  }
  // One byte on a private pipe: async-signal-safe (write(2) only).
  const char byte = 's';
  [[maybe_unused]] const ssize_t r = ::write(stop_pipe_[1], &byte, 1);
}

void Daemon::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait(lock, [this] { return stop_requested_; });
}

void Daemon::stop() {
  // Phase 1 — stop ADMITTING: new requests answer kShuttingDown, the
  // accept loop exits (closing the listeners).
  draining_.store(true, std::memory_order_release);
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Phase 2 — drain: every admitted request finishes and its reply is
  // flushed before we touch any connection.
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }
  pool_.shutdown();
  // Phase 3 — sever and join.  shutdown(2) wakes readers blocked in
  // recv; the threads observe EOF, close their own fds and exit.  Also
  // reap the handles of connections that finished after the accept
  // loop's last sweep.
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    to_join.swap(conn_threads_);
    for (std::thread& t : finished_threads_) to_join.push_back(std::move(t));
    finished_threads_.clear();
  }
  for (std::thread& t : to_join) t.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Every joined reader erased and closed its own fd; anything left
    // here would be a bookkeeping bug, but never leak it regardless.
    for (const int fd : conn_fds_) close_quietly(fd);
    conn_fds_.clear();
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  close_quietly(stop_pipe_[0]);
  close_quietly(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
  running_.store(false, std::memory_order_release);
}

// ----------------------------------------------------------- accept loop

void Daemon::accept_loop() {
  for (;;) {
    reap_finished_threads();
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {stop_pipe_[0], POLLIN, 0};
    if (uds_fd_ >= 0) fds[n++] = {uds_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[n++] = {tcp_fd_, POLLIN, 0};
    const int r = ::poll(fds, n, -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents != 0) break;  // stop requested
    for (nfds_t slot = 1; slot < n; ++slot) {
      if ((fds[slot].revents & POLLIN) == 0) continue;
      const int fd = ::accept(fds[slot].fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
            errno == EWOULDBLOCK) {
          continue;  // transient; the connection simply never existed
        }
        // Resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM): the
        // listener stays readable under level-triggered poll, so
        // retrying instantly would busy-spin.  Count the drop and back
        // off briefly; churned connections release their fds (see
        // serve_connection), so the condition is transient.
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.connections_dropped;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      if (fault::on_accept_connection()) {
        // Injected accept failure: the connection evaporates exactly as
        // if accept(2) itself had failed under pressure.
        close_quietly(fd);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.connections_dropped;
        continue;
      }
      set_io_timeouts(fd, options_.idle_timeout_ms);
      bool at_capacity = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (live_connections_ >= options_.max_connections) {
          at_capacity = true;
          ++stats_.connections_dropped;
          ++stats_.sheds;
        } else {
          ++stats_.connections_accepted;
          ++live_connections_;
        }
      }
      if (at_capacity) {
        // Explicit shed, then close: the client sees kOverloaded, not a
        // mysterious reset.
        if (write_frame(fd, make_error(FrameType::kOverloaded, 0,
                                       ErrorCode::kNone,
                                       "connection limit reached"))) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.replies_sent;
        }
        close_quietly(fd);
        continue;
      }
      std::lock_guard<std::mutex> lock(mu_);
      conn_fds_.push_back(fd);
      conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
    }
  }
  close_quietly(uds_fd_);
  close_quietly(tcp_fd_);
  uds_fd_ = tcp_fd_ = -1;
  std::lock_guard<std::mutex> lock(mu_);
  stop_requested_ = true;
  stop_cv_.notify_all();
}

// ------------------------------------------------------------- tenancy

std::shared_ptr<Daemon::Tenant> Daemon::tenant_for(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second;
  auto tenant = std::make_shared<Tenant>(
      std::max<std::uint64_t>(1, options_.cache_budget_bytes /
                                     (tenants_.size() + 1)),
      options_.tenant_rate_per_sec,
      static_cast<double>(options_.tenant_burst));
  tenants_.emplace(name, tenant);
  // Re-carve the shared budget equally: admitting a tenant SHRINKS the
  // neighbours' caches (they evict down) rather than growing the total.
  const std::uint64_t share = std::max<std::uint64_t>(
      1, options_.cache_budget_bytes / tenants_.size());
  for (auto& [unused, t] : tenants_) {
    t->registry.cache()->set_budget_bytes(share);
  }
  return tenant;
}

std::shared_ptr<service::AnalysisSession> Daemon::session_for(
    Connection& conn, std::uint64_t fingerprint) {
  std::shared_ptr<const Trace> trace =
      conn.tenant->registry.find(fingerprint);
  if (trace == nullptr) return nullptr;
  return conn.tenant->registry.session(std::move(trace), options_.exact);
}

// ------------------------------------------------------------ admission

bool Daemon::admit(Connection& conn, const Frame& frame, Frame& reply) {
  if (draining_.load(std::memory_order_acquire)) {
    reply = make_error(FrameType::kShuttingDown, frame.request_id,
                       ErrorCode::kNone, "daemon is draining");
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shutting_down_replies;
    return false;
  }
  if (options_.tenant_burst != 0 && !conn.tenant->bucket.try_acquire()) {
    reply = make_error(FrameType::kRejected, frame.request_id,
                       ErrorCode::kNone,
                       "tenant '" + conn.tenant_name + "' is over quota");
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejections;
    }
    note_bounce(conn, frame, /*shed=*/false);
    return false;
  }
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_flight_ >= options_.max_queue_depth ||
        in_flight_bytes_ >= options_.max_inflight_bytes) {
      reply = make_error(FrameType::kOverloaded, frame.request_id,
                         ErrorCode::kNone,
                         in_flight_ >= options_.max_queue_depth
                             ? "queue depth watermark reached"
                             : "in-flight byte watermark reached");
      ++stats_.sheds;
      shed = true;
    } else {
      ++in_flight_;
      in_flight_bytes_ += frame.payload.size();
    }
  }
  if (shed) {
    note_bounce(conn, frame, /*shed=*/true);
    return false;
  }
  return true;
}

void Daemon::note_bounce(Connection& conn, const Frame& frame, bool shed) {
  // Attribute the bounce to the trace the request named, so per-trace
  // SessionStats::shed / ::rejected move in real deployments — but only
  // when a warm session already exists: a bounce path must never do the
  // admission-bypassing work of building one.  Called WITHOUT mu_ held
  // (the registry and session take their own locks).
  const auto type = static_cast<FrameType>(frame.type);
  const bool names_trace = type == FrameType::kPairQuery ||
                           type == FrameType::kBatchQuery ||
                           type == FrameType::kDeadlockQuery ||
                           type == FrameType::kRaceQuery ||
                           type == FrameType::kAnytimeQuery;
  if (!names_trace || frame.payload.size() < 8) return;
  WireReader r(frame.payload);
  const std::shared_ptr<service::AnalysisSession> session =
      conn.tenant->registry.find_session(r.u64(), options_.exact);
  if (session == nullptr) return;
  if (shed) {
    session->note_shed();
  } else {
    session->note_rejected();
  }
}

// ----------------------------------------------------------- connection

void Daemon::serve_connection(int fd) {
  Connection conn;
  conn.fd = fd;
  for (;;) {
    Frame frame;
    ReadResult rr;
    try {
      rr = read_frame(fd, frame, options_.max_frame_bytes);
    } catch (const ProtocolError& e) {
      // Framing garbage: answer, then close — stream sync is lost, so
      // anything further would be misparsed.
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.protocol_errors;
      }
      if (write_frame(fd, make_error(FrameType::kError, 0,
                                     ErrorCode::kProtocolError, e.what()))) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.replies_sent;
      }
      break;
    }
    if (rr != ReadResult::kFrame) break;  // clean EOF or idle timeout
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.frames_received;
    }
    const bool admitted_types =
        frame.type != static_cast<std::uint8_t>(FrameType::kHello) &&
        frame.type != static_cast<std::uint8_t>(FrameType::kHealth);
    bool admitted = false;
    Frame reply;
    if (admitted_types && conn.tenant != nullptr) {
      // Only tenant-bound request frames pass admission; hello/health
      // must answer even under overload or drain.
      if (admit(conn, frame, reply)) {
        admitted = true;
        reply = handle_frame(conn, frame);
      }
    } else {
      reply = handle_frame(conn, frame);
    }
    const bool sent = write_frame(fd, reply);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (sent) ++stats_.replies_sent;
      if (admitted) {
        --in_flight_;
        in_flight_bytes_ -= frame.payload.size();
      }
    }
    if (admitted) drained_cv_.notify_all();
    if (!sent) break;
  }
  ::shutdown(fd, SHUT_RDWR);
  // Release this connection's resources NOW, not at stop(): a
  // long-running daemon churns through connections, and parking every
  // dead fd and thread handle until shutdown leaks one of each per
  // connection — after ~ulimit fds, accept() starts failing.  Erase +
  // close run under mu_, the same lock stop()'s sever/close holds, so
  // neither side can touch an fd the other just closed.  The thread
  // handle moves to finished_threads_ (a thread cannot join itself);
  // the accept loop reaps it on its next wakeup, stop() reaps the rest.
  std::lock_guard<std::mutex> lock(mu_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
  close_quietly(fd);
  --live_connections_;
  const auto me = std::this_thread::get_id();
  for (auto it = conn_threads_.begin(); it != conn_threads_.end(); ++it) {
    if (it->get_id() == me) {
      finished_threads_.push_back(std::move(*it));
      conn_threads_.erase(it);
      break;
    }
  }
}

void Daemon::reap_finished_threads() {
  std::vector<std::thread> reap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    reap.swap(finished_threads_);
  }
  // A reaped thread parked its own handle on its way out of
  // serve_connection — nothing but the function epilogue remains, so
  // these joins return ~immediately.
  for (std::thread& t : reap) t.join();
}

// ------------------------------------------------------------- dispatch

Frame Daemon::handle_frame(Connection& conn, const Frame& frame) {
  const auto type = static_cast<FrameType>(frame.type);
  try {
    if (type == FrameType::kHello) {
      WireReader r(frame.payload);
      const std::string name = r.string();
      if (name.empty()) {
        throw ProtocolError("empty tenant name");
      }
      conn.tenant = tenant_for(name);
      conn.tenant_name = name;
      return make_frame(FrameType::kHelloOk, frame.request_id, {});
    }
    if (type == FrameType::kHealth) return health_reply(frame.request_id);
    if (conn.tenant == nullptr) {
      return make_error(FrameType::kError, frame.request_id,
                        ErrorCode::kBadRequest,
                        "hello must be the first frame");
    }
    switch (type) {
      case FrameType::kRegisterTrace:
      case FrameType::kPairQuery:
      case FrameType::kBatchQuery:
      case FrameType::kDeadlockQuery:
      case FrameType::kRaceQuery:
      case FrameType::kAnytimeQuery: {
        // Execute on the bounded pool; the reader thread waits, so one
        // connection has at most one request in the executor while the
        // POOL bounds cross-connection compute concurrency.
        auto future = pool_.submit([this, &conn, &frame, type] {
          switch (type) {
            case FrameType::kRegisterTrace:
              return handle_register(conn, frame);
            case FrameType::kPairQuery:
              return run_pair_query(conn, frame);
            case FrameType::kBatchQuery:
              return run_batch_query(conn, frame);
            case FrameType::kDeadlockQuery:
              return run_deadlock_query(conn, frame);
            case FrameType::kRaceQuery:
              return run_race_query(conn, frame);
            default:
              return run_anytime_query(conn, frame);
          }
        });
        Frame reply = future.get();
        // Only kOk-style replies count as "served" — a kError (unknown
        // trace, bad payload, ...) out of the pool is not a served
        // request, per the DaemonStats contract.
        if (reply.type < static_cast<std::uint8_t>(FrameType::kError)) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.requests_served;
        }
        return reply;
      }
      default:
        break;
    }
    return make_error(FrameType::kError, frame.request_id,
                      ErrorCode::kBadRequest,
                      "unknown request type " + std::to_string(frame.type));
  } catch (const ProtocolError& e) {
    // Payload-level garbage: the frame boundary held, so the connection
    // keeps serving after an explicit error reply.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.bad_requests;
    return make_error(FrameType::kError, frame.request_id,
                      ErrorCode::kBadRequest, e.what());
  } catch (const TraceParseError& e) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.bad_requests;
    return make_error(FrameType::kError, frame.request_id,
                      ErrorCode::kParseError, e.what());
  } catch (const std::exception& e) {
    // A draining pool rejects submits with runtime_error; everything
    // else is a genuine internal failure.  Either way the client gets a
    // well-formed reply, never a wedged connection.
    if (draining_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.shutting_down_replies;
      return make_error(FrameType::kShuttingDown, frame.request_id,
                        ErrorCode::kNone, "daemon is draining");
    }
    std::lock_guard<std::mutex> lock(mu_);
    return make_error(FrameType::kError, frame.request_id,
                      ErrorCode::kInternal, e.what());
  }
}

Frame Daemon::handle_register(Connection& conn, const Frame& frame) {
  WireReader r(frame.payload);
  const std::string text = r.string();
  Trace trace = parse_trace_string(text, options_.parse_limits);
  const std::uint64_t fp = trace.fingerprint();
  const bool dedup = conn.tenant->registry.find(fp) != nullptr;
  const std::shared_ptr<const Trace> canonical =
      conn.tenant->registry.register_trace(std::move(trace));
  WireWriter w;
  w.u64(fp);
  w.u32(static_cast<std::uint32_t>(canonical->num_events()));
  w.u8(dedup ? 1 : 0);
  return make_frame(FrameType::kTraceOk, frame.request_id, w.take());
}

namespace {

/// Payload-level validation helpers: out-of-range enum values and event
/// ids become ProtocolError, which handle_frame maps to kBadRequest.
RelationKind checked_relation(std::uint8_t v) {
  if (v >= kNumRelationKinds) {
    throw ProtocolError("relation " + std::to_string(v) + " out of range");
  }
  return static_cast<RelationKind>(v);
}

Semantics checked_semantics(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(Semantics::kInterval)) {
    throw ProtocolError("semantics " + std::to_string(v) + " out of range");
  }
  return static_cast<Semantics>(v);
}

EventId checked_event(std::uint32_t v, const Trace& trace) {
  if (v >= trace.num_events()) {
    throw ProtocolError("event id " + std::to_string(v) +
                        " out of range for a " +
                        std::to_string(trace.num_events()) + "-event trace");
  }
  return static_cast<EventId>(v);
}

Frame unknown_trace(std::uint64_t request_id, std::uint64_t fingerprint) {
  return make_error(FrameType::kError, request_id, ErrorCode::kUnknownTrace,
                    "no trace registered under fingerprint " +
                        std::to_string(fingerprint));
}

Frame bool_ok(std::uint64_t request_id, bool value) {
  WireWriter w;
  w.u8(value ? 1 : 0);
  return make_frame(FrameType::kBoolOk, request_id, w.take());
}

}  // namespace

Frame Daemon::run_pair_query(Connection& conn, const Frame& frame) {
  WireReader r(frame.payload);
  const std::uint64_t fp = r.u64();
  const RelationKind relation = checked_relation(r.u8());
  const Semantics semantics = checked_semantics(r.u8());
  const std::uint32_t a = r.u32();
  const std::uint32_t b = r.u32();
  auto session = session_for(conn, fp);
  if (session == nullptr) return unknown_trace(frame.request_id, fp);
  service::PairQuery q;
  q.relation = relation;
  q.semantics = semantics;
  q.a = checked_event(a, session->trace());
  q.b = checked_event(b, session->trace());
  return bool_ok(frame.request_id, session->pair_query(q));
}

Frame Daemon::run_batch_query(Connection& conn, const Frame& frame) {
  WireReader r(frame.payload);
  const std::uint64_t fp = r.u64();
  const std::uint32_t count = r.u32();
  auto session = session_for(conn, fp);
  if (session == nullptr) return unknown_trace(frame.request_id, fp);
  // Each item is 10 bytes; an absurd count fails fast instead of
  // reserving gigabytes on a lie.
  if (static_cast<std::uint64_t>(count) * 10 > r.remaining()) {
    throw ProtocolError("batch count " + std::to_string(count) +
                        " exceeds the payload");
  }
  std::vector<service::PairQuery> queries;
  queries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    service::PairQuery q;
    q.relation = checked_relation(r.u8());
    q.semantics = checked_semantics(r.u8());
    q.a = checked_event(r.u32(), session->trace());
    q.b = checked_event(r.u32(), session->trace());
    queries.push_back(q);
  }
  const std::vector<bool> answers = session->query_batch(queries);
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(answers.size()));
  for (const bool v : answers) w.u8(v ? 1 : 0);
  return make_frame(FrameType::kBatchOk, frame.request_id, w.take());
}

Frame Daemon::run_deadlock_query(Connection& conn, const Frame& frame) {
  WireReader r(frame.payload);
  const std::uint64_t fp = r.u64();
  auto session = session_for(conn, fp);
  if (session == nullptr) return unknown_trace(frame.request_id, fp);
  return bool_ok(frame.request_id, session->deadlocks()->can_deadlock);
}

Frame Daemon::run_race_query(Connection& conn, const Frame& frame) {
  WireReader r(frame.payload);
  const std::uint64_t fp = r.u64();
  const std::uint8_t detector = r.u8();
  if (detector > static_cast<std::uint8_t>(RaceDetector::kGuaranteed)) {
    throw ProtocolError("race detector " + std::to_string(detector) +
                        " out of range");
  }
  auto session = session_for(conn, fp);
  if (session == nullptr) return unknown_trace(frame.request_id, fp);
  const auto report = session->races(static_cast<RaceDetector>(detector));
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(report->candidate_pairs));
  w.u8(report->truncated ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(report->races.size()));
  for (const Race& race : report->races) {
    w.u32(race.a);
    w.u32(race.b);
    w.u8(race.hidden_in_observed ? 1 : 0);
  }
  return make_frame(FrameType::kRaceOk, frame.request_id, w.take());
}

Frame Daemon::run_anytime_query(Connection& conn, const Frame& frame) {
  WireReader r(frame.payload);
  const std::uint64_t fp = r.u64();
  const std::uint8_t which = r.u8();
  const Semantics semantics = checked_semantics(r.u8());
  const std::uint32_t a = r.u32();
  const std::uint32_t b = r.u32();
  const std::uint32_t deadline_ms = r.u32();
  if (which > 2) {
    throw ProtocolError("anytime query selector " + std::to_string(which) +
                        " out of range");
  }
  auto session = session_for(conn, fp);
  if (session == nullptr) return unknown_trace(frame.request_id, fp);
  // Deadline propagation: the client's wall-clock budget becomes a
  // time-boxed ladder, so expiry degrades to a sound verdict instead of
  // erroring out.  Rung memory is additionally clamped to the tenant's
  // cache share so one tenant's big query cannot blow the global
  // budget.
  std::vector<QueryBudget> ladder = options_.anytime_ladder;
  if (deadline_ms != 0) {
    ladder = deadline_ladder(static_cast<double>(deadline_ms) / 1000.0);
    std::uint64_t share = options_.cache_budget_bytes;
    {
      std::lock_guard<std::mutex> lock(mu_);
      share = std::max<std::uint64_t>(
          1, options_.cache_budget_bytes / std::max<std::size_t>(
                                               1, tenants_.size()));
    }
    for (QueryBudget& rung : ladder) {
      if (rung.max_memory_bytes == 0 || rung.max_memory_bytes > share) {
        rung.max_memory_bytes = share;
      }
    }
  }
  BoundedVerdict verdict;
  switch (which) {
    case 0:
      verdict = session->anytime_must_have_happened_before(
          checked_event(a, session->trace()),
          checked_event(b, session->trace()), semantics, ladder);
      break;
    case 1:
      verdict = session->anytime_could_have_been_concurrent(
          checked_event(a, session->trace()),
          checked_event(b, session->trace()), ladder);
      break;
    default:
      verdict = session->anytime_can_deadlock(ladder);
      break;
  }
  const bool degraded = !verdict.provenance.exact_complete;
  if (deadline_ms != 0 && verdict.provenance.truncated) {
    session->note_deadline_degraded();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deadline_degraded;
  }
  if (which != 2) {
    breaker_account(conn, fp, *session, verdict.unknown(),
                    verdict.provenance.oracle_exhausted);
  }
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(verdict.state));
  w.u8(degraded ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(
      std::min<std::size_t>(verdict.provenance.rungs_tried, 255)));
  w.u8(verdict.provenance.oracle_exhausted ? 1 : 0);
  w.string(verdict.provenance.engine);
  return make_frame(FrameType::kVerdictOk, frame.request_id, w.take());
}

void Daemon::breaker_account(Connection& conn, std::uint64_t fingerprint,
                             service::AnalysisSession& session, bool unknown,
                             bool oracle_exhausted) {
  if (options_.breaker_threshold == 0) return;
  bool trip = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint32_t& misses = conn.tenant->oracle_exhaustions[fingerprint];
    if (unknown && oracle_exhausted) {
      if (++misses >= options_.breaker_threshold) trip = true;
    } else {
      // Any decided answer (or an unknown the oracle was not even the
      // bottleneck for) resets the consecutive-exhaustion streak.
      misses = 0;
    }
  }
  // Trip outside mu_: the session takes its own lock and the two must
  // stay disjoint.
  if (trip && session.use_sat_oracle()) {
    session.set_use_sat_oracle(false);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.breaker_trips;
  }
}

Frame Daemon::health_reply(std::uint64_t request_id) {
  DaemonStats s;
  std::uint64_t in_flight = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
    in_flight = in_flight_;
  }
  WireWriter w;
  w.u64(s.connections_accepted);
  w.u64(s.connections_dropped);
  w.u64(s.frames_received);
  w.u64(s.replies_sent);
  w.u64(s.requests_served);
  w.u64(s.protocol_errors);
  w.u64(s.bad_requests);
  w.u64(s.sheds);
  w.u64(s.rejections);
  w.u64(s.shutting_down_replies);
  w.u64(s.deadline_degraded);
  w.u64(s.breaker_trips);
  w.u64(in_flight);
  return make_frame(FrameType::kHealthOk, request_id, w.take());
}

}  // namespace evord::daemon
