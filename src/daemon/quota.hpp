// Per-tenant admission control for the evord daemon.
//
// A TokenBucket is the classic rate limiter: `capacity` tokens of
// burst, refilled continuously at `refill_per_sec`.  Each admitted
// request costs one token; an empty bucket means the tenant is over
// quota and the daemon answers kRejected — an EXPLICIT signal the
// client can back off on, never a silent stall.
//
// refill_per_sec == 0 disables refill entirely: the bucket holds
// exactly `capacity` admissions for its lifetime, which is what the
// tests use to exercise quota exhaustion deterministically (no clock in
// the assertion path).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>

namespace evord::daemon {

class TokenBucket {
 public:
  TokenBucket(double capacity, double refill_per_sec)
      : capacity_(std::max(0.0, capacity)),
        refill_per_sec_(std::max(0.0, refill_per_sec)),
        tokens_(capacity_),
        last_(Clock::now()) {}

  /// Takes one token if available.  O(1), internally locked.
  bool try_acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    refill_locked();
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() {
    std::lock_guard<std::mutex> lock(mu_);
    refill_locked();
    return tokens_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  void refill_locked() {
    if (refill_per_sec_ <= 0.0) return;
    const Clock::time_point now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - last_).count();
    last_ = now;
    tokens_ = std::min(capacity_, tokens_ + elapsed * refill_per_sec_);
  }

  const double capacity_;
  const double refill_per_sec_;
  std::mutex mu_;
  double tokens_;
  Clock::time_point last_;
};

}  // namespace evord::daemon
