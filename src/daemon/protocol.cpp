#include "daemon/protocol.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "util/fault.hpp"

namespace evord::daemon {

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kRegisterTrace:
      return "register-trace";
    case FrameType::kPairQuery:
      return "pair-query";
    case FrameType::kBatchQuery:
      return "batch-query";
    case FrameType::kDeadlockQuery:
      return "deadlock-query";
    case FrameType::kRaceQuery:
      return "race-query";
    case FrameType::kAnytimeQuery:
      return "anytime-query";
    case FrameType::kHealth:
      return "health";
    case FrameType::kHelloOk:
      return "hello-ok";
    case FrameType::kTraceOk:
      return "trace-ok";
    case FrameType::kBoolOk:
      return "bool-ok";
    case FrameType::kBatchOk:
      return "batch-ok";
    case FrameType::kRaceOk:
      return "race-ok";
    case FrameType::kVerdictOk:
      return "verdict-ok";
    case FrameType::kHealthOk:
      return "health-ok";
    case FrameType::kError:
      return "error";
    case FrameType::kRejected:
      return "rejected";
    case FrameType::kOverloaded:
      return "overloaded";
    case FrameType::kShuttingDown:
      return "shutting-down";
  }
  return "unknown";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone:
      return "none";
    case ErrorCode::kProtocolError:
      return "protocol-error";
    case ErrorCode::kUnknownTrace:
      return "unknown-trace";
    case ErrorCode::kParseError:
      return "parse-error";
    case ErrorCode::kBadRequest:
      return "bad-request";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

// ---------------------------------------------------------------- codec

std::uint8_t WireReader::u8() {
  if (pos_ + 1 > size_) throw ProtocolError("payload underflow reading u8");
  return data_[pos_++];
}

std::uint32_t WireReader::u32() {
  if (pos_ + 4 > size_) throw ProtocolError("payload underflow reading u32");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  if (pos_ + 8 > size_) throw ProtocolError("payload underflow reading u64");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

std::string WireReader::string() {
  const std::uint32_t n = u32();
  if (pos_ + n > size_) {
    throw ProtocolError("payload underflow reading string body");
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back((v >> (8 * i)) & 0xff);
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back((v >> (8 * i)) & 0xff);
}

void WireWriter::string(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

// ------------------------------------------------------------- frame I/O

namespace {

/// recv() exactly n bytes.  Returns kFrame when all arrived, kEof on a
/// clean close at offset 0, kTimeout when SO_RCVTIMEO expired at offset
/// 0.  A close or timeout MID-buffer is a framing violation (the peer
/// died between the length prefix and the body) and throws.
ReadResult recv_exact(int fd, std::uint8_t* buf, std::size_t n,
                      bool mid_frame) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (got == 0 && !mid_frame) return ReadResult::kTimeout;
      throw ProtocolError("stream stalled mid-frame (receive timeout)");
    }
    if (r == 0) {
      if (got == 0 && !mid_frame) return ReadResult::kEof;
      throw ProtocolError("stream truncated mid-frame");
    }
    throw ProtocolError(std::string("recv failed: ") + std::strerror(errno));
  }
  return ReadResult::kFrame;
}

bool send_all(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
#ifdef MSG_NOSIGNAL
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
#else
    const ssize_t r = ::send(fd, buf + sent, n - sent, 0);
#endif
    if (r > 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

ReadResult read_frame(int fd, Frame& frame, std::uint32_t max_frame_bytes) {
  std::uint8_t prefix[4];
  const ReadResult first =
      recv_exact(fd, prefix, sizeof(prefix), /*mid_frame=*/false);
  if (first != ReadResult::kFrame) return first;
  std::uint32_t length = 0;
  for (int i = 3; i >= 0; --i) length = (length << 8) | prefix[i];
  if (length < kFrameOverhead) {
    throw ProtocolError("frame length " + std::to_string(length) +
                        " below the header overhead");
  }
  if (length > max_frame_bytes) {
    throw ProtocolError("frame length " + std::to_string(length) +
                        " exceeds the " + std::to_string(max_frame_bytes) +
                        "-byte ceiling");
  }
  std::vector<std::uint8_t> body(length);
  recv_exact(fd, body.data(), body.size(), /*mid_frame=*/true);
  WireReader r(body);
  frame.version = r.u8();
  if (frame.version != kProtocolVersion) {
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(frame.version));
  }
  frame.type = r.u8();
  frame.request_id = r.u64();
  frame.payload.assign(body.begin() + kFrameOverhead, body.end());
  return ReadResult::kFrame;
}

bool write_frame(int fd, const Frame& frame) {
  WireWriter w;
  w.u32(kFrameOverhead + static_cast<std::uint32_t>(frame.payload.size()));
  w.u8(frame.version);
  w.u8(frame.type);
  w.u64(frame.request_id);
  std::vector<std::uint8_t> bytes = w.take();
  bytes.insert(bytes.end(), frame.payload.begin(), frame.payload.end());

  const fault::FrameSendAction action = fault::on_frame_send();
  if (action != fault::FrameSendAction::kProceed) {
    // Sabotage this one frame: emit a PARTIAL prefix, then either sever
    // the stream (mid-frame disconnect) or stall past any reasonable
    // idle timeout (slow loris) before finishing.
    const std::size_t partial = bytes.size() / 2;
    if (!send_all(fd, bytes.data(), partial)) return false;
    if (action == fault::FrameSendAction::kDisconnect) {
      ::shutdown(fd, SHUT_RDWR);
      return false;
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(fault::frame_stall_micros()));
    return send_all(fd, bytes.data() + partial, bytes.size() - partial);
  }
  return send_all(fd, bytes.data(), bytes.size());
}

Frame make_frame(FrameType type, std::uint64_t request_id,
                 std::vector<std::uint8_t> payload) {
  Frame f;
  f.type = static_cast<std::uint8_t>(type);
  f.request_id = request_id;
  f.payload = std::move(payload);
  return f;
}

Frame make_error(FrameType type, std::uint64_t request_id, ErrorCode code,
                 const std::string& message) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(code));
  w.string(message);
  return make_frame(type, request_id, w.take());
}

}  // namespace evord::daemon
