#include "daemon/client.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace evord::daemon {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void set_socket_timeout(int fd, int millis) {
  if (millis <= 0) return;
  timeval tv;
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

const char* to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kOverloaded:
      return "overloaded";
    case RequestStatus::kShuttingDown:
      return "shutting-down";
    case RequestStatus::kError:
      return "error";
    case RequestStatus::kTransport:
      return "transport";
  }
  return "unknown";
}

DaemonClient::DaemonClient(ClientOptions options)
    : options_(std::move(options)),
      id_state_(options_.seed),
      rng_state_(options_.seed | 1) {}

DaemonClient::~DaemonClient() { disconnect(); }

void DaemonClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t DaemonClient::next_id() {
  // Ids only need to be distinct within this client's stream; a seeded
  // splitmix64 walk keeps them reproducible across test runs.
  return splitmix64(id_state_);
}

std::uint32_t DaemonClient::backoff_ms(std::size_t attempt) {
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  const std::uint32_t base =
      options_.backoff_base_ms * (1u << std::min<std::size_t>(attempt, 10));
  // Full jitter in [base/2, base]: desynchronizes a herd of clients all
  // retrying after the same daemon hiccup.
  return base / 2 + static_cast<std::uint32_t>(
                        rng_state_ % (static_cast<std::uint64_t>(base) / 2 + 1));
}

bool DaemonClient::connect_and_hello() {
  disconnect();
  int fd = -1;
  if (!options_.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) return false;
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return false;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      return false;
    }
  } else if (options_.tcp_port != 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.tcp_port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      return false;
    }
  } else {
    return false;
  }
  set_socket_timeout(fd, options_.timeout_ms);
  fd_ = fd;
  WireWriter w;
  w.string(options_.tenant);
  Frame hello = make_frame(FrameType::kHello, next_id(), w.take());
  Frame reply;
  if (!attempt(hello, reply) ||
      reply.type != static_cast<std::uint8_t>(FrameType::kHelloOk)) {
    disconnect();
    return false;
  }
  return true;
}

bool DaemonClient::attempt(const Frame& request, Frame& reply) {
  if (fd_ < 0) return false;
  if (!write_frame(fd_, request)) return false;
  // Skip stale replies (a previous attempt's answer arriving late after
  // we resent): only the frame echoing OUR id settles this request.
  for (;;) {
    try {
      const ReadResult rr = read_frame(fd_, reply, options_.max_frame_bytes);
      if (rr != ReadResult::kFrame) return false;
    } catch (const ProtocolError&) {
      return false;
    }
    if (reply.request_id == request.request_id) return true;
  }
}

bool DaemonClient::roundtrip(FrameType type, std::vector<std::uint8_t> payload,
                             Frame& reply) {
  Frame request = make_frame(type, next_id(), std::move(payload));
  for (std::size_t tries = 0; tries <= options_.max_retries; ++tries) {
    if (tries > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoff_ms(tries - 1)));
    }
    if (fd_ < 0 && !connect_and_hello()) continue;
    // SAME request id on every attempt: the protocol's requests are all
    // idempotent, so a retry racing its lost predecessor is harmless.
    if (attempt(request, reply)) return true;
    disconnect();
  }
  return false;
}

bool DaemonClient::raw_roundtrip(const Frame& request, Frame& reply) {
  if (fd_ < 0 && !connect_and_hello()) return false;
  if (!attempt(request, reply)) {
    disconnect();
    return false;
  }
  return true;
}

bool DaemonClient::decode_envelope(const Frame& reply, FrameType expected,
                                   ReplyEnvelope& env) {
  const auto type = static_cast<FrameType>(reply.type);
  if (type == expected) {
    env.status = RequestStatus::kOk;
    return true;
  }
  switch (type) {
    case FrameType::kRejected:
      env.status = RequestStatus::kRejected;
      break;
    case FrameType::kOverloaded:
      env.status = RequestStatus::kOverloaded;
      break;
    case FrameType::kShuttingDown:
      env.status = RequestStatus::kShuttingDown;
      break;
    default:
      env.status = RequestStatus::kError;
      break;
  }
  try {
    WireReader r(reply.payload);
    env.code = static_cast<ErrorCode>(r.u8());
    env.message = r.string();
  } catch (const ProtocolError&) {
    env.code = ErrorCode::kProtocolError;
    env.message = "garbled error payload";
  }
  return false;
}

TraceReply DaemonClient::register_trace(const std::string& trace_text) {
  TraceReply out;
  WireWriter w;
  w.string(trace_text);
  Frame reply;
  if (!roundtrip(FrameType::kRegisterTrace, w.take(), reply)) return out;
  if (!decode_envelope(reply, FrameType::kTraceOk, out)) return out;
  try {
    WireReader r(reply.payload);
    out.fingerprint = r.u64();
    out.num_events = r.u32();
    out.dedup = r.u8() != 0;
  } catch (const ProtocolError&) {
    out.status = RequestStatus::kTransport;
  }
  return out;
}

BoolReply DaemonClient::pair_query(std::uint64_t fingerprint,
                                   const PairQuerySpec& q) {
  BoolReply out;
  WireWriter w;
  w.u64(fingerprint);
  w.u8(q.relation);
  w.u8(q.semantics);
  w.u32(q.a);
  w.u32(q.b);
  Frame reply;
  if (!roundtrip(FrameType::kPairQuery, w.take(), reply)) return out;
  if (!decode_envelope(reply, FrameType::kBoolOk, out)) return out;
  try {
    WireReader r(reply.payload);
    out.value = r.u8() != 0;
  } catch (const ProtocolError&) {
    out.status = RequestStatus::kTransport;
  }
  return out;
}

BatchReply DaemonClient::batch_query(std::uint64_t fingerprint,
                                     const std::vector<PairQuerySpec>& queries) {
  BatchReply out;
  WireWriter w;
  w.u64(fingerprint);
  w.u32(static_cast<std::uint32_t>(queries.size()));
  for (const PairQuerySpec& q : queries) {
    w.u8(q.relation);
    w.u8(q.semantics);
    w.u32(q.a);
    w.u32(q.b);
  }
  Frame reply;
  if (!roundtrip(FrameType::kBatchQuery, w.take(), reply)) return out;
  if (!decode_envelope(reply, FrameType::kBatchOk, out)) return out;
  try {
    WireReader r(reply.payload);
    const std::uint32_t count = r.u32();
    out.values.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) out.values.push_back(r.u8() != 0);
  } catch (const ProtocolError&) {
    out.status = RequestStatus::kTransport;
    out.values.clear();
  }
  return out;
}

BoolReply DaemonClient::deadlock_query(std::uint64_t fingerprint) {
  BoolReply out;
  WireWriter w;
  w.u64(fingerprint);
  Frame reply;
  if (!roundtrip(FrameType::kDeadlockQuery, w.take(), reply)) return out;
  if (!decode_envelope(reply, FrameType::kBoolOk, out)) return out;
  try {
    WireReader r(reply.payload);
    out.value = r.u8() != 0;
  } catch (const ProtocolError&) {
    out.status = RequestStatus::kTransport;
  }
  return out;
}

RaceReply DaemonClient::race_query(std::uint64_t fingerprint,
                                   std::uint8_t detector) {
  RaceReply out;
  WireWriter w;
  w.u64(fingerprint);
  w.u8(detector);
  Frame reply;
  if (!roundtrip(FrameType::kRaceQuery, w.take(), reply)) return out;
  if (!decode_envelope(reply, FrameType::kRaceOk, out)) return out;
  try {
    WireReader r(reply.payload);
    out.candidate_pairs = r.u32();
    out.truncated = r.u8() != 0;
    const std::uint32_t count = r.u32();
    out.races.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      RaceInfo race;
      race.a = r.u32();
      race.b = r.u32();
      race.hidden_in_observed = r.u8() != 0;
      out.races.push_back(race);
    }
  } catch (const ProtocolError&) {
    out.status = RequestStatus::kTransport;
    out.races.clear();
  }
  return out;
}

VerdictReply DaemonClient::anytime_query(std::uint64_t fingerprint,
                                         std::uint8_t which,
                                         std::uint8_t semantics,
                                         std::uint32_t a, std::uint32_t b,
                                         std::uint32_t deadline_ms) {
  VerdictReply out;
  WireWriter w;
  w.u64(fingerprint);
  w.u8(which);
  w.u8(semantics);
  w.u32(a);
  w.u32(b);
  w.u32(deadline_ms);
  Frame reply;
  if (!roundtrip(FrameType::kAnytimeQuery, w.take(), reply)) return out;
  if (!decode_envelope(reply, FrameType::kVerdictOk, out)) return out;
  try {
    WireReader r(reply.payload);
    out.state = r.u8();
    out.degraded = r.u8() != 0;
    out.rungs_tried = r.u8();
    out.oracle_exhausted = r.u8() != 0;
    out.engine = r.string();
  } catch (const ProtocolError&) {
    out.status = RequestStatus::kTransport;
  }
  return out;
}

HealthReply DaemonClient::health() {
  HealthReply out;
  Frame reply;
  if (!roundtrip(FrameType::kHealth, {}, reply)) return out;
  if (!decode_envelope(reply, FrameType::kHealthOk, out)) return out;
  try {
    WireReader r(reply.payload);
    out.connections_accepted = r.u64();
    out.connections_dropped = r.u64();
    out.frames_received = r.u64();
    out.replies_sent = r.u64();
    out.requests_served = r.u64();
    out.protocol_errors = r.u64();
    out.bad_requests = r.u64();
    out.sheds = r.u64();
    out.rejections = r.u64();
    out.shutting_down_replies = r.u64();
    out.deadline_degraded = r.u64();
    out.breaker_trips = r.u64();
    out.in_flight = r.u64();
  } catch (const ProtocolError&) {
    out.status = RequestStatus::kTransport;
  }
  return out;
}

}  // namespace evord::daemon
