// Data-race detection — the application the paper closes with: "an
// implication of these results is that exhaustively detecting all data
// races potentially exhibited by a given program execution is an
// intractable problem."
//
// A candidate race is a pair of conflicting shared accesses in different
// processes.  Three detectors are provided:
//
//   * exact      — the pair races iff it could-have-been-concurrent
//                  (CCW under causal semantics, quantifying over every
//                  feasible execution).  Exponential; exhaustive.
//   * observed   — vector clocks over the one observed execution, the
//                  classic polynomial detector.  Misses races that only
//                  alternate schedules expose.
//   * guaranteed — conflicting pairs not ordered by the must-have
//                  relation of a sound approximation (HMW for semaphore
//                  traces, EGP for event-style traces): a superset of the
//                  exact races on §5.3-style feasibility, never missing a
//                  race but possibly reporting spurious ones.
#pragma once

#include <string>
#include <vector>

#include "ordering/exact.hpp"
#include "trace/trace.hpp"

namespace evord {

enum class RaceDetector : std::uint8_t {
  kExact,
  kObserved,
  kGuaranteed,
};

const char* to_string(RaceDetector detector);

struct Race {
  EventId a = kNoEvent;
  EventId b = kNoEvent;  ///< a < b
  /// True iff the two events were causally ordered in the observed
  /// execution (the race needed an alternate schedule to surface).
  bool hidden_in_observed = false;
};

struct RaceReport {
  RaceDetector detector = RaceDetector::kExact;
  std::vector<Race> races;
  std::size_t candidate_pairs = 0;  ///< conflicting cross-process pairs
  bool truncated = false;           ///< exact search hit its budget
  /// Unified search-core statistics of the underlying exact analysis
  /// (which budget tripped, states, memo bytes); zeroed for the
  /// polynomial detectors, which do not search.
  search::SearchStats search;

  bool contains(EventId a, EventId b) const;
  std::string summary(const Trace& trace) const;

  /// Approximate resident bytes (race list + search-stats vectors); the
  /// unit the service result cache charges per cached RaceReport.
  std::uint64_t approx_bytes() const;
};

RaceReport detect_races_exact(const Trace& trace,
                              const ExactOptions& options = {});
/// Derives the exact report from ALREADY-COMPUTED race-semantics
/// relations (Semantics::kCausal with causal_data_edges = false): pure
/// bit reads over the CCW matrix, no search.  The sharing hook for the
/// service layer — a session that has the race-semantics relations
/// cached answers races() without a second exponential sweep, and the
/// derived report carries the relations' SearchStats verbatim.
RaceReport races_from_relations(const Trace& trace,
                                const OrderingRelations& relations);
RaceReport detect_races_observed(const Trace& trace);
RaceReport detect_races_guaranteed(const Trace& trace);

RaceReport detect_races(const Trace& trace, RaceDetector detector,
                        const ExactOptions& options = {});

}  // namespace evord
