#include "race/race_detector.hpp"

#include <algorithm>
#include <sstream>

#include "approx/combined.hpp"
#include "approx/vector_clock.hpp"
#include "graph/reachability.hpp"
#include "ordering/causal.hpp"

namespace evord {

const char* to_string(RaceDetector detector) {
  switch (detector) {
    case RaceDetector::kExact:
      return "exact";
    case RaceDetector::kObserved:
      return "observed";
    case RaceDetector::kGuaranteed:
      return "guaranteed";
  }
  return "?";
}

bool RaceReport::contains(EventId a, EventId b) const {
  if (a > b) std::swap(a, b);
  return std::any_of(races.begin(), races.end(), [&](const Race& r) {
    return r.a == a && r.b == b;
  });
}

std::string RaceReport::summary(const Trace& trace) const {
  std::ostringstream os;
  os << to_string(detector) << " detector: " << races.size() << " race(s) in "
     << candidate_pairs << " conflicting pair(s)";
  if (truncated) {
    os << " [truncated search: " << search::to_string(search.stop_reason)
       << "]";
  }
  os << '\n';
  for (const Race& r : races) {
    os << "  " << describe(trace.event(r.a)) << " <-> "
       << describe(trace.event(r.b));
    if (r.hidden_in_observed) os << "  (ordered in the observed execution)";
    os << '\n';
  }
  return os.str();
}

namespace {

RaceReport from_unordered_pairs(const Trace& trace,
                                const RelationMatrix& ordered,
                                RaceDetector detector) {
  // `ordered` is a happened-before-style relation; a candidate pair races
  // iff unordered in both directions.
  RaceReport report;
  report.detector = detector;
  const TransitiveClosure observed =
      observed_causal_closure(trace, {.include_data_edges = false});
  for (const auto& [a, b] : trace.conflicting_pairs()) {
    ++report.candidate_pairs;
    if (!ordered.holds(a, b) && !ordered.holds(b, a)) {
      Race r;
      r.a = std::min(a, b);
      r.b = std::max(a, b);
      r.hidden_in_observed = !observed.incomparable(a, b);
      report.races.push_back(r);
    }
  }
  return report;
}

}  // namespace

RaceReport races_from_relations(const Trace& trace,
                                const OrderingRelations& relations) {
  RaceReport report;
  report.detector = RaceDetector::kExact;
  report.truncated = relations.truncated;
  report.search = relations.search;
  const TransitiveClosure observed =
      observed_causal_closure(trace, {.include_data_edges = false});
  for (const auto& [a, b] : trace.conflicting_pairs()) {
    ++report.candidate_pairs;
    if (relations.holds(RelationKind::kCCW, a, b)) {
      Race r;
      r.a = std::min(a, b);
      r.b = std::max(a, b);
      r.hidden_in_observed = !observed.incomparable(a, b);
      report.races.push_back(r);
    }
  }
  return report;
}

RaceReport detect_races_exact(const Trace& trace,
                              const ExactOptions& options) {
  // Race semantics (Netzer & Miller [10]): concurrency is judged against
  // the SYNCHRONIZATION-only happened-before of each feasible execution;
  // the shared-data dependences still restrict which executions are
  // feasible (F3), they just do not count as orderings of the racing
  // pair itself.
  ExactOptions race_options = options;
  race_options.causal_data_edges = false;
  const OrderingRelations rel =
      compute_exact(trace, Semantics::kCausal, race_options);
  return races_from_relations(trace, rel);
}

RaceReport detect_races_observed(const Trace& trace) {
  const VectorClockResult vc = compute_vector_clocks(trace);
  return from_unordered_pairs(trace, vc.happened_before,
                              RaceDetector::kObserved);
}

RaceReport detect_races_guaranteed(const Trace& trace) {
  // The combined polynomial engine, WITHOUT the data edges: a racing
  // pair must be cleared by synchronization orderings only (its own
  // conflict edge is the thing under test).  Handles semaphore,
  // event-style and mixed traces uniformly.
  const CombinedResult combined =
      compute_combined(trace, {.include_data_edges = false});
  return from_unordered_pairs(trace, combined.guaranteed,
                              RaceDetector::kGuaranteed);
}

RaceReport detect_races(const Trace& trace, RaceDetector detector,
                        const ExactOptions& options) {
  switch (detector) {
    case RaceDetector::kExact:
      return detect_races_exact(trace, options);
    case RaceDetector::kObserved:
      return detect_races_observed(trace);
    case RaceDetector::kGuaranteed:
      return detect_races_guaranteed(trace);
  }
  return {};
}

std::uint64_t RaceReport::approx_bytes() const {
  return sizeof(RaceReport) + search.approx_bytes() +
         races.capacity() * sizeof(Race);
}

}  // namespace evord
