// Graphviz DOT export for digraphs, with optional node labels/attributes.
#pragma once

#include <functional>
#include <string>

#include "graph/digraph.hpp"

namespace evord {

struct DotOptions {
  std::string graph_name = "G";
  bool left_to_right = false;
  /// Returns the label for a node; default is the node id.
  std::function<std::string(NodeId)> node_label;
  /// Optional extra node attributes, e.g. R"(shape=box, color=red)".
  std::function<std::string(NodeId)> node_attrs;
  /// Optional per-edge attributes.
  std::function<std::string(NodeId, NodeId)> edge_attrs;
};

/// Serializes `g` to DOT.
std::string to_dot(const Digraph& g, const DotOptions& options = {});

}  // namespace evord
