#include "graph/transitive_reduction.hpp"

#include "graph/reachability.hpp"

namespace evord {

Digraph transitive_reduction(const Digraph& g) {
  const TransitiveClosure tc(g);
  const auto n = static_cast<NodeId>(g.num_nodes());
  Digraph reduced(n);
  // Edge u -> v is redundant iff some other successor w of u reaches v.
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.out(u)) {
      bool redundant = false;
      for (NodeId w : g.out(u)) {
        if (w != v && tc.reachable(w, v)) {
          redundant = true;
          break;
        }
      }
      if (!redundant) reduced.add_edge(u, v);
    }
  }
  reduced.finalize();
  return reduced;
}

}  // namespace evord
