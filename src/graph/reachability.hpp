// Reachability queries over DAGs.
//
// TransitiveClosure precomputes, per node, the full descendant set as a
// bitset row (bit-parallel DP over reverse topological order).  For a DAG
// with n nodes and m edges the build is O(n*m/64) and queries are O(1).
// This is the workhorse behind comparability queries on causal orders.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "util/dynamic_bitset.hpp"

namespace evord {

class TransitiveClosure {
 public:
  /// Builds the closure of `g`, which must be a DAG.
  explicit TransitiveClosure(const Digraph& g);

  std::size_t num_nodes() const noexcept { return rows_.size(); }

  /// True iff there is a directed path from u to v (u != v required for a
  /// strict-order reading; reachable(u, u) is false).
  bool reachable(NodeId u, NodeId v) const { return rows_[u].test(v); }

  /// True iff neither reaches the other.
  bool incomparable(NodeId u, NodeId v) const {
    return u != v && !reachable(u, v) && !reachable(v, u);
  }

  /// The full descendant set of `u` (excluding `u` itself).
  const DynamicBitset& descendants(NodeId u) const { return rows_[u]; }

  /// Number of ordered pairs (u, v) with u reaching v.
  std::size_t num_ordered_pairs() const;

 private:
  std::vector<DynamicBitset> rows_;
};

/// Single-source reachability (BFS); returns the set of nodes reachable
/// from `src`, excluding `src` itself unless it lies on a cycle through
/// itself.  Works on general digraphs.
DynamicBitset reachable_from(const Digraph& g, NodeId src);

/// Multi-source variant.
DynamicBitset reachable_from(const Digraph& g,
                             const std::vector<NodeId>& sources);

}  // namespace evord
