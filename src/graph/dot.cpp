#include "graph/dot.hpp"

#include <sstream>

namespace evord {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string to_dot(const Digraph& g, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph \"" << escape(options.graph_name) << "\" {\n";
  if (options.left_to_right) os << "  rankdir=LR;\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    os << "  n" << u;
    os << " [label=\""
       << escape(options.node_label ? options.node_label(u)
                                    : std::to_string(u))
       << '"';
    if (options.node_attrs) {
      const std::string attrs = options.node_attrs(u);
      if (!attrs.empty()) os << ", " << attrs;
    }
    os << "];\n";
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.out(u)) {
      os << "  n" << u << " -> n" << v;
      if (options.edge_attrs) {
        const std::string attrs = options.edge_attrs(u, v);
        if (!attrs.empty()) os << " [" << attrs << ']';
      }
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace evord
