// Topological ordering and cycle detection.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace evord {

/// Kahn's algorithm.  Returns a topological order of all nodes, or
/// nullopt if the graph has a cycle.  Ties are broken by smallest node id,
/// making the order deterministic.
std::optional<std::vector<NodeId>> topological_sort(const Digraph& g);

/// True iff `g` is acyclic.
bool is_acyclic(const Digraph& g);

/// Returns one directed cycle (as a node sequence, first == last) if the
/// graph is cyclic, nullopt otherwise.  Used for diagnostics in the axiom
/// validator.
std::optional<std::vector<NodeId>> find_cycle(const Digraph& g);

}  // namespace evord
