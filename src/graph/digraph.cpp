#include "graph/digraph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace evord {

Digraph::Digraph(std::size_t num_nodes) : out_(num_nodes), in_(num_nodes) {}

NodeId Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

void Digraph::ensure_nodes(std::size_t n) {
  if (n > out_.size()) {
    out_.resize(n);
    in_.resize(n);
  }
}

void Digraph::add_edge(NodeId u, NodeId v) {
  EVORD_CHECK(u < out_.size() && v < out_.size(),
              "edge endpoint out of range: " << u << " -> " << v);
  out_[u].push_back(v);
  in_[v].push_back(u);
  finalized_ = false;
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  EVORD_CHECK(u < out_.size() && v < out_.size(), "node out of range");
  if (finalized_) {
    return std::binary_search(out_[u].begin(), out_[u].end(), v);
  }
  return std::find(out_[u].begin(), out_[u].end(), v) != out_[u].end();
}

void Digraph::finalize() {
  if (finalized_) return;
  num_edges_ = 0;
  for (auto* lists : {&out_, &in_}) {
    for (auto& adj : *lists) {
      std::sort(adj.begin(), adj.end());
      adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    }
  }
  for (const auto& adj : out_) num_edges_ += adj.size();
  finalized_ = true;
}

std::vector<NodeId> Digraph::sources() const {
  std::vector<NodeId> result;
  for (NodeId u = 0; u < in_.size(); ++u) {
    if (in_[u].empty()) result.push_back(u);
  }
  return result;
}

std::vector<NodeId> Digraph::sinks() const {
  std::vector<NodeId> result;
  for (NodeId u = 0; u < out_.size(); ++u) {
    if (out_[u].empty()) result.push_back(u);
  }
  return result;
}

Digraph Digraph::reversed() const {
  Digraph rev(num_nodes());
  for (NodeId u = 0; u < out_.size(); ++u) {
    for (NodeId v : out_[u]) rev.add_edge(v, u);
  }
  rev.finalize();
  return rev;
}

bool Digraph::operator==(const Digraph& o) const {
  if (num_nodes() != o.num_nodes()) return false;
  Digraph a = *this;
  Digraph b = o;
  a.finalize();
  b.finalize();
  return a.out_ == b.out_;
}

}  // namespace evord
