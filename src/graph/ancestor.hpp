// Ancestor queries on DAGs, including the "closest common ancestor" set
// used by the Emrath–Ghosh–Padua task-graph construction: given a set of
// nodes S, the common ancestors are nodes reaching every member of S, and
// the *closest* common ancestors are the maximal ones (those not reaching
// another common ancestor... precisely: a common ancestor c is closest if
// no other common ancestor c' is reachable FROM c; i.e. c is as late as
// possible).
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "graph/reachability.hpp"

namespace evord {

/// All strict ancestors of `v` (nodes with a path to `v`).
DynamicBitset ancestors_of(const Digraph& g, NodeId v);

/// Nodes that are strict ancestors of every node in `nodes`.
/// Empty `nodes` yields an empty set.
DynamicBitset common_ancestors(const Digraph& g,
                               const std::vector<NodeId>& nodes);

/// The maximal (latest) common ancestors of `nodes`: common ancestors from
/// which no other common ancestor is reachable.  This is EGP's "closest
/// common ancestor" generalized to DAGs, where it need not be unique.
std::vector<NodeId> closest_common_ancestors(const Digraph& g,
                                             const std::vector<NodeId>& nodes);

}  // namespace evord
