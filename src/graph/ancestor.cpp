#include "graph/ancestor.hpp"

namespace evord {

DynamicBitset ancestors_of(const Digraph& g, NodeId v) {
  // Ancestors of v = nodes reachable from v in the reversed graph.
  // For repeated queries callers should reverse once; this helper favors
  // clarity for the one-shot EGP use case.
  return reachable_from(g.reversed(), v);
}

DynamicBitset common_ancestors(const Digraph& g,
                               const std::vector<NodeId>& nodes) {
  DynamicBitset result(g.num_nodes());
  if (nodes.empty()) return result;
  const Digraph rev = g.reversed();
  result = reachable_from(rev, nodes.front());
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    result &= reachable_from(rev, nodes[i]);
  }
  // A node in `nodes` may appear as an ancestor of the others; that is
  // legitimate for EGP (a Post may itself dominate the other Posts), but a
  // node is never its own strict ancestor, which reachable_from already
  // guarantees for DAGs.
  return result;
}

std::vector<NodeId> closest_common_ancestors(
    const Digraph& g, const std::vector<NodeId>& nodes) {
  const DynamicBitset ca = common_ancestors(g, nodes);
  std::vector<NodeId> result;
  if (ca.none()) return result;
  const TransitiveClosure tc(g);
  for (std::size_t c = ca.find_first(); c < ca.size(); c = ca.find_next(c)) {
    bool maximal = true;
    for (std::size_t d = ca.find_first(); d < ca.size();
         d = ca.find_next(d)) {
      if (d != c && tc.reachable(static_cast<NodeId>(c),
                                 static_cast<NodeId>(d))) {
        maximal = false;  // c reaches a later common ancestor
        break;
      }
    }
    if (maximal) result.push_back(static_cast<NodeId>(c));
  }
  return result;
}

}  // namespace evord
