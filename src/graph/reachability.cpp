#include "graph/reachability.hpp"

#include <deque>

#include "graph/topo.hpp"
#include "util/check.hpp"

namespace evord {

TransitiveClosure::TransitiveClosure(const Digraph& g) {
  const std::size_t n = g.num_nodes();
  rows_.assign(n, DynamicBitset(n));
  auto order = topological_sort(g);
  EVORD_CHECK(order.has_value(), "TransitiveClosure requires a DAG");
  // Process nodes in reverse topological order so every successor's row is
  // complete when it is merged (bit-parallel union; Per.19 sequential word
  // access).
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId u = *it;
    for (NodeId v : g.out(u)) {
      rows_[u].set(v);
      rows_[u] |= rows_[v];
    }
  }
}

std::size_t TransitiveClosure::num_ordered_pairs() const {
  std::size_t total = 0;
  for (const auto& row : rows_) total += row.count();
  return total;
}

DynamicBitset reachable_from(const Digraph& g, NodeId src) {
  return reachable_from(g, std::vector<NodeId>{src});
}

DynamicBitset reachable_from(const Digraph& g,
                             const std::vector<NodeId>& sources) {
  DynamicBitset seen(g.num_nodes());
  std::deque<NodeId> frontier;
  for (NodeId s : sources) {
    for (NodeId v : g.out(s)) {
      if (!seen.test(v)) {
        seen.set(v);
        frontier.push_back(v);
      }
    }
  }
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : g.out(u)) {
      if (!seen.test(v)) {
        seen.set(v);
        frontier.push_back(v);
      }
    }
  }
  return seen;
}

}  // namespace evord
