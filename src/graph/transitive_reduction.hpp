// Transitive reduction of a DAG: the unique minimal edge set with the same
// reachability.  Used to render causal orders compactly in DOT output and
// to normalize relation graphs before comparison.
#pragma once

#include "graph/digraph.hpp"

namespace evord {

/// Returns the transitive reduction of DAG `g`.
/// O(n * m / 64) using closure rows.
Digraph transitive_reduction(const Digraph& g);

}  // namespace evord
