// Directed graph over dense node ids [0, n).
//
// Used for causal orders, task graphs and relation graphs.  Nodes are
// plain indices so the graph composes with the trace module's EventId
// without any mapping layer.  Edges are deduplicated lazily: `add_edge`
// is O(1) amortized and `finalize()` (or any algorithm that needs clean
// adjacency) sorts and uniques.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace evord {

using NodeId = std::uint32_t;

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t num_nodes);

  std::size_t num_nodes() const noexcept { return out_.size(); }
  std::size_t num_edges() const noexcept { return num_edges_; }

  /// Adds a node and returns its id.
  NodeId add_node();
  /// Grows the node set so `num_nodes() >= n`.
  void ensure_nodes(std::size_t n);

  /// Adds edge u -> v (parallel edges collapse at finalize time).
  void add_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;

  /// Sorts and dedupes adjacency lists; recomputes the edge count.
  /// Idempotent; algorithms in this module call it as needed.
  void finalize();
  bool finalized() const noexcept { return finalized_; }

  std::span<const NodeId> out(NodeId u) const {
    return {out_[u].data(), out_[u].size()};
  }
  std::span<const NodeId> in(NodeId u) const {
    return {in_[u].data(), in_[u].size()};
  }

  std::size_t out_degree(NodeId u) const { return out_[u].size(); }
  std::size_t in_degree(NodeId u) const { return in_[u].size(); }

  /// Nodes with no incoming / no outgoing edges.
  std::vector<NodeId> sources() const;
  std::vector<NodeId> sinks() const;

  /// The edge-reversed graph.
  Digraph reversed() const;

  bool operator==(const Digraph& o) const;

 private:
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::size_t num_edges_ = 0;
  bool finalized_ = true;  // empty graph is trivially finalized
};

}  // namespace evord
