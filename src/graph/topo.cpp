#include "graph/topo.hpp"

#include <algorithm>
#include <queue>

namespace evord {

std::optional<std::vector<NodeId>> topological_sort(const Digraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::size_t> indegree(n);
  for (NodeId u = 0; u < n; ++u) indegree[u] = g.in(u).size();

  // Min-heap for deterministic tie-breaking.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId u = 0; u < n; ++u) {
    if (indegree[u] == 0) ready.push(u);
  }

  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId u = ready.top();
    ready.pop();
    order.push_back(u);
    for (NodeId v : g.out(u)) {
      if (--indegree[v] == 0) ready.push(v);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool is_acyclic(const Digraph& g) { return topological_sort(g).has_value(); }

std::optional<std::vector<NodeId>> find_cycle(const Digraph& g) {
  const std::size_t n = g.num_nodes();
  enum class Color : unsigned char { kWhite, kGray, kBlack };
  std::vector<Color> color(n, Color::kWhite);
  std::vector<NodeId> parent(n, static_cast<NodeId>(n));

  // Iterative DFS keeping an explicit stack of (node, next-child index).
  for (NodeId root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite) continue;
    std::vector<std::pair<NodeId, std::size_t>> stack;
    stack.emplace_back(root, 0);
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [u, idx] = stack.back();
      const auto adj = g.out(u);
      if (idx < adj.size()) {
        const NodeId v = adj[idx++];
        if (color[v] == Color::kWhite) {
          color[v] = Color::kGray;
          parent[v] = u;
          stack.emplace_back(v, 0);
        } else if (color[v] == Color::kGray) {
          // Found a back edge u -> v; walk parents from u back to v.
          std::vector<NodeId> cycle{v};
          for (NodeId w = u; w != v; w = parent[w]) cycle.push_back(w);
          cycle.push_back(v);
          std::reverse(cycle.begin() + 1, cycle.end() - 1);
          return cycle;
        }
      } else {
        color[u] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

}  // namespace evord
