#include "sync/sync_state.hpp"

#include "util/check.hpp"

namespace evord {

SyncState::SyncState(const std::vector<SemaphoreInfo>& semaphores,
                     const std::vector<EventVarInfo>& event_vars)
    : posted_(event_vars.size()) {
  counts_.reserve(semaphores.size());
  binary_.reserve(semaphores.size());
  for (const SemaphoreInfo& s : semaphores) {
    counts_.push_back(s.initial);
    binary_.push_back(s.binary);
  }
  for (std::size_t i = 0; i < event_vars.size(); ++i) {
    posted_.set(i, event_vars[i].initially_posted);
  }
}

bool SyncState::enabled(EventKind kind, ObjectId object) const {
  switch (kind) {
    case EventKind::kSemP:
      return counts_[object] > 0;
    case EventKind::kWait:
      return posted_.test(object);
    default:
      return true;
  }
}

void SyncState::apply(EventKind kind, ObjectId object) {
  switch (kind) {
    case EventKind::kSemP:
      EVORD_DCHECK(counts_[object] > 0, "P on zero semaphore");
      --counts_[object];
      break;
    case EventKind::kSemV:
      if (!(binary_[object] && counts_[object] == 1)) ++counts_[object];
      break;
    case EventKind::kPost:
      posted_.set(object);
      break;
    case EventKind::kClear:
      posted_.reset(object);
      break;
    case EventKind::kWait:
      EVORD_DCHECK(posted_.test(object), "wait on cleared event variable");
      break;
    default:
      break;  // compute / fork / join do not touch sync state
  }
}

}  // namespace evord
