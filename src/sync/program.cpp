#include "sync/program.hpp"

#include "util/check.hpp"

namespace evord {

Stmt Stmt::skip(std::string label) {
  Stmt s;
  s.kind = StmtKind::kSkip;
  s.label = std::move(label);
  return s;
}

Stmt Stmt::assign(VarId var, std::int64_t value, std::string label) {
  Stmt s;
  s.kind = StmtKind::kAssign;
  s.var = var;
  s.value = value;
  s.label = std::move(label);
  return s;
}

Stmt Stmt::if_eq(VarId var, std::int64_t value, std::vector<Stmt> then_branch,
                 std::vector<Stmt> else_branch, std::string label) {
  Stmt s;
  s.kind = StmtKind::kIf;
  s.var = var;
  s.value = value;
  s.then_branch = std::move(then_branch);
  s.else_branch = std::move(else_branch);
  s.label = std::move(label);
  return s;
}

namespace {
Stmt make_obj(StmtKind kind, ObjectId object) {
  Stmt s;
  s.kind = kind;
  s.object = object;
  return s;
}
}  // namespace

Stmt Stmt::sem_p(ObjectId sem) { return make_obj(StmtKind::kSemP, sem); }
Stmt Stmt::sem_v(ObjectId sem) { return make_obj(StmtKind::kSemV, sem); }
Stmt Stmt::post(ObjectId ev) { return make_obj(StmtKind::kPost, ev); }
Stmt Stmt::wait(ObjectId ev) { return make_obj(StmtKind::kWait, ev); }
Stmt Stmt::clear(ObjectId ev) { return make_obj(StmtKind::kClear, ev); }

Stmt Stmt::fork(ProcId target) {
  Stmt s;
  s.kind = StmtKind::kFork;
  s.target = target;
  return s;
}

Stmt Stmt::join(ProcId target) {
  Stmt s;
  s.kind = StmtKind::kJoin;
  s.target = target;
  return s;
}

ObjectId Program::semaphore(std::string name, int initial) {
  EVORD_CHECK(initial >= 0, "semaphore initial must be >= 0");
  semaphores_.push_back({std::move(name), initial, /*binary=*/false});
  return static_cast<ObjectId>(semaphores_.size() - 1);
}

ObjectId Program::binary_semaphore(std::string name, int initial) {
  EVORD_CHECK(initial == 0 || initial == 1,
              "binary semaphore initial must be 0 or 1");
  semaphores_.push_back({std::move(name), initial, /*binary=*/true});
  return static_cast<ObjectId>(semaphores_.size() - 1);
}

ObjectId Program::event_var(std::string name, bool initially_posted) {
  event_vars_.push_back({std::move(name), initially_posted});
  return static_cast<ObjectId>(event_vars_.size() - 1);
}

VarId Program::variable(std::string name, std::int64_t initial) {
  var_names_.push_back(std::move(name));
  var_initials_.push_back(initial);
  return static_cast<VarId>(var_names_.size() - 1);
}

ProcId Program::add_process(std::string name, bool static_start) {
  processes_.push_back({std::move(name), static_start, {}});
  return static_cast<ProcId>(processes_.size() - 1);
}

void Program::append(ProcId p, Stmt stmt) {
  EVORD_CHECK(p < processes_.size(), "unknown process");
  processes_[p].body.push_back(std::move(stmt));
}

void Program::append_all(ProcId p, std::vector<Stmt> stmts) {
  for (Stmt& s : stmts) append(p, std::move(s));
}

namespace {
std::size_t count_stmts(const std::vector<Stmt>& body) {
  std::size_t n = 0;
  for (const Stmt& s : body) {
    n += 1;
    if (s.kind == StmtKind::kIf) {
      n += count_stmts(s.then_branch) + count_stmts(s.else_branch);
    }
  }
  return n;
}
}  // namespace

std::size_t Program::num_statements() const {
  std::size_t n = 0;
  for (const ProgramProcess& p : processes_) n += count_stmts(p.body);
  return n;
}

}  // namespace evord
