#include "sync/scheduler.hpp"

#include <algorithm>

#include "sync/sync_state.hpp"
#include "trace/builder.hpp"
#include "util/check.hpp"

namespace evord {

std::size_t RoundRobinPolicy::pick(const std::vector<ProcId>& runnable) {
  // First runnable process with id strictly greater than the last-run one,
  // wrapping around.
  for (std::size_t i = 0; i < runnable.size(); ++i) {
    if (runnable[i] > last_) {
      last_ = runnable[i];
      return i;
    }
  }
  last_ = runnable.front();
  return 0;
}

std::size_t PriorityPolicy::pick(const std::vector<ProcId>& runnable) {
  for (ProcId p : priority_) {
    const auto it = std::find(runnable.begin(), runnable.end(), p);
    if (it != runnable.end()) {
      return static_cast<std::size_t>(it - runnable.begin());
    }
  }
  return 0;  // processes not named in the priority list go last
}

/// One stack frame of a process's control flow: a statement list and the
/// index of the next statement to execute within it.
namespace {
struct Frame {
  const std::vector<Stmt>* body;
  std::size_t next = 0;
};
}  // namespace

struct ProgramRunner::Impl {
  explicit Impl(const Program& program)
      : prog(program),
        sync(program.semaphores(), program.event_vars()),
        memory(program.variable_initials()) {
    // Mirror the program's declarations into the trace builder so trace
    // object ids coincide with program object ids.
    for (const SemaphoreInfo& s : prog.semaphores()) {
      if (s.binary) {
        builder.binary_semaphore(s.name, s.initial);
      } else {
        builder.semaphore(s.name, s.initial);
      }
    }
    for (const EventVarInfo& v : prog.event_vars()) {
      builder.event_var(v.name, v.initially_posted);
    }
    for (const std::string& v : prog.variables()) builder.variable(v);

    EVORD_CHECK(prog.num_processes() > 0, "program has no processes");
    EVORD_CHECK(prog.process(0).static_start,
                "process 0 must be a static process");
    for (ProcId p = 1; p < prog.num_processes(); ++p) builder.add_process();

    stacks.resize(prog.num_processes());
    started.resize(prog.num_processes(), false);
    for (ProcId p = 0; p < prog.num_processes(); ++p) {
      if (prog.process(p).static_start) start(p);
    }
    refresh_runnable();
  }

  void start(ProcId p) {
    started[p] = true;
    if (!prog.process(p).body.empty()) {
      stacks[p].push_back({&prog.process(p).body, 0});
    }
  }

  bool proc_finished(ProcId p) const {
    return started[p] && stacks[p].empty();
  }

  bool all_finished() const {
    for (ProcId p = 0; p < prog.num_processes(); ++p) {
      // A never-started (forkable but unforked) process performs no
      // events; only started unfinished processes block completion.
      if (started[p] && !stacks[p].empty()) return false;
    }
    return true;
  }

  const Stmt& current(ProcId p) const {
    const Frame& f = stacks[p].back();
    return (*f.body)[f.next];
  }

  bool proc_runnable(ProcId p) const {
    if (!started[p] || stacks[p].empty()) return false;
    const Stmt& s = current(p);
    switch (s.kind) {
      case StmtKind::kSemP:
        return sync.sem_count(s.object) > 0;
      case StmtKind::kWait:
        return sync.posted(s.object);
      case StmtKind::kJoin:
        return started[s.target] && stacks[s.target].empty();
      default:
        return true;
    }
  }

  void refresh_runnable() {
    runnable.clear();
    for (ProcId p = 0; p < prog.num_processes(); ++p) {
      if (proc_runnable(p)) runnable.push_back(p);
    }
  }

  /// Pops exhausted frames so the next statement (if any) is on top.
  void settle(ProcId p) {
    while (!stacks[p].empty() &&
           stacks[p].back().next >= stacks[p].back().body->size()) {
      stacks[p].pop_back();
    }
  }

  void step(ProcId p) {
    EVORD_CHECK(proc_runnable(p), "step on non-runnable process p" << p);
    const Stmt& s = current(p);
    ++stacks[p].back().next;  // advance past `s` before any branch push
    switch (s.kind) {
      case StmtKind::kSkip:
        builder.compute(p, s.label);
        break;
      case StmtKind::kAssign: {
        std::string label = s.label.empty()
                                ? prog.variables()[s.var] + " := " +
                                      std::to_string(s.value)
                                : s.label;
        builder.compute(p, std::move(label), {}, {s.var});
        memory[s.var] = s.value;
        break;
      }
      case StmtKind::kIf: {
        std::string label = s.label.empty()
                                ? "if " + prog.variables()[s.var] + "=" +
                                      std::to_string(s.value)
                                : s.label;
        builder.compute(p, std::move(label), {s.var}, {});
        const std::vector<Stmt>& branch =
            memory[s.var] == s.value ? s.then_branch : s.else_branch;
        if (!branch.empty()) stacks[p].push_back({&branch, 0});
        break;
      }
      case StmtKind::kSemP:
        builder.sem_p(p, s.object, s.label);
        sync.apply(EventKind::kSemP, s.object);
        break;
      case StmtKind::kSemV:
        builder.sem_v(p, s.object, s.label);
        sync.apply(EventKind::kSemV, s.object);
        break;
      case StmtKind::kPost:
        builder.post(p, s.object, s.label);
        sync.apply(EventKind::kPost, s.object);
        break;
      case StmtKind::kWait:
        builder.wait(p, s.object, s.label);
        break;
      case StmtKind::kClear:
        builder.clear(p, s.object, s.label);
        sync.apply(EventKind::kClear, s.object);
        break;
      case StmtKind::kFork:
        EVORD_CHECK(s.target < prog.num_processes(),
                    "fork target out of range");
        EVORD_CHECK(!prog.process(s.target).static_start,
                    "fork target p" << s.target << " is a static process");
        EVORD_CHECK(!started[s.target],
                    "fork target p" << s.target << " already started");
        builder.fork_existing(p, s.target);
        start(s.target);
        break;
      case StmtKind::kJoin:
        builder.join(p, s.target);
        break;
    }
    settle(p);
    ++step_count;
    refresh_runnable();
  }

  const Program& prog;
  SyncState sync;
  std::vector<std::int64_t> memory;
  TraceBuilder builder;
  std::vector<std::vector<Frame>> stacks;
  std::vector<bool> started;
  std::vector<ProcId> runnable;
  std::size_t step_count = 0;
};

ProgramRunner::ProgramRunner(const Program& program)
    : impl_(std::make_unique<Impl>(program)) {}

ProgramRunner::~ProgramRunner() = default;

const std::vector<ProcId>& ProgramRunner::runnable() const {
  return impl_->runnable;
}

bool ProgramRunner::finished() const { return impl_->all_finished(); }

void ProgramRunner::step(ProcId p) { impl_->step(p); }

std::size_t ProgramRunner::steps() const { return impl_->step_count; }

Trace ProgramRunner::trace() const { return impl_->builder.build(); }

std::vector<ProcId> ProgramRunner::blocked() const {
  std::vector<ProcId> result;
  for (ProcId p = 0; p < impl_->prog.num_processes(); ++p) {
    if (impl_->started[p] && !impl_->proc_finished(p)) result.push_back(p);
  }
  return result;
}

RunResult run_program(const Program& program, SchedulePolicy& policy,
                      std::size_t max_steps) {
  ProgramRunner runner(program);
  RunResult result;
  while (!runner.finished()) {
    const std::vector<ProcId>& runnable = runner.runnable();
    if (runnable.empty()) {
      result.status = RunStatus::kDeadlocked;
      result.blocked = runner.blocked();
      break;
    }
    if (runner.steps() >= max_steps) {
      result.status = RunStatus::kStepLimit;
      break;
    }
    const std::size_t choice = policy.pick(runnable);
    EVORD_CHECK(choice < runnable.size(), "policy picked out of range");
    runner.step(runnable[choice]);
  }
  result.trace = runner.trace();
  return result;
}

RunResult run_program_random(const Program& program, std::uint64_t seed,
                             std::size_t max_steps) {
  RandomPolicy policy(seed);
  return run_program(program, policy, max_steps);
}

namespace {

/// DFS over program schedules by prefix replay: to branch at depth d the
/// program is re-executed from scratch along the prefix.  Quadratic in
/// schedule length, which is irrelevant next to the exponential number
/// of schedules — and it avoids making the runner state copyable.
class ProgramExplorer {
 public:
  ProgramExplorer(const Program& program, const ExploreOptions& options,
                  const std::function<bool(const RunResult&)>& visit)
      : prog_(program), options_(options), visit_(visit) {}

  ProgramExploration run() {
    dfs();
    return stats_;
  }

 private:
  bool deliver(ProgramRunner& runner, RunStatus status) {
    RunResult result;
    result.status = status;
    if (status == RunStatus::kDeadlocked) result.blocked = runner.blocked();
    result.trace = runner.trace();
    switch (status) {
      case RunStatus::kCompleted:
        ++stats_.completed;
        break;
      case RunStatus::kDeadlocked:
        ++stats_.deadlocked;
        break;
      case RunStatus::kStepLimit:
        ++stats_.step_limited;
        break;
    }
    if (!visit_(result)) {
      stats_.stopped_by_visitor = true;
      return false;
    }
    if (options_.max_executions != 0 &&
        stats_.completed + stats_.deadlocked + stats_.step_limited >=
            options_.max_executions) {
      stats_.truncated = true;
      return false;
    }
    return true;
  }

  /// Returns false to unwind the whole search.
  bool dfs() {
    ProgramRunner runner(prog_);
    for (ProcId p : prefix_) runner.step(p);
    if (runner.finished()) {
      return deliver(runner, RunStatus::kCompleted);
    }
    if (runner.steps() >= options_.max_steps) {
      return deliver(runner, RunStatus::kStepLimit);
    }
    const std::vector<ProcId> choices = runner.runnable();
    if (choices.empty()) {
      return deliver(runner, RunStatus::kDeadlocked);
    }
    for (ProcId p : choices) {
      prefix_.push_back(p);
      const bool keep_going = dfs();
      prefix_.pop_back();
      if (!keep_going) return false;
    }
    return true;
  }

  const Program& prog_;
  const ExploreOptions& options_;
  const std::function<bool(const RunResult&)>& visit_;
  ProgramExploration stats_;
  std::vector<ProcId> prefix_;
};

}  // namespace

ProgramExploration explore_program_executions(
    const Program& program, const ExploreOptions& options,
    const std::function<bool(const RunResult&)>& visit) {
  return ProgramExplorer(program, options, visit).run();
}

}  // namespace evord
