// Runtime state of the synchronization objects of a trace or program:
// semaphore counts and event-variable posted flags.
//
// This tiny state machine is shared by the axiom validator's replay, the
// program scheduler and the feasible-schedule enumerator, so all three
// agree on the semantics:
//   * counting semaphore: V increments, P decrements and is enabled only
//     when the count is positive (sequential consistency turns blocking
//     into an enabledness condition);
//   * binary semaphore: as above but V clamps the count at 1;
//   * event variable: Post sets, Clear resets, Wait is enabled only while
//     the variable is posted (and does not consume the post).
#pragma once

#include <vector>

#include "trace/trace.hpp"
#include "util/dynamic_bitset.hpp"

namespace evord {

class SyncState {
 public:
  SyncState() = default;
  SyncState(const std::vector<SemaphoreInfo>& semaphores,
            const std::vector<EventVarInfo>& event_vars);

  /// Enabledness of a synchronization operation in this state.  Fork,
  /// join and computation events are always enabled at this level (their
  /// ordering constraints are positional, handled by the caller).
  bool enabled(EventKind kind, ObjectId object) const;

  /// Applies an (enabled) operation.  Precondition: enabled().
  void apply(EventKind kind, ObjectId object);

  int sem_count(ObjectId sem) const { return counts_[sem]; }
  bool posted(ObjectId ev) const { return posted_.test(ev); }

  /// The posted flags, for composing state fingerprints.  (Semaphore
  /// counts are a function of per-process positions and need not be part
  /// of a positional state key; posted flags are not, because Post/Clear
  /// from different processes do not commute.)
  const DynamicBitset& posted_flags() const { return posted_; }

  bool operator==(const SyncState& o) const {
    return counts_ == o.counts_ && posted_ == o.posted_;
  }

 private:
  std::vector<int> counts_;
  std::vector<bool> binary_;
  DynamicBitset posted_;
};

}  // namespace evord
