// Sequentially consistent execution of a Program.
//
// The scheduler repeatedly picks one runnable process (via a pluggable
// policy) and executes its next statement atomically, which is exactly
// the interleaving semantics of a sequentially consistent multiprocessor
// for this statement class.  The result is an observed Trace — the
// execution P = <E, T, D> that the ordering analyses take as input.
//
// Deadlocks are detected (no runnable process while some are unfinished)
// and reported with the prefix trace executed so far.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "sync/program.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace evord {

enum class RunStatus {
  kCompleted,   ///< every process ran to completion
  kDeadlocked,  ///< some processes blocked forever
  kStepLimit,   ///< max_steps reached (runaway program)
};

struct RunResult {
  Trace trace;  ///< the executed prefix (complete iff status == kCompleted)
  RunStatus status = RunStatus::kCompleted;
  /// Processes blocked at the end (deadlock) — started but unfinished.
  std::vector<ProcId> blocked;
};

/// Chooses which runnable process executes next.
class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;
  /// Returns an index into `runnable` (non-empty, sorted by ProcId).
  virtual std::size_t pick(const std::vector<ProcId>& runnable) = 0;
};

/// Uniformly random choice; different seeds explore different feasible
/// executions.
class RandomPolicy final : public SchedulePolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}
  std::size_t pick(const std::vector<ProcId>& runnable) override {
    return static_cast<std::size_t>(rng_.below(runnable.size()));
  }

 private:
  Rng rng_;
};

/// Always the lowest-id runnable process: a deterministic canonical
/// schedule (runs each process as far as it can go before yielding).
class FirstRunnablePolicy final : public SchedulePolicy {
 public:
  std::size_t pick(const std::vector<ProcId>&) override { return 0; }
};

/// Rotates through processes for fairness.
class RoundRobinPolicy final : public SchedulePolicy {
 public:
  std::size_t pick(const std::vector<ProcId>& runnable) override;

 private:
  ProcId last_ = 0;
};

/// Prefers processes in an explicit priority order (earlier = higher).
/// Useful for steering a program into a specific feasible execution.
class PriorityPolicy final : public SchedulePolicy {
 public:
  explicit PriorityPolicy(std::vector<ProcId> priority)
      : priority_(std::move(priority)) {}
  std::size_t pick(const std::vector<ProcId>& runnable) override;

 private:
  std::vector<ProcId> priority_;
};

/// Executes `program` to completion (or deadlock / step limit).
RunResult run_program(const Program& program, SchedulePolicy& policy,
                      std::size_t max_steps = 1'000'000);

/// Convenience: run under a seeded RandomPolicy.
RunResult run_program_random(const Program& program, std::uint64_t seed,
                             std::size_t max_steps = 1'000'000);

/// Step-by-step program execution, for schedule exploration and
/// debugging: callers inspect the runnable set and pick each step
/// themselves.  `run_program` is a loop over this class.
class ProgramRunner {
 public:
  explicit ProgramRunner(const Program& program);
  ~ProgramRunner();
  ProgramRunner(const ProgramRunner&) = delete;
  ProgramRunner& operator=(const ProgramRunner&) = delete;

  /// Processes whose next statement may execute now (sorted by id).
  const std::vector<ProcId>& runnable() const;
  /// True iff every started process ran to completion.
  bool finished() const;
  /// Executes the next statement of `p` (must be in runnable()).
  void step(ProcId p);
  /// Number of statements executed so far.
  std::size_t steps() const;
  /// The trace of everything executed so far (valid prefix trace).
  Trace trace() const;
  /// Started-but-blocked processes (the deadlock set when runnable()
  /// is empty and !finished()).
  std::vector<ProcId> blocked() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Exploration over ALL schedules of a program — the program-level
/// analogue of the trace-schedule enumerator.  Where trace schedules
/// always perform the same events, different PROGRAM schedules may take
/// different branches and perform different events (the crux of the
/// paper's Figure 1); the visitor sees each complete or deadlocked
/// outcome.
struct ExploreOptions {
  std::uint64_t max_executions = 0;  ///< 0 = unlimited
  std::size_t max_steps = 10'000;    ///< per execution
};

struct ProgramExploration {
  std::uint64_t completed = 0;
  std::uint64_t deadlocked = 0;
  std::uint64_t step_limited = 0;
  bool truncated = false;
  bool stopped_by_visitor = false;
};

/// Visits every maximal execution (status kCompleted or kDeadlocked or
/// kStepLimit); return false to stop early.
ProgramExploration explore_program_executions(
    const Program& program, const ExploreOptions& options,
    const std::function<bool(const RunResult&)>& visit);

}  // namespace evord
