// A static parallel-program representation.
//
// The paper's hardness reductions construct *programs* (Theorems 1 and 3),
// and its Figure 1 discusses a program fragment with a conditional on a
// shared variable.  This IR represents exactly that class: straight-line
// statements plus if/else on a shared-variable comparison, fork/join,
// counting/binary semaphores and Post/Wait/Clear event variables.
//
// Programs are *executed* by the Scheduler (sync/scheduler.hpp), which
// produces a Trace — an observed program execution in the paper's model —
// under a pluggable schedule policy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace evord {

enum class StmtKind : std::uint8_t {
  kSkip,    ///< computation with no shared accesses (e.g. the events a, b)
  kAssign,  ///< var := value
  kIf,      ///< if var = value then ... else ...
  kSemP,
  kSemV,
  kPost,
  kWait,
  kClear,
  kFork,  ///< start process `target` (declared with static_start = false)
  kJoin,  ///< wait for process `target` to finish
};

struct Stmt {
  StmtKind kind = StmtKind::kSkip;
  std::string label;              ///< optional event label
  VarId var = kNoVar;             ///< kAssign / kIf
  std::int64_t value = 0;         ///< kAssign / kIf comparison value
  ObjectId object = kNoObject;    ///< semaphore or event variable
  ProcId target = kNoProc;        ///< kFork / kJoin
  std::vector<Stmt> then_branch;  ///< kIf
  std::vector<Stmt> else_branch;  ///< kIf

  // -- convenience constructors ---------------------------------------
  static Stmt skip(std::string label = {});
  static Stmt assign(VarId var, std::int64_t value, std::string label = {});
  static Stmt if_eq(VarId var, std::int64_t value,
                    std::vector<Stmt> then_branch,
                    std::vector<Stmt> else_branch = {},
                    std::string label = {});
  static Stmt sem_p(ObjectId sem);
  static Stmt sem_v(ObjectId sem);
  static Stmt post(ObjectId ev);
  static Stmt wait(ObjectId ev);
  static Stmt clear(ObjectId ev);
  static Stmt fork(ProcId target);
  static Stmt join(ProcId target);
};

struct ProgramProcess {
  std::string name;
  /// Static processes exist from the start of the execution; non-static
  /// processes begin when some process executes a fork naming them.
  bool static_start = true;
  std::vector<Stmt> body;
};

class Program {
 public:
  // ----- declarations (mirror the trace object tables) ---------------
  ObjectId semaphore(std::string name, int initial = 0);
  ObjectId binary_semaphore(std::string name, int initial = 0);
  ObjectId event_var(std::string name, bool initially_posted = false);
  VarId variable(std::string name, std::int64_t initial = 0);

  /// Adds a process and returns its id.  Process ids are also the trace
  /// process ids of every execution of the program.
  ProcId add_process(std::string name, bool static_start = true);

  /// Appends a statement to a process body.
  void append(ProcId p, Stmt stmt);
  /// Appends several.
  void append_all(ProcId p, std::vector<Stmt> stmts);

  // ----- access -------------------------------------------------------
  const std::vector<SemaphoreInfo>& semaphores() const { return semaphores_; }
  const std::vector<EventVarInfo>& event_vars() const { return event_vars_; }
  const std::vector<std::string>& variables() const { return var_names_; }
  const std::vector<std::int64_t>& variable_initials() const {
    return var_initials_;
  }
  std::size_t num_processes() const { return processes_.size(); }
  const ProgramProcess& process(ProcId p) const { return processes_[p]; }

  /// Total statement count, counting both branches of every if.
  std::size_t num_statements() const;

 private:
  std::vector<SemaphoreInfo> semaphores_;
  std::vector<EventVarInfo> event_vars_;
  std::vector<std::string> var_names_;
  std::vector<std::int64_t> var_initials_;
  std::vector<ProgramProcess> processes_;
};

}  // namespace evord
