#include "ordering/intervals.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace evord {

std::vector<EventInterval> realize_intervals(
    const TransitiveClosure& closure, const std::vector<EventId>& schedule,
    IntervalLayout layout) {
  const std::size_t n = closure.num_nodes();
  EVORD_CHECK(schedule.size() == n, "schedule / closure size mismatch");
  std::vector<EventInterval> intervals(n);
  if (layout == IntervalLayout::kSerial) {
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      intervals[schedule[i]] = {static_cast<double>(i),
                                static_cast<double>(i) + 1.0};
    }
    return intervals;
  }
  // kMaxOverlap: ASAP start = max end over causal predecessors.  Process
  // in schedule order so predecessors are already placed (the schedule
  // linearizes the causal order).
  for (EventId e : schedule) {
    double start = 0.0;
    for (EventId p : schedule) {
      if (p == e) break;
      if (closure.reachable(p, e)) {
        start = std::max(start, intervals[p].end);
      }
    }
    intervals[e] = {start, start + 1.0};
  }
  return intervals;
}

std::vector<EventInterval> realize_overlapping_pair(
    const TransitiveClosure& closure, const std::vector<EventId>& schedule,
    EventId a, EventId b) {
  EVORD_CHECK(closure.incomparable(a, b),
              "the pair must be causally incomparable");
  // Build a linear extension placing b immediately after a.  The
  // down-set construction makes this airtight: first emit every strict
  // predecessor of a or of b (a down-set, and none of them is above a or
  // above b, since x <= b together with a <= x would give a <= b), then
  // a, then b, then everything else.  Within each block the given
  // linearization's relative order is kept, so the result is a linear
  // extension of the causal order.
  const std::size_t n = closure.num_nodes();
  std::vector<EventId> order;
  order.reserve(n);
  const auto is_pred = [&](EventId e) {
    return e != a && e != b &&
           (closure.reachable(e, a) || closure.reachable(e, b));
  };
  for (EventId e : schedule) {
    if (is_pred(e)) order.push_back(e);
  }
  order.push_back(a);
  order.push_back(b);
  for (EventId e : schedule) {
    if (e != a && e != b && !is_pred(e)) order.push_back(e);
  }

  // Unit intervals along `order`, then stretch a to cover b's start.
  std::vector<EventInterval> intervals(n);
  std::size_t pos_a = 0;
  std::size_t pos_b = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    intervals[order[i]] = {static_cast<double>(i),
                           static_cast<double>(i) + 1.0};
    if (order[i] == a) pos_a = i;
    if (order[i] == b) pos_b = i;
  }
  EVORD_CHECK(pos_a < pos_b, "construction placed a after b");
  // a may extend to just past b's start: every causal successor of a
  // starts at or after pos_b + 1 (b was scheduled first among the events
  // following a that a does not precede... successors of a are not b and
  // come later in `order`), so end(a) = pos_b + 0.5 is safe; verify.
  intervals[a].end = static_cast<double>(pos_b) + 0.5;
  EVORD_CHECK(intervals_respect_order(closure, intervals),
              "overlap construction violated the causal order");
  return intervals;
}

bool intervals_respect_order(const TransitiveClosure& closure,
                             const std::vector<EventInterval>& intervals) {
  for (EventId u = 0; u < closure.num_nodes(); ++u) {
    for (EventId v = 0; v < closure.num_nodes(); ++v) {
      if (u != v && closure.reachable(u, v) &&
          !intervals[u].precedes(intervals[v])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace evord
