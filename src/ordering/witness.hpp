// Witness extraction: concrete feasible executions demonstrating a
// could-have ordering or refuting a must-have one.  A witness is a valid
// complete schedule; reorder_trace() can materialize it as a full
// execution P'.
#pragma once

#include <optional>
#include <vector>

#include "ordering/exact.hpp"
#include "trace/trace.hpp"

namespace evord {

/// A schedule in which a T b holds under `semantics` (a precedes b for
/// interleaving; a happened-before b causally for causal; the interval
/// reading coincides with interleaving for witnesses).
std::optional<std::vector<EventId>> witness_could_happen_before(
    const Trace& trace, EventId a, EventId b,
    Semantics semantics = Semantics::kCausal,
    const ExactOptions& options = {});

/// A schedule whose causal order leaves a and b incomparable
/// (a witness for CCW, i.e. a potential data race when a, b conflict).
std::optional<std::vector<EventId>> witness_could_be_concurrent(
    const Trace& trace, EventId a, EventId b,
    const ExactOptions& options = {});

/// A feasible execution in which a T b does NOT hold — a refutation of
/// a MHB b under `semantics`.
std::optional<std::vector<EventId>> refute_must_happen_before(
    const Trace& trace, EventId a, EventId b,
    Semantics semantics = Semantics::kCausal,
    const ExactOptions& options = {});

}  // namespace evord
