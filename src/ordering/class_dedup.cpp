#include "ordering/class_dedup.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace evord {

ShardedFingerprintSet::ShardedFingerprintSet(std::size_t num_shards,
                                             bool verify_collisions)
    : verify_(verify_collisions) {
  const std::size_t n = std::bit_ceil(std::max<std::size_t>(1, num_shards));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    // Head-start on rehashing: enumeration inserts are the hot path.
    shards_.back()->fingerprints.reserve(1024);
  }
}

ShardedFingerprintSet::Shard& ShardedFingerprintSet::shard_for(
    std::uint64_t fingerprint) noexcept {
  // Finalizer mix (splitmix64): the low bits pick the shard, so they must
  // depend on every input bit even though the fingerprint is already an
  // FNV hash.
  std::uint64_t h = fingerprint;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return *shards_[h & (shards_.size() - 1)];
}

bool ShardedFingerprintSet::insert(std::uint64_t fingerprint,
                                   const std::vector<std::uint64_t>* payload) {
  Shard& shard = shard_for(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  const bool inserted = shard.fingerprints.insert(fingerprint).second;
  if (verify_ && payload != nullptr) {
    if (inserted) {
      shard.payloads.emplace(fingerprint, *payload);
    } else {
      const auto it = shard.payloads.find(fingerprint);
      EVORD_CHECK(it == shard.payloads.end() || it->second == *payload,
                  "64-bit fingerprint collision: distinct payloads hash to "
                      << fingerprint);
    }
  }
  return inserted;
}

std::uint64_t ShardedFingerprintSet::size() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->fingerprints.size();
  }
  return total;
}

}  // namespace evord
