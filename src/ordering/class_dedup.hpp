// Sharded 64-bit fingerprint sets for causal-class deduplication.
//
// The exact causal/interval solver deduplicates two kinds of objects,
// both of which the seed implementation materialized in full:
//   * complete causal classes — the n²-bit transitive closure of one
//     execution's causal order, previously an n²/8-byte string per class;
//   * causal-class prefixes — the enumerator's state key (executed
//     closure rows, token queues, establishers), previously a
//     std::vector<std::uint64_t> of O(n²/64) words per distinct prefix.
// Both are now reduced to a chained 64-bit FNV-1a fingerprint
// (DynamicBitset::hash_words / fingerprint_words), so dedup costs O(1)
// space per element in release builds.
//
// The set is sharded by fingerprint with one mutex per shard, so the
// root-split parallel engine's workers dedup against each other with
// minimal contention; the same type serves the serial engine.
//
// Collision safety net: with `verify_collisions` on (the default in
// !NDEBUG builds) the full word payload is retained per fingerprint and
// every hash-equal re-insert is checked for genuine equality — a 64-bit
// collision between distinct payloads throws CheckError instead of
// silently dropping a class or pruning an unexplored prefix.  Release
// builds keep nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace evord {

/// Chained FNV-1a over a word sequence; seed with
/// DynamicBitset::kHashSeed (or a previous chain value).
inline std::uint64_t fingerprint_words(const std::vector<std::uint64_t>& words,
                                       std::uint64_t seed) noexcept {
  for (std::uint64_t w : words) {
    seed ^= w;
    seed *= 1099511628211ull;  // FNV prime
  }
  return seed;
}

class ShardedFingerprintSet {
 public:
#ifndef NDEBUG
  static constexpr bool kVerifyByDefault = true;
#else
  static constexpr bool kVerifyByDefault = false;
#endif

  /// `num_shards` is rounded up to a power of two (minimum 1).
  explicit ShardedFingerprintSet(std::size_t num_shards = 16,
                                 bool verify_collisions = kVerifyByDefault);

  ShardedFingerprintSet(const ShardedFingerprintSet&) = delete;
  ShardedFingerprintSet& operator=(const ShardedFingerprintSet&) = delete;

  bool verify_collisions() const noexcept { return verify_; }
  std::size_t num_shards() const noexcept { return shards_.size(); }

  /// Inserts `fingerprint`; returns true iff it was not present (the
  /// caller owns this element).  Thread-safe.  When collision
  /// verification is on and `payload` is non-null, the payload is
  /// retained on first insert and compared on every hash-equal re-insert;
  /// a mismatch (a true 64-bit collision) throws CheckError.
  bool insert(std::uint64_t fingerprint,
              const std::vector<std::uint64_t>* payload = nullptr);

  /// Total distinct fingerprints across all shards.  Thread-safe, but
  /// only a snapshot while inserts are in flight.
  std::uint64_t size() const;

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_set<std::uint64_t> fingerprints;
    /// Populated only in collision-verification mode.
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> payloads;
  };

  Shard& shard_for(std::uint64_t fingerprint) noexcept;

  std::vector<std::unique_ptr<Shard>> shards_;
  bool verify_;
};

}  // namespace evord
