#include "ordering/causal.hpp"

#include <deque>

#include "util/check.hpp"

namespace evord {

Digraph causal_graph(const Trace& trace,
                     const std::vector<EventId>& schedule,
                     const CausalOptions& options) {
  EVORD_CHECK(schedule.size() == trace.num_events(),
              "schedule / event count mismatch");
  Digraph g = trace.static_order_graph();  // program order + fork/join

  std::vector<std::size_t> pos(trace.num_events());
  for (std::size_t i = 0; i < schedule.size(); ++i) pos[schedule[i]] = i;

  // --- synchronization pairing edges, by replaying the schedule -------
  // Semaphores: FIFO token attribution.  Clamped V on a binary semaphore
  // contributes no token.
  std::vector<std::deque<EventId>> tokens(trace.semaphores().size());
  std::vector<int> count;
  for (const SemaphoreInfo& s : trace.semaphores()) count.push_back(s.initial);
  // Event variables: the Post that established the current posted state.
  std::vector<EventId> establisher(trace.event_vars().size(), kNoEvent);
  std::vector<bool> posted;
  for (const EventVarInfo& v : trace.event_vars()) {
    posted.push_back(v.initially_posted);
  }

  for (EventId id : schedule) {
    const Event& e = trace.event(id);
    switch (e.kind) {
      case EventKind::kSemV: {
        const SemaphoreInfo& s = trace.semaphores()[e.object];
        if (!(s.binary && count[e.object] == 1)) {
          ++count[e.object];
          tokens[e.object].push_back(id);
        }
        break;
      }
      case EventKind::kSemP: {
        EVORD_CHECK(count[e.object] > 0,
                    "invalid schedule: P on empty semaphore");
        --count[e.object];
        // Initial tokens (from the semaphore's initial count) have no
        // producing V; the deque then holds fewer entries than the count.
        if (static_cast<std::size_t>(count[e.object]) <
            tokens[e.object].size()) {
          g.add_edge(tokens[e.object].front(), id);
          tokens[e.object].pop_front();
        }
        break;
      }
      case EventKind::kPost:
        if (!posted[e.object]) {
          posted[e.object] = true;
          establisher[e.object] = id;
        }
        break;
      case EventKind::kClear:
        posted[e.object] = false;
        establisher[e.object] = kNoEvent;
        break;
      case EventKind::kWait:
        EVORD_CHECK(posted[e.object],
                    "invalid schedule: wait on cleared event variable");
        if (establisher[e.object] != kNoEvent) {
          g.add_edge(establisher[e.object], id);
        }
        break;
      default:
        break;
    }
  }

  // --- data edges ------------------------------------------------------
  if (!options.include_data_edges) {
    g.finalize();
    return g;
  }
  for (const auto& [a, b] : trace.conflicting_pairs()) {
    if (pos[a] < pos[b]) {
      g.add_edge(a, b);
    } else {
      g.add_edge(b, a);
    }
  }
  for (const auto& [a, b] : trace.dependences()) {
    if (pos[a] < pos[b]) {
      g.add_edge(a, b);
    } else {
      g.add_edge(b, a);  // possible only when F3 was disabled
    }
  }

  g.finalize();
  return g;
}

TransitiveClosure causal_closure(const Trace& trace,
                                 const std::vector<EventId>& schedule,
                                 const CausalOptions& options) {
  return TransitiveClosure(causal_graph(trace, schedule, options));
}

TransitiveClosure observed_causal_closure(const Trace& trace,
                                          const CausalOptions& options) {
  return causal_closure(trace, trace.observed_order(), options);
}

}  // namespace evord
