// The exact solver: computes all six ordering relations of Table 1 by
// exhaustive analysis of F(P).
//
// Interleaving semantics uses the memoized state-space engine (one pass,
// no per-schedule work).  Causal and interval semantics enumerate
// complete schedules, deduplicate them into causal classes and accumulate
// per-class facts.  Both are exponential in the worst case — Theorems 1-4
// say they must be, assuming P != NP — so budgets apply and results carry
// a `truncated` flag.
#pragma once

#include <cstdint>

#include "ordering/relations.hpp"
#include "search/search.hpp"
#include "trace/trace.hpp"

namespace evord {

struct ExactOptions {
  /// Enforce F3 (shared-data dependences constrain the schedules).
  /// Disable for the paper's §5.3 "ignore dependences" variant.
  bool respect_dependences = true;

  /// Include data edges in each execution's causal order (the paper's
  /// full temporal reading).  Race detection sets this to false so that
  /// "concurrent" means "not ordered by synchronization", while F3 above
  /// still restricts WHICH executions are feasible.  Only affects causal
  /// and interval semantics.
  bool causal_data_edges = true;

  /// Causal/interval engine: stop after this many complete schedules
  /// (0 = unlimited).
  std::uint64_t max_schedules = 0;

  /// Causal/interval engine: prune schedule prefixes whose state AND
  /// induced causal order were already explored (one representative per
  /// causal-class prefix; see ordering/class_enumerate.hpp).  Exponentially
  /// faster on traces where many schedules share a causal order; results
  /// are identical (tested), only `schedules_seen` shrinks.
  bool class_dedup = true;
  /// Causal/interval engine, class_dedup path only: partial-order
  /// reduction in the underlying class enumeration
  /// (search/independence.hpp).  ON by default — reduction preserves the
  /// set of complete causal classes (pruned schedules are commuting
  /// permutations of explored ones), so the relation matrices,
  /// causal_classes and feasible_empty are unchanged; only
  /// `schedules_seen` shrinks further.  Ignored with class_dedup ==
  /// false (the plain enumerator's schedule counts stay exact) and by
  /// interleaving semantics (its matrices need the unreduced sweep).
  /// kSourceWakeup (the default) adds source sets, wakeup frames and
  /// tracked dynamic independence on top of the PR-4 sleep sets.
  search::ReductionMode reduction = search::ReductionMode::kSourceWakeup;
  /// Interleaving engine: stop after this many distinct states
  /// (0 = unlimited).
  std::size_t max_states = 4'000'000;
  /// Either engine: stop after this many seconds (0 = unlimited).
  double time_budget_seconds = 0.0;
  /// Either engine: stop once the underlying search's charged memory —
  /// prefix/memo fingerprint stores, queued task descriptors — reaches
  /// this many bytes (0 = unlimited).  Strict and global across
  /// workers; the result is flagged `truncated` with
  /// StopReason::kMemory.  See search::SearchOptions::max_memory_bytes.
  std::uint64_t max_memory_bytes = 0;
  /// Spill cold dedup/memo shards to an mmap-backed temp file when the
  /// byte budget nears exhaustion instead of stopping with
  /// StopReason::kMemory; results stay bit-identical.  Only meaningful
  /// with max_memory_bytes set.  See search::SearchOptions::spill.
  bool spill = false;

  /// Causal/interval engine: number of worker threads (0 = hardware
  /// concurrency, 1 = serial; every request is clamped to
  /// search::max_worker_threads()).  The search runs on the
  /// work-stealing scheduler: workers accumulate into private per-slot
  /// state merged associatively at the end, and deduplicate classes AND
  /// class prefixes against shared sharded fingerprint sets, so every
  /// distinct prefix state is expanded exactly once across all workers.
  /// Relation matrices, causal_classes, feasible_empty and — absent
  /// budgets — schedules_seen are identical to the serial engine's
  /// (tested), regardless of thread count, steal order or subtree
  /// splits.  All budgets (max_schedules, max_states and the time
  /// budget) are strict and global across workers: they share one
  /// search context, so a budget of N caps the combined total at N.
  /// Interleaving semantics also honors this: the memoized state-space
  /// sweep runs warming tasks on the same scheduler and its parallel
  /// results are bit-identical to serial (docs/SEARCH.md).
  std::size_t num_threads = 1;

  /// Work-stealing scheduler tuning (never affects results; see
  /// search::StealOptions).
  search::StealOptions steal;
};

/// Computes all six relations under the chosen semantics.
OrderingRelations compute_exact(const Trace& trace, Semantics semantics,
                                const ExactOptions& options = {});

/// Convenience single-pair queries (full computation under the hood; use
/// compute_exact once when querying many pairs).
bool must_have_happened_before(const Trace& trace, EventId a, EventId b,
                               Semantics semantics = Semantics::kCausal,
                               const ExactOptions& options = {});
bool could_have_happened_before(const Trace& trace, EventId a, EventId b,
                                Semantics semantics = Semantics::kCausal,
                                const ExactOptions& options = {});
bool could_have_been_concurrent(const Trace& trace, EventId a, EventId b,
                                const ExactOptions& options = {});

}  // namespace evord
