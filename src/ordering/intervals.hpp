// Concrete realizations of the interval semantics (DESIGN.md §2).
//
// A feasible execution with causal order C can be laid out on a real
// timeline in many ways: every event gets an interval [start, end) such
// that a C b implies end(a) <= start(b).  Two layout policies matter:
//
//   * kSerial    — events get disjoint unit intervals following one
//     linearization: nothing overlaps (the "any incomparable pair can be
//     serialized" half of the MCW degeneracy);
//   * kMaxOverlap — every event starts as early as its causal
//     predecessors allow and runs for a unit: all causally incomparable
//     events at the same depth overlap (the "any incomparable pair can
//     overlap" half, witnessing CCW under interval semantics).
//
// These layouts turn the paper's timing arguments into checkable data:
// tests assert that overlap occurs exactly for incomparable pairs under
// kMaxOverlap and never under kSerial.
#pragma once

#include <vector>

#include "graph/reachability.hpp"
#include "trace/trace.hpp"

namespace evord {

struct EventInterval {
  double start = 0.0;
  double end = 0.0;

  bool overlaps(const EventInterval& o) const {
    return start < o.end && o.start < end;
  }
  /// Wholly-precedes: the interval reading of "a T b".
  bool precedes(const EventInterval& o) const { return end <= o.start; }
};

enum class IntervalLayout : std::uint8_t {
  kSerial,      ///< disjoint unit intervals along a linearization
  kMaxOverlap,  ///< ASAP start times: incomparable events overlap
};

/// Lays out intervals for the causal order `closure` (as produced by
/// causal_closure()).  The schedule provides the linearization used by
/// kSerial and tie-breaks kMaxOverlap deterministically.
std::vector<EventInterval> realize_intervals(
    const TransitiveClosure& closure, const std::vector<EventId>& schedule,
    IntervalLayout layout);

/// A layout in which the specific causally incomparable pair (a, b)
/// overlaps: the witness construction behind "could have executed
/// concurrently" under interval semantics.  Precondition: a and b are
/// incomparable in `closure` and `schedule` linearizes it.
std::vector<EventInterval> realize_overlapping_pair(
    const TransitiveClosure& closure, const std::vector<EventId>& schedule,
    EventId a, EventId b);

/// True iff the intervals respect the causal order: u -> v in `closure`
/// implies interval(u) wholly precedes interval(v).
bool intervals_respect_order(const TransitiveClosure& closure,
                             const std::vector<EventInterval>& intervals);

}  // namespace evord
