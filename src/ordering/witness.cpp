#include "ordering/witness.hpp"

#include "feasible/enumerate.hpp"
#include "ordering/causal.hpp"

namespace evord {

namespace {

EnumerateOptions to_enum_options(const ExactOptions& options) {
  EnumerateOptions eo;
  eo.stepper.respect_dependences = options.respect_dependences;
  eo.max_schedules = options.max_schedules;
  eo.time_budget_seconds = options.time_budget_seconds;
  eo.max_memory_bytes = options.max_memory_bytes;
  return eo;
}

bool precedes_in(const std::vector<EventId>& schedule, EventId a, EventId b) {
  for (EventId e : schedule) {
    if (e == a) return true;
    if (e == b) return false;
  }
  return false;
}

}  // namespace

std::optional<std::vector<EventId>> witness_could_happen_before(
    const Trace& trace, EventId a, EventId b, Semantics semantics,
    const ExactOptions& options) {
  const EnumerateOptions eo = to_enum_options(options);
  const CausalOptions co{.include_data_edges = options.causal_data_edges};
  if (semantics == Semantics::kCausal) {
    return find_schedule_where(trace, eo,
                               [&](const std::vector<EventId>& s) {
                                 return causal_closure(trace, s, co)
                                     .reachable(a, b);
                               });
  }
  // Interleaving and interval: a preceding b in a schedule realizes a T b.
  return find_schedule_where(trace, eo, [&](const std::vector<EventId>& s) {
    return precedes_in(s, a, b);
  });
}

std::optional<std::vector<EventId>> witness_could_be_concurrent(
    const Trace& trace, EventId a, EventId b, const ExactOptions& options) {
  const CausalOptions co{.include_data_edges = options.causal_data_edges};
  return find_schedule_where(trace, to_enum_options(options),
                             [&](const std::vector<EventId>& s) {
                               return causal_closure(trace, s, co)
                                   .incomparable(a, b);
                             });
}

std::optional<std::vector<EventId>> refute_must_happen_before(
    const Trace& trace, EventId a, EventId b, Semantics semantics,
    const ExactOptions& options) {
  const EnumerateOptions eo = to_enum_options(options);
  const CausalOptions co{.include_data_edges = options.causal_data_edges};
  if (semantics == Semantics::kCausal) {
    return find_schedule_where(trace, eo,
                               [&](const std::vector<EventId>& s) {
                                 return !causal_closure(trace, s, co)
                                             .reachable(a, b);
                               });
  }
  return find_schedule_where(trace, eo, [&](const std::vector<EventId>& s) {
    return !precedes_in(s, a, b);
  });
}

}  // namespace evord
