#include "ordering/relations.hpp"

namespace evord {

const char* to_string(Semantics semantics) {
  switch (semantics) {
    case Semantics::kInterleaving:
      return "interleaving";
    case Semantics::kCausal:
      return "causal";
    case Semantics::kInterval:
      return "interval";
  }
  return "?";
}

const char* to_string(RelationKind kind) {
  switch (kind) {
    case RelationKind::kMHB:
      return "MHB";
    case RelationKind::kCHB:
      return "CHB";
    case RelationKind::kMCW:
      return "MCW";
    case RelationKind::kCCW:
      return "CCW";
    case RelationKind::kMOW:
      return "MOW";
    case RelationKind::kCOW:
      return "COW";
  }
  return "?";
}

bool is_must_relation(RelationKind kind) {
  return kind == RelationKind::kMHB || kind == RelationKind::kMCW ||
         kind == RelationKind::kMOW;
}

std::size_t RelationMatrix::num_pairs() const {
  std::size_t n = 0;
  for (const DynamicBitset& row : rows_) n += row.count();
  return n;
}

void RelationMatrix::fill_off_diagonal() {
  for (std::size_t a = 0; a < rows_.size(); ++a) {
    rows_[a].set_all();
    rows_[a].reset(a);
  }
}

void RelationMatrix::clear() {
  for (DynamicBitset& row : rows_) row.reset_all();
}

bool RelationMatrix::subset_of(const RelationMatrix& o) const {
  if (size() != o.size()) return false;
  for (std::size_t a = 0; a < rows_.size(); ++a) {
    if (!rows_[a].is_subset_of(o.rows_[a])) return false;
  }
  return true;
}

std::uint64_t RelationMatrix::approx_bytes() const {
  std::uint64_t bytes =
      sizeof(RelationMatrix) + rows_.capacity() * sizeof(DynamicBitset);
  for (const DynamicBitset& row : rows_) {
    bytes += row.word_count() * sizeof(std::uint64_t);
  }
  return bytes;
}

std::uint64_t OrderingRelations::approx_bytes() const {
  std::uint64_t bytes = sizeof(OrderingRelations) + search.approx_bytes();
  for (const RelationMatrix& m : matrices) bytes += m.approx_bytes();
  return bytes;
}

}  // namespace evord
