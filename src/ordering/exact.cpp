#include "ordering/exact.hpp"

#include <string>
#include <unordered_set>

#include "feasible/enumerate.hpp"
#include "feasible/schedule_space.hpp"
#include "ordering/causal.hpp"
#include "ordering/class_enumerate.hpp"
#include "util/check.hpp"

namespace evord {

namespace {

OrderingRelations make_empty_result(const Trace& trace, Semantics semantics) {
  OrderingRelations r;
  r.semantics = semantics;
  r.num_events = trace.num_events();
  for (RelationMatrix& m : r.matrices) {
    m = RelationMatrix(trace.num_events());
  }
  return r;
}

/// When F is empty every universally quantified relation is vacuously
/// total and every existential one empty.
void fill_vacuous(OrderingRelations& r) {
  r.feasible_empty = true;
  for (RelationKind k : kAllRelationKinds) {
    if (is_must_relation(k)) {
      r[k].fill_off_diagonal();
    } else {
      r[k].clear();
    }
  }
}

OrderingRelations compute_interleaving(const Trace& trace,
                                       const ExactOptions& options) {
  OrderingRelations r = make_empty_result(trace, Semantics::kInterleaving);

  ScheduleSpaceOptions sso;
  sso.stepper.respect_dependences = options.respect_dependences;
  sso.max_states = options.max_states;
  sso.time_budget_seconds = options.time_budget_seconds;
  const CanPrecedeResult cp = compute_can_precede(trace, sso);

  r.truncated = cp.truncated;
  r.states_visited = cp.states_visited;
  if (!cp.feasible_nonempty) {
    fill_vacuous(r);
    return r;
  }

  const std::size_t n = trace.num_events();
  // CHB(a, b) == can_precede[b] contains a (transpose the sweep output).
  RelationMatrix& chb = r[RelationKind::kCHB];
  for (EventId b = 0; b < n; ++b) {
    const DynamicBitset& preds = cp.can_precede[b];
    for (std::size_t a = preds.find_first(); a < preds.size();
         a = preds.find_next(a)) {
      chb.set(static_cast<EventId>(a), b);
    }
  }
  // MHB(a, b) == every schedule runs a before b == no schedule runs b
  // before a (schedules are total orders).
  RelationMatrix& mhb = r[RelationKind::kMHB];
  for (EventId a = 0; a < n; ++a) {
    for (EventId b = 0; b < n; ++b) {
      if (a != b && !chb.holds(b, a)) mhb.set(a, b);
    }
  }
  // A total order never exhibits concurrency.
  r[RelationKind::kMCW].clear();
  r[RelationKind::kCCW].clear();
  r[RelationKind::kMOW].fill_off_diagonal();
  r[RelationKind::kCOW].fill_off_diagonal();
  return r;
}

/// Per-causal-class accumulator for the causal and interval semantics.
class CausalAccumulator {
 public:
  CausalAccumulator(const Trace& trace, const CausalOptions& causal)
      : trace_(trace), causal_(causal), n_(trace.num_events()) {
    any_c_.assign(n_, DynamicBitset(n_));
    all_c_.assign(n_, DynamicBitset(n_, true));
    any_incomp_.assign(n_, DynamicBitset(n_));
    all_incomp_.assign(n_, DynamicBitset(n_, true));
    any_notrev_.assign(n_, DynamicBitset(n_));
    for (EventId a = 0; a < n_; ++a) {
      all_c_[a].reset(a);
      all_incomp_[a].reset(a);
    }
  }

  std::uint64_t classes() const { return classes_; }

  void accept(const std::vector<EventId>& schedule) {
    const TransitiveClosure tc = causal_closure(trace_, schedule, causal_);
    // Deduplicate causal classes on the raw closure rows.
    std::string fingerprint;
    fingerprint.reserve(n_ * 8);
    for (EventId a = 0; a < n_; ++a) {
      const DynamicBitset& row = tc.descendants(a);
      for (std::size_t w = 0; w < row.word_count(); ++w) {
        const std::uint64_t word = row.word(w);
        fingerprint.append(reinterpret_cast<const char*>(&word),
                           sizeof(word));
      }
    }
    if (!seen_.insert(std::move(fingerprint)).second) return;
    ++classes_;

    for (EventId a = 0; a < n_; ++a) {
      const DynamicBitset& desc = tc.descendants(a);
      any_c_[a] |= desc;
      all_c_[a] &= desc;
      for (EventId b = 0; b < n_; ++b) {
        if (a == b) continue;
        const bool ab = desc.test(b);
        const bool ba = tc.reachable(b, a);
        if (!ba) any_notrev_[a].set(b);
        if (!ab && !ba) {
          any_incomp_[a].set(b);
        } else {
          all_incomp_[a].reset(b);
        }
      }
    }
  }

  void finish(OrderingRelations& r, Semantics semantics) const {
    r.causal_classes = classes_;
    if (classes_ == 0) {
      fill_vacuous(r);
      return;
    }
    const std::size_t n = n_;
    for (EventId a = 0; a < n; ++a) {
      r[RelationKind::kMHB].row(a) = all_c_[a];
      r[RelationKind::kCCW].row(a) = any_incomp_[a];
      r[RelationKind::kMCW].row(a) =
          semantics == Semantics::kInterval ? DynamicBitset(n)
                                            : all_incomp_[a];
      // MOW: never concurrent == comparable in every class.
      DynamicBitset mow(n, true);
      mow.subtract(any_incomp_[a]);
      mow.reset(a);
      r[RelationKind::kMOW].row(a) = std::move(mow);
      if (semantics == Semantics::kInterval) {
        // Timing freedom: a could precede b iff some class does not force
        // b before a; any pair can be serialized, so COW is total.
        r[RelationKind::kCHB].row(a) = any_notrev_[a];
        DynamicBitset cow(n, true);
        cow.reset(a);
        r[RelationKind::kCOW].row(a) = cow;
      } else {
        r[RelationKind::kCHB].row(a) = any_c_[a];
        // COW: comparable in some class == not incomparable in every class.
        DynamicBitset cow(n, true);
        cow.subtract(all_incomp_[a]);
        cow.reset(a);
        r[RelationKind::kCOW].row(a) = std::move(cow);
      }
    }
  }

 private:
  const Trace& trace_;
  CausalOptions causal_;
  std::size_t n_;
  std::uint64_t classes_ = 0;
  std::unordered_set<std::string> seen_;
  std::vector<DynamicBitset> any_c_, all_c_;
  std::vector<DynamicBitset> any_incomp_, all_incomp_;
  std::vector<DynamicBitset> any_notrev_;
};

OrderingRelations compute_causal_or_interval(const Trace& trace,
                                             Semantics semantics,
                                             const ExactOptions& options) {
  OrderingRelations r = make_empty_result(trace, semantics);
  const CausalOptions causal{.include_data_edges =
                                 options.causal_data_edges};
  CausalAccumulator acc(trace, causal);

  if (options.class_dedup) {
    ClassEnumOptions co;
    co.stepper.respect_dependences = options.respect_dependences;
    co.causal = causal;
    co.time_budget_seconds = options.time_budget_seconds;
    std::uint64_t budget = options.max_schedules;
    const ClassEnumStats stats = enumerate_causal_classes(
        trace, co, [&](const std::vector<EventId>& s) {
          acc.accept(s);
          return budget == 0 || --budget != 0;
        });
    r.schedules_seen = stats.schedules_visited;
    r.deadlocked_prefixes = stats.deadlocked_prefixes;
    r.truncated = stats.truncated || stats.stopped_by_visitor;
    // Stopping at exactly max_schedules is the budget, not an error.
    if (stats.stopped_by_visitor && options.max_schedules != 0) {
      r.truncated = true;
    }
  } else {
    EnumerateOptions eo;
    eo.stepper.respect_dependences = options.respect_dependences;
    eo.max_schedules = options.max_schedules;
    eo.time_budget_seconds = options.time_budget_seconds;
    const EnumerateStats stats =
        enumerate_schedules(trace, eo, [&](const std::vector<EventId>& s) {
          acc.accept(s);
          return true;
        });
    r.schedules_seen = stats.schedules;
    r.deadlocked_prefixes = stats.deadlocked_prefixes;
    r.truncated = stats.truncated;
  }
  acc.finish(r, semantics);
  return r;
}

}  // namespace

OrderingRelations compute_exact(const Trace& trace, Semantics semantics,
                                const ExactOptions& options) {
  switch (semantics) {
    case Semantics::kInterleaving:
      return compute_interleaving(trace, options);
    case Semantics::kCausal:
    case Semantics::kInterval:
      return compute_causal_or_interval(trace, semantics, options);
  }
  EVORD_CHECK(false, "unknown semantics");
}

bool must_have_happened_before(const Trace& trace, EventId a, EventId b,
                               Semantics semantics,
                               const ExactOptions& options) {
  return compute_exact(trace, semantics, options)
      .holds(RelationKind::kMHB, a, b);
}

bool could_have_happened_before(const Trace& trace, EventId a, EventId b,
                                Semantics semantics,
                                const ExactOptions& options) {
  return compute_exact(trace, semantics, options)
      .holds(RelationKind::kCHB, a, b);
}

bool could_have_been_concurrent(const Trace& trace, EventId a, EventId b,
                                const ExactOptions& options) {
  return compute_exact(trace, Semantics::kCausal, options)
      .holds(RelationKind::kCCW, a, b);
}

}  // namespace evord
