#include "ordering/exact.hpp"

#include <vector>

#include "feasible/enumerate.hpp"
#include "feasible/schedule_space.hpp"
#include "feasible/stepper.hpp"
#include "ordering/causal.hpp"
#include "ordering/class_enumerate.hpp"
#include "search/engine.hpp"
#include "search/fingerprint_set.hpp"
#include "util/check.hpp"

namespace evord {

namespace {

OrderingRelations make_empty_result(const Trace& trace, Semantics semantics) {
  OrderingRelations r;
  r.semantics = semantics;
  r.num_events = trace.num_events();
  for (RelationMatrix& m : r.matrices) {
    m = RelationMatrix(trace.num_events());
  }
  return r;
}

/// When F is empty every universally quantified relation is vacuously
/// total and every existential one empty.
void fill_vacuous(OrderingRelations& r) {
  r.feasible_empty = true;
  for (RelationKind k : kAllRelationKinds) {
    if (is_must_relation(k)) {
      r[k].fill_off_diagonal();
    } else {
      r[k].clear();
    }
  }
}

OrderingRelations compute_interleaving(const Trace& trace,
                                       const ExactOptions& options) {
  OrderingRelations r = make_empty_result(trace, Semantics::kInterleaving);

  ScheduleSpaceOptions sso;
  sso.stepper.respect_dependences = options.respect_dependences;
  sso.max_states = options.max_states;
  sso.time_budget_seconds = options.time_budget_seconds;
  sso.max_memory_bytes = options.max_memory_bytes;
  sso.num_threads = options.num_threads;
  sso.steal = options.steal;
  sso.spill = options.spill;
  const CanPrecedeResult cp = compute_can_precede(trace, sso);

  r.truncated = cp.truncated;
  r.states_visited = cp.states_visited;
  r.search = cp.search;
  if (!cp.feasible_nonempty) {
    fill_vacuous(r);
    return r;
  }

  const std::size_t n = trace.num_events();
  // CHB(a, b) == can_precede[b] contains a: CHB is the transpose of the
  // sweep output, computed 64x64 bits at a time.
  RelationMatrix& chb = r[RelationKind::kCHB];
  const std::size_t wpr = (n + 63) / 64;
  std::uint64_t blk[64];
  for (std::size_t bi = 0; bi < wpr; ++bi) {
    for (std::size_t bj = 0; bj < wpr; ++bj) {
      bool any = false;
      for (int k = 0; k < 64; ++k) {
        const std::size_t a = bi * 64 + static_cast<std::size_t>(k);
        blk[k] = a < n ? cp.can_precede[a].word(bj) : 0;
        any = any || blk[k] != 0;
      }
      if (!any) continue;
      search::transpose64(blk);
      for (int k = 0; k < 64; ++k) {
        const std::size_t b = bj * 64 + static_cast<std::size_t>(k);
        if (b < n && blk[k] != 0) chb.row(b).word(bi) = blk[k];
      }
    }
  }
  // MHB(a, b) == every schedule runs a before b == no schedule runs b
  // before a (schedules are total orders), i.e. row a is the complement
  // of can_precede[a] minus the diagonal.
  RelationMatrix& mhb = r[RelationKind::kMHB];
  for (EventId a = 0; a < n; ++a) {
    DynamicBitset row(n);
    row.or_complement(cp.can_precede[a]);
    row.reset(a);
    mhb.row(a) = std::move(row);
  }
  // A total order never exhibits concurrency.
  r[RelationKind::kMCW].clear();
  r[RelationKind::kCCW].clear();
  r[RelationKind::kMOW].fill_off_diagonal();
  r[RelationKind::kCOW].fill_off_diagonal();
  return r;
}

/// Per-causal-class accumulator for the causal and interval semantics.
/// In parallel mode each worker slot gets a private accumulator (visits
/// with the same slot never overlap); they all share one sharded
/// fingerprint set so every distinct class is accumulated by exactly one
/// of them, and merge() combines the results.
class CausalAccumulator {
 public:
  CausalAccumulator(const Trace& trace, const CausalOptions& causal,
                    search::ShardedFingerprintSet& dedup)
      : trace_(trace), causal_(causal), dedup_(&dedup),
        n_(trace.num_events()) {
    any_c_.reset(n_, n_);
    all_c_.reset(n_, n_);
    any_incomp_.reset(n_, n_);
    all_incomp_.reset(n_, n_);
    any_notrev_.reset(n_, n_);
    anc_.reset(n_, n_);
    scratch_words_.assign(any_c_.words_per_row(), 0);
    for (EventId a = 0; a < n_; ++a) {
      // all_* start full (AND identity) minus the diagonal.
      search::BitRow c = all_c_.row(a);
      c.set_all();
      c.reset(a);
      search::BitRow i = all_incomp_.row(a);
      i.set_all();
      i.reset(a);
    }
  }

  std::uint64_t classes() const { return classes_; }

  void accept(const std::vector<EventId>& schedule) {
    const TransitiveClosure tc = causal_closure(trace_, schedule, causal_);
    // Deduplicate on a chained 64-bit hash of the closure rows: O(1)
    // space per class instead of an n²/8-byte string.  Debug builds keep
    // the rows and verify hash-equal classes really are equal.
    std::uint64_t fingerprint = DynamicBitset::kHashSeed;
    for (EventId a = 0; a < n_; ++a) {
      fingerprint = tc.descendants(a).hash_words(fingerprint);
    }
    const std::vector<std::uint64_t>* verify_payload = nullptr;
#ifndef NDEBUG
    std::vector<std::uint64_t> closure_words;
    if (dedup_->verify_collisions()) {
      for (EventId a = 0; a < n_; ++a) {
        const DynamicBitset& row = tc.descendants(a);
        for (std::size_t w = 0; w < row.word_count(); ++w) {
          closure_words.push_back(row.word(w));
        }
      }
      verify_payload = &closure_words;
    }
#endif
    if (!dedup_->insert(fingerprint, verify_payload)) return;
    ++classes_;

    // Closure transpose, once per class: anc_[b] = { a : a -> b },
    // computed 64x64 bits at a time.
    anc_.reset(n_, n_);
    const std::size_t wpr = anc_.words_per_row();
    std::uint64_t blk[64];
    for (std::size_t bi = 0; bi < wpr; ++bi) {
      for (std::size_t bj = 0; bj < wpr; ++bj) {
        bool any = false;
        for (int k = 0; k < 64; ++k) {
          const std::size_t a = bi * 64 + static_cast<std::size_t>(k);
          blk[k] = a < n_ ? tc.descendants(a).word(bj) : 0;
          any = any || blk[k] != 0;
        }
        if (!any) continue;
        search::transpose64(blk);
        for (int k = 0; k < 64; ++k) {
          const std::size_t b = bj * 64 + static_cast<std::size_t>(k);
          if (b < n_ && blk[k] != 0) anc_.row(b).word(bi) = blk[k];
        }
      }
    }
    // Word-parallel updates: not-reversed(a) = ~(anc(a) | {a}) and
    // incomparable(a) = ~(desc(a) | anc(a) | {a}).
    for (EventId a = 0; a < n_; ++a) {
      const search::ConstBitRow desc = search::row_view(tc.descendants(a));
      any_c_.row(a) |= desc;
      all_c_.row(a) &= desc;
      search::BitRow scratch(scratch_words_.data(), n_);
      scratch.assign(anc_.row(a));
      scratch.set(a);
      any_notrev_.row(a).or_complement(scratch);
      scratch |= desc;
      any_incomp_.row(a).or_complement(scratch);
      all_incomp_.row(a).subtract(scratch);
    }
  }

  /// Associative cross-worker merge: any_* rows OR, all_* rows AND,
  /// class counts summed (the shared dedup set guarantees each class was
  /// accumulated by exactly one worker, so the sum is the distinct
  /// count).  A worker that saw no classes contributes identities.
  void merge(const CausalAccumulator& o) {
    classes_ += o.classes_;
    for (EventId a = 0; a < n_; ++a) {
      any_c_.row(a) |= o.any_c_.row(a);
      all_c_.row(a) &= o.all_c_.row(a);
      any_incomp_.row(a) |= o.any_incomp_.row(a);
      all_incomp_.row(a) &= o.all_incomp_.row(a);
      any_notrev_.row(a) |= o.any_notrev_.row(a);
    }
  }

  void finish(OrderingRelations& r, Semantics semantics) const {
    r.causal_classes = classes_;
    if (classes_ == 0) {
      fill_vacuous(r);
      return;
    }
    const std::size_t n = n_;
    DynamicBitset tmp(n);
    for (EventId a = 0; a < n; ++a) {
      all_c_.row(a).to_bitset(r[RelationKind::kMHB].row(a));
      any_incomp_.row(a).to_bitset(r[RelationKind::kCCW].row(a));
      if (semantics == Semantics::kInterval) {
        r[RelationKind::kMCW].row(a) = DynamicBitset(n);
      } else {
        all_incomp_.row(a).to_bitset(r[RelationKind::kMCW].row(a));
      }
      // MOW: never concurrent == comparable in every class.
      DynamicBitset mow(n, true);
      any_incomp_.row(a).to_bitset(tmp);
      mow.subtract(tmp);
      mow.reset(a);
      r[RelationKind::kMOW].row(a) = std::move(mow);
      if (semantics == Semantics::kInterval) {
        // Timing freedom: a could precede b iff some class does not force
        // b before a; any pair can be serialized, so COW is total.
        any_notrev_.row(a).to_bitset(r[RelationKind::kCHB].row(a));
        DynamicBitset cow(n, true);
        cow.reset(a);
        r[RelationKind::kCOW].row(a) = cow;
      } else {
        any_c_.row(a).to_bitset(r[RelationKind::kCHB].row(a));
        // COW: comparable in some class == not incomparable in every class.
        DynamicBitset cow(n, true);
        all_incomp_.row(a).to_bitset(tmp);
        cow.subtract(tmp);
        cow.reset(a);
        r[RelationKind::kCOW].row(a) = std::move(cow);
      }
    }
  }

 private:
  const Trace& trace_;
  CausalOptions causal_;
  search::ShardedFingerprintSet* dedup_;
  std::size_t n_;
  std::uint64_t classes_ = 0;
  // One contiguous word arena per matrix (search::PerStateBitset): the
  // row kernels above stream cache-friendly 64-bit blocks instead of
  // hopping across n separately allocated bitsets.
  search::PerStateBitset any_c_, all_c_;
  search::PerStateBitset any_incomp_, all_incomp_;
  search::PerStateBitset any_notrev_;
  search::PerStateBitset anc_;  ///< per-class closure transpose
  std::vector<std::uint64_t> scratch_words_;
};

OrderingRelations compute_causal_or_interval(const Trace& trace,
                                             Semantics semantics,
                                             const ExactOptions& options) {
  OrderingRelations r = make_empty_result(trace, semantics);
  const CausalOptions causal{.include_data_edges =
                                 options.causal_data_edges};
  search::ShardedFingerprintSet dedup;
  const std::size_t num_threads =
      search::resolve_num_threads(options.num_threads);

  if (options.class_dedup) {
    ClassEnumOptions co;
    co.stepper.respect_dependences = options.respect_dependences;
    co.causal = causal;
    co.max_schedules = options.max_schedules;
    co.time_budget_seconds = options.time_budget_seconds;
    co.max_memory_bytes = options.max_memory_bytes;
    co.steal = options.steal;
    co.spill = options.spill;
    // The class-dedup set lives here but grows inside the enumeration:
    // charge it against the same byte budget as the prefix store.
    co.charge_store = &dedup;
    co.reduction = options.reduction;
    if (num_threads <= 1) {
      CausalAccumulator acc(trace, causal, dedup);
      const ClassEnumStats stats = enumerate_causal_classes(
          trace, co, [&](const std::vector<EventId>& s) {
            acc.accept(s);
            return true;
          });
      r.schedules_seen = stats.schedules_visited;
      r.deadlocked_prefixes = stats.deadlocked_prefixes;
      r.truncated = stats.truncated || stats.stopped_by_visitor;
      r.search = stats.search;
      r.search.memo_bytes += dedup.bytes();  // class-dedup fingerprints
      acc.finish(r, semantics);
      return r;
    }
    // Work-stealing parallel engine: one private accumulator per worker
    // slot (lock-free accepts — same-slot visits never overlap), class
    // dedup shared through the sharded set, all budgets strict and
    // global via the shared search context.
    std::vector<CausalAccumulator> accs;
    accs.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      accs.emplace_back(trace, causal, dedup);
    }
    const ClassEnumStats stats = enumerate_causal_classes_parallel(
        trace, co, num_threads,
        [&](std::size_t slot, const std::vector<EventId>& s) {
          accs[slot].accept(s);
          return true;
        });
    r.schedules_seen = stats.schedules_visited;
    r.deadlocked_prefixes = stats.deadlocked_prefixes;
    r.truncated = stats.truncated || stats.stopped_by_visitor;
    r.search = stats.search;
    // The shared stores are authoritative for memo bytes: prefix-set
    // bytes arrive via stats.search (set once from the set itself),
    // and the class-dedup set is added here exactly once — never
    // summed per worker.
    r.search.memo_bytes += dedup.bytes();
    for (std::size_t i = 1; i < accs.size(); ++i) accs[0].merge(accs[i]);
    accs[0].finish(r, semantics);
    return r;
  }

  EnumerateOptions eo;
  eo.stepper.respect_dependences = options.respect_dependences;
  eo.max_schedules = options.max_schedules;
  eo.time_budget_seconds = options.time_budget_seconds;
  eo.max_memory_bytes = options.max_memory_bytes;
  eo.steal = options.steal;
  eo.charge_store = &dedup;
  if (num_threads <= 1) {
    CausalAccumulator acc(trace, causal, dedup);
    const EnumerateStats stats =
        enumerate_schedules(trace, eo, [&](const std::vector<EventId>& s) {
          acc.accept(s);
          return true;
        });
    r.schedules_seen = stats.schedules;
    r.deadlocked_prefixes = stats.deadlocked_prefixes;
    r.truncated = stats.truncated;
    r.search = stats.search;
    r.search.memo_bytes += dedup.bytes();  // class-dedup fingerprints
    acc.finish(r, semantics);
    return r;
  }
  // Work-stealing parallel walk of the plain (non-prefix-dedup)
  // enumerator; class-level dedup still runs through the shared sharded
  // set, and the worker slot routes each schedule to a private
  // accumulator.
  std::vector<CausalAccumulator> accs;
  accs.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    accs.emplace_back(trace, causal, dedup);
  }
  const EnumerateStats stats = enumerate_schedules_parallel_indexed(
      trace, eo,
      [&](std::size_t slot, const std::vector<EventId>& s) {
        accs[slot].accept(s);
        return true;
      },
      num_threads);
  r.schedules_seen = stats.schedules;
  r.deadlocked_prefixes = stats.deadlocked_prefixes;
  r.truncated = stats.truncated;
  r.search = stats.search;
  r.search.memo_bytes += dedup.bytes();  // class-dedup fingerprints
  if (r.search.shard_sizes.empty()) r.search.shard_sizes = dedup.shard_sizes();
  for (std::size_t i = 1; i < accs.size(); ++i) accs[0].merge(accs[i]);
  accs[0].finish(r, semantics);
  return r;
}

}  // namespace

OrderingRelations compute_exact(const Trace& trace, Semantics semantics,
                                const ExactOptions& options) {
  switch (semantics) {
    case Semantics::kInterleaving:
      return compute_interleaving(trace, options);
    case Semantics::kCausal:
    case Semantics::kInterval:
      return compute_causal_or_interval(trace, semantics, options);
  }
  EVORD_CHECK(false, "unknown semantics");
}

bool must_have_happened_before(const Trace& trace, EventId a, EventId b,
                               Semantics semantics,
                               const ExactOptions& options) {
  return compute_exact(trace, semantics, options)
      .holds(RelationKind::kMHB, a, b);
}

bool could_have_happened_before(const Trace& trace, EventId a, EventId b,
                                Semantics semantics,
                                const ExactOptions& options) {
  return compute_exact(trace, semantics, options)
      .holds(RelationKind::kCHB, a, b);
}

bool could_have_been_concurrent(const Trace& trace, EventId a, EventId b,
                                const ExactOptions& options) {
  return compute_exact(trace, Semantics::kCausal, options)
      .holds(RelationKind::kCCW, a, b);
}

}  // namespace evord
