#include "ordering/class_enumerate.hpp"

#include <deque>
#include <unordered_set>

#include "util/timer.hpp"

namespace evord {

namespace {

/// Incrementally maintained causal ancestry per executed event, plus the
/// replay state the pairing rules need (token queues, establishers).
class CausalTracker {
 public:
  CausalTracker(const Trace& trace, const CausalOptions& options)
      : trace_(trace),
        options_(options),
        rows_(trace.num_events(), DynamicBitset(trace.num_events())),
        tokens_(trace.semaphores().size()),
        establisher_(trace.event_vars().size(), kNoEvent) {
    counts_.reserve(trace.semaphores().size());
    for (const SemaphoreInfo& s : trace.semaphores()) {
      counts_.push_back(s.initial);
    }
    posted_.reserve(trace.event_vars().size());
    for (const EventVarInfo& v : trace.event_vars()) {
      posted_.push_back(v.initially_posted);
    }
    // Conflicting pairs, indexed per event for O(deg) updates.
    if (options_.include_data_edges) {
      conflicts_.resize(trace.num_events());
      for (const auto& [x, y] : trace.conflicting_pairs()) {
        conflicts_[x].push_back(y);
        conflicts_[y].push_back(x);
      }
      for (const auto& [x, y] : trace.dependences()) {
        conflicts_[x].push_back(y);
        conflicts_[y].push_back(x);
      }
    }
  }

  /// Ancestors (strict) of executed event e.
  const DynamicBitset& ancestors(EventId e) const { return rows_[e]; }

  struct Undo {
    EventId event = kNoEvent;
    int old_count = 0;
    bool old_posted = false;
    EventId old_establisher = kNoEvent;
    bool pushed_token = false;
    bool popped_token = false;
    EventId popped_producer = kNoEvent;
  };

  /// Called alongside TraceStepper::apply, with the stepper's done bits
  /// as they were BEFORE the apply.
  Undo apply(EventId id, const DynamicBitset& done_before) {
    const Event& e = trace_.event(id);
    Undo u;
    u.event = id;

    DynamicBitset& row = rows_[id];
    row.reset_all();
    // Program order predecessor.
    if (e.index_in_process > 0) {
      const EventId prev =
          trace_.program_order(e.process)[e.index_in_process - 1];
      row.set(prev);
      row |= rows_[prev];
    } else if (trace_.process(e.process).creating_fork != kNoEvent) {
      const EventId creator = trace_.process(e.process).creating_fork;
      row.set(creator);
      row |= rows_[creator];
    }
    if (e.kind == EventKind::kJoin) {
      const auto child_po = trace_.program_order(e.object);
      if (!child_po.empty()) {
        row.set(child_po.back());
        row |= rows_[child_po.back()];
      }
    }
    // Data edges: every already-executed conflicting event precedes.
    if (options_.include_data_edges) {
      for (EventId other : conflicts_[id]) {
        if (done_before.test(other)) {
          row.set(other);
          row |= rows_[other];
        }
      }
    }
    // Synchronization pairing.
    switch (e.kind) {
      case EventKind::kSemV: {
        const SemaphoreInfo& s = trace_.semaphores()[e.object];
        u.old_count = counts_[e.object];
        if (!(s.binary && counts_[e.object] == 1)) {
          ++counts_[e.object];
          tokens_[e.object].push_back(id);
          u.pushed_token = true;
        }
        break;
      }
      case EventKind::kSemP: {
        u.old_count = counts_[e.object];
        --counts_[e.object];
        if (static_cast<std::size_t>(counts_[e.object]) <
            tokens_[e.object].size()) {
          const EventId producer = tokens_[e.object].front();
          tokens_[e.object].pop_front();
          u.popped_token = true;
          u.popped_producer = producer;
          row.set(producer);
          row |= rows_[producer];
        }
        break;
      }
      case EventKind::kPost:
        u.old_posted = posted_[e.object];
        u.old_establisher = establisher_[e.object];
        if (!posted_[e.object]) {
          posted_[e.object] = true;
          establisher_[e.object] = id;
        }
        break;
      case EventKind::kClear:
        u.old_posted = posted_[e.object];
        u.old_establisher = establisher_[e.object];
        posted_[e.object] = false;
        establisher_[e.object] = kNoEvent;
        break;
      case EventKind::kWait:
        if (establisher_[e.object] != kNoEvent) {
          row.set(establisher_[e.object]);
          row |= rows_[establisher_[e.object]];
        }
        break;
      default:
        break;
    }
    return u;
  }

  void undo(const Undo& u) {
    const Event& e = trace_.event(u.event);
    switch (e.kind) {
      case EventKind::kSemV:
        counts_[e.object] = u.old_count;
        if (u.pushed_token) tokens_[e.object].pop_back();
        break;
      case EventKind::kSemP:
        counts_[e.object] = u.old_count;
        if (u.popped_token) {
          tokens_[e.object].push_front(u.popped_producer);
        }
        break;
      case EventKind::kPost:
      case EventKind::kClear:
        posted_[e.object] = u.old_posted;
        establisher_[e.object] = u.old_establisher;
        break;
      default:
        break;
    }
    // rows_[u.event] is stale after undo; it is recomputed on re-apply.
  }

  /// Extends the stepper's state key with the causal-prefix identity:
  /// executed rows, token queues and establishers.
  void extend_key(const DynamicBitset& done,
                  std::vector<std::uint64_t>& key) const {
    for (std::size_t e = done.find_first(); e < done.size();
         e = done.find_next(e)) {
      key.push_back(0x9e3779b97f4a7c15ull ^ e);
      const DynamicBitset& row = rows_[e];
      for (std::size_t w = 0; w < row.word_count(); ++w) {
        key.push_back(row.word(w));
      }
    }
    for (const auto& queue : tokens_) {
      key.push_back(0xc2b2ae3d27d4eb4full ^ queue.size());
      for (EventId producer : queue) key.push_back(producer);
    }
    for (EventId est : establisher_) key.push_back(est);
  }

 private:
  const Trace& trace_;
  CausalOptions options_;
  std::vector<DynamicBitset> rows_;
  std::vector<std::vector<EventId>> conflicts_;
  std::vector<std::deque<EventId>> tokens_;
  std::vector<int> counts_;
  std::vector<bool> posted_;
  std::vector<EventId> establisher_;
};

struct KeyHash {
  std::size_t operator()(const std::vector<std::uint64_t>& key) const {
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint64_t w : key) {
      h ^= w;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

class ClassEnumerator {
 public:
  ClassEnumerator(const Trace& trace, const ClassEnumOptions& options,
                  const std::function<bool(const std::vector<EventId>&)>& visit)
      : options_(options),
        stepper_(trace, options.stepper),
        tracker_(trace, options.causal),
        visit_(visit),
        deadline_(options.time_budget_seconds) {
    schedule_.reserve(trace.num_events());
  }

  ClassEnumStats run() {
    dfs();
    stats_.distinct_prefixes = seen_.size();
    return stats_;
  }

 private:
  bool budget_hit() {
    if (options_.max_prefixes != 0 && seen_.size() >= options_.max_prefixes) {
      stats_.truncated = true;
      return true;
    }
    if ((++budget_poll_ & 255u) == 0 && deadline_.expired()) {
      stats_.truncated = true;
      return true;
    }
    return false;
  }

  bool dfs() {
    if (stepper_.complete()) {
      ++stats_.schedules_visited;
      if (!visit_(schedule_)) {
        stats_.stopped_by_visitor = true;
        return false;
      }
      return true;
    }
    key_scratch_.clear();
    stepper_.encode_key(key_scratch_);
    tracker_.extend_key(stepper_.done_bits(), key_scratch_);
    if (!seen_.insert(key_scratch_).second) {
      ++stats_.prefixes_pruned;
      return true;
    }
    if (budget_hit()) return true;

    enabled_stack_.emplace_back();
    stepper_.enabled_events(enabled_stack_.back());
    if (enabled_stack_.back().empty()) {
      ++stats_.deadlocked_prefixes;
      enabled_stack_.pop_back();
      return true;
    }
    bool keep_going = true;
    for (std::size_t i = 0;
         keep_going && i < enabled_stack_.back().size(); ++i) {
      const EventId e = enabled_stack_.back()[i];
      const CausalTracker::Undo cu =
          tracker_.apply(e, stepper_.done_bits());
      const TraceStepper::Undo su = stepper_.apply(e);
      schedule_.push_back(e);
      keep_going = dfs();
      schedule_.pop_back();
      stepper_.undo(su);
      tracker_.undo(cu);
    }
    enabled_stack_.pop_back();
    return keep_going;
  }

  const ClassEnumOptions& options_;
  TraceStepper stepper_;
  CausalTracker tracker_;
  const std::function<bool(const std::vector<EventId>&)>& visit_;
  Deadline deadline_;
  ClassEnumStats stats_;
  std::vector<EventId> schedule_;
  std::vector<std::vector<EventId>> enabled_stack_;
  std::vector<std::uint64_t> key_scratch_;
  std::unordered_set<std::vector<std::uint64_t>, KeyHash> seen_;
  std::uint32_t budget_poll_ = 0;
};

}  // namespace

ClassEnumStats enumerate_causal_classes(
    const Trace& trace, const ClassEnumOptions& options,
    const std::function<bool(const std::vector<EventId>&)>& visit) {
  return ClassEnumerator(trace, options, visit).run();
}

}  // namespace evord
