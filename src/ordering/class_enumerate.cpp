#include "ordering/class_enumerate.hpp"

#include <deque>
#include <memory>

#include "search/engine.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace evord {

namespace {

// The tracker's incremental (Zobrist-style) prefix hashes use hash_mix
// (util/hash.hpp): each state component contributes one well-mixed word,
// XOR-combined so apply/undo update the running hash in O(1).
constexpr std::uint64_t kRowSalt = 0x8f14e45fceea167aull;
constexpr std::uint64_t kTokenSalt = 0x5bd1e995973f0f5cull;
constexpr std::uint64_t kEstablisherSalt = 0x27d4eb2f165667c5ull;

/// Incrementally maintained causal ancestry per executed event, plus the
/// replay state the pairing rules need (token queues, establishers).
class CausalTracker {
 public:
  CausalTracker(const Trace& trace, const CausalOptions& options)
      : trace_(trace),
        options_(options),
        rows_(trace.num_events(), DynamicBitset(trace.num_events())),
        row_hash_(trace.num_events(), 0),
        tokens_(trace.semaphores().size()),
        token_heads_(trace.semaphores().size(), 0),
        establisher_(trace.event_vars().size(), kNoEvent) {
    counts_.reserve(trace.semaphores().size());
    for (const SemaphoreInfo& s : trace.semaphores()) {
      counts_.push_back(s.initial);
    }
    posted_.reserve(trace.event_vars().size());
    for (const EventVarInfo& v : trace.event_vars()) {
      posted_.push_back(v.initially_posted);
    }
    for (std::size_t v = 0; v < establisher_.size(); ++v) {
      establisher_hash_ ^= hash_mix(kEstablisherSalt, v, kNoEvent);
    }
    // Conflicting pairs, indexed per event for O(deg) updates.
    if (options_.include_data_edges) {
      conflicts_.resize(trace.num_events());
      for (const auto& [x, y] : trace.conflicting_pairs()) {
        conflicts_[x].push_back(y);
        conflicts_[y].push_back(x);
      }
      for (const auto& [x, y] : trace.dependences()) {
        conflicts_[x].push_back(y);
        conflicts_[y].push_back(x);
      }
    }
  }

  /// Ancestors (strict) of executed event e.
  const DynamicBitset& ancestors(EventId e) const { return rows_[e]; }

  struct Undo {
    EventId event = kNoEvent;
    int old_count = 0;
    bool old_posted = false;
    EventId old_establisher = kNoEvent;
    bool pushed_token = false;
    bool popped_token = false;
    EventId popped_producer = kNoEvent;
  };

  /// Called alongside TraceStepper::apply, with the stepper's done bits
  /// as they were BEFORE the apply.
  Undo apply(EventId id, const DynamicBitset& done_before) {
    const Event& e = trace_.event(id);
    Undo u;
    u.event = id;

    DynamicBitset& row = rows_[id];
    row.reset_all();
    // Program order predecessor.
    if (e.index_in_process > 0) {
      const EventId prev =
          trace_.program_order(e.process)[e.index_in_process - 1];
      row.set(prev);
      row |= rows_[prev];
    } else if (trace_.process(e.process).creating_fork != kNoEvent) {
      const EventId creator = trace_.process(e.process).creating_fork;
      row.set(creator);
      row |= rows_[creator];
    }
    if (e.kind == EventKind::kJoin) {
      const auto child_po = trace_.program_order(e.object);
      if (!child_po.empty()) {
        row.set(child_po.back());
        row |= rows_[child_po.back()];
      }
    }
    // Data edges: every already-executed conflicting event precedes.
    if (options_.include_data_edges) {
      for (EventId other : conflicts_[id]) {
        if (done_before.test(other)) {
          row.set(other);
          row |= rows_[other];
        }
      }
    }
    // Synchronization pairing.
    switch (e.kind) {
      case EventKind::kSemV: {
        const SemaphoreInfo& s = trace_.semaphores()[e.object];
        u.old_count = counts_[e.object];
        if (!(s.binary && counts_[e.object] == 1)) {
          ++counts_[e.object];
          tokens_[e.object].push_back(id);
          tokens_hash_ ^= token_hash(
              e.object,
              token_heads_[e.object] + tokens_[e.object].size() - 1, id);
          u.pushed_token = true;
        }
        break;
      }
      case EventKind::kSemP: {
        u.old_count = counts_[e.object];
        --counts_[e.object];
        if (static_cast<std::size_t>(counts_[e.object]) <
            tokens_[e.object].size()) {
          const EventId producer = tokens_[e.object].front();
          tokens_hash_ ^=
              token_hash(e.object, token_heads_[e.object], producer);
          ++token_heads_[e.object];
          tokens_[e.object].pop_front();
          u.popped_token = true;
          u.popped_producer = producer;
          row.set(producer);
          row |= rows_[producer];
        }
        break;
      }
      case EventKind::kPost:
        u.old_posted = posted_[e.object];
        u.old_establisher = establisher_[e.object];
        if (!posted_[e.object]) {
          posted_[e.object] = true;
          set_establisher(e.object, id);
        }
        break;
      case EventKind::kClear:
        u.old_posted = posted_[e.object];
        u.old_establisher = establisher_[e.object];
        posted_[e.object] = false;
        set_establisher(e.object, kNoEvent);
        break;
      case EventKind::kWait:
        if (establisher_[e.object] != kNoEvent) {
          row.set(establisher_[e.object]);
          row |= rows_[establisher_[e.object]];
        }
        break;
      default:
        break;
    }
    // The row is final here; fold it into the running prefix hash.
    row_hash_[id] = hash_mix(kRowSalt, id, row.hash());
    rows_hash_ ^= row_hash_[id];
    return u;
  }

  void undo(const Undo& u) {
    const Event& e = trace_.event(u.event);
    rows_hash_ ^= row_hash_[u.event];
    switch (e.kind) {
      case EventKind::kSemV:
        counts_[e.object] = u.old_count;
        if (u.pushed_token) {
          tokens_hash_ ^= token_hash(
              e.object,
              token_heads_[e.object] + tokens_[e.object].size() - 1,
              tokens_[e.object].back());
          tokens_[e.object].pop_back();
        }
        break;
      case EventKind::kSemP:
        counts_[e.object] = u.old_count;
        if (u.popped_token) {
          --token_heads_[e.object];
          tokens_hash_ ^= token_hash(e.object, token_heads_[e.object],
                                     u.popped_producer);
          tokens_[e.object].push_front(u.popped_producer);
        }
        break;
      case EventKind::kPost:
      case EventKind::kClear:
        posted_[e.object] = u.old_posted;
        set_establisher(e.object, u.old_establisher);
        break;
      default:
        break;
    }
    // rows_[u.event] is stale after undo; it is recomputed on re-apply.
  }

  /// 64-bit fingerprint of the causal-prefix identity (executed rows,
  /// token queues, establishers) combined with the caller's hash of the
  /// stepper key.  Maintained incrementally by apply/undo, so reading it
  /// is O(1); equal prefix states yield equal fingerprints.
  std::uint64_t fingerprint(std::uint64_t stepper_hash) const {
    std::uint64_t h = hash_mix(0x2545f4914f6cdd1dull, stepper_hash,
                              rows_hash_);
    h = hash_mix(0x9e3779b185ebca87ull, h, tokens_hash_);
    return hash_mix(0x94d049bb133111ebull, h, establisher_hash_);
  }

  /// Extends the stepper's state key with the causal-prefix identity:
  /// executed rows, token queues and establishers.  Only used to retain
  /// full keys for the debug-mode collision safety net; the hot path
  /// dedups on fingerprint() alone.
  void extend_key(const DynamicBitset& done,
                  std::vector<std::uint64_t>& key) const {
    for (std::size_t e = done.find_first(); e < done.size();
         e = done.find_next(e)) {
      key.push_back(0x9e3779b97f4a7c15ull ^ e);
      const DynamicBitset& row = rows_[e];
      for (std::size_t w = 0; w < row.word_count(); ++w) {
        key.push_back(row.word(w));
      }
    }
    for (const auto& queue : tokens_) {
      key.push_back(0xc2b2ae3d27d4eb4full ^ queue.size());
      for (EventId producer : queue) key.push_back(producer);
    }
    for (EventId est : establisher_) key.push_back(est);
  }

 private:
  static std::uint64_t token_hash(ObjectId sem, std::uint64_t abs_index,
                                  EventId producer) {
    return hash_mix(
        kTokenSalt ^ (static_cast<std::uint64_t>(sem) * 0xff51afd7ed558ccdull),
        abs_index, producer);
  }

  void set_establisher(ObjectId var, EventId est) {
    establisher_hash_ ^= hash_mix(kEstablisherSalt, var, establisher_[var]);
    establisher_[var] = est;
    establisher_hash_ ^= hash_mix(kEstablisherSalt, var, est);
  }

  const Trace& trace_;
  CausalOptions options_;
  std::vector<DynamicBitset> rows_;
  std::vector<std::uint64_t> row_hash_;  ///< zobrist term per executed event
  std::vector<std::vector<EventId>> conflicts_;
  std::vector<std::deque<EventId>> tokens_;
  /// Tokens popped so far per semaphore; gives queue elements stable
  /// absolute indices so FIFO order is part of the incremental hash.
  std::vector<std::uint64_t> token_heads_;
  std::vector<int> counts_;
  std::vector<bool> posted_;
  std::vector<EventId> establisher_;
  std::uint64_t rows_hash_ = 0;
  std::uint64_t tokens_hash_ = 0;
  std::uint64_t establisher_hash_ = 0;
};

/// Enumeration hooks: forward complete schedules to the caller's
/// visitor; deduped/stuck prefixes are counted by the engine.
struct ClassHooks {
  const std::function<bool(const std::vector<EventId>&)>* visit;
  bool on_terminal(const std::vector<EventId>& schedule) {
    return (*visit)(schedule);
  }
  void on_stuck(const std::vector<EventId>& /*path*/, std::uint64_t /*fp*/,
                const std::vector<std::uint32_t>& /*dewey*/) {}
};

using ClassSearch =
    search::EnumerationSearch<CausalTracker, search::SharedSetDedup,
                              ClassHooks>;

search::SearchOptions to_search_options(const ClassEnumOptions& options) {
  search::SearchOptions so;
  so.max_states = options.max_prefixes;
  so.max_terminals = options.max_schedules;
  so.time_budget_seconds = options.time_budget_seconds;
  so.max_memory_bytes = options.max_memory_bytes;
  so.steal = options.steal;
  so.reduction = options.reduction;
  so.spill = options.spill;
  return so;
}

ClassEnumStats finish(const search::SearchStats& stats,
                      const search::ShardedFingerprintSet& prefix_seen) {
  ClassEnumStats out;
  out.schedules_visited = stats.terminals;
  out.prefixes_pruned = stats.dedup_hits;
  out.deadlocked_prefixes = stats.deadlocked_prefixes;
  out.distinct_prefixes = static_cast<std::size_t>(stats.states_visited);
  out.truncated = stats.truncated;
  out.stopped_by_visitor = stats.stopped_by_visitor;
  out.search = stats;
  out.search.memo_bytes = prefix_seen.bytes();
  out.search.spilled_bytes = prefix_seen.spilled_bytes();
  out.search.spill_events = prefix_seen.spill_events();
  out.search.shard_sizes = prefix_seen.shard_sizes();
  return out;
}

}  // namespace

ClassEnumStats enumerate_causal_classes(
    const Trace& trace, const ClassEnumOptions& options,
    const std::function<bool(const std::vector<EventId>&)>& visit) {
  const search::SearchOptions so = to_search_options(options);
  search::SharedContext ctx(so);
  const search::ScopedAccountant charge_guard(options.charge_store,
                                              &ctx.memory);
  // Prefix fingerprints fold the causal tracker's state into the hash,
  // so the store stays in 64-bit hash mode (never exact packed keys).
  search::ShardedFingerprintSet prefix_seen(search::make_store_config(
      trace, so, 16, /*synchronized=*/true, /*pure_state_key=*/false));
  prefix_seen.set_accountant(&ctx.memory);
  const bool reduced = so.reduction != search::ReductionMode::kOff;
  std::unique_ptr<search::IndependenceRelation> indep;
  if (reduced) indep = std::make_unique<search::IndependenceRelation>(trace);
  ClassSearch engine(trace, options.stepper, so, &ctx,
                     CausalTracker(trace, options.causal),
                     search::SharedSetDedup(&prefix_seen),
                     ClassHooks{&visit}, indep.get());
  engine.seed(options.seed_prefix);
  return finish(engine.run(), prefix_seen);
}

std::size_t num_root_subtrees(const Trace& trace,
                              const ClassEnumOptions& options) {
  return search::root_events(trace, options.stepper, options.seed_prefix)
      .size();
}

ClassEnumStats enumerate_causal_classes_parallel(
    const Trace& trace, const ClassEnumOptions& options,
    std::size_t num_threads,
    const std::function<bool(std::size_t, const std::vector<EventId>&)>&
        visit) {
  const std::size_t threads = search::resolve_num_threads(num_threads);
  const bool reduced = options.reduction != search::ReductionMode::kOff;
  std::unique_ptr<search::IndependenceRelation> indep;
  if (reduced) indep = std::make_unique<search::IndependenceRelation>(trace);
  std::vector<search::SearchTask> roots = search::root_tasks(
      trace, options.stepper, options.seed_prefix, options.reduction,
      indep.get(), /*tracker_sensitive=*/true);
  if (threads <= 1 || roots.empty()) {
    // Serial fallback also covers empty traces and deadlocked roots.
    const std::function<bool(const std::vector<EventId>&)> wrapped =
        [&](const std::vector<EventId>& s) { return visit(0, s); };
    return enumerate_causal_classes(trace, options, wrapped);
  }

  const search::SearchOptions so = to_search_options(options);
  search::SharedContext ctx(so);
  const search::ScopedAccountant charge_guard(options.charge_store,
                                              &ctx.memory);
  // One prefix-fingerprint set shared by every task: a state reachable
  // from two task regions is explored by whichever task gets there first
  // (its completions are identical either way).  Hash mode: the prefix
  // fingerprints fold the causal tracker's state into the hash.
  search::ShardedFingerprintSet prefix_seen(search::make_store_config(
      trace, so, 16, /*synchronized=*/true, /*pure_state_key=*/false));
  prefix_seen.set_accountant(&ctx.memory);

  // Claim the root (post-seed) state once, as the serial engine would at
  // its first dfs() entry, so distinct-prefix counts match it exactly.
  search::SearchStats total;
  {
    TraceStepper root_stepper(trace, options.stepper);
    CausalTracker root_tracker(trace, options.causal);
    for (EventId e : options.seed_prefix) {
      EVORD_CHECK(root_stepper.enabled(e), "seed prefix is not schedulable");
      root_tracker.apply(e, root_stepper.done_bits());
      root_stepper.apply(e);
    }
    std::vector<std::uint64_t> key;
    const std::vector<std::uint64_t>* payload = nullptr;
    const std::vector<EventId> root_sleep;  // the root sleeps on nothing
    if (prefix_seen.verify_collisions()) {
      root_stepper.encode_key(key);
      root_tracker.extend_key(root_stepper.done_bits(), key);
      if (reduced) search::extend_key_with_sleep(root_sleep, key);
      payload = &key;
    }
    std::uint64_t root_fp =
        root_tracker.fingerprint(root_stepper.state_hash());
    if (reduced) {
      // Must match the serial engine's claim key exactly: the (state,
      // sleep set) pair, with an empty sleep set at the root.
      root_fp = search::fold_sleep(root_fp,
                                   search::sleep_set_hash(root_sleep));
    }
    prefix_seen.insert(root_fp, payload);
    ctx.states.fetch_add(1, std::memory_order_relaxed);
    total.states_visited = 1;
    total.depth_states.assign(trace.num_events() + 1, 0);
    total.depth_states[options.seed_prefix.size()] = 1;
  }

  total.merge(search::run_work_stealing(
      std::move(roots), threads, so.steal.seed, ctx,
      [&](const search::SearchTask& task, search::WorkerHandle& worker) {
        const std::function<bool(const std::vector<EventId>&)> sub =
            [&visit, slot = worker.worker_id()](const std::vector<EventId>& s) {
              return visit(slot, s);
            };
        ClassSearch engine(trace, options.stepper, so, &ctx,
                           CausalTracker(trace, options.causal),
                           search::SharedSetDedup(&prefix_seen),
                           ClassHooks{&sub}, indep.get());
        engine.seed(options.seed_prefix);
        engine.seed(task.seed);
        engine.attach_worker(&worker, &task);
        if (reduced) engine.set_initial_sleep(task.sleep);
        return engine.run();
      }));
  return finish(total, prefix_seen);
}

}  // namespace evord
