#include "ordering/class_enumerate.hpp"

#include <atomic>
#include <deque>
#include <mutex>

#include "ordering/class_dedup.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace evord {

namespace {

/// Salted splitmix64 mix for the tracker's incremental (Zobrist-style)
/// prefix hashes: each state component contributes one well-mixed word,
/// XOR-combined so apply/undo update the running hash in O(1).
std::uint64_t zobrist(std::uint64_t salt, std::uint64_t a, std::uint64_t b) {
  std::uint64_t h = salt ^ (a * 0x9e3779b97f4a7c15ull) ^
                    (b * 0xc2b2ae3d27d4eb4full);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

constexpr std::uint64_t kRowSalt = 0x8f14e45fceea167aull;
constexpr std::uint64_t kTokenSalt = 0x5bd1e995973f0f5cull;
constexpr std::uint64_t kEstablisherSalt = 0x27d4eb2f165667c5ull;

/// Incrementally maintained causal ancestry per executed event, plus the
/// replay state the pairing rules need (token queues, establishers).
class CausalTracker {
 public:
  CausalTracker(const Trace& trace, const CausalOptions& options)
      : trace_(trace),
        options_(options),
        rows_(trace.num_events(), DynamicBitset(trace.num_events())),
        row_hash_(trace.num_events(), 0),
        tokens_(trace.semaphores().size()),
        token_heads_(trace.semaphores().size(), 0),
        establisher_(trace.event_vars().size(), kNoEvent) {
    counts_.reserve(trace.semaphores().size());
    for (const SemaphoreInfo& s : trace.semaphores()) {
      counts_.push_back(s.initial);
    }
    posted_.reserve(trace.event_vars().size());
    for (const EventVarInfo& v : trace.event_vars()) {
      posted_.push_back(v.initially_posted);
    }
    for (std::size_t v = 0; v < establisher_.size(); ++v) {
      establisher_hash_ ^= zobrist(kEstablisherSalt, v, kNoEvent);
    }
    // Conflicting pairs, indexed per event for O(deg) updates.
    if (options_.include_data_edges) {
      conflicts_.resize(trace.num_events());
      for (const auto& [x, y] : trace.conflicting_pairs()) {
        conflicts_[x].push_back(y);
        conflicts_[y].push_back(x);
      }
      for (const auto& [x, y] : trace.dependences()) {
        conflicts_[x].push_back(y);
        conflicts_[y].push_back(x);
      }
    }
  }

  /// Ancestors (strict) of executed event e.
  const DynamicBitset& ancestors(EventId e) const { return rows_[e]; }

  struct Undo {
    EventId event = kNoEvent;
    int old_count = 0;
    bool old_posted = false;
    EventId old_establisher = kNoEvent;
    bool pushed_token = false;
    bool popped_token = false;
    EventId popped_producer = kNoEvent;
  };

  /// Called alongside TraceStepper::apply, with the stepper's done bits
  /// as they were BEFORE the apply.
  Undo apply(EventId id, const DynamicBitset& done_before) {
    const Event& e = trace_.event(id);
    Undo u;
    u.event = id;

    DynamicBitset& row = rows_[id];
    row.reset_all();
    // Program order predecessor.
    if (e.index_in_process > 0) {
      const EventId prev =
          trace_.program_order(e.process)[e.index_in_process - 1];
      row.set(prev);
      row |= rows_[prev];
    } else if (trace_.process(e.process).creating_fork != kNoEvent) {
      const EventId creator = trace_.process(e.process).creating_fork;
      row.set(creator);
      row |= rows_[creator];
    }
    if (e.kind == EventKind::kJoin) {
      const auto child_po = trace_.program_order(e.object);
      if (!child_po.empty()) {
        row.set(child_po.back());
        row |= rows_[child_po.back()];
      }
    }
    // Data edges: every already-executed conflicting event precedes.
    if (options_.include_data_edges) {
      for (EventId other : conflicts_[id]) {
        if (done_before.test(other)) {
          row.set(other);
          row |= rows_[other];
        }
      }
    }
    // Synchronization pairing.
    switch (e.kind) {
      case EventKind::kSemV: {
        const SemaphoreInfo& s = trace_.semaphores()[e.object];
        u.old_count = counts_[e.object];
        if (!(s.binary && counts_[e.object] == 1)) {
          ++counts_[e.object];
          tokens_[e.object].push_back(id);
          tokens_hash_ ^= token_hash(
              e.object,
              token_heads_[e.object] + tokens_[e.object].size() - 1, id);
          u.pushed_token = true;
        }
        break;
      }
      case EventKind::kSemP: {
        u.old_count = counts_[e.object];
        --counts_[e.object];
        if (static_cast<std::size_t>(counts_[e.object]) <
            tokens_[e.object].size()) {
          const EventId producer = tokens_[e.object].front();
          tokens_hash_ ^=
              token_hash(e.object, token_heads_[e.object], producer);
          ++token_heads_[e.object];
          tokens_[e.object].pop_front();
          u.popped_token = true;
          u.popped_producer = producer;
          row.set(producer);
          row |= rows_[producer];
        }
        break;
      }
      case EventKind::kPost:
        u.old_posted = posted_[e.object];
        u.old_establisher = establisher_[e.object];
        if (!posted_[e.object]) {
          posted_[e.object] = true;
          set_establisher(e.object, id);
        }
        break;
      case EventKind::kClear:
        u.old_posted = posted_[e.object];
        u.old_establisher = establisher_[e.object];
        posted_[e.object] = false;
        set_establisher(e.object, kNoEvent);
        break;
      case EventKind::kWait:
        if (establisher_[e.object] != kNoEvent) {
          row.set(establisher_[e.object]);
          row |= rows_[establisher_[e.object]];
        }
        break;
      default:
        break;
    }
    // The row is final here; fold it into the running prefix hash.
    row_hash_[id] = zobrist(kRowSalt, id, row.hash());
    rows_hash_ ^= row_hash_[id];
    return u;
  }

  void undo(const Undo& u) {
    const Event& e = trace_.event(u.event);
    rows_hash_ ^= row_hash_[u.event];
    switch (e.kind) {
      case EventKind::kSemV:
        counts_[e.object] = u.old_count;
        if (u.pushed_token) {
          tokens_hash_ ^= token_hash(
              e.object,
              token_heads_[e.object] + tokens_[e.object].size() - 1,
              tokens_[e.object].back());
          tokens_[e.object].pop_back();
        }
        break;
      case EventKind::kSemP:
        counts_[e.object] = u.old_count;
        if (u.popped_token) {
          --token_heads_[e.object];
          tokens_hash_ ^= token_hash(e.object, token_heads_[e.object],
                                     u.popped_producer);
          tokens_[e.object].push_front(u.popped_producer);
        }
        break;
      case EventKind::kPost:
      case EventKind::kClear:
        posted_[e.object] = u.old_posted;
        set_establisher(e.object, u.old_establisher);
        break;
      default:
        break;
    }
    // rows_[u.event] is stale after undo; it is recomputed on re-apply.
  }

  /// 64-bit fingerprint of the causal-prefix identity (executed rows,
  /// token queues, establishers) combined with the caller's hash of the
  /// stepper key.  Maintained incrementally by apply/undo, so reading it
  /// is O(1); equal prefix states yield equal fingerprints.
  std::uint64_t fingerprint(std::uint64_t stepper_hash) const {
    std::uint64_t h = zobrist(0x2545f4914f6cdd1dull, stepper_hash,
                              rows_hash_);
    h = zobrist(0x9e3779b185ebca87ull, h, tokens_hash_);
    return zobrist(0x94d049bb133111ebull, h, establisher_hash_);
  }

  /// Extends the stepper's state key with the causal-prefix identity:
  /// executed rows, token queues and establishers.  Only used to retain
  /// full keys for the debug-mode collision safety net; the hot path
  /// dedups on fingerprint() alone.
  void extend_key(const DynamicBitset& done,
                  std::vector<std::uint64_t>& key) const {
    for (std::size_t e = done.find_first(); e < done.size();
         e = done.find_next(e)) {
      key.push_back(0x9e3779b97f4a7c15ull ^ e);
      const DynamicBitset& row = rows_[e];
      for (std::size_t w = 0; w < row.word_count(); ++w) {
        key.push_back(row.word(w));
      }
    }
    for (const auto& queue : tokens_) {
      key.push_back(0xc2b2ae3d27d4eb4full ^ queue.size());
      for (EventId producer : queue) key.push_back(producer);
    }
    for (EventId est : establisher_) key.push_back(est);
  }

 private:
  static std::uint64_t token_hash(ObjectId sem, std::uint64_t abs_index,
                                  EventId producer) {
    return zobrist(
        kTokenSalt ^ (static_cast<std::uint64_t>(sem) * 0xff51afd7ed558ccdull),
        abs_index, producer);
  }

  void set_establisher(ObjectId var, EventId est) {
    establisher_hash_ ^= zobrist(kEstablisherSalt, var, establisher_[var]);
    establisher_[var] = est;
    establisher_hash_ ^= zobrist(kEstablisherSalt, var, est);
  }

  const Trace& trace_;
  CausalOptions options_;
  std::vector<DynamicBitset> rows_;
  std::vector<std::uint64_t> row_hash_;  ///< zobrist term per executed event
  std::vector<std::vector<EventId>> conflicts_;
  std::vector<std::deque<EventId>> tokens_;
  /// Tokens popped so far per semaphore; gives queue elements stable
  /// absolute indices so FIFO order is part of the incremental hash.
  std::vector<std::uint64_t> token_heads_;
  std::vector<int> counts_;
  std::vector<bool> posted_;
  std::vector<EventId> establisher_;
  std::uint64_t rows_hash_ = 0;
  std::uint64_t tokens_hash_ = 0;
  std::uint64_t establisher_hash_ = 0;
};

class ClassEnumerator {
 public:
  /// `prefix_seen` dedups causal-class prefixes by 64-bit fingerprint;
  /// the parallel variant shares one set across all subtree workers so a
  /// prefix state reached from two different roots is explored once.
  ClassEnumerator(const Trace& trace, const ClassEnumOptions& options,
                  ShardedFingerprintSet& prefix_seen,
                  const std::function<bool(const std::vector<EventId>&)>& visit)
      : options_(options),
        stepper_(trace, options.stepper),
        tracker_(trace, options.causal),
        visit_(visit),
        seen_(&prefix_seen),
        deadline_(options.time_budget_seconds) {
    schedule_.reserve(trace.num_events());
    for (EventId e : options.seed_prefix) {
      EVORD_CHECK(stepper_.enabled(e), "seed prefix is not schedulable");
      tracker_.apply(e, stepper_.done_bits());
      stepper_.apply(e);
      schedule_.push_back(e);
    }
  }

  ClassEnumStats run() {
    // Depth is bounded by the event count; reserving keeps the per-depth
    // references below stable across recursive emplace_backs.
    enabled_stack_.reserve(stepper_.trace().num_events() + 1);
    dfs();
    stats_.distinct_prefixes = distinct_prefixes_;
    return stats_;
  }

 private:
  bool budget_hit() {
    if (options_.max_prefixes != 0 &&
        distinct_prefixes_ >= options_.max_prefixes) {
      stats_.truncated = true;
      return true;
    }
    if ((++budget_poll_ & 255u) == 0 && deadline_.expired()) {
      stats_.truncated = true;
      return true;
    }
    return false;
  }

  bool dfs(std::size_t depth = 0) {
    if (stepper_.complete()) {
      ++stats_.schedules_visited;
      if (!visit_(schedule_)) {
        stats_.stopped_by_visitor = true;
        return false;
      }
      return true;
    }
    // O(1)-space, O(1)-extra-time prefix dedup: the stepper key is
    // hashed fresh (it is small — positions, flags, binary counts) and
    // combined with the tracker's incrementally maintained causal-prefix
    // hash.  Debug builds additionally materialize the full key so the
    // set can verify that hash-equal prefixes really are equal.
    key_scratch_.clear();
    stepper_.encode_key(key_scratch_);
    const std::uint64_t fp = tracker_.fingerprint(
        fingerprint_words(key_scratch_, DynamicBitset::kHashSeed));
    const std::vector<std::uint64_t>* payload = nullptr;
    if (seen_->verify_collisions()) {
      tracker_.extend_key(stepper_.done_bits(), key_scratch_);
      payload = &key_scratch_;
    }
    if (!seen_->insert(fp, payload)) {
      ++stats_.prefixes_pruned;
      return true;
    }
    ++distinct_prefixes_;
    if (budget_hit()) return true;

    // One vector per depth, reused across siblings (capacity kept).
    if (depth == enabled_stack_.size()) enabled_stack_.emplace_back();
    std::vector<EventId>& enabled = enabled_stack_[depth];
    stepper_.enabled_events(enabled);
    if (enabled.empty()) {
      ++stats_.deadlocked_prefixes;
      return true;
    }
    bool keep_going = true;
    for (std::size_t i = 0; keep_going && i < enabled.size(); ++i) {
      const EventId e = enabled[i];
      const CausalTracker::Undo cu =
          tracker_.apply(e, stepper_.done_bits());
      const TraceStepper::Undo su = stepper_.apply(e);
      schedule_.push_back(e);
      keep_going = dfs(depth + 1);
      schedule_.pop_back();
      stepper_.undo(su);
      tracker_.undo(cu);
    }
    return keep_going;
  }

  const ClassEnumOptions& options_;
  TraceStepper stepper_;
  CausalTracker tracker_;
  const std::function<bool(const std::vector<EventId>&)>& visit_;
  ShardedFingerprintSet* seen_;
  Deadline deadline_;
  ClassEnumStats stats_;
  std::vector<EventId> schedule_;
  std::vector<std::vector<EventId>> enabled_stack_;
  std::vector<std::uint64_t> key_scratch_;
  std::size_t distinct_prefixes_ = 0;  ///< this worker's winning inserts
  std::uint32_t budget_poll_ = 0;
};

}  // namespace

ClassEnumStats enumerate_causal_classes(
    const Trace& trace, const ClassEnumOptions& options,
    const std::function<bool(const std::vector<EventId>&)>& visit) {
  ShardedFingerprintSet prefix_seen;
  return ClassEnumerator(trace, options, prefix_seen, visit).run();
}

std::size_t num_root_subtrees(const Trace& trace,
                              const ClassEnumOptions& options) {
  TraceStepper root(trace, options.stepper);
  for (EventId e : options.seed_prefix) {
    EVORD_CHECK(root.enabled(e), "seed prefix is not schedulable");
    root.apply(e);
  }
  std::vector<EventId> enabled;
  root.enabled_events(enabled);
  return enabled.size();
}

ClassEnumStats enumerate_causal_classes_parallel(
    const Trace& trace, const ClassEnumOptions& options,
    std::size_t num_threads,
    const std::function<bool(std::size_t, const std::vector<EventId>&)>&
        visit) {
  TraceStepper root(trace, options.stepper);
  for (EventId e : options.seed_prefix) {
    EVORD_CHECK(root.enabled(e), "seed prefix is not schedulable");
    root.apply(e);
  }
  std::vector<EventId> first;
  root.enabled_events(first);
  if (first.empty()) {
    ClassEnumStats stats;
    if (root.complete()) {
      ++stats.schedules_visited;
      if (!visit(0, options.seed_prefix)) stats.stopped_by_visitor = true;
    } else {
      ++stats.deadlocked_prefixes;
    }
    return stats;
  }

  ThreadPool pool(num_threads);
  // One prefix-fingerprint set shared by every subtree worker: a state
  // reachable from two roots is explored by whichever worker gets there
  // first (its completions are identical either way).
  ShardedFingerprintSet prefix_seen;
  std::mutex stats_mu;
  ClassEnumStats total;
  std::atomic<bool> stop{false};
  pool.parallel_for(first.size(), [&](std::size_t i) {
    if (stop.load(std::memory_order_relaxed)) return;
    const auto wrapped = [&, i](const std::vector<EventId>& s) {
      if (stop.load(std::memory_order_relaxed)) return false;
      if (!visit(i, s)) {
        stop.store(true, std::memory_order_relaxed);
        return false;
      }
      return true;
    };
    ClassEnumOptions sub = options;
    sub.seed_prefix.push_back(first[i]);
    const ClassEnumStats stats =
        ClassEnumerator(trace, sub, prefix_seen, wrapped).run();
    std::lock_guard<std::mutex> lock(stats_mu);
    total.schedules_visited += stats.schedules_visited;
    total.prefixes_pruned += stats.prefixes_pruned;
    total.deadlocked_prefixes += stats.deadlocked_prefixes;
    total.distinct_prefixes += stats.distinct_prefixes;
    total.truncated = total.truncated || stats.truncated;
    total.stopped_by_visitor =
        total.stopped_by_visitor || stats.stopped_by_visitor;
  });
  return total;
}

}  // namespace evord
