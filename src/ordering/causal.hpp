// The causal (happened-before) order induced by one schedule.
//
// C(sigma) is the transitive closure of:
//   * program order within each process;
//   * fork -> first child event and last child event -> join;
//   * synchronization pairing edges: for semaphores, tokens are
//     attributed FIFO — the P that takes the k-th available token gets an
//     edge from the V that produced that token (clamped V operations on
//     binary semaphores produce no token); for event variables, a Wait
//     gets an edge from the Post that established the current posted
//     state (the earliest Post since the last Clear);
//   * data edges: every pair of conflicting shared accesses, directed by
//     sigma, plus any explicit dependence edges of the trace (directed by
//     sigma as well, which matters when F3 was disabled).
//
// Two schedules with the same C(sigma) describe the same feasible
// execution under causal semantics; the exact solver deduplicates on it.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "graph/reachability.hpp"
#include "trace/trace.hpp"

namespace evord {

struct CausalOptions {
  /// Include the data edges (conflicting accesses plus explicit D edges)
  /// in the causal order.  This is the paper's full temporal reading.
  /// Race detection uses the synchronization-only variant (include_data_
  /// edges = false): two conflicting accesses race precisely when no
  /// SYNCHRONIZATION chain orders them in some feasible execution — their
  /// own conflict edge must not count as an ordering.
  bool include_data_edges = true;
};

/// Builds C(sigma) as an edge graph (not transitively closed).
/// `schedule` must be a valid schedule of `trace`.
Digraph causal_graph(const Trace& trace,
                     const std::vector<EventId>& schedule,
                     const CausalOptions& options = {});

/// Closure of causal_graph(); reachable(a, b) == a happened-before b in
/// this execution.
TransitiveClosure causal_closure(const Trace& trace,
                                 const std::vector<EventId>& schedule,
                                 const CausalOptions& options = {});

/// The causal order of the trace's own observed execution.
TransitiveClosure observed_causal_closure(const Trace& trace,
                                          const CausalOptions& options = {});

}  // namespace evord
