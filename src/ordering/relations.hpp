// The six ordering relations of the paper (Table 1) and their storage.
//
//   must-have-happened-before  a MHB b  iff  in every feasible execution,
//                                            a T b
//   could-have-happened-before a CHB b  iff  in some feasible execution,
//                                            a T b
//   must-have-been-concurrent  a MCW b  iff  in every feasible execution,
//                                            a and b are concurrent
//   could-have-been-concurrent a CCW b  iff  in some feasible execution,
//                                            a and b are concurrent
//   must-have-been-ordered     a MOW b  iff  in every feasible execution,
//                                            a and b are NOT concurrent
//   could-have-been-ordered    a COW b  iff  in some feasible execution,
//                                            a and b are NOT concurrent
//
// What "a T b" and "concurrent" mean depends on the chosen semantics of
// the temporal relation (DESIGN.md §2):
//
//   kInterleaving — T is a total schedule; a T b = a precedes b.  No two
//       events are ever concurrent, so MCW/CCW are empty and MOW/COW are
//       total.
//   kCausal — T is the execution's causal (happened-before) order;
//       concurrent = causally incomparable.  All six relations are
//       non-trivial.  This is the default and the reading used by vector
//       clocks and every race detector descended from this paper.
//   kInterval — events occupy wall-clock intervals chosen freely subject
//       to the causal order; a T b = a's interval wholly precedes b's.
//       Any causally incomparable pair can be serialized by timing, so
//       MCW is necessarily empty and COW necessarily total; the paper's
//       own definition admits this degeneracy, which EXPERIMENTS.md
//       discusses.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "search/search.hpp"
#include "trace/ids.hpp"
#include "util/dynamic_bitset.hpp"

namespace evord {

enum class Semantics : std::uint8_t {
  kInterleaving,
  kCausal,
  kInterval,
};

const char* to_string(Semantics semantics);

enum class RelationKind : std::uint8_t {
  kMHB = 0,
  kCHB = 1,
  kMCW = 2,
  kCCW = 3,
  kMOW = 4,
  kCOW = 5,
};

inline constexpr std::size_t kNumRelationKinds = 6;
inline constexpr std::array<RelationKind, kNumRelationKinds> kAllRelationKinds{
    RelationKind::kMHB, RelationKind::kCHB, RelationKind::kMCW,
    RelationKind::kCCW, RelationKind::kMOW, RelationKind::kCOW};

const char* to_string(RelationKind kind);
bool is_must_relation(RelationKind kind);

/// A boolean relation over E x E, stored as one bitset row per source
/// event.  holds(a, b) is row a, bit b.
class RelationMatrix {
 public:
  RelationMatrix() = default;
  explicit RelationMatrix(std::size_t n)
      : rows_(n, DynamicBitset(n)) {}

  std::size_t size() const { return rows_.size(); }

  bool holds(EventId a, EventId b) const { return rows_[a].test(b); }
  void set(EventId a, EventId b) { rows_[a].set(b); }
  void reset(EventId a, EventId b) { rows_[a].reset(b); }

  const DynamicBitset& row(EventId a) const { return rows_[a]; }
  DynamicBitset& row(EventId a) { return rows_[a]; }

  /// Number of (a, b) pairs in the relation.
  std::size_t num_pairs() const;

  /// Sets every off-diagonal pair.
  void fill_off_diagonal();
  /// Clears everything.
  void clear();

  /// True iff this relation is a subset of `o`.
  bool subset_of(const RelationMatrix& o) const;

  bool operator==(const RelationMatrix& o) const { return rows_ == o.rows_; }
  bool operator!=(const RelationMatrix& o) const { return !(*this == o); }

  /// Approximate resident bytes (row headers + bit words); used to
  /// charge cached matrices against a result-cache byte budget.
  std::uint64_t approx_bytes() const;

 private:
  std::vector<DynamicBitset> rows_;
};

/// The result of an exact (or approximate) ordering analysis: all six
/// relations plus provenance.
struct OrderingRelations {
  Semantics semantics = Semantics::kCausal;
  std::size_t num_events = 0;

  /// True iff no feasible execution exists (F = empty set); the must-
  /// relations are then vacuously total and the could-relations empty,
  /// and the matrices are left in exactly that state.
  bool feasible_empty = false;
  /// True iff a search budget was exhausted: could-relations are then
  /// under-approximate and must-relations over-approximate.
  bool truncated = false;

  std::uint64_t schedules_seen = 0;   ///< complete schedules examined (with class dedup: representatives visited)
  std::uint64_t causal_classes = 0;   ///< distinct causal orders (causal/interval)
  std::uint64_t deadlocked_prefixes = 0;
  std::size_t states_visited = 0;     ///< interleaving engine states

  /// Unified search-core statistics from whichever engine ran (dedup
  /// hits, memo bytes, stop reason...); zeroed for approximate analyses
  /// that do not search.
  search::SearchStats search;

  std::array<RelationMatrix, kNumRelationKinds> matrices;

  const RelationMatrix& operator[](RelationKind k) const {
    return matrices[static_cast<std::size_t>(k)];
  }
  RelationMatrix& operator[](RelationKind k) {
    return matrices[static_cast<std::size_t>(k)];
  }
  bool holds(RelationKind k, EventId a, EventId b) const {
    return (*this)[k].holds(a, b);
  }

  /// Approximate resident bytes of the whole result (six matrices plus
  /// search-stats vectors); the unit the service result cache charges
  /// per cached OrderingRelations.
  std::uint64_t approx_bytes() const;
};

}  // namespace evord
