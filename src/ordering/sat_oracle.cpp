#include "ordering/sat_oracle.hpp"

#include <algorithm>

#include "feasible/stepper.hpp"
#include "graph/reachability.hpp"
#include "ordering/causal.hpp"
#include "sat/cdcl.hpp"
#include "sat/encode_trace.hpp"
#include "util/check.hpp"

namespace evord {

const char* to_string(OracleVerdict verdict) {
  switch (verdict) {
    case OracleVerdict::kUnknown:
      return "unknown";
    case OracleVerdict::kProven:
      return "proven";
    case OracleVerdict::kRefuted:
      return "refuted";
  }
  return "?";
}

SatOracle::SatOracle(const Trace& trace, SatOracleOptions options)
    : trace_(&trace), options_(options), n_(trace.num_events()) {
  available_ = n_ > 0 && n_ <= options_.max_events;
  if (!available_) return;

  p_yes_ = RelationMatrix(n_);
  p_no_ = RelationMatrix(n_);
  seen_desc_ = RelationMatrix(n_);
  seen_incomp_ = RelationMatrix(n_);
  seen_not_desc_ = RelationMatrix(n_);
  data_pair_ = RelationMatrix(n_);

  // R_always: edges present in the causal order of EVERY class — the
  // static order, plus the F3 data edges when schedules must respect
  // them AND data edges count as causal.
  Digraph always = trace.static_order_graph();
  if (options_.respect_dependences && options_.causal_data_edges) {
    for (const DependenceEdge& d : trace.dependences()) {
      always.add_edge(d.first, d.second);
    }
  }
  r_always_ = RelationMatrix(n_);
  for (EventId e = 0; e < n_; ++e) {
    r_always_.row(e) = reachable_from(always, e);
    r_always_.row(e).reset(e);
  }

  // R_sup: a superset of the causal edges of ANY class — static order,
  // every V -> P and Post -> Wait pairing candidate, and (when causal)
  // data edges in every direction a schedule could give them.  A pair
  // unreachable here is causally unordered in every class.
  Digraph sup = trace.static_order_graph();
  std::vector<std::vector<EventId>> sem_p(trace.semaphores().size());
  std::vector<std::vector<EventId>> sem_v(trace.semaphores().size());
  std::vector<std::vector<EventId>> ev_post(trace.event_vars().size());
  std::vector<std::vector<EventId>> ev_wait(trace.event_vars().size());
  for (const Event& e : trace.events()) {
    switch (e.kind) {
      case EventKind::kSemP:
        sem_p[e.object].push_back(e.id);
        break;
      case EventKind::kSemV:
        sem_v[e.object].push_back(e.id);
        break;
      case EventKind::kPost:
        ev_post[e.object].push_back(e.id);
        break;
      case EventKind::kWait:
        ev_wait[e.object].push_back(e.id);
        break;
      default:
        break;
    }
  }
  for (ObjectId s = 0; s < trace.semaphores().size(); ++s) {
    for (EventId v : sem_v[s]) {
      for (EventId p : sem_p[s]) sup.add_edge(v, p);
    }
  }
  for (ObjectId ev = 0; ev < trace.event_vars().size(); ++ev) {
    for (EventId post : ev_post[ev]) {
      for (EventId w : ev_wait[ev]) sup.add_edge(post, w);
    }
  }
  if (options_.causal_data_edges) {
    for (const DependenceEdge& c : trace.conflicting_pairs()) {
      sup.add_edge(c.first, c.second);
      sup.add_edge(c.second, c.first);
      data_pair_.set(c.first, c.second);
      data_pair_.set(c.second, c.first);
    }
    for (const DependenceEdge& d : trace.dependences()) {
      sup.add_edge(d.first, d.second);
      if (!options_.respect_dependences) sup.add_edge(d.second, d.first);
      data_pair_.set(d.first, d.second);
      data_pair_.set(d.second, d.first);
    }
  }
  r_sup_ = RelationMatrix(n_);
  for (EventId e = 0; e < n_; ++e) {
    r_sup_.row(e) = reachable_from(sup, e);
    r_sup_.row(e).reset(e);
  }
}

SatOracle::~SatOracle() = default;

void SatOracle::build_solver() {
  if (solver_ != nullptr || !available_) return;
  encoder_ = std::make_unique<TraceCnf>(
      *trace_, TraceCnfOptions{options_.respect_dependences});
  CdclOptions cdcl;
  cdcl.max_conflicts = options_.max_conflicts;
  solver_ = std::make_unique<CdclSolver>(cdcl);
  solver_->add_formula(encoder_->formula());
  ++stats_.solver_builds;
  stats_.encode_vars = static_cast<std::size_t>(encoder_->formula().num_vars());
  stats_.encode_clauses = encoder_->formula().num_clauses();
  // Seed the pair memo and the witness-class pool with the observed
  // execution: it is feasible by construction, so F(P) is non-empty and
  // about n^2/2 P(a, b) answers come for free.
  if (feasible_ == Tri::kUnknown && fold_schedule(trace_->observed_order())) {
    feasible_ = Tri::kYes;
  }
}

bool SatOracle::fold_schedule(const std::vector<EventId>& schedule) {
  if (schedule.size() != n_) return false;
  TraceStepper stepper(*trace_,
                       StepperOptions{options_.respect_dependences});
  for (EventId e : schedule) {
    if (!stepper.enabled(e)) return false;
    stepper.apply(e);
  }
  if (!stepper.complete()) return false;

  for (std::size_t i = 0; i < schedule.size(); ++i) {
    for (std::size_t j = i + 1; j < schedule.size(); ++j) {
      p_yes_.set(schedule[i], schedule[j]);
    }
  }

  if (folds_.size() < options_.max_witness_folds) {
    Fold fold;
    fold.schedule = schedule;
    fold.position.assign(n_, 0);
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      fold.position[schedule[i]] = i;
    }
    const TransitiveClosure tc = causal_closure(
        *trace_, schedule, CausalOptions{options_.causal_data_edges});
    fold.descendants.reserve(n_);
    for (EventId e = 0; e < n_; ++e) {
      fold.descendants.push_back(tc.descendants(e));
      for (EventId f = 0; f < n_; ++f) {
        if (e == f) continue;
        if (tc.reachable(e, f)) {
          seen_desc_.set(e, f);
        } else {
          seen_not_desc_.set(e, f);
          if (!tc.reachable(f, e)) seen_incomp_.set(e, f);
        }
      }
    }
    folds_.push_back(std::move(fold));
  }
  return true;
}

SatOracle::Tri SatOracle::precedes(EventId a, EventId b) {
  if (p_yes_.holds(a, b)) {
    ++stats_.pair_memo_hits;
    return Tri::kYes;
  }
  if (p_no_.holds(a, b)) {
    ++stats_.pair_memo_hits;
    return Tri::kNo;
  }
  build_solver();
  ++stats_.sat_calls;
  CdclResult r = solver_->solve_under_assumptions({encoder_->order_lit(a, b)},
                                                  conflict_override_);
  if (!r.decided) {
    ++stats_.sat_undecided;
    return Tri::kUnknown;
  }
  if (r.sat.satisfiable) {
    ++stats_.sat_models;
    ++stats_.witnesses_replayed;
    const std::vector<EventId> schedule =
        encoder_->decode_schedule(r.sat.model);
    if (!fold_schedule(schedule)) {
      // The encoding is exact, so this is pure insurance; an invalid
      // model is never trusted and the query degrades to kUnknown.
      ++stats_.witness_replay_failures;
      return Tri::kUnknown;
    }
    feasible_ = Tri::kYes;
    return Tri::kYes;
  }
  ++stats_.sat_unsat;
  p_no_.set(a, b);
  // A total order puts one of a, b first: UNSAT(a before b) plus a
  // non-empty F forces b before a somewhere.
  if (feasible_ == Tri::kYes) p_yes_.set(b, a);
  return Tri::kNo;
}

OracleVerdict SatOracle::feasible() {
  if (!available_) return OracleVerdict::kUnknown;
  if (feasible_ == Tri::kUnknown) {
    build_solver();  // seeds from the observed schedule
  }
  if (feasible_ == Tri::kUnknown) {
    ++stats_.sat_calls;
    CdclResult r = solver_->solve_under_assumptions({}, conflict_override_);
    if (!r.decided) {
      ++stats_.sat_undecided;
      return OracleVerdict::kUnknown;
    }
    if (r.sat.satisfiable) {
      ++stats_.sat_models;
      ++stats_.witnesses_replayed;
      if (fold_schedule(encoder_->decode_schedule(r.sat.model))) {
        feasible_ = Tri::kYes;
      } else {
        ++stats_.witness_replay_failures;
        return OracleVerdict::kUnknown;
      }
    } else {
      ++stats_.sat_unsat;
      feasible_ = Tri::kNo;
    }
  }
  return feasible_ == Tri::kYes ? OracleVerdict::kProven
                                : OracleVerdict::kRefuted;
}

OracleVerdict SatOracle::done(OracleVerdict v) {
  if (v != OracleVerdict::kUnknown) ++stats_.decided;
  return v;
}

OracleVerdict SatOracle::query(RelationKind kind, EventId a, EventId b,
                               Semantics semantics) {
  ++stats_.queries;
  last_witness_.reset();
  if (!available_ || a >= n_ || b >= n_) return OracleVerdict::kUnknown;
  // Every relation's diagonal is empty (exact.cpp fill conventions).
  if (a == b) return done(OracleVerdict::kRefuted);

  const OracleVerdict feas = feasible();
  if (feas == OracleVerdict::kUnknown) return OracleVerdict::kUnknown;
  if (feas == OracleVerdict::kRefuted) {
    // F empty: must-relations vacuously total, could-relations empty.
    return done(is_must_relation(kind) ? OracleVerdict::kProven
                                       : OracleVerdict::kRefuted);
  }

  OracleVerdict v;
  if (semantics == Semantics::kInterleaving) {
    v = interleaving_query(kind, a, b);
  } else {
    v = causal_query(kind, a, b, semantics == Semantics::kInterval);
  }
  if (v != OracleVerdict::kUnknown) attach_witness(kind, semantics, a, b, v);
  return done(v);
}

OracleVerdict SatOracle::interleaving_query(RelationKind kind, EventId a,
                                            EventId b) {
  switch (kind) {
    case RelationKind::kMHB: {
      // a MHB b == no schedule runs b before a.
      const Tri t = precedes(b, a);
      if (t == Tri::kYes) return OracleVerdict::kRefuted;
      if (t == Tri::kNo) return OracleVerdict::kProven;
      return OracleVerdict::kUnknown;
    }
    case RelationKind::kCHB: {
      const Tri t = precedes(a, b);
      if (t == Tri::kYes) return OracleVerdict::kProven;
      if (t == Tri::kNo) return OracleVerdict::kRefuted;
      return OracleVerdict::kUnknown;
    }
    case RelationKind::kMCW:
    case RelationKind::kCCW:
      return OracleVerdict::kRefuted;  // total orders have no concurrency
    case RelationKind::kMOW:
    case RelationKind::kCOW:
      return OracleVerdict::kProven;
  }
  return OracleVerdict::kUnknown;
}

OracleVerdict SatOracle::causal_query(RelationKind kind, EventId a, EventId b,
                                      bool interval) {
  // "dp": a data pair is causally comparable in EVERY class, with the
  // causal direction equal to the schedule direction.
  const bool dp = options_.causal_data_edges && data_pair_.holds(a, b);
  const bool never_ab = !r_sup_.holds(a, b);  // no class orders a ->C b
  const bool never_ba = !r_sup_.holds(b, a);

  switch (kind) {
    case RelationKind::kMHB: {
      // MHB == every class has a ->C b (causal and interval alike).
      if (r_always_.holds(a, b)) return OracleVerdict::kProven;
      if (never_ab) return OracleVerdict::kRefuted;
      if (seen_not_desc_.holds(a, b)) return OracleVerdict::kRefuted;
      const Tri t = precedes(b, a);
      // A schedule with b before a cannot have a ->C b in its class
      // (causal order embeds in schedule order), so SAT refutes.
      if (t == Tri::kYes) return OracleVerdict::kRefuted;
      if (t == Tri::kNo && dp) return OracleVerdict::kProven;
      if (seen_not_desc_.holds(a, b)) return OracleVerdict::kRefuted;
      return OracleVerdict::kUnknown;
    }
    case RelationKind::kCHB: {
      if (interval) {
        // Interval CHB == some class lacks b ->C a (a's interval can
        // then be timed wholly before b's).
        if (seen_not_desc_.holds(b, a)) return OracleVerdict::kProven;
        if (never_ba) return OracleVerdict::kProven;
        if (r_always_.holds(b, a)) return OracleVerdict::kRefuted;
        const Tri t = precedes(a, b);
        if (t == Tri::kYes) return OracleVerdict::kProven;
        if (t == Tri::kNo && dp) return OracleVerdict::kRefuted;
        if (seen_not_desc_.holds(b, a)) return OracleVerdict::kProven;
        return OracleVerdict::kUnknown;
      }
      // Causal CHB == some class has a ->C b.
      if (r_always_.holds(a, b)) return OracleVerdict::kProven;
      if (seen_desc_.holds(a, b)) return OracleVerdict::kProven;
      if (never_ab) return OracleVerdict::kRefuted;
      const Tri t = precedes(a, b);
      if (t == Tri::kNo) return OracleVerdict::kRefuted;
      if (t == Tri::kYes) {
        if (dp) return OracleVerdict::kProven;
        if (seen_desc_.holds(a, b)) return OracleVerdict::kProven;
      }
      return OracleVerdict::kUnknown;
    }
    case RelationKind::kMCW: {
      // MCW == a, b incomparable in every class (empty under interval).
      if (interval) return OracleVerdict::kRefuted;
      if (dp || r_always_.holds(a, b) || r_always_.holds(b, a)) {
        return OracleVerdict::kRefuted;
      }
      if (seen_desc_.holds(a, b) || seen_desc_.holds(b, a)) {
        return OracleVerdict::kRefuted;
      }
      if (never_ab && never_ba) return OracleVerdict::kProven;
      precedes(a, b);
      precedes(b, a);
      if (seen_desc_.holds(a, b) || seen_desc_.holds(b, a)) {
        return OracleVerdict::kRefuted;
      }
      return OracleVerdict::kUnknown;
    }
    case RelationKind::kCCW: {
      // CCW == a, b incomparable in some class (causal and interval).
      if (dp || r_always_.holds(a, b) || r_always_.holds(b, a)) {
        return OracleVerdict::kRefuted;
      }
      if (seen_incomp_.holds(a, b)) return OracleVerdict::kProven;
      if (never_ab && never_ba) return OracleVerdict::kProven;
      precedes(a, b);
      if (seen_incomp_.holds(a, b)) return OracleVerdict::kProven;
      precedes(b, a);
      if (seen_incomp_.holds(a, b)) return OracleVerdict::kProven;
      return OracleVerdict::kUnknown;
    }
    case RelationKind::kMOW: {
      // MOW == no class has them incomparable (causal and interval).
      if (dp || r_always_.holds(a, b) || r_always_.holds(b, a)) {
        return OracleVerdict::kProven;
      }
      if (seen_incomp_.holds(a, b)) return OracleVerdict::kRefuted;
      if (never_ab && never_ba) return OracleVerdict::kRefuted;
      precedes(a, b);
      if (seen_incomp_.holds(a, b)) return OracleVerdict::kRefuted;
      precedes(b, a);
      if (seen_incomp_.holds(a, b)) return OracleVerdict::kRefuted;
      return OracleVerdict::kUnknown;
    }
    case RelationKind::kCOW: {
      // COW == comparable in some class (total under interval).
      if (interval) return OracleVerdict::kProven;
      if (dp || r_always_.holds(a, b) || r_always_.holds(b, a)) {
        return OracleVerdict::kProven;
      }
      if (seen_desc_.holds(a, b) || seen_desc_.holds(b, a)) {
        return OracleVerdict::kProven;
      }
      if (never_ab && never_ba) return OracleVerdict::kRefuted;
      precedes(a, b);
      precedes(b, a);
      if (seen_desc_.holds(a, b) || seen_desc_.holds(b, a)) {
        return OracleVerdict::kProven;
      }
      return OracleVerdict::kUnknown;
    }
  }
  return OracleVerdict::kUnknown;
}

void SatOracle::attach_witness(RelationKind kind, Semantics semantics,
                               EventId a, EventId b, OracleVerdict verdict) {
  // Only could-proofs and must-refutations have schedule-shaped evidence.
  const bool want =
      (verdict == OracleVerdict::kProven && !is_must_relation(kind)) ||
      (verdict == OracleVerdict::kRefuted && kind == RelationKind::kMHB);
  if (!want) return;
  const bool interleaving = semantics == Semantics::kInterleaving;
  const bool interval = semantics == Semantics::kInterval;
  for (auto it = folds_.rbegin(); it != folds_.rend(); ++it) {
    const Fold& f = *it;
    bool ok = false;
    switch (kind) {
      case RelationKind::kMHB:  // counterexample: a class without a T b
        ok = interleaving ? f.position[b] < f.position[a]
                          : !f.descendants[a].test(b);
        break;
      case RelationKind::kCHB:
        if (interleaving) {
          ok = f.position[a] < f.position[b];
        } else if (interval) {
          ok = !f.descendants[b].test(a);
        } else {
          ok = f.descendants[a].test(b);
        }
        break;
      case RelationKind::kCCW:
        ok = !interleaving && !f.descendants[a].test(b) &&
             !f.descendants[b].test(a);
        break;
      case RelationKind::kCOW:
        ok = interleaving || interval || f.descendants[a].test(b) ||
             f.descendants[b].test(a);
        break;
      default:
        break;
    }
    if (ok) {
      last_witness_ = f.schedule;
      return;
    }
  }
}

SatOracleStats SatOracle::stats() const {
  SatOracleStats s = stats_;
  if (solver_ != nullptr) s.solver = solver_->cumulative_stats();
  return s;
}

}  // namespace evord
