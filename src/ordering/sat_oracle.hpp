// The SAT-backed ordering oracle: answers single-pair must/could queries
// by CNF encoding (sat/encode_trace.hpp) plus one persistent incremental
// CDCL solver (sat/cdcl.hpp) — the polynomial-infrastructure escape hatch
// past the enumeration wall of Theorems 1-4.  Where the explicit engines
// walk an exponential schedule or class space, the oracle decides a pair
// in one assumption-based solver call, reusing learned clauses, VSIDS
// activity and phase saving across the N^2 queries of a relation matrix.
//
// Query primitive: P(a, b) == "some feasible complete schedule runs a
// strictly before b" == SAT(encoding AND o(a, b)).  Every satisfying
// model is decoded to a schedule and replay-validated through
// TraceStepper before it is trusted; validated schedules seed an n x n
// pair memo (about n^2/2 answers per model) and, for causal/interval
// semantics, a bounded pool of witnessed causal classes.
//
//   * Interleaving semantics is complete relative to the solver:
//     CHB(a,b) == P(a,b), MHB(a,b) == not P(b,a), MCW/CCW empty,
//     MOW/COW total.
//   * Causal/interval semantics combine P with sound class bounds:
//     R_always (closure of the edges present in EVERY class: static
//     order plus F3 data edges when they are causal), R_sup (closure of
//     a superset of the edges of ANY class: static order, every V->P /
//     Post->Wait pairing candidate, data edges both ways), witnessed
//     classes (causal closures of validated schedules), and the
//     data-pair shortcut (conflicting or dependent events are causally
//     ordered in every class, in schedule direction).  Queries those
//     bounds cannot settle stay kUnknown — never unsound.
//
// One oracle instance serves all three semantics of one trace with ONE
// solver build (the CNF depends only on respect_dependences).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ordering/relations.hpp"
#include "sat/formula.hpp"
#include "trace/trace.hpp"

namespace evord {

class CdclSolver;
class TraceCnf;

enum class OracleVerdict : std::uint8_t { kUnknown, kProven, kRefuted };

const char* to_string(OracleVerdict verdict);

struct SatOracleOptions {
  /// Enforce F3 in the encoding (must match the explicit engine's
  /// ExactOptions::respect_dependences to agree with it).
  bool respect_dependences = true;
  /// Data edges count as causal ordering (ExactOptions::causal_data_edges).
  bool causal_data_edges = true;
  /// Default per-call conflict budget (0 = unlimited); exceeding it makes
  /// the call — not the oracle — answer kUnknown.
  std::uint64_t max_conflicts = 1u << 20;
  /// Decline traces with more events (the encoding is O(n^3) clauses).
  std::size_t max_events = 160;
  /// Cap on stored witness classes / schedules (memo rows stay exact
  /// beyond it; only witness attachment and class evidence saturate).
  std::size_t max_witness_folds = 64;
};

struct SatOracleStats {
  std::uint64_t queries = 0;
  std::uint64_t decided = 0;
  std::uint64_t solver_builds = 0;  ///< cold encodes (1 per trace)
  std::uint64_t sat_calls = 0;
  std::uint64_t sat_models = 0;
  std::uint64_t sat_unsat = 0;
  std::uint64_t sat_undecided = 0;  ///< conflict budget exhausted
  std::uint64_t witnesses_replayed = 0;
  std::uint64_t witness_replay_failures = 0;
  std::uint64_t pair_memo_hits = 0;
  std::size_t encode_vars = 0;
  std::size_t encode_clauses = 0;
  SolverStats solver;  ///< cumulative CDCL counters across all calls
};

class SatOracle {
 public:
  explicit SatOracle(const Trace& trace, SatOracleOptions options = {});
  ~SatOracle();

  /// False when the trace exceeds max_events; every query then returns
  /// kUnknown.
  bool available() const { return available_; }

  /// Is F(P) non-empty?  (Usually answered from the observed schedule
  /// without any solver call.)
  OracleVerdict feasible();

  /// Decides "a REL b" under `semantics`; kUnknown is always sound.
  OracleVerdict query(RelationKind kind, EventId a, EventId b,
                      Semantics semantics);

  /// Schedule backing the most recent decided verdict when one exists:
  /// for could-proofs a feasible schedule exhibiting the property, for
  /// must-refutations a counterexample schedule.  Replay-validated.
  const std::optional<std::vector<EventId>>& last_witness() const {
    return last_witness_;
  }

  /// Per-call conflict budget override (0 = back to the options default).
  void set_max_conflicts(std::uint64_t max_conflicts) {
    conflict_override_ = max_conflicts;
  }

  SatOracleStats stats() const;

 private:
  enum class Tri : std::uint8_t { kUnknown, kYes, kNo };

  struct Fold {  ///< one validated schedule and its causal class
    std::vector<EventId> schedule;
    std::vector<std::size_t> position;
    std::vector<DynamicBitset> descendants;  ///< causal closure rows
  };

  void build_solver();
  bool fold_schedule(const std::vector<EventId>& schedule);
  Tri precedes(EventId a, EventId b);
  OracleVerdict interleaving_query(RelationKind kind, EventId a, EventId b);
  OracleVerdict causal_query(RelationKind kind, EventId a, EventId b,
                             bool interval);
  OracleVerdict done(OracleVerdict v);
  void attach_witness(RelationKind kind, Semantics semantics, EventId a,
                      EventId b, OracleVerdict verdict);

  const Trace* trace_;
  SatOracleOptions options_;
  std::size_t n_ = 0;
  bool available_ = false;
  std::uint64_t conflict_override_ = 0;

  std::unique_ptr<TraceCnf> encoder_;
  std::unique_ptr<CdclSolver> solver_;

  Tri feasible_ = Tri::kUnknown;
  RelationMatrix p_yes_;   ///< P(a,b) known true
  RelationMatrix p_no_;    ///< P(a,b) known false
  RelationMatrix r_always_;  ///< causal in every class
  RelationMatrix r_sup_;     ///< superset of causal in any class
  RelationMatrix data_pair_;  ///< causally comparable in every class
  RelationMatrix seen_desc_;      ///< witnessed class with a ->C b
  RelationMatrix seen_incomp_;    ///< witnessed class with a, b incomparable
  RelationMatrix seen_not_desc_;  ///< witnessed class without a ->C b

  std::vector<Fold> folds_;
  std::optional<std::vector<EventId>> last_witness_;

  mutable SatOracleStats stats_;
};

}  // namespace evord
