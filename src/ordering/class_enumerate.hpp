// Causal-class enumeration with prefix deduplication.
//
// The plain schedule enumerator (feasible/enumerate.hpp) walks every
// valid schedule; the causal exact solver then deduplicates their causal
// orders.  Exponentially many schedules can share one causal order, so a
// lot of that walk is wasted.  This enumerator prunes it: two schedule
// prefixes with
//   * the same scheduling state (positions, event flags, binary counts),
//   * the same causal order over the executed events,
//   * the same outstanding semaphore token producers (FIFO queues), and
//   * the same establishing Posts
// have exactly the same set of causal-class completions, so only one of
// them needs exploring.  The visitor still receives complete schedules,
// at least one per distinct complete causal class (possibly more, never
// one per redundant schedule).
//
// This is the evord analogue of partial-order reduction: sound for
// class-level accumulation (any/all over causal orders), unsound for
// schedule counting — use the plain enumerator for that.
#pragma once

#include <cstdint>
#include <functional>

#include "feasible/stepper.hpp"
#include "ordering/causal.hpp"
#include "search/search.hpp"
#include "trace/trace.hpp"

namespace evord::search {
class PackedStateRegistry;
}

namespace evord {

struct ClassEnumOptions {
  StepperOptions stepper;
  CausalOptions causal;
  /// Stop expanding after this many distinct prefixes (0 = unlimited).
  /// Global across all workers in the parallel variant: prefixes past the
  /// budget are still claimed and counted but not expanded.
  std::size_t max_prefixes = 0;
  /// Stop after this many complete schedules delivered to the visitor
  /// (0 = unlimited).  Strict and global: enforced through a shared
  /// atomic counter, so the combined visit count never exceeds it even
  /// in parallel mode.
  std::uint64_t max_schedules = 0;
  double time_budget_seconds = 0.0;
  /// Byte budget over the prefix-fingerprint store and queued task
  /// descriptors (0 = unlimited).  Strict and global across workers;
  /// see search::SearchOptions::max_memory_bytes.
  std::uint64_t max_memory_bytes = 0;
  /// Spill cold dedup/memo shards to an mmap-backed temp file when the
  /// byte budget nears exhaustion instead of stopping with
  /// StopReason::kMemory; results stay bit-identical.  Only meaningful
  /// with max_memory_bytes set.  See search::SearchOptions::spill.
  bool spill = false;
  /// Optional caller-owned store (e.g. an exact solver's class-dedup
  /// set) attached to the search's memory accountant for the duration of
  /// the run, so its footprint counts against max_memory_bytes alongside
  /// the prefix store; detached before return.
  search::PackedStateRegistry* charge_store = nullptr;
  /// Fast-forward through this schedule prefix before enumerating (every
  /// event must be enabled in sequence).  The parallel variant seeds
  /// each task's subtree this way.
  std::vector<EventId> seed_prefix;
  /// Work-stealing scheduler tuning (parallel variant only; never
  /// affects results).
  search::StealOptions steal;
  /// Partial-order reduction (search/independence.hpp).  ON by default
  /// (kSourceWakeup — source sets + wakeup frames + tracked dynamic
  /// independence): class enumeration accumulates over causal classes,
  /// and the reduction preserves every complete causal class (the pruned
  /// schedules are causal-equivalent permutations of explored ones — the
  /// tracked excusals commute only pairs whose order the CausalTracker
  /// cannot observe) and every deadlocked frontier.  Schedule COUNTS
  /// drop under reduction — use the plain enumerator for counting.
  search::ReductionMode reduction = search::ReductionMode::kSourceWakeup;
};

struct ClassEnumStats {
  std::uint64_t schedules_visited = 0;  ///< complete schedules delivered
  std::uint64_t prefixes_pruned = 0;    ///< duplicate prefixes skipped
  std::uint64_t deadlocked_prefixes = 0;
  std::size_t distinct_prefixes = 0;
  bool truncated = false;
  bool stopped_by_visitor = false;
  search::SearchStats search;  ///< unified engine statistics
};

/// Visits complete schedules covering every complete causal class;
/// return false from the visitor to stop.
ClassEnumStats enumerate_causal_classes(
    const Trace& trace, const ClassEnumOptions& options,
    const std::function<bool(const std::vector<EventId>&)>& visit);

/// Number of initial scheduler tasks the parallel variant starts from:
/// the events enabled after `options.seed_prefix` (usually empty) has
/// been applied.
std::size_t num_root_subtrees(const Trace& trace,
                              const ClassEnumOptions& options);

/// Work-stealing parallel variant: each scheduler task runs an engine
/// with its own stepper and causal tracker.  The visitor is invoked
/// concurrently and receives the executing worker's slot index (in
/// [0, resolved thread count)) first: calls with the same slot never
/// overlap, so callers can keep per-slot accumulators lock-free; it must
/// otherwise be thread-safe.  Prefix dedup runs through one sharded
/// fingerprint set shared by all tasks: a prefix state reachable from
/// two task regions is expanded by whichever task claims it first (its
/// completions are identical either way), so every distinct state is
/// expanded exactly once and — absent budgets — schedules_visited and
/// the union of delivered causal classes match the serial engine
/// exactly.  All budgets (max_prefixes, max_schedules, the deadline)
/// are global across workers.  num_threads == 0 uses the hardware
/// concurrency; every request is clamped to search::max_worker_threads().
ClassEnumStats enumerate_causal_classes_parallel(
    const Trace& trace, const ClassEnumOptions& options,
    std::size_t num_threads,
    const std::function<bool(std::size_t, const std::vector<EventId>&)>&
        visit);

}  // namespace evord
