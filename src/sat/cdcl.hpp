// A conflict-driven clause-learning SAT solver, built from scratch:
// two-watched-literal propagation, 1-UIP conflict analysis with clause
// learning, VSIDS-style activity ordering with phase saving, and Luby
// restarts.  It decides the ordering queries on reduction instances in
// milliseconds where the exhaustive feasible-execution engines take
// exponential time — the practical face of Theorems 1-4.
//
// The solver is *incremental*: a `CdclSolver` persists across calls,
// retaining learned clauses, variable activity and saved phases, and
// answers `solve_under_assumptions` queries MiniSat-style — assumption
// literals occupy the first decision levels, and when the formula is
// unsatisfiable *under* the assumptions the solver extracts a failed-
// assumption core (a subset of the assumptions that is already jointly
// inconsistent with the formula).  One solver instance therefore serves
// the N^2 pair queries of an ordering-relation matrix without N^2 cold
// solves (ordering/sat_oracle.hpp is the primary client).
#pragma once

#include <memory>
#include <vector>

#include "sat/formula.hpp"

namespace evord {

struct CdclOptions {
  /// Abort after this many conflicts (0 = unlimited); the result is then
  /// flagged unknown via `CdclResult::decided == false`.
  std::uint64_t max_conflicts = 0;
  double var_decay = 0.95;
  std::uint32_t luby_unit = 64;  ///< restart interval unit (in conflicts)
};

struct CdclResult {
  bool decided = true;  ///< false iff the conflict budget ran out
  /// Verdict + model + per-call counters.  `sat.stats` is filled on every
  /// exit path, including `decided == false` (conflicts / learned_clauses
  /// / restarts describe the aborted attempt).
  SatResult sat;
  /// Only when unsatisfiable *under assumptions*: a subset of the given
  /// assumption literals whose conjunction the formula already refutes.
  /// Empty when the formula is unsatisfiable on its own.
  std::vector<Lit> failed_assumptions;
};

/// Persistent incremental CDCL solver.
class CdclSolver {
 public:
  explicit CdclSolver(CdclOptions options = {});
  ~CdclSolver();
  CdclSolver(CdclSolver&&) noexcept;
  CdclSolver& operator=(CdclSolver&&) noexcept;

  /// Number of variables currently known (variables are 1..num_vars()).
  std::int32_t num_vars() const;
  /// Grows the variable universe to at least n.
  void ensure_vars(std::int32_t n);
  /// Allocates one fresh variable and returns its (positive) literal.
  Lit new_var();

  /// Adds a clause.  Legal between solve calls; the solver backtracks to
  /// the root level first.  An empty clause (or one falsified at the root
  /// level) makes the solver permanently unsatisfiable.
  void add_clause(const std::vector<Lit>& lits);
  /// Adds every clause of `formula` (and grows the variable universe).
  void add_formula(const CnfFormula& formula);

  /// True once the formula is known unsatisfiable without assumptions;
  /// every further solve call returns UNSAT immediately.
  bool inconsistent() const;

  /// Solves under the given assumption literals.  `max_conflicts`
  /// bounds this call only (0 = the constructor options' budget).
  /// Learned clauses, activity and phases persist across calls;
  /// `result.sat.stats` counts this call alone (see cumulative_stats()).
  CdclResult solve_under_assumptions(const std::vector<Lit>& assumptions,
                                     std::uint64_t max_conflicts = 0);
  CdclResult solve() { return solve_under_assumptions({}); }

  /// Counters accumulated over every call on this instance.
  const SolverStats& cumulative_stats() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot solve (a fresh CdclSolver under the hood).
CdclResult solve_cdcl(const CnfFormula& formula,
                      const CdclOptions& options = {});

/// Convenience wrapper asserting the budget was not hit.
SatResult solve(const CnfFormula& formula);

}  // namespace evord
