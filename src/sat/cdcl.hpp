// A conflict-driven clause-learning SAT solver, built from scratch:
// two-watched-literal propagation, 1-UIP conflict analysis with clause
// learning, VSIDS-style activity ordering with phase saving, and Luby
// restarts.  It decides the ordering queries on reduction instances in
// milliseconds where the exhaustive feasible-execution engines take
// exponential time — the practical face of Theorems 1-4.
#pragma once

#include "sat/formula.hpp"

namespace evord {

struct CdclOptions {
  /// Abort after this many conflicts (0 = unlimited); the result is then
  /// flagged unknown via `CdclResult::decided == false`.
  std::uint64_t max_conflicts = 0;
  double var_decay = 0.95;
  std::uint32_t luby_unit = 64;  ///< restart interval unit (in conflicts)
};

struct CdclResult {
  bool decided = true;  ///< false iff the conflict budget ran out
  SatResult sat;
};

CdclResult solve_cdcl(const CnfFormula& formula,
                      const CdclOptions& options = {});

/// Convenience wrapper asserting the budget was not hit.
SatResult solve(const CnfFormula& formula);

}  // namespace evord
