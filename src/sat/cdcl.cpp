#include "sat/cdcl.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace evord {

namespace {

// Internal literal encoding: variable v (1-based) with sign s maps to
// 2*(v-1)+s where s=0 means positive.  Dense and array-friendly.
using ILit = std::uint32_t;

ILit to_ilit(Lit l) {
  return static_cast<ILit>(2 * (var_of(l) - 1) + (is_positive(l) ? 0 : 1));
}
ILit neg(ILit l) { return l ^ 1u; }
std::uint32_t ivar(ILit l) { return l >> 1; }
Lit from_ilit(ILit l) {
  const Lit v = static_cast<Lit>(ivar(l)) + 1;
  return (l & 1u) != 0 ? -v : v;
}

enum class Value : std::int8_t { kFalse = 0, kTrue = 1, kUnset = 2 };

Value lit_value(Value var_value, ILit l) {
  if (var_value == Value::kUnset) return Value::kUnset;
  const bool truth = (var_value == Value::kTrue) == ((l & 1u) == 0);
  return truth ? Value::kTrue : Value::kFalse;
}

constexpr std::uint32_t kNoReason = 0xffffffffu;

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
std::uint32_t luby(std::uint32_t i) {
  std::uint32_t k = 1;
  while ((1u << (k + 1)) <= i + 1) ++k;
  while ((1u << k) - 1 != i + 1) {
    i -= (1u << k) - 1;
    k = 1;
    while ((1u << (k + 1)) <= i + 1) ++k;
  }
  return 1u << (k - 1);
}

}  // namespace

class CdclSolver::Impl {
 public:
  explicit Impl(CdclOptions options) : options_(options) {}

  std::int32_t num_vars() const { return static_cast<std::int32_t>(num_vars_); }

  void ensure_vars(std::int32_t n) {
    if (n <= 0 || static_cast<std::uint32_t>(n) <= num_vars_) return;
    num_vars_ = static_cast<std::uint32_t>(n);
    values_.resize(num_vars_, Value::kUnset);
    levels_.resize(num_vars_, 0);
    reasons_.resize(num_vars_, kNoReason);
    activity_.resize(num_vars_, 0.0);
    phase_.resize(num_vars_, false);
    seen_.resize(num_vars_, 0);
    watches_.resize(2 * num_vars_);
  }

  Lit new_var() {
    ensure_vars(static_cast<std::int32_t>(num_vars_) + 1);
    return static_cast<Lit>(num_vars_);
  }

  void add_clause_external(const std::vector<Lit>& ext) {
    backtrack(0);
    std::int32_t max_var = 0;
    for (Lit l : ext) max_var = std::max(max_var, var_of(l));
    ensure_vars(max_var);

    std::vector<ILit> lits;
    lits.reserve(ext.size());
    for (Lit l : ext) lits.push_back(to_ilit(l));
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
      if (lits[i + 1] == neg(lits[i])) return;  // tautology
    }
    // Root-level simplification: drop falsified literals, skip satisfied
    // clauses.
    std::size_t keep = 0;
    for (ILit l : lits) {
      const Value v = lit_value(values_[ivar(l)], l);
      if (v == Value::kTrue) return;  // already satisfied forever
      if (v == Value::kFalse) continue;
      lits[keep++] = l;
    }
    lits.resize(keep);
    if (lits.empty()) {
      ok_ = false;
      return;
    }
    if (lits.size() == 1) {
      enqueue(lits[0], kNoReason);  // root-level unit; propagated lazily
      return;
    }
    add_clause(std::move(lits));
  }

  void add_formula(const CnfFormula& formula) {
    ensure_vars(formula.num_vars());
    for (const Clause& c : formula.clauses()) add_clause_external(c.lits);
  }

  bool inconsistent() const { return !ok_; }

  CdclResult solve(const std::vector<Lit>& ext_assumptions,
                   std::uint64_t max_conflicts) {
    stats_ = SolverStats{};
    CdclResult result;
    if (!ok_) {
      result.sat.satisfiable = false;
      return finish(result);
    }
    backtrack(0);

    std::int32_t max_var = 0;
    for (Lit l : ext_assumptions) max_var = std::max(max_var, var_of(l));
    ensure_vars(max_var);
    std::vector<ILit> assumptions;
    assumptions.reserve(ext_assumptions.size());
    for (Lit l : ext_assumptions) assumptions.push_back(to_ilit(l));

    const std::uint64_t budget =
        max_conflicts != 0 ? max_conflicts : options_.max_conflicts;
    std::uint32_t restart_index = 0;
    std::uint64_t conflicts_until_restart =
        static_cast<std::uint64_t>(luby(restart_index)) * options_.luby_unit;

    while (true) {
      const std::uint32_t conflict = propagate();
      if (conflict != kNoReason) {
        ++stats_.conflicts;
        if (decision_level() == 0) {
          ok_ = false;  // refuted without assumptions: permanent
          result.sat.satisfiable = false;
          return finish(result);
        }
        std::vector<ILit> learned;
        std::uint32_t backtrack_level = 0;
        analyze(conflict, learned, backtrack_level);
        backtrack(backtrack_level);
        ++stats_.learned_clauses;
        if (learned.size() == 1) {
          enqueue(learned[0], kNoReason);
        } else {
          const std::uint32_t id = add_clause(std::move(learned));
          enqueue(clauses_[id][0], id);
        }
        decay_activities();
        if (budget != 0 && stats_.conflicts >= budget) {
          result.decided = false;
          return finish(result);
        }
        if (conflicts_until_restart > 0) --conflicts_until_restart;
        if (conflicts_until_restart == 0) {
          ++stats_.restarts;
          backtrack(0);
          ++restart_index;
          conflicts_until_restart =
              static_cast<std::uint64_t>(luby(restart_index)) *
              options_.luby_unit;
        }
      } else if (decision_level() < assumptions.size()) {
        // Assumption literals occupy the first decision levels
        // (MiniSat-style); a level is pushed even when the assumption is
        // already implied, so level i+1 always corresponds to
        // assumptions[i].
        const ILit a = assumptions[decision_level()];
        const Value v = lit_value(values_[ivar(a)], a);
        if (v == Value::kFalse) {
          analyze_final(a, result.failed_assumptions);
          result.sat.satisfiable = false;
          return finish(result);
        }
        level_starts_.push_back(static_cast<std::uint32_t>(trail_.size()));
        if (v == Value::kUnset) {
          ++stats_.decisions;
          enqueue(a, kNoReason);
        }
      } else {
        const std::uint32_t v = pick_branch_variable();
        if (v == num_vars_) {  // all assigned: SAT
          result.sat.satisfiable = true;
          result.sat.model.assign(num_vars_ + 1, false);
          for (std::uint32_t var = 0; var < num_vars_; ++var) {
            result.sat.model[var + 1] = values_[var] == Value::kTrue;
          }
          return finish(result);
        }
        ++stats_.decisions;
        level_starts_.push_back(static_cast<std::uint32_t>(trail_.size()));
        enqueue(phase_[v] ? 2 * v : 2 * v + 1, kNoReason);
      }
    }
  }

  const SolverStats& cumulative_stats() const { return cumulative_; }

 private:
  std::uint32_t decision_level() const {
    return static_cast<std::uint32_t>(level_starts_.size());
  }

  CdclResult& finish(CdclResult& result) {
    result.sat.stats = stats_;
    cumulative_.decisions += stats_.decisions;
    cumulative_.propagations += stats_.propagations;
    cumulative_.conflicts += stats_.conflicts;
    cumulative_.restarts += stats_.restarts;
    cumulative_.learned_clauses += stats_.learned_clauses;
    return result;
  }

  std::uint32_t add_clause(std::vector<ILit> lits) {
    const auto id = static_cast<std::uint32_t>(clauses_.size());
    watches_[lits[0]].push_back(id);
    watches_[lits[1]].push_back(id);
    clauses_.push_back(std::move(lits));
    return id;
  }

  void enqueue(ILit l, std::uint32_t reason) {
    const std::uint32_t v = ivar(l);
    values_[v] = (l & 1u) == 0 ? Value::kTrue : Value::kFalse;
    levels_[v] = decision_level();
    reasons_[v] = reason;
    trail_.push_back(l);
  }

  /// Two-watched-literal unit propagation.  Returns the index of a
  /// conflicting clause, or kNoReason.
  std::uint32_t propagate() {
    while (head_ < trail_.size()) {
      const ILit false_lit = neg(trail_[head_++]);
      std::vector<std::uint32_t>& watch_list = watches_[false_lit];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < watch_list.size(); ++i) {
        const std::uint32_t id = watch_list[i];
        std::vector<ILit>& c = clauses_[id];
        // Normalize: watched literals are c[0] and c[1].
        if (c[0] == false_lit) std::swap(c[0], c[1]);
        // c[1] == false_lit now.
        if (lit_value(values_[ivar(c[0])], c[0]) == Value::kTrue) {
          watch_list[keep++] = id;  // satisfied; keep watching
          continue;
        }
        bool moved = false;
        for (std::size_t k = 2; k < c.size(); ++k) {
          if (lit_value(values_[ivar(c[k])], c[k]) != Value::kFalse) {
            std::swap(c[1], c[k]);
            watches_[c[1]].push_back(id);
            moved = true;
            break;
          }
        }
        if (moved) continue;  // watch migrated; drop from this list
        // Clause is unit or conflicting on c[0].
        watch_list[keep++] = id;
        const Value v0 = lit_value(values_[ivar(c[0])], c[0]);
        if (v0 == Value::kFalse) {
          // Conflict: restore untouched tail of the watch list.
          for (std::size_t k = i + 1; k < watch_list.size(); ++k) {
            watch_list[keep++] = watch_list[k];
          }
          watch_list.resize(keep);
          return id;
        }
        if (v0 == Value::kUnset) {
          ++stats_.propagations;
          enqueue(c[0], id);
        }
      }
      watch_list.resize(keep);
    }
    return kNoReason;
  }

  void bump(std::uint32_t v) {
    activity_[v] += activity_increment_;
    if (activity_[v] > 1e100) {
      for (double& a : activity_) a *= 1e-100;
      activity_increment_ *= 1e-100;
    }
  }

  void decay_activities() { activity_increment_ /= options_.var_decay; }

  /// 1-UIP conflict analysis; produces the learned clause (asserting
  /// literal first) and the backtrack level.  Relies on the invariant
  /// that an implied variable's reason clause holds its literal at
  /// position 0 (enqueue always implies clauses_[reason][0]).
  void analyze(std::uint32_t conflict, std::vector<ILit>& learned,
               std::uint32_t& backtrack_level) {
    learned.assign(1, 0);  // placeholder for the asserting literal
    std::uint32_t counter = 0;
    bool have_pivot = false;
    ILit pivot = 0;
    std::size_t index = trail_.size();
    std::uint32_t reason = conflict;

    do {
      EVORD_DCHECK(reason != kNoReason, "analysis fell off a decision");
      const std::vector<ILit>& c = clauses_[reason];
      // Skip c[0] when resolving on a reason clause: it is the pivot.
      for (std::size_t j = have_pivot ? 1 : 0; j < c.size(); ++j) {
        const std::uint32_t v = ivar(c[j]);
        if (seen_[v] != 0 || levels_[v] == 0) continue;
        seen_[v] = 1;
        bump(v);
        if (levels_[v] == decision_level()) {
          ++counter;
        } else {
          learned.push_back(c[j]);
        }
      }
      // Walk back to the most recent seen literal on the trail.
      while (seen_[ivar(trail_[index - 1])] == 0) --index;
      pivot = trail_[--index];
      have_pivot = true;
      seen_[ivar(pivot)] = 0;
      reason = reasons_[ivar(pivot)];
      --counter;
    } while (counter > 0);
    learned[0] = neg(pivot);

    // Backtrack level: highest level among the non-asserting literals.
    backtrack_level = 0;
    std::size_t second_best = 1;
    for (std::size_t i = 1; i < learned.size(); ++i) {
      const std::uint32_t lvl = levels_[ivar(learned[i])];
      if (lvl > backtrack_level) {
        backtrack_level = lvl;
        second_best = i;
      }
    }
    if (learned.size() > 1) std::swap(learned[1], learned[second_best]);
    for (std::size_t i = 1; i < learned.size(); ++i) {
      seen_[ivar(learned[i])] = 0;
    }
  }

  /// Failed-assumption extraction: `p` is an assumption literal found
  /// false at its decision point, so every decision on the trail is an
  /// (earlier) assumption.  Walk the trail backwards from the top,
  /// expanding implied variables through their reason clauses; the
  /// decisions reached are exactly the assumptions that imply `not p`,
  /// and together with `p` form a core that the formula refutes.
  void analyze_final(ILit p, std::vector<Lit>& core) {
    core.clear();
    core.push_back(from_ilit(p));
    const std::size_t boundary =
        level_starts_.empty() ? trail_.size() : level_starts_[0];
    seen_[ivar(p)] = 1;
    for (std::size_t i = trail_.size(); i > boundary; --i) {
      const std::uint32_t v = ivar(trail_[i - 1]);
      if (seen_[v] == 0) continue;
      seen_[v] = 0;
      if (reasons_[v] == kNoReason) {
        core.push_back(from_ilit(trail_[i - 1]));
      } else {
        const std::vector<ILit>& c = clauses_[reasons_[v]];
        for (std::size_t j = 1; j < c.size(); ++j) {
          if (levels_[ivar(c[j])] > 0) seen_[ivar(c[j])] = 1;
        }
      }
    }
    seen_[ivar(p)] = 0;
  }

  void backtrack(std::uint32_t level) {
    if (decision_level() <= level) return;
    const std::uint32_t boundary = level_starts_[level];
    for (std::size_t i = trail_.size(); i > boundary; --i) {
      const std::uint32_t v = ivar(trail_[i - 1]);
      phase_[v] = values_[v] == Value::kTrue;  // phase saving
      values_[v] = Value::kUnset;
      reasons_[v] = kNoReason;
    }
    trail_.resize(boundary);
    head_ = boundary;
    level_starts_.resize(level);
  }

  /// Highest-activity unset variable (linear scan; fine at our scale).
  std::uint32_t pick_branch_variable() const {
    std::uint32_t best = num_vars_;
    double best_activity = -1.0;
    for (std::uint32_t v = 0; v < num_vars_; ++v) {
      if (values_[v] == Value::kUnset && activity_[v] > best_activity) {
        best = v;
        best_activity = activity_[v];
      }
    }
    return best;
  }

  CdclOptions options_;
  std::uint32_t num_vars_ = 0;
  bool ok_ = true;

  std::vector<std::vector<ILit>> clauses_;
  std::vector<std::vector<std::uint32_t>> watches_;  // per literal

  std::vector<Value> values_;
  std::vector<std::uint32_t> levels_;
  std::vector<std::uint32_t> reasons_;
  std::vector<double> activity_;
  std::vector<bool> phase_;
  std::vector<std::uint8_t> seen_;

  std::vector<ILit> trail_;
  std::size_t head_ = 0;
  std::vector<std::uint32_t> level_starts_;

  double activity_increment_ = 1.0;
  SolverStats stats_;       // per-call
  SolverStats cumulative_;  // across calls
};

CdclSolver::CdclSolver(CdclOptions options)
    : impl_(std::make_unique<Impl>(options)) {}
CdclSolver::~CdclSolver() = default;
CdclSolver::CdclSolver(CdclSolver&&) noexcept = default;
CdclSolver& CdclSolver::operator=(CdclSolver&&) noexcept = default;

std::int32_t CdclSolver::num_vars() const { return impl_->num_vars(); }
void CdclSolver::ensure_vars(std::int32_t n) { impl_->ensure_vars(n); }
Lit CdclSolver::new_var() { return impl_->new_var(); }
void CdclSolver::add_clause(const std::vector<Lit>& lits) {
  impl_->add_clause_external(lits);
}
void CdclSolver::add_formula(const CnfFormula& formula) {
  impl_->add_formula(formula);
}
bool CdclSolver::inconsistent() const { return impl_->inconsistent(); }
CdclResult CdclSolver::solve_under_assumptions(
    const std::vector<Lit>& assumptions, std::uint64_t max_conflicts) {
  return impl_->solve(assumptions, max_conflicts);
}
const SolverStats& CdclSolver::cumulative_stats() const {
  return impl_->cumulative_stats();
}

CdclResult solve_cdcl(const CnfFormula& formula, const CdclOptions& options) {
  CdclSolver solver(options);
  solver.add_formula(formula);
  return solver.solve();
}

SatResult solve(const CnfFormula& formula) {
  CdclResult r = solve_cdcl(formula);
  EVORD_CHECK(r.decided, "CDCL conflict budget exhausted");
  return std::move(r.sat);
}

}  // namespace evord
