#include "sat/gen.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace evord {

CnfFormula random_ksat(std::int32_t num_vars, std::size_t num_clauses,
                       std::size_t k, Rng& rng) {
  EVORD_CHECK(static_cast<std::size_t>(num_vars) >= k,
              "need at least k variables");
  CnfFormula f(num_vars);
  std::vector<std::int32_t> vars(static_cast<std::size_t>(num_vars));
  for (std::int32_t v = 0; v < num_vars; ++v) {
    vars[static_cast<std::size_t>(v)] = v + 1;
  }
  for (std::size_t c = 0; c < num_clauses; ++c) {
    // Partial Fisher-Yates: the first k entries become the clause vars.
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.below(vars.size() - i));
      std::swap(vars[i], vars[j]);
    }
    std::vector<Lit> lits(k);
    for (std::size_t i = 0; i < k; ++i) {
      lits[i] = rng.chance(0.5) ? vars[i] : -vars[i];
    }
    f.add_clause(std::move(lits));
  }
  return f;
}

CnfFormula pigeonhole(std::int32_t holes) {
  EVORD_CHECK(holes >= 1, "need at least one hole");
  const std::int32_t pigeons = holes + 1;
  // Variable p_{i,j}: pigeon i sits in hole j.
  const auto var = [holes](std::int32_t i, std::int32_t j) {
    return i * holes + j + 1;
  };
  CnfFormula f(pigeons * holes);
  // Every pigeon sits somewhere.
  for (std::int32_t i = 0; i < pigeons; ++i) {
    std::vector<Lit> clause;
    for (std::int32_t j = 0; j < holes; ++j) clause.push_back(var(i, j));
    f.add_clause(std::move(clause));
  }
  // No two pigeons share a hole.
  for (std::int32_t j = 0; j < holes; ++j) {
    for (std::int32_t i1 = 0; i1 < pigeons; ++i1) {
      for (std::int32_t i2 = i1 + 1; i2 < pigeons; ++i2) {
        f.add_clause({-var(i1, j), -var(i2, j)});
      }
    }
  }
  return f;
}

CnfFormula trivially_sat(std::int32_t num_vars, std::size_t num_clauses,
                         Rng& rng) {
  EVORD_CHECK(num_vars >= 3, "need at least 3 variables");
  CnfFormula f(num_vars);
  for (std::size_t c = 0; c < num_clauses; ++c) {
    const auto v2 = static_cast<Lit>(rng.range(2, num_vars));
    auto v3 = static_cast<Lit>(rng.range(2, num_vars));
    f.add_clause({1, rng.chance(0.5) ? v2 : -v2, rng.chance(0.5) ? v3 : -v3});
  }
  return f;
}

std::vector<CnfFormula> all_small_3cnf(std::int32_t num_vars,
                                       std::size_t num_clauses,
                                       std::size_t limit) {
  EVORD_CHECK(num_vars >= 3, "3CNF needs at least 3 variables");
  // Build the clause universe.
  std::vector<std::vector<Lit>> universe;
  for (std::int32_t a = 1; a <= num_vars; ++a) {
    for (std::int32_t b = a + 1; b <= num_vars; ++b) {
      for (std::int32_t c = b + 1; c <= num_vars; ++c) {
        for (int signs = 0; signs < 8; ++signs) {
          universe.push_back({(signs & 1) != 0 ? -a : a,
                              (signs & 2) != 0 ? -b : b,
                              (signs & 4) != 0 ? -c : c});
        }
      }
    }
  }
  std::vector<CnfFormula> result;
  std::vector<std::size_t> pick(num_clauses, 0);
  for (;;) {
    CnfFormula f(num_vars);
    for (std::size_t i = 0; i < num_clauses; ++i) {
      f.add_clause(universe[pick[i]]);
    }
    result.push_back(std::move(f));
    if (limit != 0 && result.size() >= limit) break;
    // Odometer increment over non-decreasing index tuples (clause order
    // is irrelevant, so only combinations-with-repetition are emitted).
    std::size_t i = num_clauses;
    while (i > 0) {
      --i;
      if (pick[i] + 1 < universe.size()) {
        ++pick[i];
        for (std::size_t j = i + 1; j < num_clauses; ++j) {
          pick[j] = pick[i];
        }
        break;
      }
      if (i == 0) return result;
    }
    if (num_clauses == 0) break;
  }
  return result;
}

CnfFormula planted_3sat(std::int32_t num_vars, std::size_t num_clauses,
                        Rng& rng) {
  EVORD_CHECK(num_vars >= 3, "need at least 3 variables");
  Assignment hidden(static_cast<std::size_t>(num_vars) + 1, false);
  for (std::int32_t v = 1; v <= num_vars; ++v) {
    hidden[static_cast<std::size_t>(v)] = rng.chance(0.5);
  }
  CnfFormula f(num_vars);
  std::vector<std::int32_t> vars(static_cast<std::size_t>(num_vars));
  for (std::int32_t v = 0; v < num_vars; ++v) {
    vars[static_cast<std::size_t>(v)] = v + 1;
  }
  for (std::size_t c = 0; c < num_clauses; ++c) {
    for (std::size_t i = 0; i < 3; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.below(vars.size() - i));
      std::swap(vars[i], vars[j]);
    }
    std::vector<Lit> lits(3);
    // Force at least the first literal to agree with the hidden model.
    lits[0] = hidden[static_cast<std::size_t>(vars[0])] ? vars[0] : -vars[0];
    for (std::size_t i = 1; i < 3; ++i) {
      lits[i] = rng.chance(0.5) ? vars[i] : -vars[i];
    }
    f.add_clause(std::move(lits));
  }
  return f;
}

}  // namespace evord
