#include "sat/encode_trace.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace evord {

namespace {

bool lit_true(const Assignment& model, Lit l) {
  const auto v = static_cast<std::size_t>(var_of(l));
  EVORD_CHECK(v < model.size(), "model too small for literal");
  return is_positive(l) ? model[v] : !model[v];
}

}  // namespace

TraceCnf::TraceCnf(const Trace& trace, TraceCnfOptions options)
    : n_(trace.num_events()) {
  // Pair variable (a, b) with a < b means "a before b"; the triangular
  // index below maps each unordered pair to variables 1..n(n-1)/2, and
  // auxiliary (selector) variables follow.
  num_order_vars_ = n_ * (n_ > 0 ? n_ - 1 : 0) / 2;
  next_var_ = static_cast<std::int32_t>(num_order_vars_);

  encode_order_axioms();
  encode_static_edges(trace);
  if (options.respect_dependences) encode_dependences(trace);
  encode_semaphores(trace);
  encode_event_vars(trace);
}

Lit TraceCnf::order_lit(EventId a, EventId b) const {
  EVORD_CHECK(a != b && a < n_ && b < n_, "order_lit needs distinct events");
  const bool flip = a > b;
  if (flip) std::swap(a, b);
  const std::size_t lo = a;
  const std::size_t hi = b;
  const std::size_t index = lo * n_ - lo * (lo + 1) / 2 + (hi - lo - 1);
  const Lit var = static_cast<Lit>(index) + 1;
  return flip ? -var : var;
}

bool TraceCnf::ordered_before(const Assignment& model, EventId a,
                              EventId b) const {
  return lit_true(model, order_lit(a, b));
}

std::vector<EventId> TraceCnf::decode_schedule(const Assignment& model) const {
  // position(e) == number of events ordered before e; in a model of the
  // order axioms these are exactly 0..n-1.
  std::vector<std::size_t> position(n_, 0);
  for (EventId a = 0; a + 1 < n_; ++a) {
    for (EventId b = a + 1; b < n_; ++b) {
      if (ordered_before(model, a, b)) {
        ++position[b];
      } else {
        ++position[a];
      }
    }
  }
  std::vector<EventId> schedule(n_);
  std::iota(schedule.begin(), schedule.end(), 0);
  std::sort(schedule.begin(), schedule.end(), [&](EventId x, EventId y) {
    return position[x] < position[y];
  });
  return schedule;
}

Lit TraceCnf::new_aux_var() { return ++next_var_; }

void TraceCnf::add_unit_edge(EventId a, EventId b) {
  formula_.add_clause({order_lit(a, b)});
}

void TraceCnf::encode_order_axioms() {
  // Totality and antisymmetry are structural (one variable per pair).
  // Transitivity: for each triple a < b < c with x = o(a,b), y = o(b,c),
  // z = o(a,c), the clauses (!x | !y | z) and (x | y | !z) close all six
  // orientations of the triple.
  if (num_order_vars_ > 0) {
    // Materialize the full variable range even if no clause touches some
    // pair (CnfFormula grows num_vars per clause otherwise).
    formula_ = CnfFormula(static_cast<std::int32_t>(num_order_vars_));
  }
  for (EventId a = 0; a + 2 < n_; ++a) {
    for (EventId b = a + 1; b + 1 < n_; ++b) {
      const Lit x = order_lit(a, b);
      for (EventId c = b + 1; c < n_; ++c) {
        const Lit y = order_lit(b, c);
        const Lit z = order_lit(a, c);
        formula_.add_clause({-x, -y, z});
        formula_.add_clause({x, y, -z});
      }
    }
  }
}

void TraceCnf::encode_static_edges(const Trace& trace) {
  const Digraph g = trace.static_order_graph();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.out(u)) add_unit_edge(u, v);
  }
  // static_order_graph has no edge for a fork whose child executed no
  // events, but the join on such a child still requires the creating
  // fork to have happened (TraceStepper::enabled).
  for (const Event& e : trace.events()) {
    if (e.kind != EventKind::kJoin) continue;
    const ProcessInfo& child = trace.process(e.object);
    if (child.events.empty() && child.creating_fork != kNoEvent) {
      add_unit_edge(child.creating_fork, e.id);
    }
  }
}

void TraceCnf::encode_dependences(const Trace& trace) {
  for (const DependenceEdge& d : trace.dependences()) {
    add_unit_edge(d.first, d.second);
  }
}

void TraceCnf::encode_semaphores(const Trace& trace) {
  std::vector<std::vector<EventId>> p_ops(trace.semaphores().size());
  std::vector<std::vector<EventId>> v_ops(trace.semaphores().size());
  for (const Event& e : trace.events()) {
    if (e.kind == EventKind::kSemP) p_ops[e.object].push_back(e.id);
    if (e.kind == EventKind::kSemV) v_ops[e.object].push_back(e.id);
  }

  for (ObjectId s = 0; s < trace.semaphores().size(); ++s) {
    const SemaphoreInfo& info = trace.semaphores()[s];
    const std::vector<EventId>& ps = p_ops[s];
    const std::vector<EventId>& vs = v_ops[s];
    if (ps.empty()) continue;

    if (!info.binary) {
      // Counting: every P selects a distinct token — an initial token or
      // a V ordered before it.  Token t in [0, initial) is initial;
      // token initial + j is V event vs[j].
      const std::size_t num_tokens =
          static_cast<std::size_t>(std::max(info.initial, 0)) + vs.size();
      // match[t][i]: token t feeds P ps[i].
      std::vector<std::vector<Lit>> match(num_tokens,
                                          std::vector<Lit>(ps.size(), 0));
      for (std::size_t t = 0; t < num_tokens; ++t) {
        for (std::size_t i = 0; i < ps.size(); ++i) {
          match[t][i] = new_aux_var();
        }
      }
      for (std::size_t i = 0; i < ps.size(); ++i) {
        std::vector<Lit> some_token;
        some_token.reserve(num_tokens);
        for (std::size_t t = 0; t < num_tokens; ++t) {
          some_token.push_back(match[t][i]);
        }
        formula_.add_clause(std::move(some_token));
      }
      for (std::size_t t = 0; t < num_tokens; ++t) {
        // A token feeds at most one P...
        for (std::size_t i = 0; i < ps.size(); ++i) {
          for (std::size_t j = i + 1; j < ps.size(); ++j) {
            formula_.add_clause({-match[t][i], -match[t][j]});
          }
        }
        // ...and a V token must be ordered before its P.
        const std::size_t initial =
            static_cast<std::size_t>(std::max(info.initial, 0));
        if (t >= initial) {
          const EventId v = vs[t - initial];
          for (std::size_t i = 0; i < ps.size(); ++i) {
            formula_.add_clause({-match[t][i], order_lit(v, ps[i])});
          }
        }
      }
    } else {
      // Binary: the count before each P is determined by the last
      // semaphore operation ordered before it (V -> 1, P -> 0), so P p
      // is valid iff that last operation is a V — selector sel(v, p)
      // says "v is the latest operation before p" — or p is the
      // semaphore's first operation and the initial count is positive.
      std::vector<EventId> ops;
      ops.reserve(ps.size() + vs.size());
      ops.insert(ops.end(), ps.begin(), ps.end());
      ops.insert(ops.end(), vs.begin(), vs.end());
      for (EventId p : ps) {
        std::vector<Lit> main_clause;
        for (EventId v : vs) {
          const Lit sel = new_aux_var();
          main_clause.push_back(sel);
          formula_.add_clause({-sel, order_lit(v, p)});
          for (EventId q : ops) {
            if (q == v || q == p) continue;
            // No other operation strictly between v and p.
            formula_.add_clause({-sel, order_lit(q, v), order_lit(p, q)});
          }
        }
        if (info.initial > 0) {
          const Lit first = new_aux_var();
          main_clause.push_back(first);
          for (EventId q : ops) {
            if (q == p) continue;
            formula_.add_clause({-first, order_lit(p, q)});
          }
        }
        formula_.add_clause(std::move(main_clause));
      }
    }
  }
}

void TraceCnf::encode_event_vars(const Trace& trace) {
  std::vector<std::vector<EventId>> posts(trace.event_vars().size());
  std::vector<std::vector<EventId>> mods(trace.event_vars().size());
  std::vector<std::vector<EventId>> waits(trace.event_vars().size());
  for (const Event& e : trace.events()) {
    if (e.kind == EventKind::kPost) {
      posts[e.object].push_back(e.id);
      mods[e.object].push_back(e.id);
    }
    if (e.kind == EventKind::kClear) mods[e.object].push_back(e.id);
    if (e.kind == EventKind::kWait) waits[e.object].push_back(e.id);
  }

  for (ObjectId ev = 0; ev < trace.event_vars().size(); ++ev) {
    // A Wait is valid iff the variable is posted when it runs; Waits do
    // not modify the flag, so that is "the last modifying operation
    // (Post/Clear) ordered before it is a Post", or "no modifying
    // operation before it and the variable starts posted".
    for (EventId w : waits[ev]) {
      std::vector<Lit> main_clause;
      for (EventId post : posts[ev]) {
        const Lit sel = new_aux_var();
        main_clause.push_back(sel);
        formula_.add_clause({-sel, order_lit(post, w)});
        for (EventId m : mods[ev]) {
          if (m == post) continue;
          formula_.add_clause({-sel, order_lit(m, post), order_lit(w, m)});
        }
      }
      if (trace.event_vars()[ev].initially_posted) {
        const Lit first = new_aux_var();
        main_clause.push_back(first);
        for (EventId m : mods[ev]) {
          formula_.add_clause({-first, order_lit(w, m)});
        }
      }
      formula_.add_clause(std::move(main_clause));
    }
  }
}

}  // namespace evord
