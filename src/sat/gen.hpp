// Workload generators for the SAT substrate and the hardness-reduction
// experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/formula.hpp"
#include "util/rng.hpp"

namespace evord {

/// Uniform random k-SAT: `num_clauses` clauses of `k` distinct variables
/// each, signs fair coins.  At the classic ratio m/n ~ 4.26 (k = 3) half
/// the instances are satisfiable — the phase-transition workload of the
/// bench suite.
CnfFormula random_ksat(std::int32_t num_vars, std::size_t num_clauses,
                       std::size_t k, Rng& rng);

inline CnfFormula random_3sat(std::int32_t num_vars, std::size_t num_clauses,
                              Rng& rng) {
  return random_ksat(num_vars, num_clauses, 3, rng);
}

/// The pigeonhole principle PHP(holes+1, holes): provably unsatisfiable,
/// classically hard for resolution-based solvers.
CnfFormula pigeonhole(std::int32_t holes);

/// A trivially satisfiable formula (every clause contains variable 1
/// positively) for smoke tests.
CnfFormula trivially_sat(std::int32_t num_vars, std::size_t num_clauses,
                         Rng& rng);

/// All 3CNF formulas over exactly `num_vars` variables with
/// `num_clauses` clauses drawn (with repetition, ordered) from the
/// canonical clause universe.  Exhaustive only for tiny parameters; used
/// by the theorem sweep tests.  The universe is every clause of three
/// distinct variables in increasing order with all 8 sign patterns.
std::vector<CnfFormula> all_small_3cnf(std::int32_t num_vars,
                                       std::size_t num_clauses,
                                       std::size_t limit = 0);

/// A random 3CNF built to be satisfiable (signs chosen to agree with a
/// hidden assignment in at least one literal per clause).
CnfFormula planted_3sat(std::int32_t num_vars, std::size_t num_clauses,
                        Rng& rng);

}  // namespace evord
