// A classic DPLL solver: unit propagation, pure-literal elimination and
// chronological backtracking.  Kept deliberately simple — it is the
// reference implementation the CDCL solver is cross-checked against, and
// the baseline in the SAT substrate benchmarks.
#pragma once

#include "sat/formula.hpp"

namespace evord {

SatResult solve_dpll(const CnfFormula& formula);

/// Brute force over all 2^n assignments; the ground truth for tests.
SatResult solve_brute_force(const CnfFormula& formula);

/// Number of satisfying assignments (brute force; n <= 25 or so).
std::uint64_t count_models(const CnfFormula& formula);

}  // namespace evord
