// CNF encoding of a trace's feasible complete schedules (the SAT-backed
// ordering oracle's front half; ordering/sat_oracle.hpp is the client).
//
// Following the partial-order encoding of Alglave/Kroening ("Partial
// Orders for Efficient BMC of Concurrent Software"), one boolean order
// variable o(a, b) is allocated per unordered event pair {a, b} with
// o(b, a) == not o(a, b) — totality and antisymmetry come for free — and
// transitivity is two clauses per event triple.  On top of the resulting
// total strict order the validity rules of DESIGN.md §3 are encoded
// exactly:
//
//   * program order, fork -> first child event, last child event -> join
//     (plus fork -> join for empty children) as unit clauses;
//   * the F3 shared-data dependences as unit clauses (optional);
//   * counting semaphores by token matching: every P chooses an earlier
//     distinct token (an initial token or a V event ordered before it) —
//     exact by Hall's theorem against the prefix condition
//     #P <= #V + initial;
//   * binary semaphores by last-op selection: the last semaphore
//     operation ordered before each P must be a V (or the P is first and
//     the initial count is 1) — the counting relaxation would be wrong
//     here, because clamped V operations bank no token;
//   * event variables likewise: the last *modifying* operation (Post or
//     Clear) ordered before each Wait must be a Post (or the Wait is
//     first and the variable starts posted).
//
// A satisfying model therefore IS a feasible execution: decode_schedule
// recovers the total order, and the oracle replays it through
// TraceStepper as independent insurance.  The encoding is O(n^3) clauses
// in the event count — callers guard trace size before constructing.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/formula.hpp"
#include "trace/trace.hpp"

namespace evord {

struct TraceCnfOptions {
  /// Enforce F3 (each dependence edge (a, b) of D as a unit clause).
  bool respect_dependences = true;
};

class TraceCnf {
 public:
  explicit TraceCnf(const Trace& trace, TraceCnfOptions options = {});

  const CnfFormula& formula() const { return formula_; }
  std::size_t num_order_vars() const { return num_order_vars_; }
  std::size_t num_aux_vars() const {
    return static_cast<std::size_t>(formula_.num_vars()) - num_order_vars_;
  }

  /// The literal asserting "a is ordered strictly before b" (a != b).
  Lit order_lit(EventId a, EventId b) const;

  /// True iff `model` orders a strictly before b.
  bool ordered_before(const Assignment& model, EventId a, EventId b) const;

  /// Recovers the total event order of a satisfying model.
  std::vector<EventId> decode_schedule(const Assignment& model) const;

 private:
  void encode_order_axioms();
  void encode_static_edges(const Trace& trace);
  void encode_dependences(const Trace& trace);
  void encode_semaphores(const Trace& trace);
  void encode_event_vars(const Trace& trace);
  Lit new_aux_var();
  void add_unit_edge(EventId a, EventId b);

  std::size_t n_ = 0;
  std::size_t num_order_vars_ = 0;
  std::int32_t next_var_ = 0;
  CnfFormula formula_;
};

}  // namespace evord
