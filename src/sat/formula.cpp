#include "sat/formula.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace evord {

void CnfFormula::add_clause(std::vector<Lit> lits) {
  for (Lit l : lits) {
    EVORD_CHECK(l != 0, "literal 0 is invalid");
    num_vars_ = std::max(num_vars_, var_of(l));
  }
  clauses_.push_back({std::move(lits)});
}

bool CnfFormula::clause_satisfied_by(std::size_t i,
                                     const Assignment& assignment) const {
  for (Lit l : clauses_[i].lits) {
    const auto v = static_cast<std::size_t>(var_of(l));
    EVORD_DCHECK(v < assignment.size(), "assignment too small");
    if (assignment[v] == is_positive(l)) return true;
  }
  return false;
}

bool CnfFormula::satisfied_by(const Assignment& assignment) const {
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    if (!clause_satisfied_by(i, assignment)) return false;
  }
  return true;
}

bool CnfFormula::is_kcnf(std::size_t k) const {
  return std::all_of(clauses_.begin(), clauses_.end(),
                     [k](const Clause& c) { return c.lits.size() == k; });
}

std::string CnfFormula::to_dimacs() const {
  std::ostringstream os;
  os << "p cnf " << num_vars_ << ' ' << clauses_.size() << '\n';
  for (const Clause& c : clauses_) {
    for (Lit l : c.lits) os << l << ' ';
    os << "0\n";
  }
  return os.str();
}

bool CnfFormula::clauses_size_equal(const CnfFormula& o) const {
  if (clauses_.size() != o.clauses_.size()) return false;
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    if (clauses_[i].lits != o.clauses_[i].lits) return false;
  }
  return true;
}

CnfFormula parse_dimacs(std::istream& in) {
  CnfFormula formula;
  std::int64_t declared_vars = -1;
  std::int64_t declared_clauses = -1;
  std::vector<Lit> current;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view body = trim(line);
    if (body.empty() || body.front() == 'c') continue;
    if (body.front() == 'p') {
      const auto tokens = split_ws(body);
      EVORD_CHECK(tokens.size() == 4 && tokens[1] == "cnf",
                  "line " << line_no << ": malformed problem line");
      const auto nv = parse_int(tokens[2]);
      const auto nc = parse_int(tokens[3]);
      EVORD_CHECK(nv && nc && *nv >= 0 && *nc >= 0,
                  "line " << line_no << ": bad counts in problem line");
      declared_vars = *nv;
      declared_clauses = *nc;
      continue;
    }
    EVORD_CHECK(declared_vars >= 0,
                "line " << line_no << ": clause before problem line");
    for (std::string_view token : split_ws(body)) {
      const auto value = parse_int(token);
      EVORD_CHECK(value.has_value(),
                  "line " << line_no << ": bad literal '" << token << "'");
      if (*value == 0) {
        formula.add_clause(current);
        current.clear();
      } else {
        EVORD_CHECK(std::abs(*value) <= declared_vars,
                    "line " << line_no << ": literal exceeds variable count");
        current.push_back(static_cast<Lit>(*value));
      }
    }
  }
  EVORD_CHECK(current.empty(), "unterminated final clause");
  EVORD_CHECK(declared_clauses < 0 ||
                  formula.num_clauses() ==
                      static_cast<std::size_t>(declared_clauses),
              "clause count does not match problem line");
  return formula;
}

CnfFormula parse_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return parse_dimacs(in);
}

}  // namespace evord
