// CNF formulas.
//
// Literals use the DIMACS convention: variables are 1..num_vars and a
// negative integer denotes a negated variable.  The hardness reductions
// (Theorems 1-4) consume 3CNF instances of this type, and the solvers in
// dpll.hpp / cdcl.hpp decide them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace evord {

using Lit = std::int32_t;  ///< nonzero; -v is the negation of variable v

inline std::int32_t var_of(Lit l) { return l < 0 ? -l : l; }
inline bool is_positive(Lit l) { return l > 0; }

struct Clause {
  std::vector<Lit> lits;
};

/// A truth assignment: values[v] for v in 1..num_vars (index 0 unused).
using Assignment = std::vector<bool>;

class CnfFormula {
 public:
  CnfFormula() = default;
  explicit CnfFormula(std::int32_t num_vars) : num_vars_(num_vars) {}

  std::int32_t num_vars() const { return num_vars_; }
  std::size_t num_clauses() const { return clauses_.size(); }
  const std::vector<Clause>& clauses() const { return clauses_; }
  const Clause& clause(std::size_t i) const { return clauses_[i]; }

  /// Adds a clause; literals must reference variables in range (the
  /// variable count grows to cover them).  Duplicate literals are kept;
  /// a clause containing both l and -l is tautological and legal.
  void add_clause(std::vector<Lit> lits);

  bool satisfied_by(const Assignment& assignment) const;
  bool clause_satisfied_by(std::size_t i, const Assignment& assignment) const;

  /// True iff every clause has exactly `k` literals.
  bool is_kcnf(std::size_t k) const;

  /// Renders as DIMACS text.
  std::string to_dimacs() const;

  bool operator==(const CnfFormula& o) const {
    return num_vars_ == o.num_vars_ && clauses_size_equal(o);
  }

 private:
  bool clauses_size_equal(const CnfFormula& o) const;

  std::int32_t num_vars_ = 0;
  std::vector<Clause> clauses_;
};

/// Parses DIMACS CNF ("c" comments, "p cnf <vars> <clauses>", zero-
/// terminated clauses).  Throws CheckError on malformed input.
CnfFormula parse_dimacs(std::istream& in);
CnfFormula parse_dimacs_string(const std::string& text);

/// Statistics a solver reports alongside its verdict.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  /// Clauses learned from conflict analysis (CDCL only; DPLL leaves 0).
  std::uint64_t learned_clauses = 0;
};

struct SatResult {
  bool satisfiable = false;
  Assignment model;  ///< a satisfying assignment when satisfiable
  SolverStats stats;
};

}  // namespace evord
