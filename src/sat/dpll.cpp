#include "sat/dpll.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace evord {

namespace {

enum class Value : std::int8_t { kFalse = 0, kTrue = 1, kUnset = 2 };

class Dpll {
 public:
  explicit Dpll(const CnfFormula& formula)
      : formula_(formula),
        values_(static_cast<std::size_t>(formula.num_vars()) + 1,
                Value::kUnset) {}

  SatResult run() {
    SatResult result;
    result.satisfiable = search();
    result.stats = stats_;
    if (result.satisfiable) {
      result.model.assign(values_.size(), false);
      for (std::size_t v = 1; v < values_.size(); ++v) {
        result.model[v] = values_[v] == Value::kTrue;
      }
    }
    return result;
  }

 private:
  Value value_of(Lit l) const {
    const Value v = values_[static_cast<std::size_t>(var_of(l))];
    if (v == Value::kUnset) return Value::kUnset;
    const bool truth = (v == Value::kTrue) == is_positive(l);
    return truth ? Value::kTrue : Value::kFalse;
  }

  /// Unit propagation over all clauses to a fixed point.  Returns false
  /// on conflict.  `trail` records assignments made, for undoing.
  bool propagate(std::vector<std::int32_t>& trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Clause& c : formula_.clauses()) {
        Lit unit = 0;
        bool satisfied = false;
        int unset = 0;
        for (Lit l : c.lits) {
          const Value v = value_of(l);
          if (v == Value::kTrue) {
            satisfied = true;
            break;
          }
          if (v == Value::kUnset) {
            ++unset;
            unit = l;
          }
        }
        if (satisfied) continue;
        if (unset == 0) return false;  // conflict
        if (unset == 1) {
          assign(unit, trail);
          ++stats_.propagations;
          changed = true;
        }
      }
    }
    return true;
  }

  void assign(Lit l, std::vector<std::int32_t>& trail) {
    values_[static_cast<std::size_t>(var_of(l))] =
        is_positive(l) ? Value::kTrue : Value::kFalse;
    trail.push_back(var_of(l));
  }

  void unwind(const std::vector<std::int32_t>& trail) {
    for (std::int32_t v : trail) {
      values_[static_cast<std::size_t>(v)] = Value::kUnset;
    }
  }

  /// A literal is pure if its negation never occurs in an unsatisfied
  /// clause; assigning it can only help.
  void assign_pure_literals(std::vector<std::int32_t>& trail) {
    const auto n = static_cast<std::size_t>(formula_.num_vars());
    std::vector<std::uint8_t> seen_pos(n + 1, 0);
    std::vector<std::uint8_t> seen_neg(n + 1, 0);
    for (const Clause& c : formula_.clauses()) {
      bool satisfied = false;
      for (Lit l : c.lits) {
        if (value_of(l) == Value::kTrue) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      for (Lit l : c.lits) {
        if (value_of(l) == Value::kUnset) {
          (is_positive(l) ? seen_pos : seen_neg)[static_cast<std::size_t>(
              var_of(l))] = 1;
        }
      }
    }
    for (std::size_t v = 1; v <= n; ++v) {
      if (values_[v] != Value::kUnset) continue;
      if (seen_pos[v] != seen_neg[v]) {
        assign(seen_pos[v] != 0 ? static_cast<Lit>(v)
                                : -static_cast<Lit>(v),
               trail);
      }
    }
  }

  Lit pick_branch() const {
    // First unset variable of the first unsatisfied clause — a simple
    // MOMS-flavored heuristic without bookkeeping.
    for (const Clause& c : formula_.clauses()) {
      bool satisfied = false;
      Lit candidate = 0;
      for (Lit l : c.lits) {
        const Value v = value_of(l);
        if (v == Value::kTrue) {
          satisfied = true;
          break;
        }
        if (v == Value::kUnset && candidate == 0) candidate = l;
      }
      if (!satisfied && candidate != 0) return candidate;
    }
    return 0;  // everything satisfied
  }

  bool search() {
    std::vector<std::int32_t> trail;
    if (!propagate(trail)) {
      ++stats_.conflicts;
      unwind(trail);
      return false;
    }
    assign_pure_literals(trail);
    const Lit branch = pick_branch();
    if (branch == 0) return true;  // no unsatisfied clause remains
    ++stats_.decisions;
    for (Lit choice : {branch, -branch}) {
      std::vector<std::int32_t> sub_trail;
      assign(choice, sub_trail);
      if (search()) return true;
      unwind(sub_trail);
    }
    unwind(trail);
    return false;
  }

  const CnfFormula& formula_;
  std::vector<Value> values_;
  SolverStats stats_;
};

}  // namespace

SatResult solve_dpll(const CnfFormula& formula) {
  return Dpll(formula).run();
}

SatResult solve_brute_force(const CnfFormula& formula) {
  const auto n = static_cast<std::size_t>(formula.num_vars());
  EVORD_CHECK(n <= 30, "brute force limited to 30 variables");
  SatResult result;
  Assignment assignment(n + 1, false);
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    for (std::size_t v = 1; v <= n; ++v) {
      assignment[v] = (bits >> (v - 1)) & 1;
    }
    if (formula.satisfied_by(assignment)) {
      result.satisfiable = true;
      result.model = assignment;
      return result;
    }
  }
  return result;
}

std::uint64_t count_models(const CnfFormula& formula) {
  const auto n = static_cast<std::size_t>(formula.num_vars());
  EVORD_CHECK(n <= 30, "model counting limited to 30 variables");
  std::uint64_t models = 0;
  Assignment assignment(n + 1, false);
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    for (std::size_t v = 1; v <= n; ++v) {
      assignment[v] = (bits >> (v - 1)) & 1;
    }
    if (formula.satisfied_by(assignment)) ++models;
  }
  return models;
}

}  // namespace evord
