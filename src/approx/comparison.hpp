// Precision/recall accounting of an approximate ordering relation against
// the exact one — the measurement behind the §4 critique benches.
#pragma once

#include <cstddef>
#include <string>

#include "ordering/relations.hpp"

namespace evord {

struct RelationComparison {
  std::size_t exact_pairs = 0;   ///< pairs in the exact relation
  std::size_t approx_pairs = 0;  ///< pairs the approximation reports
  std::size_t agreed = 0;        ///< pairs in both
  std::size_t missed = 0;        ///< exact pairs the approximation lacks
  std::size_t spurious = 0;      ///< reported pairs that are not exact

  /// Fraction of reported pairs that are correct (1.0 when none reported).
  double precision() const {
    return approx_pairs == 0
               ? 1.0
               : static_cast<double>(agreed) /
                     static_cast<double>(approx_pairs);
  }
  /// Fraction of exact pairs found (1.0 when the exact relation is empty).
  double recall() const {
    return exact_pairs == 0
               ? 1.0
               : static_cast<double>(agreed) /
                     static_cast<double>(exact_pairs);
  }
  bool sound() const { return spurious == 0; }
  bool complete() const { return missed == 0; }

  std::string summary() const;
};

RelationComparison compare_relations(const RelationMatrix& approx,
                                     const RelationMatrix& exact);

}  // namespace evord
