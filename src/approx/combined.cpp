#include "approx/combined.hpp"

#include <vector>

#include "graph/ancestor.hpp"
#include "graph/reachability.hpp"

namespace evord {

CombinedResult compute_combined(const Trace& trace,
                                const CombinedOptions& options) {
  CombinedResult result;
  const std::size_t num_sems = trace.semaphores().size();
  const std::size_t num_evs = trace.event_vars().size();

  // Per-object event lists.
  std::vector<std::vector<EventId>> vs(num_sems), ps(num_sems);
  std::vector<std::vector<EventId>> posts(num_evs), waits(num_evs),
      clears(num_evs);
  for (const Event& e : trace.events()) {
    switch (e.kind) {
      case EventKind::kSemV:
        vs[e.object].push_back(e.id);
        break;
      case EventKind::kSemP:
        ps[e.object].push_back(e.id);
        break;
      case EventKind::kPost:
        posts[e.object].push_back(e.id);
        break;
      case EventKind::kWait:
        waits[e.object].push_back(e.id);
        break;
      case EventKind::kClear:
        clears[e.object].push_back(e.id);
        break;
      default:
        break;
    }
  }

  // Base: program order, fork/join and — in F3 mode — the dependences
  // (which hold in every feasible execution).
  Digraph g = options.include_data_edges ? trace.constraint_graph()
                                         : trace.static_order_graph();

  bool added = true;
  while (added) {
    added = false;
    ++result.iterations;
    const TransitiveClosure tc(g);

    // --- HMW counting rule, per semaphore --------------------------
    for (ObjectId s = 0; s < num_sems; ++s) {
      const int init = trace.semaphores()[s].initial;
      for (EventId p : ps[s]) {
        int before = 0;
        for (EventId q : ps[s]) {
          if (q == p || tc.reachable(q, p)) ++before;
        }
        const int need = before - init;
        if (need <= 0) continue;
        std::vector<EventId> candidates;
        for (EventId u : vs[s]) {
          if (!tc.reachable(p, u)) candidates.push_back(u);
        }
        if (static_cast<int>(candidates.size()) == need) {
          for (EventId u : candidates) {
            if (!tc.reachable(u, p)) {
              g.add_edge(u, p);
              ++result.semaphore_edges;
              added = true;
            }
          }
        } else if (!candidates.empty()) {
          // Closest-common-ancestor rule: the P consumes SOME candidate
          // token, so everything preceding every candidate precedes it.
          for (NodeId o : closest_common_ancestors(g, candidates)) {
            if (o != p && !tc.reachable(o, p) && !g.has_edge(o, p)) {
              g.add_edge(o, p);
              ++result.semaphore_edges;
              added = true;
            }
          }
        }
      }
    }

    // --- EGP unique-candidate rule, per wait ------------------------
    for (ObjectId v = 0; v < num_evs; ++v) {
      if (trace.event_vars()[v].initially_posted) continue;  // no post needed
      for (EventId w : waits[v]) {
        std::vector<EventId> candidates;
        for (EventId p : posts[v]) {
          if (tc.reachable(w, p)) continue;
          bool cleared_between = false;
          for (EventId c : clears[v]) {
            if ((p == c || tc.reachable(p, c)) && tc.reachable(c, w)) {
              cleared_between = true;
              break;
            }
          }
          if (!cleared_between) candidates.push_back(p);
        }
        if (candidates.size() == 1) {
          if (!tc.reachable(candidates[0], w)) {
            g.add_edge(candidates[0], w);
            ++result.event_edges;
            added = true;
          }
        } else if (!candidates.empty()) {
          for (NodeId o : closest_common_ancestors(g, candidates)) {
            if (o != w && !tc.reachable(o, w) && !g.has_edge(o, w)) {
              g.add_edge(o, w);
              ++result.event_edges;
              added = true;
            }
          }
        }
      }
    }
    g.finalize();
  }

  const TransitiveClosure tc(g);
  result.guaranteed = RelationMatrix(trace.num_events());
  for (EventId a = 0; a < trace.num_events(); ++a) {
    result.guaranteed.row(a) = tc.descendants(a);
  }
  return result;
}

}  // namespace evord
