// The Emrath–Ghosh–Padua task-graph analysis for fork/join programs with
// Post/Wait/Clear synchronization ("Event Synchronization Analysis for
// Debugging Parallel Programs", Supercomputing '89), reconstructed from
// §4 of the reproduced paper:
//
//   * one node per SYNCHRONIZATION event (computation events are absent —
//     this omission is exactly what Figure 1 exploits);
//   * machine edges between consecutive sync events of one process, Task
//     Start edges from a fork to the child's first sync event, Task End
//     edges from the child's last sync event to the join;
//   * for each Wait node w on event variable e, the candidate Posts are
//     the Post(e) nodes p with no path w -> p and no path p -> w passing
//     through a Clear(e) node; a synchronization edge is added from each
//     closest common ancestor of the candidates to w;
//   * edges are added until a fixed point, since new edges change paths.
//
// The resulting graph is intended to show a guaranteed ordering between
// two events iff a path connects them.  Because shared-data dependences
// are ignored, some guaranteed orderings are missed (the paper's central
// critique); the Figure 1 bench reproduces the miss.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "ordering/relations.hpp"
#include "trace/trace.hpp"

namespace evord {

struct EgpResult {
  /// The task graph over synchronization events.
  Digraph task_graph;
  /// node id -> event id for the task graph's nodes.
  std::vector<EventId> node_event;
  /// event id -> node id (kNoEvent-width sentinel for computation events).
  std::vector<NodeId> event_node;
  /// Guaranteed orderings lifted to ALL events: for computation events
  /// the ordering is inherited through the nearest enclosing sync events
  /// plus program order.
  RelationMatrix guaranteed;
  std::size_t iterations = 0;
};

/// `trace` must not contain semaphore operations (EGP handles event-style
/// synchronization).
EgpResult compute_egp(const Trace& trace);

}  // namespace evord
