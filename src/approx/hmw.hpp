// The Helmbold–McDowell–Wang safe-ordering analysis for semaphore traces
// ("Analyzing Traces with Anonymous Synchronization", ICPP 1990),
// reconstructed from the three-phase description in §4 of the reproduced
// paper:
//
//   phase 1 — pair the i-th V(s) of the trace with the i-th P(s) and
//       close with the intra-process (and fork/join) orderings.  This
//       "happened before" relation reflects one possible pairing and is
//       UNSAFE: another execution may pair the anonymous tokens
//       differently.
//   phase 2 — replace the pairing edges by orderings that hold under
//       EVERY pairing.  We realize this with a counting argument: the
//       P event p needs need(p) = |{q : q = p or q safely precedes p,
//       q a P(s) event}| - initial(s) tokens before it can complete; if
//       the V(s) events not already safely AFTER p number exactly
//       need(p), every one of them must precede p in every execution, so
//       V -> p edges are safe.
//   phase 3 — sharpen by iterating phase 2 to a fixed point: each new
//       safe edge can rule further V events out of (or into) the
//       candidate sets.
//
// The result is a sound subset of the exact must-have-happened-before
// relation over all executions with the same events (dependences ignored,
// the paper's §5.3 notion of feasibility, which is what HMW target).
// Theorem 1 says no polynomial algorithm can compute all of MHB, and the
// precision bench measures how much this one leaves on the table.
#pragma once

#include "ordering/relations.hpp"
#include "trace/trace.hpp"

namespace evord {

struct HmwResult {
  /// Phase 1: observed-pairing happened-before (unsafe).
  RelationMatrix unsafe_happened_before;
  /// Phases 2-3: safe orderings (subset of exact MHB).
  RelationMatrix safe_happened_before;
  std::size_t iterations = 0;  ///< fixpoint rounds of phase 3
};

/// `trace` must use only semaphores (plus fork/join and computation);
/// event-style operations are rejected.
HmwResult compute_hmw(const Trace& trace);

}  // namespace evord
