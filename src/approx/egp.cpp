#include "approx/egp.hpp"

#include <algorithm>

#include "graph/ancestor.hpp"
#include "graph/reachability.hpp"
#include "util/check.hpp"

namespace evord {

EgpResult compute_egp(const Trace& trace) {
  for (const Event& e : trace.events()) {
    EVORD_CHECK(!is_semaphore_op(e.kind),
                "EGP analyzes event-style traces; semaphore operation "
                "found: " << describe(e));
  }
  EgpResult result;

  // ----- nodes: synchronization events only ---------------------------
  result.event_node.assign(trace.num_events(), kNoEvent);
  for (const Event& e : trace.events()) {
    if (e.is_sync()) {
      result.event_node[e.id] =
          static_cast<NodeId>(result.node_event.size());
      result.node_event.push_back(e.id);
    }
  }
  const std::size_t num_nodes = result.node_event.size();
  Digraph g(num_nodes);

  // ----- machine, Task Start and Task End edges ------------------------
  // First/last sync event per process, for fork/join attachment.
  std::vector<EventId> first_sync(trace.num_processes(), kNoEvent);
  std::vector<EventId> last_sync(trace.num_processes(), kNoEvent);
  for (ProcId p = 0; p < trace.num_processes(); ++p) {
    EventId prev = kNoEvent;
    for (EventId id : trace.program_order(p)) {
      if (!trace.event(id).is_sync()) continue;
      if (prev == kNoEvent) {
        first_sync[p] = id;
      } else {
        g.add_edge(result.event_node[prev], result.event_node[id]);
      }
      prev = id;
    }
    last_sync[p] = prev;
  }
  for (const Event& e : trace.events()) {
    if (e.kind == EventKind::kFork && first_sync[e.object] != kNoEvent) {
      g.add_edge(result.event_node[e.id],
                 result.event_node[first_sync[e.object]]);
    }
    if (e.kind == EventKind::kJoin && last_sync[e.object] != kNoEvent) {
      g.add_edge(result.event_node[last_sync[e.object]],
                 result.event_node[e.id]);
    }
  }
  g.finalize();

  // Per event variable: posts, waits, clears (node ids).
  const std::size_t num_vars = trace.event_vars().size();
  std::vector<std::vector<NodeId>> posts(num_vars), waits(num_vars),
      clears(num_vars);
  for (const Event& e : trace.events()) {
    if (e.kind == EventKind::kPost) {
      posts[e.object].push_back(result.event_node[e.id]);
    } else if (e.kind == EventKind::kWait) {
      waits[e.object].push_back(result.event_node[e.id]);
    } else if (e.kind == EventKind::kClear) {
      clears[e.object].push_back(result.event_node[e.id]);
    }
  }

  // ----- synchronization edges, to a fixed point -----------------------
  bool added = true;
  while (added) {
    added = false;
    ++result.iterations;
    const TransitiveClosure tc(g);
    for (ObjectId v = 0; v < num_vars; ++v) {
      for (NodeId w : waits[v]) {
        // Candidate Posts that might have triggered w.
        std::vector<NodeId> candidates;
        for (NodeId p : posts[v]) {
          if (tc.reachable(w, p)) continue;  // wait precedes this post
          bool cleared_between = false;
          for (NodeId c : clears[v]) {
            if ((p == c || tc.reachable(p, c)) && tc.reachable(c, w)) {
              cleared_between = true;
              break;
            }
          }
          if (!cleared_between) candidates.push_back(p);
        }
        std::vector<NodeId> origins;
        if (candidates.size() == 1) {
          origins = candidates;  // a unique trigger is itself guaranteed
        } else if (!candidates.empty()) {
          origins = closest_common_ancestors(g, candidates);
        }
        for (NodeId o : origins) {
          if (o != w && !g.has_edge(o, w) && !tc.reachable(o, w)) {
            g.add_edge(o, w);
            added = true;
          }
        }
      }
    }
    g.finalize();
  }
  result.task_graph = g;

  // ----- lift to all events --------------------------------------------
  Digraph lifted = trace.static_order_graph();
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId v2 : g.out(u)) {
      lifted.add_edge(result.node_event[u], result.node_event[v2]);
    }
  }
  lifted.finalize();
  result.guaranteed = RelationMatrix(trace.num_events());
  const TransitiveClosure tc(lifted);
  for (EventId a = 0; a < trace.num_events(); ++a) {
    result.guaranteed.row(a) = tc.descendants(a);
  }
  return result;
}

}  // namespace evord
