// The combined polynomial analysis: a sound, dependence-aware
// guaranteed-orderings engine for arbitrary traces (mixed semaphore /
// event-style / fork-join), built from the pieces the paper discusses:
//
//   * program order, fork/join and the shared-data dependences D — the
//     paper's §4 point is precisely that EGP ignores D and therefore
//     misses orderings (Figure 1); here D is first-class;
//   * the HMW counting rule per semaphore (a P event needs its tokens;
//     when the not-provably-later V events exactly cover the need, they
//     all must precede);
//   * the EGP candidate rule per Wait (posts not provably later and not
//     Clear-blocked might have triggered it; a UNIQUE candidate must
//     precede it);
//   * the closest-common-ancestor rule (EGP's, generalized to both
//     synchronization styles): whatever precedes EVERY candidate trigger
//     of a blocked operation precedes the operation itself;
//
// iterated to a fixed point.  The result is a subset of the exact
// must-have-happened-before relation under full F3 feasibility —
// Theorem 1 says it cannot be the whole of it in polynomial time, and
// the precision bench measures the residual gap.  On Figure 1 this
// analysis DOES order the two Posts.
#pragma once

#include "ordering/relations.hpp"
#include "trace/trace.hpp"

namespace evord {

struct CombinedOptions {
  /// Seed the analysis with the shared-data dependences D.  True for
  /// guaranteed-orderings queries (the paper's F3 feasibility); false
  /// for race detection, where the racing pair's own conflict edge must
  /// not count as an ordering.
  bool include_data_edges = true;
};

struct CombinedResult {
  /// Sound guaranteed orderings (subset of exact causal MHB with F3).
  RelationMatrix guaranteed;
  std::size_t iterations = 0;
  /// Edges contributed by each rule, for diagnostics.
  std::size_t semaphore_edges = 0;
  std::size_t event_edges = 0;
};

CombinedResult compute_combined(const Trace& trace,
                                const CombinedOptions& options = {});

}  // namespace evord
