#include "approx/hmw.hpp"

#include <vector>

#include "graph/reachability.hpp"
#include "util/check.hpp"

namespace evord {

namespace {

RelationMatrix matrix_from_closure(const TransitiveClosure& tc) {
  RelationMatrix m(tc.num_nodes());
  for (NodeId a = 0; a < tc.num_nodes(); ++a) {
    m.row(a) = tc.descendants(a);
  }
  return m;
}

}  // namespace

HmwResult compute_hmw(const Trace& trace) {
  for (const Event& e : trace.events()) {
    EVORD_CHECK(!is_event_op(e.kind),
                "HMW analyzes semaphore traces; event-style operation "
                "found: " << describe(e));
  }
  HmwResult result;
  const std::size_t num_sems = trace.semaphores().size();

  // Per-semaphore V and P event lists in observed order.
  std::vector<std::vector<EventId>> vs(num_sems), ps(num_sems);
  for (EventId id : trace.observed_order()) {
    const Event& e = trace.event(id);
    if (e.kind == EventKind::kSemV) vs[e.object].push_back(id);
    if (e.kind == EventKind::kSemP) ps[e.object].push_back(id);
  }

  // ---- phase 1: observed FIFO pairing (unsafe) ------------------------
  {
    Digraph g = trace.static_order_graph();
    for (ObjectId s = 0; s < num_sems; ++s) {
      const auto init = static_cast<std::size_t>(trace.semaphores()[s].initial);
      for (std::size_t i = init; i < ps[s].size(); ++i) {
        const std::size_t v_index = i - init;
        if (v_index < vs[s].size()) g.add_edge(vs[s][v_index], ps[s][i]);
      }
    }
    g.finalize();
    result.unsafe_happened_before = matrix_from_closure(TransitiveClosure(g));
  }

  // ---- phases 2-3: safe orderings, iterated to fixpoint ---------------
  Digraph g = trace.static_order_graph();
  bool added = true;
  while (added) {
    added = false;
    ++result.iterations;
    const TransitiveClosure tc(g);
    for (ObjectId s = 0; s < num_sems; ++s) {
      const int init = trace.semaphores()[s].initial;
      for (EventId p : ps[s]) {
        // Tokens p needs: P(s) events forced at-or-before p, minus the
        // initial count.
        int before = 0;
        for (EventId q : ps[s]) {
          if (q == p || tc.reachable(q, p)) ++before;
        }
        const int need = before - init;
        if (need <= 0) continue;
        // V(s) events not already forced after p can supply them.
        std::vector<EventId> candidates;
        for (EventId u : vs[s]) {
          if (!tc.reachable(p, u)) candidates.push_back(u);
        }
        if (static_cast<int>(candidates.size()) == need) {
          for (EventId u : candidates) {
            if (u != p && !tc.reachable(u, p)) {
              g.add_edge(u, p);
              added = true;
            }
          }
        }
      }
    }
    g.finalize();
  }
  result.safe_happened_before = matrix_from_closure(TransitiveClosure(g));
  return result;
}

}  // namespace evord
