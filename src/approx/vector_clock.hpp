// Vector clocks: the standard polynomial-time happened-before analysis of
// ONE observed execution (the ancestor of every DJIT/FastTrack/TSan-style
// race detector).
//
// Each event receives a clock of width num_processes; an event joins the
// clock of its program-order predecessor and of its synchronization
// sources (semaphore token producer, establishing Post, fork, joined
// child), then increments its own process component.  a happened-before b
// iff clock(a) <= clock(b) pointwise — equivalently clock(a)[proc(a)] <=
// clock(b)[proc(a)].
//
// This analyzes only the observed schedule: it neither quantifies over
// feasible executions (so it over-approximates MHB and under-approximates
// CCW) nor accounts for shared-data dependences unless asked to.  The
// comparison benches quantify exactly that gap.
#pragma once

#include <cstdint>
#include <vector>

#include "ordering/relations.hpp"
#include "trace/trace.hpp"

namespace evord {

struct VectorClockOptions {
  /// Also join across shared-data conflict edges (the paper's D).  Off by
  /// default: classic detectors see synchronization only.
  bool include_data_edges = false;
  /// Build the full n-by-n happened-before matrix.  O(n^2); disable for
  /// throughput runs on very large traces, where the clocks alone are the
  /// product (pairs can then be compared via happened_before_clocks).
  bool build_matrix = true;
};

struct VectorClockResult {
  /// clocks[e][p] — entries are per-process event counts.
  std::vector<std::vector<std::uint32_t>> clocks;
  /// happened_before.holds(a, b) == a -> b in the observed execution.
  RelationMatrix happened_before;
};

VectorClockResult compute_vector_clocks(
    const Trace& trace, const VectorClockOptions& options = {});

/// Pairwise happened-before directly from the clocks (no matrix needed):
/// a -> b iff b's clock has seen a's own-component timestamp.
bool happened_before_clocks(const Trace& trace,
                            const VectorClockResult& result, EventId a,
                            EventId b);

}  // namespace evord
