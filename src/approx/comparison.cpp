#include "approx/comparison.hpp"

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace evord {

std::string RelationComparison::summary() const {
  return strprintf(
      "exact=%zu approx=%zu agreed=%zu missed=%zu spurious=%zu "
      "precision=%.3f recall=%.3f",
      exact_pairs, approx_pairs, agreed, missed, spurious, precision(),
      recall());
}

RelationComparison compare_relations(const RelationMatrix& approx,
                                     const RelationMatrix& exact) {
  EVORD_CHECK(approx.size() == exact.size(), "relation size mismatch");
  RelationComparison out;
  out.exact_pairs = exact.num_pairs();
  out.approx_pairs = approx.num_pairs();
  for (EventId a = 0; a < approx.size(); ++a) {
    DynamicBitset both = approx.row(a);
    both &= exact.row(a);
    out.agreed += both.count();
  }
  out.missed = out.exact_pairs - out.agreed;
  out.spurious = out.approx_pairs - out.agreed;
  return out;
}

}  // namespace evord
