#include "approx/vector_clock.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace evord {

namespace {

void join_into(std::vector<std::uint32_t>& dst,
               const std::vector<std::uint32_t>& src) {
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = std::max(dst[i], src[i]);
  }
}

}  // namespace

VectorClockResult compute_vector_clocks(const Trace& trace,
                                        const VectorClockOptions& options) {
  const std::size_t n = trace.num_events();
  const std::size_t num_procs = trace.num_processes();
  VectorClockResult result;
  result.clocks.assign(n, std::vector<std::uint32_t>(num_procs, 0));
  if (options.build_matrix) result.happened_before = RelationMatrix(n);

  // Replay the observed order with the same attribution rules as the
  // causal analysis: FIFO semaphore tokens, establishing Posts.
  std::vector<std::deque<EventId>> tokens(trace.semaphores().size());
  std::vector<int> count;
  for (const SemaphoreInfo& s : trace.semaphores()) count.push_back(s.initial);
  std::vector<EventId> establisher(trace.event_vars().size(), kNoEvent);
  std::vector<bool> posted;
  for (const EventVarInfo& v : trace.event_vars()) {
    posted.push_back(v.initially_posted);
  }
  // Per-process clock of the last executed event.
  std::vector<std::vector<std::uint32_t>> proc_clock(
      num_procs, std::vector<std::uint32_t>(num_procs, 0));
  // Data edges: last-writer / readers clocks per variable.
  struct VarState {
    std::vector<std::uint32_t> write_clock;
    std::vector<std::uint32_t> read_clock;  // join of all reads since write
    bool written = false;
    bool read = false;
  };
  std::vector<VarState> vars(
      options.include_data_edges ? trace.variables().size() : 0);

  for (EventId id : trace.observed_order()) {
    const Event& e = trace.event(id);
    std::vector<std::uint32_t>& clock = result.clocks[id];
    clock = proc_clock[e.process];

    switch (e.kind) {
      case EventKind::kSemV: {
        const SemaphoreInfo& s = trace.semaphores()[e.object];
        if (!(s.binary && count[e.object] == 1)) {
          ++count[e.object];
          tokens[e.object].push_back(id);
        }
        break;
      }
      case EventKind::kSemP: {
        EVORD_CHECK(count[e.object] > 0, "trace violates semaphore axioms");
        --count[e.object];
        if (static_cast<std::size_t>(count[e.object]) <
            tokens[e.object].size()) {
          join_into(clock, result.clocks[tokens[e.object].front()]);
          tokens[e.object].pop_front();
        }
        break;
      }
      case EventKind::kPost:
        if (!posted[e.object]) {
          posted[e.object] = true;
          establisher[e.object] = id;
        }
        break;
      case EventKind::kClear:
        posted[e.object] = false;
        establisher[e.object] = kNoEvent;
        break;
      case EventKind::kWait:
        EVORD_CHECK(posted[e.object], "trace violates event-variable axioms");
        if (establisher[e.object] != kNoEvent) {
          join_into(clock, result.clocks[establisher[e.object]]);
        }
        break;
      case EventKind::kJoin: {
        const auto child_po = trace.program_order(e.object);
        if (!child_po.empty()) {
          join_into(clock, result.clocks[child_po.back()]);
        }
        break;
      }
      case EventKind::kFork:
      case EventKind::kCompute:
        break;
    }
    if (e.index_in_process == 0) {
      const EventId creator = trace.process(e.process).creating_fork;
      if (creator != kNoEvent) join_into(clock, result.clocks[creator]);
    }
    if (options.include_data_edges && e.kind == EventKind::kCompute) {
      for (VarId v : e.reads) {
        if (vars[v].written) join_into(clock, vars[v].write_clock);
      }
      for (VarId v : e.writes) {
        if (vars[v].written) join_into(clock, vars[v].write_clock);
        if (vars[v].read) join_into(clock, vars[v].read_clock);
      }
    }

    clock[e.process] += 1;

    if (options.include_data_edges && e.kind == EventKind::kCompute) {
      for (VarId v : e.writes) {
        vars[v].write_clock = clock;
        vars[v].written = true;
        vars[v].read = false;
        vars[v].read_clock.assign(num_procs, 0);
      }
      for (VarId v : e.reads) {
        if (!vars[v].read) {
          vars[v].read_clock.assign(num_procs, 0);
          vars[v].read = true;
        }
        join_into(vars[v].read_clock, clock);
      }
    }

    proc_clock[e.process] = clock;
  }

  if (!options.build_matrix) return result;
  // hb(a, b) iff clock(a)[proc(a)] <= clock(b)[proc(a)] and a != b and a
  // was observed first (clock comparison alone is reflexive-ish across
  // equal clocks; the component test below is the standard one).
  for (EventId a = 0; a < n; ++a) {
    const ProcId pa = trace.event(a).process;
    const std::uint32_t ca = result.clocks[a][pa];
    for (EventId b = 0; b < n; ++b) {
      if (a == b) continue;
      if (result.clocks[b][pa] >= ca &&
          trace.observed_position(a) < trace.observed_position(b)) {
        result.happened_before.set(a, b);
      }
    }
  }
  return result;
}

bool happened_before_clocks(const Trace& trace,
                            const VectorClockResult& result, EventId a,
                            EventId b) {
  if (a == b) return false;
  const ProcId pa = trace.event(a).process;
  return result.clocks[b][pa] >= result.clocks[a][pa] &&
         trace.observed_position(a) < trace.observed_position(b);
}

}  // namespace evord
