#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace evord {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void stderr_sink(LogLevel level, const std::string& message) {
  // One mutex keeps multi-threaded log lines whole; logging is not on any
  // hot path (CP.43: critical section is a single fprintf).
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[evord %s] %s\n", level_name(level), message.c_str());
}

std::atomic<LogSink> g_sink{&stderr_sink};
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

}  // namespace

LogSink set_log_sink(LogSink sink) {
  return g_sink.exchange(sink != nullptr ? sink : &stderr_sink);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  g_sink.load()(level, message);
}
}  // namespace detail

}  // namespace evord
