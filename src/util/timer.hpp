// Monotonic wall-clock timing for benches and budget-limited search.
#pragma once

#include <chrono>
#include <cstdint>

namespace evord {

/// A started stopwatch.  Value type; copying snapshots the start time.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  std::uint64_t micros() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft deadline for exponential searches: callers poll `expired()` and
/// abandon the search cleanly.  A zero budget means "no limit".
class Deadline {
 public:
  Deadline() = default;
  explicit Deadline(double budget_seconds) : budget_(budget_seconds) {}

  bool limited() const { return budget_ > 0.0; }
  bool expired() const { return limited() && timer_.seconds() >= budget_; }
  double remaining() const {
    return limited() ? budget_ - timer_.seconds() : 0.0;
  }

 private:
  Timer timer_;
  double budget_ = 0.0;
};

}  // namespace evord
