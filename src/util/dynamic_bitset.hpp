// A compact runtime-sized bitset used throughout evord for reachability
// matrices, enabled-event sets and relation storage.
//
// The representation is a flat vector of 64-bit words (Per.16: compact data
// structures).  All word-level operations are branch-free; the class is a
// value type with the usual copy/move semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace evord {

class DynamicBitset {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  DynamicBitset() = default;
  /// Constructs a bitset of `nbits` bits, all zero (or all one).
  explicit DynamicBitset(std::size_t nbits, bool value = false);

  std::size_t size() const noexcept { return nbits_; }
  bool empty() const noexcept { return nbits_ == 0; }

  /// Resizes to `nbits`; new bits are `value`.
  void resize(std::size_t nbits, bool value = false);

  bool test(std::size_t i) const noexcept {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }
  bool operator[](std::size_t i) const noexcept { return test(i); }

  void set(std::size_t i) noexcept {
    words_[i / kWordBits] |= Word{1} << (i % kWordBits);
  }
  void reset(std::size_t i) noexcept {
    words_[i / kWordBits] &= ~(Word{1} << (i % kWordBits));
  }
  void set(std::size_t i, bool value) noexcept {
    if (value) {
      set(i);
    } else {
      reset(i);
    }
  }
  void flip(std::size_t i) noexcept {
    words_[i / kWordBits] ^= Word{1} << (i % kWordBits);
  }

  void set_all() noexcept;
  void reset_all() noexcept;

  /// Number of set bits.
  std::size_t count() const noexcept;
  bool any() const noexcept;
  bool none() const noexcept { return !any(); }
  bool all() const noexcept;

  /// Index of the first set bit, or `size()` if none.
  std::size_t find_first() const noexcept;
  /// Index of the first set bit strictly after `i`, or `size()` if none.
  std::size_t find_next(std::size_t i) const noexcept;

  DynamicBitset& operator|=(const DynamicBitset& o);
  DynamicBitset& operator&=(const DynamicBitset& o);
  DynamicBitset& operator^=(const DynamicBitset& o);
  /// this := this & ~o
  DynamicBitset& subtract(const DynamicBitset& o);
  /// this := this | ~o (bits past size() stay clear)
  DynamicBitset& or_complement(const DynamicBitset& o);

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  friend DynamicBitset operator^(DynamicBitset a, const DynamicBitset& b) {
    a ^= b;
    return a;
  }

  bool operator==(const DynamicBitset& o) const noexcept;
  bool operator!=(const DynamicBitset& o) const noexcept {
    return !(*this == o);
  }

  /// True iff this and `o` share at least one set bit.
  bool intersects(const DynamicBitset& o) const noexcept;
  /// True iff every set bit of this is also set in `o`.
  bool is_subset_of(const DynamicBitset& o) const noexcept;

  /// Chaining seed for hash_words(); the FNV-1a offset basis.
  static constexpr std::uint64_t kHashSeed = 1469598103934665603ull;

  /// FNV-1a hash over the active words; usable as a state fingerprint.
  std::uint64_t hash() const noexcept { return hash_words(kHashSeed); }

  /// FNV-1a over the words, continuing from `seed`.  Chain across several
  /// bitsets to fingerprint a whole matrix in O(words) with no
  /// per-row allocation: `h = row.hash_words(h)`.
  std::uint64_t hash_words(std::uint64_t seed) const noexcept;

  /// "10110..." with bit 0 first; for debugging and tests.
  std::string to_string() const;

  /// Direct word access (for bit-parallel closure algorithms).
  std::size_t word_count() const noexcept { return words_.size(); }
  Word word(std::size_t w) const noexcept { return words_[w]; }
  Word& word(std::size_t w) noexcept { return words_[w]; }
  const Word* data() const noexcept { return words_.data(); }
  Word* data() noexcept { return words_.data(); }

 private:
  void trim() noexcept;  // clear bits past nbits_ in the last word

  std::vector<Word> words_;
  std::size_t nbits_ = 0;
};

}  // namespace evord
