// Shared 64-bit hashing primitives for the state-space search core.
//
// Three building blocks, each used by several engines:
//   * splitmix64      — finalizer mix; turns any 64-bit value into a
//                       well-distributed one (shard selection, seeding);
//   * hash_mix        — salted two-operand mix for Zobrist-style
//                       incremental hashes: each state component
//                       contributes one well-mixed word, XOR-combined so
//                       apply/undo update a running hash in O(1);
//   * fingerprint_words — chained FNV-1a over a word sequence, the
//                       fingerprint of a materialized state key.
#pragma once

#include <cstdint>
#include <vector>

namespace evord {

/// splitmix64 finalizer: every output bit depends on every input bit.
inline std::uint64_t splitmix64(std::uint64_t h) noexcept {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

/// Salted splitmix64 mix of two operands.  Distinct salts give
/// independent hash families, so unrelated state components can be
/// XOR-combined into one incremental (Zobrist-style) hash.
inline std::uint64_t hash_mix(std::uint64_t salt, std::uint64_t a,
                              std::uint64_t b) noexcept {
  return splitmix64(salt ^ (a * 0x9e3779b97f4a7c15ull) ^
                    (b * 0xc2b2ae3d27d4eb4full));
}

/// Chained FNV-1a over a word sequence; seed with
/// DynamicBitset::kHashSeed (or a previous chain value).
inline std::uint64_t fingerprint_words(const std::vector<std::uint64_t>& words,
                                       std::uint64_t seed) noexcept {
  for (std::uint64_t w : words) {
    seed ^= w;
    seed *= 1099511628211ull;  // FNV prime
  }
  return seed;
}

}  // namespace evord
