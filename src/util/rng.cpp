#include "util/rng.hpp"

#include <bit>

namespace evord {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // All-zero state is a fixed point of xoshiro; splitmix64 cannot produce
  // four zero outputs in a row from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire 2019: unbiased bounded generation with one multiply in the
  // common case.
  __uint128_t m =
      static_cast<__uint128_t>(next()) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * static_cast<__uint128_t>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi >= lo assumed
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

Rng Rng::split() noexcept { return Rng(next() ^ 0xd1b54a32d192ed03ull); }

}  // namespace evord
