#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace evord {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::throw_if_stopped_locked() const {
  if (stop_.load(std::memory_order_relaxed)) {
    throw std::runtime_error(
        "ThreadPool::submit after shutdown: the pool no longer accepts "
        "work");
  }
}

void ThreadPool::shutdown() {
  {
    // Under mu_ so the flag totally orders against submit()'s check and
    // the workers' final queue-empty check: a task either enqueues
    // before the stop (and is drained) or its submit throws — never a
    // silently dropped task.
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  // Join outside the mutex (workers need it to drain the queue); a flag
  // makes concurrent / repeated shutdown calls safe — only one caller
  // joins, the others return once it has.
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!joined_) {
      joined_ = true;
      to_join.swap(workers_);
    }
  }
  for (std::thread& t : to_join) t.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopped() || !queue_.empty(); });
      // Drain-then-stop: queued work always runs, even during shutdown.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& f) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&f, i] { f(i); }));
  }
  std::exception_ptr first_error;
  std::size_t suppressed = 0;
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      } else {
        ++suppressed;
      }
    }
  }
  if (!first_error) return;
  suppressed_.fetch_add(suppressed, std::memory_order_relaxed);
  if (suppressed == 0) std::rethrow_exception(first_error);
  // More than one task failed: only one exception can propagate, so the
  // rethrown message must carry the count of the ones it eclipsed.
  const std::string tail = " (+" + std::to_string(suppressed) +
                           " suppressed task exception" +
                           (suppressed == 1 ? ")" : "s)");
  try {
    std::rethrow_exception(first_error);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string(e.what()) + tail);
  } catch (...) {
    throw std::runtime_error("non-standard task exception" + tail);
  }
}

}  // namespace evord
