#include "util/fault.hpp"

#ifndef EVORD_NO_FAULT_INJECTION
#include <atomic>
#include <chrono>
#include <thread>
#endif

#include "util/hash.hpp"

namespace evord::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDeadlineAtState:
      return "deadline-at-state";
    case FaultKind::kStoreFailAt:
      return "store-fail-at";
    case FaultKind::kStealStall:
      return "steal-stall";
    case FaultKind::kStealPoison:
      return "steal-poison";
    case FaultKind::kAcceptFail:
      return "accept-fail";
    case FaultKind::kMidFrameDisconnect:
      return "mid-frame-disconnect";
    case FaultKind::kSlowLoris:
      return "slow-loris";
  }
  return "unknown";
}

std::uint64_t FaultPlan::resolved_threshold() const {
  if (threshold != 0) return threshold;
  return 1 + (splitmix64(seed) % 97);
}

#ifndef EVORD_NO_FAULT_INJECTION

namespace {

// One process-global armed plan.  `enabled` is the only field touched
// on the disarmed fast path; the plan fields are written before the
// release-store to `enabled` and read after acquire-loads, so hook
// threads started after arm() see a consistent plan.
struct FaultState {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint8_t> kind{0};
  std::atomic<std::uint64_t> threshold{0};
  std::atomic<std::size_t> worker{kAnyWorker};
  std::atomic<std::uint32_t> stall_micros{0};
  std::atomic<std::uint64_t> states{0};
  std::atomic<std::uint64_t> inserts{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> accepts{0};
  std::atomic<std::uint64_t> frames{0};
  std::atomic<bool> tripped{false};
};

FaultState g_fault;

}  // namespace

bool enabled() noexcept {
  return g_fault.enabled.load(std::memory_order_relaxed);
}

void arm(const FaultPlan& plan) {
  g_fault.enabled.store(false, std::memory_order_seq_cst);
  g_fault.kind.store(static_cast<std::uint8_t>(plan.kind),
                     std::memory_order_relaxed);
  g_fault.threshold.store(plan.resolved_threshold(),
                          std::memory_order_relaxed);
  g_fault.worker.store(plan.worker, std::memory_order_relaxed);
  g_fault.stall_micros.store(plan.stall_micros, std::memory_order_relaxed);
  g_fault.states.store(0, std::memory_order_relaxed);
  g_fault.inserts.store(0, std::memory_order_relaxed);
  g_fault.steals.store(0, std::memory_order_relaxed);
  g_fault.accepts.store(0, std::memory_order_relaxed);
  g_fault.frames.store(0, std::memory_order_relaxed);
  g_fault.tripped.store(false, std::memory_order_relaxed);
  g_fault.enabled.store(plan.kind != FaultKind::kNone,
                        std::memory_order_release);
}

void disarm() {
  g_fault.enabled.store(false, std::memory_order_release);
}

std::uint64_t states_observed() {
  return g_fault.states.load(std::memory_order_relaxed);
}

std::uint64_t inserts_observed() {
  return g_fault.inserts.load(std::memory_order_relaxed);
}

std::uint64_t steals_observed() {
  return g_fault.steals.load(std::memory_order_relaxed);
}

bool tripped() { return g_fault.tripped.load(std::memory_order_relaxed); }

bool on_state_expanded() noexcept {
  if (!g_fault.enabled.load(std::memory_order_acquire)) return false;
  if (static_cast<FaultKind>(g_fault.kind.load(std::memory_order_relaxed)) !=
      FaultKind::kDeadlineAtState) {
    return false;
  }
  const std::uint64_t n =
      g_fault.states.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n >= g_fault.threshold.load(std::memory_order_relaxed)) {
    g_fault.tripped.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool on_store_insert() noexcept {
  if (!g_fault.enabled.load(std::memory_order_acquire)) return false;
  if (static_cast<FaultKind>(g_fault.kind.load(std::memory_order_relaxed)) !=
      FaultKind::kStoreFailAt) {
    return false;
  }
  const std::uint64_t n =
      g_fault.inserts.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n >= g_fault.threshold.load(std::memory_order_relaxed)) {
    g_fault.tripped.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

StealAction on_steal_attempt(std::size_t worker) noexcept {
  if (!g_fault.enabled.load(std::memory_order_acquire)) {
    return StealAction::kProceed;
  }
  const auto kind =
      static_cast<FaultKind>(g_fault.kind.load(std::memory_order_relaxed));
  if (kind != FaultKind::kStealStall && kind != FaultKind::kStealPoison) {
    return StealAction::kProceed;
  }
  const std::size_t target = g_fault.worker.load(std::memory_order_relaxed);
  if (target != kAnyWorker && target != worker) return StealAction::kProceed;
  g_fault.steals.fetch_add(1, std::memory_order_relaxed);
  g_fault.tripped.store(true, std::memory_order_relaxed);
  if (kind == FaultKind::kStealStall) {
    const std::uint32_t micros =
        g_fault.stall_micros.load(std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::microseconds(micros != 0 ? micros : 50));
    return StealAction::kStall;
  }
  return StealAction::kPoison;
}

bool on_accept_connection() noexcept {
  if (!g_fault.enabled.load(std::memory_order_acquire)) return false;
  if (static_cast<FaultKind>(g_fault.kind.load(std::memory_order_relaxed)) !=
      FaultKind::kAcceptFail) {
    return false;
  }
  const std::uint64_t n =
      g_fault.accepts.fetch_add(1, std::memory_order_relaxed) + 1;
  // The FIRST `threshold` accepts fail; later ones proceed, so a test
  // observes both the failure and the recovery on one armed plan.
  if (n <= g_fault.threshold.load(std::memory_order_relaxed)) {
    g_fault.tripped.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

FrameSendAction on_frame_send() noexcept {
  if (!g_fault.enabled.load(std::memory_order_acquire)) {
    return FrameSendAction::kProceed;
  }
  const auto kind =
      static_cast<FaultKind>(g_fault.kind.load(std::memory_order_relaxed));
  if (kind != FaultKind::kMidFrameDisconnect && kind != FaultKind::kSlowLoris) {
    return FrameSendAction::kProceed;
  }
  const std::uint64_t n =
      g_fault.frames.fetch_add(1, std::memory_order_relaxed) + 1;
  // One-shot: exactly the #threshold-th frame is sabotaged, so the
  // connection before and after the fault carries well-formed frames.
  if (n != g_fault.threshold.load(std::memory_order_relaxed)) {
    return FrameSendAction::kProceed;
  }
  g_fault.tripped.store(true, std::memory_order_relaxed);
  return kind == FaultKind::kMidFrameDisconnect ? FrameSendAction::kDisconnect
                                                : FrameSendAction::kStall;
}

std::uint32_t frame_stall_micros() noexcept {
  const std::uint32_t micros =
      g_fault.stall_micros.load(std::memory_order_relaxed);
  return micros != 0 ? micros : 200'000;
}

std::uint64_t accepts_observed() {
  return g_fault.accepts.load(std::memory_order_relaxed);
}

std::uint64_t frames_observed() {
  return g_fault.frames.load(std::memory_order_relaxed);
}

#endif  // EVORD_NO_FAULT_INJECTION

}  // namespace evord::fault
