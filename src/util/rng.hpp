// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// Every randomized component in evord (workload generators, random
// schedulers, SAT instance generators) takes an explicit `Rng&` so that
// experiments are reproducible from a single seed recorded in the bench
// output.
#pragma once

#include <cstdint>
#include <vector>

namespace evord {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
/// reimplemented here.  Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via splitmix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with probability `p`.
  bool chance(double p) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// Picks a uniformly random element index; container must be non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    return v[below(v.size())];
  }

  /// Forks an independent stream (for parallel workers).
  Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace evord
