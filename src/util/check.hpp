// Lightweight precondition / invariant checking for evord.
//
// EVORD_CHECK(cond, msg): always-on check that throws evord::CheckError.
// Used for API preconditions and for validating untrusted inputs (trace
// files, DIMACS files).  Internal invariants that are cheap use the same
// macro; hot-loop invariants use EVORD_DCHECK which compiles away in
// release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace evord {

/// Thrown when a precondition or invariant check fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "evord check failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace evord

#define EVORD_CHECK(cond, msg)                                            \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::evord::detail::check_failed(#cond, __FILE__, __LINE__,            \
                                    (std::ostringstream{} << msg).str()); \
    }                                                                     \
  } while (false)

#ifndef NDEBUG
#define EVORD_DCHECK(cond, msg) EVORD_CHECK(cond, msg)
#else
#define EVORD_DCHECK(cond, msg) \
  do {                          \
  } while (false)
#endif
