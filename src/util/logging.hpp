// Minimal leveled logging.  evord is a library: logging defaults to
// warnings-and-above on stderr, and the host application can raise or
// silence it globally.  No global constructors with observable side
// effects; the sink is a plain function pointer swap.
#pragma once

#include <sstream>
#include <string>

namespace evord {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

using LogSink = void (*)(LogLevel, const std::string& message);

/// Replaces the global log sink; returns the previous sink.
/// Passing nullptr restores the default stderr sink.
LogSink set_log_sink(LogSink sink);

/// Messages below this level are discarded before formatting.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace evord

#define EVORD_LOG(level)                               \
  if (static_cast<int>(level) >=                       \
      static_cast<int>(::evord::log_level()))          \
  ::evord::detail::LogLine(level)

#define EVORD_LOG_DEBUG EVORD_LOG(::evord::LogLevel::kDebug)
#define EVORD_LOG_INFO EVORD_LOG(::evord::LogLevel::kInfo)
#define EVORD_LOG_WARN EVORD_LOG(::evord::LogLevel::kWarn)
#define EVORD_LOG_ERROR EVORD_LOG(::evord::LogLevel::kError)
