// Small string helpers shared by the trace and DIMACS parsers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace evord {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on `sep`, trimming each piece; empty pieces are kept.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on runs of whitespace; empty pieces are dropped.
std::vector<std::string_view> split_ws(std::string_view s);

/// Whole-string integer parse; nullopt on any trailing garbage or overflow.
std::optional<std::int64_t> parse_int(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace evord
