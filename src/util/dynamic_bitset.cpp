#include "util/dynamic_bitset.hpp"

#include <bit>

#include "util/check.hpp"

namespace evord {

namespace {
std::size_t words_for(std::size_t nbits) {
  return (nbits + DynamicBitset::kWordBits - 1) / DynamicBitset::kWordBits;
}
}  // namespace

DynamicBitset::DynamicBitset(std::size_t nbits, bool value)
    : words_(words_for(nbits), value ? ~Word{0} : Word{0}), nbits_(nbits) {
  trim();
}

void DynamicBitset::resize(std::size_t nbits, bool value) {
  const std::size_t old_bits = nbits_;
  words_.resize(words_for(nbits), value ? ~Word{0} : Word{0});
  nbits_ = nbits;
  if (value && nbits > old_bits && old_bits % kWordBits != 0) {
    // The partially used boundary word kept stale zero bits; set them.
    const std::size_t w = old_bits / kWordBits;
    words_[w] |= ~Word{0} << (old_bits % kWordBits);
  }
  trim();
}

void DynamicBitset::set_all() noexcept {
  for (Word& w : words_) w = ~Word{0};
  trim();
}

void DynamicBitset::reset_all() noexcept {
  for (Word& w : words_) w = 0;
}

std::size_t DynamicBitset::count() const noexcept {
  std::size_t n = 0;
  for (Word w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool DynamicBitset::any() const noexcept {
  for (Word w : words_) {
    if (w != 0) return true;
  }
  return false;
}

bool DynamicBitset::all() const noexcept { return count() == nbits_; }

std::size_t DynamicBitset::find_first() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits +
             static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return nbits_;
}

std::size_t DynamicBitset::find_next(std::size_t i) const noexcept {
  ++i;
  if (i >= nbits_) return nbits_;
  std::size_t w = i / kWordBits;
  Word masked = words_[w] & (~Word{0} << (i % kWordBits));
  if (masked != 0) {
    return w * kWordBits + static_cast<std::size_t>(std::countr_zero(masked));
  }
  for (++w; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits +
             static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return nbits_;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& o) {
  EVORD_CHECK(nbits_ == o.nbits_, "bitset size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= o.words_[w];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& o) {
  EVORD_CHECK(nbits_ == o.nbits_, "bitset size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= o.words_[w];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& o) {
  EVORD_CHECK(nbits_ == o.nbits_, "bitset size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= o.words_[w];
  return *this;
}

DynamicBitset& DynamicBitset::subtract(const DynamicBitset& o) {
  EVORD_CHECK(nbits_ == o.nbits_, "bitset size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~o.words_[w];
  return *this;
}

DynamicBitset& DynamicBitset::or_complement(const DynamicBitset& o) {
  EVORD_CHECK(nbits_ == o.nbits_, "bitset size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= ~o.words_[w];
  trim();
  return *this;
}

bool DynamicBitset::operator==(const DynamicBitset& o) const noexcept {
  return nbits_ == o.nbits_ && words_ == o.words_;
}

bool DynamicBitset::intersects(const DynamicBitset& o) const noexcept {
  const std::size_t n = std::min(words_.size(), o.words_.size());
  for (std::size_t w = 0; w < n; ++w) {
    if ((words_[w] & o.words_[w]) != 0) return true;
  }
  return false;
}

bool DynamicBitset::is_subset_of(const DynamicBitset& o) const noexcept {
  if (nbits_ != o.nbits_) return false;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & ~o.words_[w]) != 0) return false;
  }
  return true;
}

std::uint64_t DynamicBitset::hash_words(std::uint64_t seed) const noexcept {
  for (Word w : words_) {
    seed ^= w;
    seed *= 1099511628211ull;  // FNV prime
  }
  return seed;
}

std::string DynamicBitset::to_string() const {
  std::string s;
  s.reserve(nbits_);
  for (std::size_t i = 0; i < nbits_; ++i) s.push_back(test(i) ? '1' : '0');
  return s;
}

void DynamicBitset::trim() noexcept {
  const std::size_t rem = nbits_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= ~Word{0} >> (kWordBits - rem);
  }
}

}  // namespace evord
