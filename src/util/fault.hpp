// Deterministic fault injection for the search core.
//
// A FaultPlan arms exactly one failure at a deterministic point:
//
//   * kDeadlineAtState — the engines' deadline poll reports "expired"
//     once the global expanded-state count reaches the threshold, so a
//     search stops with StopReason::kDeadline at state N regardless of
//     the wall clock.
//   * kStoreFailAt    — the fingerprint/memo store's threshold-th
//     insertion "fails": the store force-exhausts the search's
//     MemoryAccountant, so the engines stop with StopReason::kMemory
//     exactly as if the byte budget had tripped.
//   * kStealStall     — every steal attempt by the targeted worker (or
//     all workers) first sleeps briefly, stressing the termination
//     protocol's idle path without changing any result.
//   * kStealPoison    — every steal attempt by the targeted worker
//     fails (the worker can run only tasks pushed to its own deque).
//     Results must still be bit-identical: the dewey-key merges do not
//     depend on which worker ran which task.
//
// The threshold may be given explicitly or derived from `seed`, and all
// counters are process-global atomics, so a given plan replays the same
// failure point on every run (serial runs are exactly deterministic;
// parallel runs trip at the same global count).
//
// Cost when disarmed: one relaxed atomic load per hook site.  Defining
// EVORD_NO_FAULT_INJECTION compiles every hook down to a constant so
// zero-overhead builds are possible; the default build keeps the hooks
// so one binary serves both testing and production (bench_robust pins
// the disarmed overhead at <= 2%).
//
// Arm/disarm from at most one thread, and not while a search is
// running — tests wrap each searched region in a ScopedFaultPlan.
#pragma once

#include <cstddef>
#include <cstdint>

namespace evord::fault {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kDeadlineAtState,  ///< trip the deadline at expanded state #threshold
  kStoreFailAt,      ///< fail the #threshold-th store insertion
  kStealStall,       ///< stall the targeted worker's steal attempts
  kStealPoison,      ///< make the targeted worker's steals always fail
  // Network fault points (the evord daemon and its client library):
  kAcceptFail,          ///< drop the first #threshold accepted connections
  kMidFrameDisconnect,  ///< sever the #threshold-th frame send mid-frame
  kSlowLoris,           ///< stall the #threshold-th frame send mid-frame
};

const char* to_string(FaultKind kind);

/// All workers (for the steal faults).
inline constexpr std::size_t kAnyWorker = static_cast<std::size_t>(-1);

struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  /// Trip point for kDeadlineAtState / kStoreFailAt.  0 = derive from
  /// `seed` (resolved_threshold()), so seed-only plans replay exactly.
  std::uint64_t threshold = 0;
  /// Target worker id for the steal faults; kAnyWorker targets all.
  std::size_t worker = kAnyWorker;
  /// Replay seed: derives the threshold when it is 0.
  std::uint64_t seed = 0;
  /// Stall duration for kSlowLoris (and an override for kStealStall).
  /// 0 keeps the defaults: 200 ms for kSlowLoris — comfortably past any
  /// realistic daemon idle timeout — and 50 us for kStealStall.
  std::uint32_t stall_micros = 0;

  /// The effective trip point: `threshold`, or a deterministic function
  /// of `seed` in [1, 97] when threshold == 0.
  std::uint64_t resolved_threshold() const;
};

#ifndef EVORD_NO_FAULT_INJECTION

/// True iff a plan is armed (one relaxed load; the fast path everywhere).
bool enabled() noexcept;

/// Arms `plan` and resets all trip counters.  The previous plan (if
/// any) is replaced.
void arm(const FaultPlan& plan);

/// Disarms fault injection; hooks become no-ops again.
void disarm();

/// Counters observed by the armed plan so far (test provenance).
std::uint64_t states_observed();
std::uint64_t inserts_observed();
std::uint64_t steals_observed();
/// True iff the armed plan's trip point has been reached at least once.
bool tripped();

// ---- hook sites (called by the search core) ----

/// Engines call this once per expanded state.  Returns true once a
/// kDeadlineAtState plan's threshold is reached (sticky).
bool on_state_expanded() noexcept;

/// Stores call this once per (attempted) insertion.  Returns true once
/// a kStoreFailAt plan's threshold is reached (sticky) — the caller
/// then exhausts its MemoryAccountant.
bool on_store_insert() noexcept;

/// What a steal attempt should do.
enum class StealAction : std::uint8_t {
  kProceed = 0,
  kStall,   ///< sleep briefly, then proceed
  kPoison,  ///< report the steal as failed
};

/// Schedulers call this before each steal attempt by `worker`.
StealAction on_steal_attempt(std::size_t worker) noexcept;

// ---- network hook sites (called by the daemon / client library) ----

/// The daemon's accept loop calls this once per accepted connection.
/// Returns true while a kAcceptFail plan injects — the caller then drops
/// the connection as if accept(2) itself had failed (first `threshold`
/// accepts fail, later ones proceed, so recovery is exercised too).
bool on_accept_connection() noexcept;

/// What a frame sender should do with the current frame.
enum class FrameSendAction : std::uint8_t {
  kProceed = 0,
  kDisconnect,  ///< write a partial frame, then close the socket
  kStall,       ///< write a partial frame, sleep, then finish it
};

/// Frame writers call this once per outgoing frame.  The #threshold-th
/// frame is sabotaged exactly once per armed plan (kMidFrameDisconnect /
/// kSlowLoris); every other frame proceeds.
FrameSendAction on_frame_send() noexcept;

/// Stall duration an armed kSlowLoris plan asks senders to honour.
std::uint32_t frame_stall_micros() noexcept;

/// Network counters observed by the armed plan (test provenance).
std::uint64_t accepts_observed();
std::uint64_t frames_observed();

#else  // EVORD_NO_FAULT_INJECTION: every hook is a compile-time no-op.

inline bool enabled() noexcept { return false; }
inline void arm(const FaultPlan&) {}
inline void disarm() {}
inline std::uint64_t states_observed() { return 0; }
inline std::uint64_t inserts_observed() { return 0; }
inline std::uint64_t steals_observed() { return 0; }
inline bool tripped() { return false; }
inline bool on_state_expanded() noexcept { return false; }
inline bool on_store_insert() noexcept { return false; }
enum class StealAction : std::uint8_t { kProceed = 0, kStall, kPoison };
inline StealAction on_steal_attempt(std::size_t) noexcept {
  return StealAction::kProceed;
}
inline bool on_accept_connection() noexcept { return false; }
enum class FrameSendAction : std::uint8_t { kProceed = 0, kDisconnect, kStall };
inline FrameSendAction on_frame_send() noexcept {
  return FrameSendAction::kProceed;
}
inline std::uint32_t frame_stall_micros() noexcept { return 0; }
inline std::uint64_t accepts_observed() { return 0; }
inline std::uint64_t frames_observed() { return 0; }

#endif  // EVORD_NO_FAULT_INJECTION

/// RAII arm/disarm for tests: the plan is armed for the scope's
/// lifetime and disarmed (with counters left readable until the next
/// arm) on exit.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan) { arm(plan); }
  ~ScopedFaultPlan() { disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace evord::fault
