#include "util/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace evord {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(trim(s.substr(start)));
      break;
    }
    out.push_back(trim(s.substr(start, pos - start)));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace evord
