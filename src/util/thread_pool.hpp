// A fixed-size work-queue thread pool for simple fork-join parallel_for
// workloads.  The search core no longer runs on it — its parallel mode
// moved to the work-stealing scheduler in search/scheduler.hpp, which
// balances skewed subtrees dynamically — but the pool remains for
// fixed-shape batch work and is the executor behind the evord daemon's
// bounded request queue (src/daemon/daemon.hpp).
//
// Lifecycle: the pool accepts work until shutdown() (or destruction).
// Shutdown is a DRAIN, not an abort — every task already submitted runs
// to completion and its future is satisfied before the workers join; a
// submit() after shutdown fails fast with std::runtime_error instead of
// enqueueing work that would never run (or aborting in a half-destroyed
// pool).  Exceptions a parallel_for cannot rethrow individually are
// counted in one place (suppressed_exceptions()) and the count is
// appended to the one exception that does propagate.
//
// Design follows CP.4 (think in tasks, not threads), CP.20/CP.42 (RAII
// locking, condition-guarded waits) and CP.26 (threads are joined in the
// destructor, never detached).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace evord {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (defaults to hardware concurrency,
  /// minimum 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future delivers its result or exception.
  /// Throws std::runtime_error once the pool is shut down.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      throw_if_stopped_locked();
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs `f(i)` for i in [0, n) across the pool and waits for all of them.
  /// Exceptions from tasks are rethrown (the first one encountered); when
  /// several tasks failed, the rethrown message carries the count of the
  /// eclipsed ones and suppressed_exceptions() grows by it.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f);

  /// Stops accepting work, drains every task already queued, and joins
  /// the workers.  Idempotent; called by the destructor.  Safe to call
  /// while tasks are in flight — they complete normally and their
  /// futures are satisfied.
  void shutdown();

  /// True once shutdown() has begun; submit() fails from then on.
  bool stopped() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

  /// Total task exceptions that could NOT be rethrown to a caller
  /// because another exception from the same parallel_for already was —
  /// the single place the "lost" failure count surfaces.
  std::size_t suppressed_exceptions() const noexcept {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();
  void throw_if_stopped_locked() const;

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> suppressed_{0};
  bool joined_ = false;  ///< workers joined (guarded by mu_)
};

}  // namespace evord
