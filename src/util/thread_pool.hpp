// A fixed-size work-queue thread pool for simple fork-join parallel_for
// workloads.  The search core no longer runs on it — its parallel mode
// moved to the work-stealing scheduler in search/scheduler.hpp, which
// balances skewed subtrees dynamically — but the pool remains for
// fixed-shape batch work.
//
// Design follows CP.4 (think in tasks, not threads), CP.20/CP.42 (RAII
// locking, condition-guarded waits) and CP.26 (threads are joined in the
// destructor, never detached).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace evord {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (defaults to hardware concurrency,
  /// minimum 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future delivers its result or exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs `f(i)` for i in [0, n) across the pool and waits for all of them.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace evord
