// AnalysisSession: the warm, per-trace analysis server the ROADMAP's
// analysis-as-a-service item calls for.
//
// A session binds one registered trace (shared, immutable) to one exact
// configuration and serves every query kind the library offers —
// relations, pair queries, feasibility, coexistence, deadlock, races,
// polynomial baselines, anytime verdicts — through a ResultCache keyed
// on the trace's content fingerprint.  What makes it a service core
// rather than a per-call API:
//
//   * results are computed once and shared: a repeated query is a pure
//     cache hit (zero new states explored — SessionStats::states_explored
//     stays flat, the acceptance signal the tests pin);
//   * warm search state survives across queries: the session keeps a
//     completability memo (make_feasibility_memo) that feasibility and
//     coexistence sweeps share, so a feasibility query after a coexist
//     sweep answers from the root memo hit;
//   * N pair queries coalesce into at most one relations sweep per
//     distinct semantics (query_batch) instead of N;
//   * anytime verdicts are cached WITH the digest of the ladder that
//     produced them: a definitive verdict (proven/refuted) is final and
//     served to every caller, an `unknown` is recomputed — and replaced
//     in the cache — when a caller presents a different (e.g.
//     bigger-budget) ladder;
//   * truncated results are never cached: they are budget- and
//     fault-dependent noise, so caching them would let one starved run
//     poison every later caller;
//   * identical in-flight queries coalesce: the session mutex is
//     RELEASED while an exponential engine runs, and a second thread
//     asking the same question while the first computes WAITS on the
//     in-flight entry and shares the result instead of launching a
//     duplicate sweep (its states_explored contribution is zero);
//   * a warm incremental SAT oracle (ordering/sat_oracle.hpp) is kept
//     per session: query_batch can route pair batches through solver
//     assumptions on the one shared instance (BatchRouting::kOracleFirst),
//     reusing learned clauses across the whole batch, with any pair the
//     oracle leaves unknown falling back to the exact sweep.
//
// Sessions are internally locked (one coarse mutex for bookkeeping);
// the exponential engines themselves parallelize internally via
// ExactOptions::num_threads and run OUTSIDE the session mutex (see the
// coalescing bullet), so concurrent distinct queries overlap.  References
// returned by the baseline accessors stay valid for the session's
// lifetime (write-once members); shared_ptr results stay valid for as
// long as the caller holds them, even across cache eviction.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "approx/combined.hpp"
#include "approx/egp.hpp"
#include "approx/hmw.hpp"
#include "approx/vector_clock.hpp"
#include "feasible/deadlock.hpp"
#include "feasible/schedule_space.hpp"
#include "ordering/exact.hpp"
#include "ordering/sat_oracle.hpp"
#include "race/race_detector.hpp"
#include "resilience/anytime.hpp"
#include "service/result_cache.hpp"
#include "trace/trace.hpp"

namespace evord::service {

/// Digest of every ExactOptions field that can change a result —
/// budgets and thread counts included, since the SearchStats embedded
/// in cached results differ per configuration even when matrices agree.
std::uint64_t digest_options(const ExactOptions& options);

/// One must/could question about one ordered pair.
struct PairQuery {
  RelationKind relation = RelationKind::kMHB;
  EventId a = kNoEvent;
  EventId b = kNoEvent;
  Semantics semantics = Semantics::kCausal;
};

/// The value type cached under QueryKind::kAnytimeVerdict: the verdict
/// plus the digest of the ladder that produced it (upgrade policy — see
/// the file comment).
struct CachedVerdict {
  BoundedVerdict verdict;
  std::uint64_t ladder_digest = 0;
};

struct SessionStats {
  std::uint64_t queries = 0;       ///< public query calls served
  std::uint64_t cache_hits = 0;    ///< answered from the result cache
  std::uint64_t computations = 0;  ///< results actually computed
  std::uint64_t sweeps = 0;        ///< exponential searches among those
  /// Search-core states expanded by this session's computations, summed
  /// across all sweeps.  Flat across repeated queries — the "pure cache
  /// hit" acceptance signal.
  std::uint64_t states_explored = 0;
  std::uint64_t batched_pairs = 0;  ///< pair queries served via query_batch
  /// Queries that found an identical computation already in flight and
  /// waited for its result instead of recomputing (cross-thread
  /// coalescing; such a wait also counts as a cache_hit once served).
  std::uint64_t coalesced = 0;
  std::uint64_t oracle_pairs = 0;    ///< batch pairs offered to the oracle
  std::uint64_t oracle_decided = 0;  ///< ... settled without an exact sweep
  // ---- robustness counters (filled by the daemon front end via the
  // note_* methods, so per-trace overload behaviour surfaces in the
  // same stats block the functional counters live in; a shed/rejected
  // bounce is attributed only when the bounced request named a trace
  // with an already-built session — earlier bounces are counted
  // daemon-wide in DaemonStats only) ----
  std::uint64_t shed = 0;      ///< queries shed at an overload watermark
  std::uint64_t rejected = 0;  ///< queries bounced by a tenant quota
  /// Deadline-armed queries whose ladder truncated — the client got a
  /// sound degraded BoundedVerdict instead of a timeout error.
  std::uint64_t deadline_degraded = 0;
  /// SAT-oracle circuit-breaker trips (repeated conflict-budget
  /// exhaustion disabled the portfolio rung for this trace).
  std::uint64_t breaker_trips = 0;
};

/// How query_batch executes its pairs.
enum class BatchRouting : std::uint8_t {
  /// One cached relations sweep per distinct semantics, then bit reads
  /// (the historic — and default — path; exact-complete answers).
  kExactSweep = 0,
  /// Route every pair through the session's warm incremental SAT oracle
  /// first (one assumption-based solve per undecided pair, learned
  /// clauses shared across the batch); pairs the oracle cannot settle
  /// fall back to the exact sweep, so answers are identical to
  /// kExactSweep whenever the exact engine completes.
  kOracleFirst = 1,
};

class AnalysisSession {
 public:
  /// `trace` must be non-null and axiom-valid (checked, CheckError).
  /// `cache` == nullptr gives the session a private cache with the
  /// default budget; pass TraceRegistry's to share across sessions.
  explicit AnalysisSession(std::shared_ptr<const Trace> trace,
                           ExactOptions options = {},
                           std::shared_ptr<ResultCache> cache = nullptr);
  ~AnalysisSession();

  AnalysisSession(const AnalysisSession&) = delete;
  AnalysisSession& operator=(const AnalysisSession&) = delete;

  const Trace& trace() const { return *trace_; }
  const std::shared_ptr<const Trace>& trace_ptr() const { return trace_; }
  std::uint64_t fingerprint() const { return fingerprint_; }
  const ExactOptions& options() const { return options_; }
  std::uint64_t options_digest() const { return options_digest_; }
  const std::shared_ptr<ResultCache>& cache() const { return cache_; }
  SessionStats stats() const;

  // ----- exact queries (cached through the ResultCache) -----------------
  std::shared_ptr<const OrderingRelations> relations(
      Semantics semantics = Semantics::kCausal);
  /// One Table-1 pair answer via the (cached) relations sweep.
  bool pair_query(const PairQuery& query);
  /// Batched pair execution.  kExactSweep: N queries cost at most one
  /// relations sweep per DISTINCT semantics among them (at most three),
  /// every further answer being a bit read.  kOracleFirst: pairs go
  /// through the session's warm SAT oracle (shared incremental solver)
  /// and only oracle-unknown pairs pay for a sweep.
  std::vector<bool> query_batch(const std::vector<PairQuery>& queries,
                                BatchRouting routing = BatchRouting::kExactSweep);

  /// The session's warm SAT-backed ordering oracle, built lazily on
  /// first use (one CNF encode + one incremental solver per session,
  /// shared by all three semantics).  Concurrent use of the returned
  /// reference must be externally synchronized; query_batch serializes
  /// its own oracle access internally.
  SatOracle& sat_oracle();

  /// F(P) != empty-set with provenance (verdict-only sweep; shares the
  /// session's warm completability memo with coexistence()).
  std::shared_ptr<const CanPrecedeResult> feasibility();
  bool feasible();

  /// The coexistence sweep (can_coexist built) and its pair reading.
  std::shared_ptr<const CanPrecedeResult> coexistence();
  bool could_have_coexisted(EventId a, EventId b);

  std::shared_ptr<const DeadlockReport> deadlocks();

  /// Cached per detector (the historic OrderingAnalyzer::races()
  /// recomputed the analysis every call).  kExact additionally SHARES
  /// its sweep with relations(): the race-semantics relations are
  /// obtained through the relations cache (one exponential sweep, hit
  /// when the session's own options already use race semantics) and the
  /// report is derived from their CCW matrix by pure bit reads; a
  /// truncated sweep yields a truncated — and therefore never-cached —
  /// report.
  std::shared_ptr<const RaceReport> races(
      RaceDetector detector = RaceDetector::kExact);

  // ----- polynomial baselines (session-local, write-once) ---------------
  const VectorClockResult& vector_clocks();
  const HmwResult& hmw();
  const EgpResult& egp();
  const CombinedResult& combined();

  // ----- resource-governed anytime queries ------------------------------
  /// The session's AnytimeQuery, built lazily (default ladder when
  /// `ladder` is empty) and REUSED when the requested ladder equals the
  /// current one — rebuilding on an equal ladder was the historic bug
  /// that threw away every cached ladder run.
  AnytimeQuery& anytime(const std::vector<QueryBudget>& ladder = {});
  BoundedVerdict anytime_must_have_happened_before(
      EventId a, EventId b, Semantics semantics = Semantics::kCausal,
      const std::vector<QueryBudget>& ladder = {});
  BoundedVerdict anytime_could_have_been_concurrent(
      EventId a, EventId b, const std::vector<QueryBudget>& ladder = {});
  BoundedVerdict anytime_can_deadlock(
      const std::vector<QueryBudget>& ladder = {});

  // ----- robustness hooks (the daemon front end) -------------------------
  /// Enables / disables the SAT-oracle portfolio rung for this session's
  /// anytime queries.  The circuit breaker calls this with `false` after
  /// repeated conflict-budget exhaustions on one trace; the flag is part
  /// of the cached-verdict digest, so an `unknown` computed WITH the
  /// oracle is recomputed (oracle-free) after a trip rather than served
  /// stale.  Counts a breaker trip on every enabled -> disabled edge.
  void set_use_sat_oracle(bool enabled);
  bool use_sat_oracle() const;
  /// Overload / quota / degradation accounting (see SessionStats).
  void note_shed();
  void note_rejected();
  void note_deadline_degraded();

 private:
  /// One computation another caller may be waiting on.  Lives in
  /// in_flight_ (guarded by mu_) from the moment a thread claims a miss
  /// until it publishes; `result` == nullptr after `done` means the
  /// computing thread failed and waiters must retry.
  struct InFlight {
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const void> result;
  };

  CacheKey make_key(QueryKind kind, std::uint8_t semantics,
                    std::uint64_t extra) const;
  ScheduleSpaceOptions space_options(bool build_coexist) const;
  /// Requires memo_mu_ (NOT mu_): the warm completability memo is read
  /// and filled by sweeps running outside the session mutex.
  search::FingerprintBoolMap* warm_memo_locked(
      const ScheduleSpaceOptions& options);
  /// Requires oracle_mu_: lazily builds the session oracle.
  SatOracle& oracle_locked();

  /// The coalesced compute-once path: cache lookup, wait-and-share when
  /// an identical computation is in flight, else claim the key, RELEASE
  /// mu_ (via `lock`), run `compute` unlocked — serialized on memo_mu_
  /// when it touches the shared warm memo — then relock, account stats,
  /// cache (unless truncated) and wake the waiters.  `counts_sweep`
  /// feeds SessionStats::sweeps.  T must expose .search.states_visited,
  /// .truncated and .approx_bytes() (all four engine result types do).
  /// `counts_states` = false for results DERIVED from another cached
  /// result (they embed the source's SearchStats, which the source's
  /// computation already charged to states_explored).
  template <class T, class Compute>
  std::shared_ptr<const T> coalesced_query(
      std::unique_lock<std::mutex>& lock, const CacheKey& key,
      bool serialize_memo, bool counts_sweep, Compute&& compute,
      bool counts_states = true);

  std::shared_ptr<const OrderingRelations> relations_coalesced(
      std::unique_lock<std::mutex>& lock, Semantics semantics);
  std::shared_ptr<const CanPrecedeResult> feasibility_coalesced(
      std::unique_lock<std::mutex>& lock);
  std::shared_ptr<const CanPrecedeResult> coexistence_coalesced(
      std::unique_lock<std::mutex>& lock);
  AnytimeQuery& anytime_locked(const std::vector<QueryBudget>& ladder);
  BoundedVerdict anytime_verdict_locked(
      std::uint8_t which, EventId a, EventId b, Semantics semantics,
      const std::vector<QueryBudget>& ladder);

  std::shared_ptr<const Trace> trace_;
  ExactOptions options_;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t options_digest_ = 0;
  std::shared_ptr<ResultCache> cache_;

  mutable std::mutex mu_;
  SessionStats stats_;
  /// Computations currently running outside mu_, keyed like the cache.
  std::unordered_map<CacheKey, std::shared_ptr<InFlight>, CacheKeyHash>
      in_flight_;
  /// Serializes the sweeps that share warm_memo_ (the memo is not
  /// thread-safe); ordering: memo_mu_ may be held while taking mu_,
  /// never the reverse.
  std::mutex memo_mu_;
  /// Warm completability memo shared by feasibility/coexistence sweeps
  /// (ScheduleSpaceOptions::warm_memo contract).  Guarded by memo_mu_.
  std::unique_ptr<search::FingerprintBoolMap> warm_memo_;
  /// Guards lazy construction and batch use of the session oracle;
  /// never held together with mu_.
  std::mutex oracle_mu_;
  std::unique_ptr<SatOracle> oracle_;
  std::optional<VectorClockResult> vc_;
  std::optional<HmwResult> hmw_;
  std::optional<EgpResult> egp_;
  std::optional<CombinedResult> combined_;
  std::optional<AnytimeQuery> anytime_;
  /// SAT-oracle portfolio switch for anytime queries (guarded by mu_);
  /// flipped to false by a circuit-breaker trip.
  bool use_sat_oracle_ = true;
};

}  // namespace evord::service
