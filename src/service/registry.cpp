#include "service/registry.hpp"

#include <utility>

#include "util/check.hpp"

namespace evord::service {

namespace {

/// Cheap structural cross-check on a fingerprint dedup hit: compares the
/// semantics-relevant invariants the fingerprint hashes (not names or
/// labels).  A mismatch means a 64-bit collision between genuinely
/// different traces — aliasing their analyses would be silent
/// corruption, so it throws instead.
bool structurally_equal(const Trace& a, const Trace& b) {
  if (a.num_events() != b.num_events()) return false;
  if (a.num_processes() != b.num_processes()) return false;
  if (a.observed_order() != b.observed_order()) return false;
  if (a.dependences() != b.dependences()) return false;
  for (std::size_t i = 0; i < a.num_events(); ++i) {
    const Event& ea = a.event(static_cast<EventId>(i));
    const Event& eb = b.event(static_cast<EventId>(i));
    if (ea.process != eb.process || ea.kind != eb.kind ||
        ea.object != eb.object || ea.reads != eb.reads ||
        ea.writes != eb.writes) {
      return false;
    }
  }
  return true;
}

}  // namespace

TraceRegistry::TraceRegistry(std::shared_ptr<ResultCache> cache,
                             std::uint64_t cache_budget_bytes)
    : cache_(std::move(cache)) {
  if (cache_ == nullptr) {
    cache_ = std::make_shared<ResultCache>(cache_budget_bytes);
  }
}

std::shared_ptr<const Trace> TraceRegistry::register_locked(
    std::shared_ptr<const Trace> trace) {
  EVORD_CHECK(trace != nullptr, "TraceRegistry needs a trace");
  ++stats_.traces_registered;
  const std::uint64_t fingerprint = trace->fingerprint();
  const auto it = traces_.find(fingerprint);
  if (it != traces_.end()) {
    EVORD_CHECK(structurally_equal(*it->second, *trace),
                "trace fingerprint collision: two structurally different "
                "traces hash to "
                    << fingerprint);
    ++stats_.trace_dedup_hits;
    return it->second;
  }
  traces_.emplace(fingerprint, trace);
  return trace;
}

std::shared_ptr<const Trace> TraceRegistry::register_trace(Trace trace) {
  return register_trace(
      std::make_shared<const Trace>(std::move(trace)));
}

std::shared_ptr<const Trace> TraceRegistry::register_trace(
    std::shared_ptr<const Trace> trace) {
  std::lock_guard<std::mutex> lock(mu_);
  return register_locked(std::move(trace));
}

std::shared_ptr<AnalysisSession> TraceRegistry::session(
    Trace trace, ExactOptions options) {
  return session(std::make_shared<const Trace>(std::move(trace)), options);
}

std::shared_ptr<AnalysisSession> TraceRegistry::session(
    std::shared_ptr<const Trace> trace, ExactOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const Trace> canonical = register_locked(std::move(trace));
  ++stats_.sessions_requested;
  const SessionKey key{canonical->fingerprint(), digest_options(options)};
  const auto it = sessions_.find(key);
  if (it != sessions_.end()) {
    ++stats_.session_hits;
    return it->second;
  }
  auto created = std::make_shared<AnalysisSession>(std::move(canonical),
                                                   options, cache_);
  sessions_.emplace(key, created);
  return created;
}

std::shared_ptr<const Trace> TraceRegistry::find(
    std::uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = traces_.find(fingerprint);
  return it == traces_.end() ? nullptr : it->second;
}

std::shared_ptr<AnalysisSession> TraceRegistry::find_session(
    std::uint64_t fingerprint, ExactOptions options) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it =
      sessions_.find(SessionKey{fingerprint, digest_options(options)});
  return it == sessions_.end() ? nullptr : it->second;
}

std::size_t TraceRegistry::num_traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

std::size_t TraceRegistry::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

RegistryStats TraceRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace evord::service
