// Cross-query result cache for the analysis service core.
//
// Theorems 1-4 make every exact answer exponential-cost in the worst
// case, so a service that expects millions of overlapping queries
// (ROADMAP north star) must never pay for the same answer twice.  The
// ResultCache maps
//
//     trace fingerprint × query kind × semantics × options digest
//
// to an immutable, shared, type-erased result (OrderingRelations,
// CanPrecedeResult, DeadlockReport, RaceReport, cached anytime
// verdicts...).  Every entry charges its approximate resident bytes to
// a per-cache MemoryAccountant (search/memory.hpp) and the cache evicts
// least-recently-used entries until it is back under budget, so it
// degrades instead of growing unboundedly — exactly the admission
// contract the search core itself follows.  Evicted results stay alive
// for whoever still holds their shared_ptr (sessions pin what they
// hand out); a later query for an evicted key simply recomputes.
//
// Type safety is by key construction, not by RTTI: a QueryKind is
// written by exactly one value type (AnalysisSession is the only
// writer), so get<T>() with the matching T is an invariant of the
// service layer, documented per kind below.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "ordering/relations.hpp"
#include "search/memory.hpp"
#include "util/hash.hpp"

namespace evord::service {

/// What a cache entry answers.  The value type per kind:
///   kRelations      -> OrderingRelations       (exact Table-1 matrices)
///   kFeasible       -> CanPrecedeResult        (verdict-only, no matrices)
///   kCoexist        -> CanPrecedeResult        (with can_coexist built)
///   kDeadlock       -> DeadlockReport
///   kRaces          -> RaceReport              (detector folded into digest)
///   kAnytimeVerdict -> CachedVerdict (session.hpp; pair + ladder folded
///                      into digest, upgradeable in place)
enum class QueryKind : std::uint8_t {
  kRelations = 0,
  kFeasible = 1,
  kCoexist = 2,
  kDeadlock = 3,
  kRaces = 4,
  kAnytimeVerdict = 5,
};

const char* to_string(QueryKind kind);

struct CacheKey {
  /// Semantics byte for entries a semantics does not apply to.
  static constexpr std::uint8_t kNoSemantics = 0xff;

  std::uint64_t trace_fingerprint = 0;
  QueryKind kind = QueryKind::kRelations;
  std::uint8_t semantics = kNoSemantics;
  /// Digest of every option that can change the cached result —
  /// including budgets and thread counts, since the embedded SearchStats
  /// differ per configuration even when the matrices agree.
  std::uint64_t options_digest = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const noexcept {
    return static_cast<std::size_t>(hash_mix(
        (static_cast<std::uint64_t>(key.kind) << 8) | key.semantics,
        key.trace_fingerprint, key.options_digest));
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes = 0;    ///< currently charged
  std::size_t entries = 0;    ///< currently resident
  double hit_ratio() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class ResultCache {
 public:
  static constexpr std::uint64_t kDefaultBudgetBytes = 256ull << 20;

  /// `max_bytes` == 0 means unlimited (entries are still charged so
  /// stats report the footprint).
  explicit ResultCache(std::uint64_t max_bytes = kDefaultBudgetBytes)
      : accountant_(max_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Typed lookup; nullptr on miss.  T must be the kind's value type
  /// (see QueryKind).  A hit moves the entry to most-recently-used.
  template <class T>
  std::shared_ptr<const T> get(const CacheKey& key) {
    return std::static_pointer_cast<const T>(get_erased(key));
  }

  /// Inserts (or replaces) `key`, charging `approx_bytes`, then evicts
  /// LRU entries until back under budget.  Returns the stored pointer —
  /// valid for the caller even if the entry was immediately evicted
  /// (e.g. a single result bigger than the whole budget).
  template <class T>
  std::shared_ptr<const T> put(const CacheKey& key, T value,
                               std::uint64_t approx_bytes) {
    auto stored = std::make_shared<const T>(std::move(value));
    put_erased(key, stored, approx_bytes);
    return stored;
  }

  /// Drops one entry if present (anytime-verdict upgrades).
  void erase(const CacheKey& key);
  /// Drops everything (ops / test hook).
  void clear();

  /// Resizes the byte budget (0 = unlimited) and evicts down to it.
  void set_budget_bytes(std::uint64_t max_bytes);
  std::uint64_t budget_bytes() const { return accountant_.limit(); }

  /// Bytes currently charged by resident entries.
  std::uint64_t bytes() const { return accountant_.bytes(); }

  CacheStats stats() const;

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const void> value;
    std::uint64_t bytes = 0;
  };
  /// Bookkeeping overhead charged per entry on top of the payload.
  static constexpr std::uint64_t kEntryOverheadBytes = 96;

  std::shared_ptr<const void> get_erased(const CacheKey& key);
  void put_erased(const CacheKey& key, std::shared_ptr<const void> value,
                  std::uint64_t approx_bytes);
  void evict_to_budget_locked();
  void evict_one_locked();

  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
      index_;
  search::MemoryAccountant accountant_;
  CacheStats stats_;
};

}  // namespace evord::service
