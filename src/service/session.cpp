#include "service/session.hpp"

#include <array>
#include <cstring>
#include <utility>

#include "search/fingerprint_set.hpp"
#include "trace/axioms.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace evord::service {

namespace {

/// Distinct salts per digest component / per derived cache key.
constexpr std::uint64_t kOptionsSalt = 0x0975;
constexpr std::uint64_t kRaceSalt = 0x7ace;
constexpr std::uint64_t kVerdictSalt = 0xa17e;

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

std::uint64_t verdict_approx_bytes(const CachedVerdict& cached) {
  std::uint64_t bytes = sizeof(CachedVerdict) +
                        cached.verdict.provenance.engine.capacity();
  if (cached.verdict.witness.has_value()) {
    bytes += cached.verdict.witness->capacity() * sizeof(EventId);
  }
  return bytes;
}

}  // namespace

std::uint64_t digest_options(const ExactOptions& o) {
  std::uint64_t h = hash_mix(kOptionsSalt, o.respect_dependences,
                             o.causal_data_edges);
  h = hash_mix(0x01, h, o.max_schedules);
  h = hash_mix(0x02, h, o.class_dedup);
  h = hash_mix(0x03, h, static_cast<std::uint64_t>(o.reduction));
  h = hash_mix(0x04, h, o.max_states);
  h = hash_mix(0x05, h, double_bits(o.time_budget_seconds));
  h = hash_mix(0x06, h, o.max_memory_bytes);
  h = hash_mix(0x07, h, o.spill);
  h = hash_mix(0x08, h, o.num_threads);
  h = hash_mix(0x09, h, o.steal.grain);
  h = hash_mix(0x0a, h, o.steal.max_split_depth);
  h = hash_mix(0x0b, h, o.steal.seed);
  return h;
}

AnalysisSession::AnalysisSession(std::shared_ptr<const Trace> trace,
                                 ExactOptions options,
                                 std::shared_ptr<ResultCache> cache)
    : trace_(std::move(trace)),
      options_(options),
      cache_(std::move(cache)) {
  EVORD_CHECK(trace_ != nullptr, "AnalysisSession needs a trace");
  const AxiomReport axioms = validate_axioms(*trace_);
  EVORD_CHECK(axioms.ok(),
              "trace violates model axioms:\n" << axioms.text());
  fingerprint_ = trace_->fingerprint();
  options_digest_ = digest_options(options_);
  if (cache_ == nullptr) cache_ = std::make_shared<ResultCache>();
}

AnalysisSession::~AnalysisSession() = default;

SessionStats AnalysisSession::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

CacheKey AnalysisSession::make_key(QueryKind kind, std::uint8_t semantics,
                                   std::uint64_t extra) const {
  CacheKey key;
  key.trace_fingerprint = fingerprint_;
  key.kind = kind;
  key.semantics = semantics;
  key.options_digest =
      extra == 0 ? options_digest_
                 : hash_mix(static_cast<std::uint64_t>(kind),
                            options_digest_, extra);
  return key;
}

ScheduleSpaceOptions AnalysisSession::space_options(
    bool build_coexist) const {
  // The exact field mapping OrderingAnalyzer has always used for its
  // deadlock / coexistence searches, preserved verbatim so the analyzer
  // refactored onto this session stays test-visibly identical.
  ScheduleSpaceOptions options;
  options.stepper.respect_dependences = options_.respect_dependences;
  options.max_states = options_.max_states;
  options.time_budget_seconds = options_.time_budget_seconds;
  options.num_threads = options_.num_threads;
  options.steal = options_.steal;
  options.build_coexist = build_coexist;
  return options;
}

search::FingerprintBoolMap* AnalysisSession::warm_memo_locked(
    const ScheduleSpaceOptions& options) {
  if (warm_memo_ == nullptr) {
    warm_memo_ = make_feasibility_memo(*trace_, options);
  }
  return warm_memo_.get();
}

SatOracle& AnalysisSession::oracle_locked() {
  if (oracle_ == nullptr) {
    SatOracleOptions options;
    options.respect_dependences = options_.respect_dependences;
    options.causal_data_edges = options_.causal_data_edges;
    oracle_ = std::make_unique<SatOracle>(*trace_, options);
  }
  return *oracle_;
}

SatOracle& AnalysisSession::sat_oracle() {
  std::lock_guard<std::mutex> lock(oracle_mu_);
  return oracle_locked();
}

// ----- the coalesced compute-once path --------------------------------

template <class T, class Compute>
std::shared_ptr<const T> AnalysisSession::coalesced_query(
    std::unique_lock<std::mutex>& lock, const CacheKey& key,
    bool serialize_memo, bool counts_sweep, Compute&& compute,
    bool counts_states) {
  for (;;) {
    if (auto hit = cache_->get<T>(key)) {
      ++stats_.cache_hits;
      return hit;
    }
    auto it = in_flight_.find(key);
    if (it == in_flight_.end()) break;
    // Someone is computing this very answer right now: wait on their
    // entry and share it.  A null result after `done` means they threw;
    // loop back and compute (or wait on a newer claimant) ourselves.
    std::shared_ptr<InFlight> flight = it->second;
    ++stats_.coalesced;
    flight->cv.wait(lock, [&] { return flight->done; });
    if (flight->result != nullptr) {
      ++stats_.cache_hits;
      return std::static_pointer_cast<const T>(flight->result);
    }
  }
  auto flight = std::make_shared<InFlight>();
  in_flight_.emplace(key, flight);
  lock.unlock();
  std::shared_ptr<const T> stored;
  try {
    std::unique_lock<std::mutex> memo_lock(memo_mu_, std::defer_lock);
    if (serialize_memo) memo_lock.lock();
    T result = compute();
    if (memo_lock.owns_lock()) memo_lock.unlock();
    lock.lock();
    ++stats_.computations;
    if (counts_sweep) ++stats_.sweeps;
    if (counts_states) stats_.states_explored += result.search.states_visited;
    const std::uint64_t bytes = result.approx_bytes();
    if (result.truncated) {
      // Never cached (budget-dependent noise), but still shared with the
      // threads that coalesced onto this computation.
      stored = std::make_shared<const T>(std::move(result));
    } else {
      stored = cache_->put(key, std::move(result), bytes);
    }
  } catch (...) {
    if (!lock.owns_lock()) lock.lock();
    in_flight_.erase(key);
    flight->done = true;  // null result: waiters retry
    flight->cv.notify_all();
    throw;
  }
  in_flight_.erase(key);
  flight->done = true;
  flight->result = std::static_pointer_cast<const void>(stored);
  flight->cv.notify_all();
  return stored;
}

// ----- relations / pair queries ---------------------------------------

std::shared_ptr<const OrderingRelations> AnalysisSession::relations_coalesced(
    std::unique_lock<std::mutex>& lock, Semantics semantics) {
  const CacheKey key = make_key(QueryKind::kRelations,
                                static_cast<std::uint8_t>(semantics), 0);
  return coalesced_query<OrderingRelations>(
      lock, key, /*serialize_memo=*/false, /*counts_sweep=*/true,
      [&] { return compute_exact(*trace_, semantics, options_); });
}

std::shared_ptr<const OrderingRelations> AnalysisSession::relations(
    Semantics semantics) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.queries;
  return relations_coalesced(lock, semantics);
}

bool AnalysisSession::pair_query(const PairQuery& query) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.queries;
  return relations_coalesced(lock, query.semantics)
      ->holds(query.relation, query.a, query.b);
}

std::vector<bool> AnalysisSession::query_batch(
    const std::vector<PairQuery>& queries, BatchRouting routing) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.queries;
  stats_.batched_pairs += queries.size();
  std::vector<bool> answers(queries.size());
  // Indices still unanswered after (optional) oracle routing.
  std::vector<std::size_t> pending;
  if (routing == BatchRouting::kOracleFirst) {
    std::uint64_t offered = 0;
    std::uint64_t decided = 0;
    lock.unlock();
    {
      std::lock_guard<std::mutex> oracle_guard(oracle_mu_);
      SatOracle& oracle = oracle_locked();
      for (std::size_t i = 0; i < queries.size(); ++i) {
        const PairQuery& q = queries[i];
        if (!oracle.available()) {
          pending.push_back(i);
          continue;
        }
        ++offered;
        const OracleVerdict v =
            oracle.query(q.relation, q.a, q.b, q.semantics);
        if (v == OracleVerdict::kUnknown) {
          pending.push_back(i);
        } else {
          ++decided;
          answers[i] = v == OracleVerdict::kProven;
        }
      }
    }
    lock.lock();
    stats_.oracle_pairs += offered;
    stats_.oracle_decided += decided;
  } else {
    pending.resize(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) pending[i] = i;
  }
  // One sweep per DISTINCT semantics among the remaining pairs (at most
  // three); every answer after that is a bit read out of the shared
  // matrices.
  std::array<std::shared_ptr<const OrderingRelations>, 3> per_semantics;
  for (const std::size_t i : pending) {
    const PairQuery& q = queries[i];
    auto& rel = per_semantics[static_cast<std::size_t>(q.semantics)];
    if (rel == nullptr) rel = relations_coalesced(lock, q.semantics);
    answers[i] = rel->holds(q.relation, q.a, q.b);
  }
  return answers;
}

// ----- feasibility / coexistence --------------------------------------

std::shared_ptr<const CanPrecedeResult> AnalysisSession::feasibility_coalesced(
    std::unique_lock<std::mutex>& lock) {
  const CacheKey key =
      make_key(QueryKind::kFeasible, CacheKey::kNoSemantics, 0);
  return coalesced_query<CanPrecedeResult>(
      lock, key, /*serialize_memo=*/true, /*counts_sweep=*/true, [&] {
        ScheduleSpaceOptions options = space_options(/*build_coexist=*/false);
        options.warm_memo = warm_memo_locked(options);
        return compute_feasibility(*trace_, options);
      });
}

std::shared_ptr<const CanPrecedeResult> AnalysisSession::feasibility() {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.queries;
  return feasibility_coalesced(lock);
}

bool AnalysisSession::feasible() {
  return feasibility()->feasible_nonempty;
}

std::shared_ptr<const CanPrecedeResult> AnalysisSession::coexistence_coalesced(
    std::unique_lock<std::mutex>& lock) {
  const CacheKey key =
      make_key(QueryKind::kCoexist, CacheKey::kNoSemantics, 0);
  return coalesced_query<CanPrecedeResult>(
      lock, key, /*serialize_memo=*/true, /*counts_sweep=*/true, [&] {
        ScheduleSpaceOptions options = space_options(/*build_coexist=*/true);
        // The warm memo only engages while still empty (matrix sweeps
        // must mark every expanded child); if this sweep is the one that
        // fills it, later feasibility queries answer from the root memo
        // hit.
        options.warm_memo = warm_memo_locked(options);
        return compute_can_precede(*trace_, options);
      });
}

std::shared_ptr<const CanPrecedeResult> AnalysisSession::coexistence() {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.queries;
  return coexistence_coalesced(lock);
}

bool AnalysisSession::could_have_coexisted(EventId a, EventId b) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.queries;
  return coexistence_coalesced(lock)->can_coexist[a].test(b);
}

// ----- deadlocks ------------------------------------------------------

std::shared_ptr<const DeadlockReport> AnalysisSession::deadlocks() {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.queries;
  const CacheKey key =
      make_key(QueryKind::kDeadlock, CacheKey::kNoSemantics, 0);
  return coalesced_query<DeadlockReport>(
      lock, key, /*serialize_memo=*/false, /*counts_sweep=*/true, [&] {
        // Same field mapping OrderingAnalyzer::deadlocks() has always
        // used.
        DeadlockOptions options;
        options.stepper.respect_dependences = options_.respect_dependences;
        options.max_states = options_.max_states;
        options.time_budget_seconds = options_.time_budget_seconds;
        options.num_threads = options_.num_threads;
        options.steal = options_.steal;
        // The active ReductionMode is part of the options digest (salt
        // 0x03 in digest_options), so it MUST also drive the
        // computation: otherwise two sessions differing only in
        // `reduction` would cache entries under distinct keys yet hold
        // reports computed under the same (default) mode — or worse, a
        // report whose SearchStats silently disagree with the key's
        // claim.
        options.reduction = options_.reduction;
        return analyze_deadlocks(*trace_, options);
      });
}

// ----- races ----------------------------------------------------------

std::shared_ptr<const RaceReport> AnalysisSession::races(
    RaceDetector detector) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.queries;
  const CacheKey key =
      make_key(QueryKind::kRaces, CacheKey::kNoSemantics,
               hash_mix(kRaceSalt, static_cast<std::uint64_t>(detector), 0));
  if (detector == RaceDetector::kExact) {
    // Share the sweep with relations(): exact races are bit reads over
    // the race-semantics CCW matrix, so the report's compute path
    // obtains those relations THROUGH the relations cache.  When the
    // session's own options already use race semantics
    // (causal_data_edges = false) that inner key IS the relations() key
    // and the two queries cost ONE sweep between them; otherwise the
    // race-semantics relations get their own cached entry, computed
    // once however many times races() is called.  The derived report
    // embeds the relations' SearchStats verbatim (counts_states = false
    // keeps states_explored single-counted), and a truncated sweep
    // makes a truncated — never cached — report, so the next caller
    // re-derives from a possibly-by-then-complete sweep.
    return coalesced_query<RaceReport>(
        lock, key, /*serialize_memo=*/false, /*counts_sweep=*/false,
        [&] {
          // Runs with mu_ RELEASED (coalesced_query's contract), so the
          // nested relations lookup takes it afresh — itself coalesced,
          // and dropped again before the derivation's bit reads.
          ExactOptions race_options = options_;
          race_options.causal_data_edges = false;
          CacheKey rel_key;
          rel_key.trace_fingerprint = fingerprint_;
          rel_key.kind = QueryKind::kRelations;
          rel_key.semantics = static_cast<std::uint8_t>(Semantics::kCausal);
          rel_key.options_digest = digest_options(race_options);
          std::unique_lock<std::mutex> inner(mu_);
          auto rel = coalesced_query<OrderingRelations>(
              inner, rel_key, /*serialize_memo=*/false,
              /*counts_sweep=*/true, [&] {
                return compute_exact(*trace_, Semantics::kCausal,
                                     race_options);
              });
          inner.unlock();
          return races_from_relations(*trace_, *rel);
        },
        /*counts_states=*/false);
  }
  return coalesced_query<RaceReport>(
      lock, key, /*serialize_memo=*/false, /*counts_sweep=*/false,
      [&] { return detect_races(*trace_, detector, options_); });
}

// ----- polynomial baselines -------------------------------------------

const VectorClockResult& AnalysisSession::vector_clocks() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!vc_.has_value()) vc_ = compute_vector_clocks(*trace_);
  return *vc_;
}

const HmwResult& AnalysisSession::hmw() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!hmw_.has_value()) hmw_ = compute_hmw(*trace_);
  return *hmw_;
}

const EgpResult& AnalysisSession::egp() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!egp_.has_value()) egp_ = compute_egp(*trace_);
  return *egp_;
}

const CombinedResult& AnalysisSession::combined() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!combined_.has_value()) combined_ = compute_combined(*trace_);
  return *combined_;
}

// ----- anytime --------------------------------------------------------

AnytimeQuery& AnalysisSession::anytime_locked(
    const std::vector<QueryBudget>& ladder) {
  // Reuse whenever possible: an empty ladder keeps whatever exists, an
  // equal ladder keeps the object AND its cached ladder runs (the
  // historic analyzer rebuilt on every non-empty ladder, equal or not,
  // throwing the cached runs away).  A flipped oracle switch (circuit
  // breaker) rebuilds too — the portfolio setting lives inside the
  // query object.
  if (!anytime_.has_value() ||
      (!ladder.empty() && anytime_->options().ladder != ladder) ||
      anytime_->options().use_sat_oracle != use_sat_oracle_) {
    AnytimeOptions options;
    options.ladder = ladder;  // empty -> AnytimeQuery fills the default
    options.exact = options_;
    options.use_sat_oracle = use_sat_oracle_;
    anytime_.emplace(*trace_, std::move(options));
  }
  return *anytime_;
}

AnytimeQuery& AnalysisSession::anytime(
    const std::vector<QueryBudget>& ladder) {
  std::lock_guard<std::mutex> lock(mu_);
  return anytime_locked(ladder);
}

BoundedVerdict AnalysisSession::anytime_verdict_locked(
    std::uint8_t which, EventId a, EventId b, Semantics semantics,
    const std::vector<QueryBudget>& ladder) {
  ++stats_.queries;
  static const std::vector<QueryBudget> kDefault =
      AnytimeOptions::default_ladder();
  const std::vector<QueryBudget>& effective =
      ladder.empty() ? kDefault : ladder;
  // The oracle switch is part of the digest: an `unknown` produced WITH
  // the portfolio rung is not the same computation as one without it, so
  // a breaker trip invalidates stale unknowns instead of serving them.
  const std::uint64_t requested_digest =
      hash_mix(ladder_digest(effective), use_sat_oracle_ ? 1 : 0, 0);
  const CacheKey key = make_key(
      QueryKind::kAnytimeVerdict, static_cast<std::uint8_t>(semantics),
      hash_mix(kVerdictSalt + which,
               (static_cast<std::uint64_t>(a) << 32) | b, 0));
  if (auto hit = cache_->get<CachedVerdict>(key)) {
    // Definitive verdicts are final whatever ladder produced them; an
    // `unknown` is only as good as its ladder — a caller presenting a
    // different one gets a recompute, which replaces the entry below.
    if (!hit->verdict.unknown() ||
        hit->ladder_digest == requested_digest) {
      ++stats_.cache_hits;
      return hit->verdict;
    }
  }
  AnytimeQuery& query = anytime_locked(effective);
  CachedVerdict cached;
  switch (which) {
    case 0:
      cached.verdict = query.must_have_happened_before(a, b, semantics);
      break;
    case 1:
      cached.verdict = query.could_have_been_concurrent(a, b);
      break;
    default:
      cached.verdict = query.can_deadlock();
      break;
  }
  cached.ladder_digest = requested_digest;
  ++stats_.computations;
  const std::uint64_t bytes = verdict_approx_bytes(cached);
  const BoundedVerdict verdict = cached.verdict;
  cache_->put(key, std::move(cached), bytes);
  return verdict;
}

BoundedVerdict AnalysisSession::anytime_must_have_happened_before(
    EventId a, EventId b, Semantics semantics,
    const std::vector<QueryBudget>& ladder) {
  std::lock_guard<std::mutex> lock(mu_);
  return anytime_verdict_locked(0, a, b, semantics, ladder);
}

BoundedVerdict AnalysisSession::anytime_could_have_been_concurrent(
    EventId a, EventId b, const std::vector<QueryBudget>& ladder) {
  std::lock_guard<std::mutex> lock(mu_);
  return anytime_verdict_locked(1, a, b, Semantics::kCausal, ladder);
}

BoundedVerdict AnalysisSession::anytime_can_deadlock(
    const std::vector<QueryBudget>& ladder) {
  std::lock_guard<std::mutex> lock(mu_);
  return anytime_verdict_locked(2, kNoEvent, kNoEvent, Semantics::kCausal,
                                ladder);
}

// ----- robustness hooks -----------------------------------------------

void AnalysisSession::set_use_sat_oracle(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  if (use_sat_oracle_ && !enabled) ++stats_.breaker_trips;
  use_sat_oracle_ = enabled;
}

bool AnalysisSession::use_sat_oracle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return use_sat_oracle_;
}

void AnalysisSession::note_shed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.shed;
}

void AnalysisSession::note_rejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.rejected;
}

void AnalysisSession::note_deadline_degraded() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.deadline_degraded;
}

}  // namespace evord::service
