// TraceRegistry: content-addressed trace store + session factory.
//
// The front door of the analysis service: clients hand in traces (by
// value — e.g. freshly parsed uploads) and get back shared, immutable,
// DEDUPLICATED entries keyed by Trace::fingerprint().  Two structurally
// identical traces — same events, process tree, observed order and
// dependences, names and labels free to differ — register to ONE entry,
// so every analysis ever computed for either is shared by both.  The
// registry also hands out AnalysisSessions, memoized per
// (fingerprint, options digest) and all wired to one shared ResultCache,
// so concurrent clients querying the same trace under the same
// configuration land on the same warm session.
//
// A fingerprint collision between genuinely different traces would
// silently alias their results, so a dedup hit cross-checks the cheap
// structural invariants (event/process counts, per-event shape, the
// observed order, the dependence list) and throws CheckError on
// mismatch — O(|E| + |D|), noise next to any exact query.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "ordering/exact.hpp"
#include "service/result_cache.hpp"
#include "service/session.hpp"
#include "trace/trace.hpp"

namespace evord::service {

struct RegistryStats {
  std::uint64_t traces_registered = 0;  ///< register_trace() calls
  std::uint64_t trace_dedup_hits = 0;   ///< of those, served an entry
  std::uint64_t sessions_requested = 0;
  std::uint64_t session_hits = 0;       ///< served an existing session
};

class TraceRegistry {
 public:
  /// `cache` == nullptr gives the registry its own shared cache with
  /// `cache_budget_bytes` (every session created here shares it).
  explicit TraceRegistry(
      std::shared_ptr<ResultCache> cache = nullptr,
      std::uint64_t cache_budget_bytes = ResultCache::kDefaultBudgetBytes);

  TraceRegistry(const TraceRegistry&) = delete;
  TraceRegistry& operator=(const TraceRegistry&) = delete;

  /// Registers (or dedups) a trace; returns the canonical shared entry.
  std::shared_ptr<const Trace> register_trace(Trace trace);
  std::shared_ptr<const Trace> register_trace(
      std::shared_ptr<const Trace> trace);

  /// The memoized session for (trace, options): registers the trace,
  /// then returns the existing session for its fingerprint × options
  /// digest or creates one on the shared cache.  The session validates
  /// the model axioms (CheckError on violation).
  std::shared_ptr<AnalysisSession> session(Trace trace,
                                           ExactOptions options = {});
  std::shared_ptr<AnalysisSession> session(
      std::shared_ptr<const Trace> trace, ExactOptions options = {});

  /// The canonical entry for a fingerprint; nullptr when unknown.
  std::shared_ptr<const Trace> find(std::uint64_t fingerprint) const;

  /// The EXISTING session for (fingerprint, options), or nullptr —
  /// never creates one.  Two map lookups, so it is safe on hot bounce
  /// paths (the daemon uses it to attribute shed/rejected requests to
  /// the trace they named without doing admission-bypassing work).
  std::shared_ptr<AnalysisSession> find_session(std::uint64_t fingerprint,
                                                ExactOptions options = {}) const;

  const std::shared_ptr<ResultCache>& cache() const { return cache_; }
  std::size_t num_traces() const;
  std::size_t num_sessions() const;
  RegistryStats stats() const;

 private:
  struct SessionKey {
    std::uint64_t fingerprint = 0;
    std::uint64_t options_digest = 0;
    friend bool operator==(const SessionKey&, const SessionKey&) = default;
  };
  struct SessionKeyHash {
    std::size_t operator()(const SessionKey& key) const noexcept {
      return static_cast<std::size_t>(
          hash_mix(0x5e55, key.fingerprint, key.options_digest));
    }
  };

  std::shared_ptr<const Trace> register_locked(
      std::shared_ptr<const Trace> trace);

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const Trace>> traces_;
  std::unordered_map<SessionKey, std::shared_ptr<AnalysisSession>,
                     SessionKeyHash>
      sessions_;
  std::shared_ptr<ResultCache> cache_;
  RegistryStats stats_;
};

}  // namespace evord::service
