#include "service/result_cache.hpp"

namespace evord::service {

const char* to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRelations:
      return "relations";
    case QueryKind::kFeasible:
      return "feasible";
    case QueryKind::kCoexist:
      return "coexist";
    case QueryKind::kDeadlock:
      return "deadlock";
    case QueryKind::kRaces:
      return "races";
    case QueryKind::kAnytimeVerdict:
      return "anytime-verdict";
  }
  return "?";
}

std::shared_ptr<const void> ResultCache::get_erased(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  return it->second->value;
}

void ResultCache::put_erased(const CacheKey& key,
                             std::shared_ptr<const void> value,
                             std::uint64_t approx_bytes) {
  const std::uint64_t charge = approx_bytes + kEntryOverheadBytes;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Replace in place (anytime-verdict upgrade path) and promote.
    accountant_.release(it->second->bytes);
    it->second->value = std::move(value);
    it->second->bytes = charge;
    accountant_.charge(charge);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(value), charge});
    index_.emplace(key, lru_.begin());
    accountant_.charge(charge);
  }
  ++stats_.insertions;
  evict_to_budget_locked();
}

void ResultCache::evict_to_budget_locked() {
  // A single entry larger than the whole budget evicts itself — the
  // caller still holds the shared_ptr put() returned, so the result is
  // usable; it just is not retained.
  while (accountant_.exceeded() && !lru_.empty()) evict_one_locked();
}

void ResultCache::evict_one_locked() {
  const Entry& victim = lru_.back();
  accountant_.release(victim.bytes);
  index_.erase(victim.key);
  lru_.pop_back();
  ++stats_.evictions;
}

void ResultCache::erase(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  accountant_.release(it->second->bytes);
  lru_.erase(it->second);
  index_.erase(it);
  ++stats_.evictions;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!lru_.empty()) evict_one_locked();
}

void ResultCache::set_budget_bytes(std::uint64_t max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  accountant_.set_limit(max_bytes);
  evict_to_budget_locked();
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats out = stats_;
  out.bytes = accountant_.bytes();
  out.entries = lru_.size();
  return out;
}

}  // namespace evord::service
