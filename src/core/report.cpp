#include "core/report.hpp"

#include <sstream>

#include "graph/dot.hpp"
#include "graph/transitive_reduction.hpp"
#include "util/string_util.hpp"

namespace evord {

std::string format_event_table(const Trace& trace) {
  std::ostringstream os;
  os << "id   proc  pos  kind     operand        label\n";
  for (const Event& e : trace.events()) {
    std::string operand;
    switch (e.kind) {
      case EventKind::kSemP:
      case EventKind::kSemV:
        operand = trace.semaphores()[e.object].name;
        break;
      case EventKind::kPost:
      case EventKind::kWait:
      case EventKind::kClear:
        operand = trace.event_vars()[e.object].name;
        break;
      case EventKind::kFork:
      case EventKind::kJoin:
        operand = "p" + std::to_string(e.object);
        break;
      case EventKind::kCompute: {
        std::vector<std::string> parts;
        for (VarId v : e.reads) parts.push_back("r:" + trace.variables()[v]);
        for (VarId v : e.writes) parts.push_back("w:" + trace.variables()[v]);
        operand = join(parts, ",");
        break;
      }
    }
    os << strprintf("e%-3u p%-4u %-4u %-8s %-14s %s\n", e.id, e.process,
                    e.index_in_process, to_string(e.kind), operand.c_str(),
                    e.label.c_str());
  }
  return os.str();
}

std::string format_relation_grid(const RelationMatrix& relation,
                                 const std::string& title) {
  std::ostringstream os;
  os << title << " (" << relation.num_pairs() << " pairs)\n    ";
  for (std::size_t b = 0; b < relation.size(); ++b) {
    os << (b % 10);
  }
  os << '\n';
  for (EventId a = 0; a < relation.size(); ++a) {
    os << strprintf("%3u ", a);
    for (EventId b = 0; b < relation.size(); ++b) {
      os << (relation.holds(a, b) ? 'X' : '.');
    }
    os << '\n';
  }
  return os.str();
}

std::string summarize_relations(const Trace& trace,
                                const OrderingRelations& relations) {
  std::ostringstream os;
  os << "events=" << trace.num_events()
     << " processes=" << trace.num_processes()
     << " semantics=" << to_string(relations.semantics) << '\n';
  if (relations.feasible_empty) {
    os << "F(P) is EMPTY: no feasible execution completes\n";
  }
  if (relations.semantics == Semantics::kInterleaving) {
    os << "state-space states visited: " << relations.states_visited << '\n';
  } else {
    os << "schedules: " << relations.schedules_seen
       << "  causal classes: " << relations.causal_classes
       << "  deadlocked prefixes: " << relations.deadlocked_prefixes << '\n';
  }
  os << "search: states=" << relations.search.states_visited
     << " dedup hits=" << relations.search.dedup_hits
     << " memo bytes=" << relations.search.memo_bytes << '\n';
  if (relations.search.sleep_pruned != 0 ||
      relations.search.persistent_skipped != 0) {
    os << "reduction: sleep pruned=" << relations.search.sleep_pruned
       << " persistent skipped=" << relations.search.persistent_skipped;
    if (relations.search.dyn_excused != 0) {
      os << " dyn excused=" << relations.search.dyn_excused;
    }
    os << '\n';
  }
  if (!relations.search.workers.empty()) {
    const search::SearchStats& s = relations.search;
    os << "scheduler: workers=" << s.workers.size()
       << " tasks=" << s.tasks_executed() << " stolen=" << s.tasks_stolen()
       << " spawned=" << s.tasks_spawned()
       << " steal attempts=" << s.steal_attempts()
       << strprintf(" idle=%.1fms",
                    static_cast<double>(s.idle_nanos()) / 1e6)
       << '\n';
  }
  if (!relations.search.depth_states.empty()) {
    os << "depth histogram: peak=" << relations.search.peak_depth()
       << " buckets=" << relations.search.depth_states.size() << '\n';
  }
  if (!relations.search.shard_sizes.empty()) {
    os << strprintf("fingerprint shards: %zu, load imbalance=%.2f\n",
                    relations.search.shard_sizes.size(),
                    relations.search.shard_imbalance());
  }
  if (relations.search.stop_reason != search::StopReason::kNone) {
    os << "search stopped by: "
       << search::to_string(relations.search.stop_reason) << '\n';
  }
  if (relations.truncated) {
    os << "WARNING: search truncated by budget; could-relations are "
          "under-approximate, must-relations over-approximate "
          "(AnytimeQuery degrades such runs to sound bounded verdicts)\n";
  }
  for (RelationKind k : kAllRelationKinds) {
    os << strprintf("  %-3s : %6zu pairs\n", to_string(k),
                    relations[k].num_pairs());
  }
  return os.str();
}

namespace {
Digraph graph_from_relation(const RelationMatrix& relation) {
  Digraph g(relation.size());
  for (EventId a = 0; a < relation.size(); ++a) {
    const DynamicBitset& row = relation.row(a);
    for (std::size_t b = row.find_first(); b < row.size();
         b = row.find_next(b)) {
      g.add_edge(a, static_cast<NodeId>(b));
    }
  }
  g.finalize();
  return g;
}
}  // namespace

std::string relation_dot(const Trace& trace, const RelationMatrix& relation,
                         const std::string& name) {
  const Digraph reduced = transitive_reduction(graph_from_relation(relation));
  DotOptions options;
  options.graph_name = name;
  options.left_to_right = true;
  options.node_label = [&trace](NodeId u) {
    return describe(trace.event(static_cast<EventId>(u)));
  };
  return to_dot(reduced, options);
}

std::string trace_dot(const Trace& trace) {
  Digraph g = trace.static_order_graph();
  for (const auto& [a, b] : trace.dependences()) g.add_edge(a, b);
  g.finalize();
  DotOptions options;
  options.graph_name = "trace";
  options.left_to_right = true;
  options.node_label = [&trace](NodeId u) {
    return describe(trace.event(static_cast<EventId>(u)));
  };
  options.edge_attrs = [&trace](NodeId u, NodeId v) -> std::string {
    for (const auto& [a, b] : trace.dependences()) {
      if (a == u && b == v) return "style=dashed, color=red, label=\"D\"";
    }
    return {};
  };
  return to_dot(g, options);
}

std::string relation_csv(const RelationMatrix& relation) {
  std::ostringstream os;
  os << "from,to\n";
  for (EventId a = 0; a < relation.size(); ++a) {
    const DynamicBitset& row = relation.row(a);
    for (std::size_t b = row.find_first(); b < row.size();
         b = row.find_next(b)) {
      os << a << ',' << b << '\n';
    }
  }
  return os.str();
}

std::string relations_json(const Trace& trace,
                           const OrderingRelations& relations) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"semantics\": \"" << to_string(relations.semantics) << "\",\n";
  os << "  \"num_events\": " << trace.num_events() << ",\n";
  os << "  \"num_processes\": " << trace.num_processes() << ",\n";
  os << "  \"feasible_empty\": "
     << (relations.feasible_empty ? "true" : "false") << ",\n";
  os << "  \"truncated\": " << (relations.truncated ? "true" : "false")
     << ",\n";
  os << "  \"schedules_seen\": " << relations.schedules_seen << ",\n";
  os << "  \"causal_classes\": " << relations.causal_classes << ",\n";
  os << "  \"relations\": {\n";
  bool first_relation = true;
  for (RelationKind k : kAllRelationKinds) {
    if (!first_relation) os << ",\n";
    first_relation = false;
    os << "    \"" << to_string(k) << "\": [";
    const RelationMatrix& m = relations[k];
    bool first_pair = true;
    for (EventId a = 0; a < m.size(); ++a) {
      const DynamicBitset& row = m.row(a);
      for (std::size_t b = row.find_first(); b < row.size();
           b = row.find_next(b)) {
        if (!first_pair) os << ", ";
        first_pair = false;
        os << '[' << a << ',' << b << ']';
      }
    }
    os << ']';
  }
  os << "\n  }\n}\n";
  return os.str();
}

}  // namespace evord
