// OrderingAnalyzer: the library's front door.
//
//   Trace t = ...;                       // build, parse, or run a Program
//   OrderingAnalyzer an(t);              // causal semantics by default
//   an.must_have_happened_before(a, b);  // exact, Table-1 MHB
//   an.could_have_been_concurrent(a, b); // exact CCW (potential race)
//   an.races(RaceDetector::kExact);      // exhaustive race report
//   an.report();                         // human-readable summary
//
// Exact queries lazily run the exhaustive analysis once per semantics and
// cache it.  The polynomial baselines (vector clocks, HMW, EGP) are
// exposed alongside for comparison.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "approx/combined.hpp"
#include "approx/egp.hpp"
#include "approx/hmw.hpp"
#include "approx/vector_clock.hpp"
#include "feasible/deadlock.hpp"
#include "feasible/schedule_space.hpp"
#include "ordering/exact.hpp"
#include "ordering/witness.hpp"
#include "race/race_detector.hpp"
#include "resilience/anytime.hpp"
#include "trace/trace.hpp"

namespace evord {

class OrderingAnalyzer {
 public:
  explicit OrderingAnalyzer(Trace trace, ExactOptions options = {});

  const Trace& trace() const { return trace_; }
  const ExactOptions& options() const { return options_; }

  /// The full exact relations under `semantics` (computed once, cached).
  const OrderingRelations& relations(
      Semantics semantics = Semantics::kCausal);

  // ----- exact pair queries (causal semantics unless stated) ----------
  bool must_have_happened_before(EventId a, EventId b,
                                 Semantics semantics = Semantics::kCausal);
  bool could_have_happened_before(EventId a, EventId b,
                                  Semantics semantics = Semantics::kCausal);
  bool must_have_been_concurrent(EventId a, EventId b);
  bool could_have_been_concurrent(EventId a, EventId b);
  bool must_have_been_ordered(EventId a, EventId b);
  bool could_have_been_ordered(EventId a, EventId b);

  // ----- witnesses ------------------------------------------------------
  std::optional<std::vector<EventId>> witness_happened_before(
      EventId a, EventId b, Semantics semantics = Semantics::kCausal);
  std::optional<std::vector<EventId>> witness_concurrent(EventId a,
                                                         EventId b);

  // ----- polynomial baselines (computed once, cached) ------------------
  const VectorClockResult& vector_clocks();
  /// Semaphore traces only.
  const HmwResult& hmw();
  /// Event-style traces only.
  const EgpResult& egp();
  /// The dependence-aware combined guaranteed-orderings engine (any
  /// trace); a sound polynomial subset of exact MHB.
  const CombinedResult& combined();

  // ----- further exhaustive analyses ------------------------------------
  /// Could any feasible schedule prefix wedge?  (Exponential search.)
  const DeadlockReport& deadlocks();
  /// could-have-run-simultaneously: true iff some feasible state has
  /// both events enabled at once (see ScheduleSpaceOptions).
  bool could_have_coexisted(EventId a, EventId b);

  // ----- applications ----------------------------------------------------
  RaceReport races(RaceDetector detector = RaceDetector::kExact);

  // ----- resource-governed anytime queries ------------------------------
  /// The budgeted variants (src/resilience/anytime.hpp): instead of an
  /// exact answer that may take exponential resources, each returns a
  /// BoundedVerdict {proven | refuted | unknown} obtained within the
  /// escalating budget ladder, degrading to sound one-sided bounds with
  /// full provenance when every rung truncates.  The underlying
  /// AnytimeQuery is built lazily from `ladder` (default ladder when
  /// empty) over this analyzer's ExactOptions and reused across calls;
  /// pass a different ladder to rebuild it.
  AnytimeQuery& anytime(const std::vector<QueryBudget>& ladder = {});
  BoundedVerdict anytime_must_have_happened_before(
      EventId a, EventId b, Semantics semantics = Semantics::kCausal);
  BoundedVerdict anytime_could_have_been_concurrent(EventId a, EventId b);
  BoundedVerdict anytime_can_deadlock();

  /// Unified search-core statistics (states, dedup hits, memo bytes,
  /// stop reason, per-worker scheduler counters, per-depth state
  /// histogram, fingerprint shard loads) of the exact analysis under
  /// `semantics`; runs the analysis if not yet cached.
  const search::SearchStats& search_stats(
      Semantics semantics = Semantics::kCausal);

  /// Multi-line human-readable summary of the trace and its exact
  /// relations under the given semantics.
  std::string report(Semantics semantics = Semantics::kCausal);

 private:
  Trace trace_;
  ExactOptions options_;
  std::array<std::optional<OrderingRelations>, 3> cached_;
  std::optional<VectorClockResult> vc_;
  std::optional<HmwResult> hmw_;
  std::optional<EgpResult> egp_;
  std::optional<CombinedResult> combined_;
  std::optional<DeadlockReport> deadlocks_;
  std::optional<CanPrecedeResult> coexist_;
  std::optional<AnytimeQuery> anytime_;
};

}  // namespace evord
