// OrderingAnalyzer: the library's front door.
//
//   Trace t = ...;                       // build, parse, or run a Program
//   OrderingAnalyzer an(t);              // causal semantics by default
//   an.must_have_happened_before(a, b);  // exact, Table-1 MHB
//   an.could_have_been_concurrent(a, b); // exact CCW (potential race)
//   an.races(RaceDetector::kExact);      // exhaustive race report
//   an.report();                         // human-readable summary
//
// Since the service refactor the analyzer is a thin CLIENT of an
// AnalysisSession (src/service/session.hpp): every exact result is
// computed once through the session's result cache and pinned here, so
// the historic contract — lazy computation, one analysis per semantics,
// stable references across calls — is unchanged, while the same session
// (and therefore every cached result) can be shared service-wide by
// constructing the analyzer over a TraceRegistry session.  The
// polynomial baselines (vector clocks, HMW, EGP) are exposed alongside
// for comparison.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>

#include "approx/combined.hpp"
#include "approx/egp.hpp"
#include "approx/hmw.hpp"
#include "approx/vector_clock.hpp"
#include "feasible/deadlock.hpp"
#include "feasible/schedule_space.hpp"
#include "ordering/exact.hpp"
#include "ordering/witness.hpp"
#include "race/race_detector.hpp"
#include "resilience/anytime.hpp"
#include "service/session.hpp"
#include "trace/trace.hpp"

namespace evord {

class OrderingAnalyzer {
 public:
  /// Private-session form: owns its trace and an AnalysisSession with a
  /// private result cache (the historic behavior, byte for byte).
  explicit OrderingAnalyzer(Trace trace, ExactOptions options = {});
  /// Service-client form: analyze through an existing (e.g.
  /// TraceRegistry-shared) session, reusing everything it has cached.
  explicit OrderingAnalyzer(
      std::shared_ptr<service::AnalysisSession> session);

  const Trace& trace() const { return session_->trace(); }
  const ExactOptions& options() const { return session_->options(); }

  /// The backing session (shared cache stats, batched pair queries...).
  service::AnalysisSession& session() { return *session_; }

  /// The full exact relations under `semantics` (computed once, cached).
  const OrderingRelations& relations(
      Semantics semantics = Semantics::kCausal);

  // ----- exact pair queries (causal semantics unless stated) ----------
  bool must_have_happened_before(EventId a, EventId b,
                                 Semantics semantics = Semantics::kCausal);
  bool could_have_happened_before(EventId a, EventId b,
                                  Semantics semantics = Semantics::kCausal);
  bool must_have_been_concurrent(EventId a, EventId b);
  bool could_have_been_concurrent(EventId a, EventId b);
  bool must_have_been_ordered(EventId a, EventId b);
  bool could_have_been_ordered(EventId a, EventId b);

  // ----- witnesses ------------------------------------------------------
  std::optional<std::vector<EventId>> witness_happened_before(
      EventId a, EventId b, Semantics semantics = Semantics::kCausal);
  std::optional<std::vector<EventId>> witness_concurrent(EventId a,
                                                         EventId b);

  // ----- polynomial baselines (computed once, cached) ------------------
  const VectorClockResult& vector_clocks();
  /// Semaphore traces only.
  const HmwResult& hmw();
  /// Event-style traces only.
  const EgpResult& egp();
  /// The dependence-aware combined guaranteed-orderings engine (any
  /// trace); a sound polynomial subset of exact MHB.
  const CombinedResult& combined();

  // ----- further exhaustive analyses ------------------------------------
  /// Could any feasible schedule prefix wedge?  (Exponential search.)
  const DeadlockReport& deadlocks();
  /// could-have-run-simultaneously: true iff some feasible state has
  /// both events enabled at once (see ScheduleSpaceOptions).
  bool could_have_coexisted(EventId a, EventId b);

  // ----- applications ----------------------------------------------------
  /// Cached per detector (the historic analyzer reran the exponential
  /// exact detection on every call AND returned the report by value;
  /// the reference is pinned for the analyzer's lifetime like every
  /// other cached result here).
  const RaceReport& races(RaceDetector detector = RaceDetector::kExact);

  // ----- resource-governed anytime queries ------------------------------
  /// The budgeted variants (src/resilience/anytime.hpp): instead of an
  /// exact answer that may take exponential resources, each returns a
  /// BoundedVerdict {proven | refuted | unknown} obtained within the
  /// escalating budget ladder, degrading to sound one-sided bounds with
  /// full provenance when every rung truncates.  The underlying
  /// AnytimeQuery is built lazily from `ladder` (default ladder when
  /// empty) and reused across calls — including when the same non-empty
  /// ladder is passed again; only a genuinely DIFFERENT ladder rebuilds
  /// it (and discards its cached ladder runs).
  AnytimeQuery& anytime(const std::vector<QueryBudget>& ladder = {});
  BoundedVerdict anytime_must_have_happened_before(
      EventId a, EventId b, Semantics semantics = Semantics::kCausal);
  BoundedVerdict anytime_could_have_been_concurrent(EventId a, EventId b);
  BoundedVerdict anytime_can_deadlock();

  /// Unified search-core statistics (states, dedup hits, memo bytes,
  /// stop reason, per-worker scheduler counters, per-depth state
  /// histogram, fingerprint shard loads) of the exact analysis under
  /// `semantics`; runs the analysis if not yet cached.
  const search::SearchStats& search_stats(
      Semantics semantics = Semantics::kCausal);

  /// Multi-line human-readable summary of the trace and its exact
  /// relations under the given semantics.
  std::string report(Semantics semantics = Semantics::kCausal);

 private:
  std::shared_ptr<service::AnalysisSession> session_;
  // Pinned session results: keep every result this analyzer ever handed
  // out alive (and its references stable) regardless of result-cache
  // eviction — the historic reference-stability contract.
  std::array<std::shared_ptr<const OrderingRelations>, 3> relations_;
  std::shared_ptr<const DeadlockReport> deadlocks_;
  std::shared_ptr<const CanPrecedeResult> coexist_;
  std::array<std::shared_ptr<const RaceReport>, 3> races_;
};

}  // namespace evord
