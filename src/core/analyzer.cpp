#include "core/analyzer.hpp"

#include <sstream>

#include "core/report.hpp"
#include "util/check.hpp"

namespace evord {

OrderingAnalyzer::OrderingAnalyzer(Trace trace, ExactOptions options)
    : session_(std::make_shared<service::AnalysisSession>(
          std::make_shared<const Trace>(std::move(trace)), options)) {}

OrderingAnalyzer::OrderingAnalyzer(
    std::shared_ptr<service::AnalysisSession> session)
    : session_(std::move(session)) {
  EVORD_CHECK(session_ != nullptr, "OrderingAnalyzer needs a session");
}

const OrderingRelations& OrderingAnalyzer::relations(Semantics semantics) {
  auto& slot = relations_[static_cast<std::size_t>(semantics)];
  if (slot == nullptr) slot = session_->relations(semantics);
  return *slot;
}

bool OrderingAnalyzer::must_have_happened_before(EventId a, EventId b,
                                                 Semantics semantics) {
  return relations(semantics).holds(RelationKind::kMHB, a, b);
}

bool OrderingAnalyzer::could_have_happened_before(EventId a, EventId b,
                                                  Semantics semantics) {
  return relations(semantics).holds(RelationKind::kCHB, a, b);
}

bool OrderingAnalyzer::must_have_been_concurrent(EventId a, EventId b) {
  return relations(Semantics::kCausal).holds(RelationKind::kMCW, a, b);
}

bool OrderingAnalyzer::could_have_been_concurrent(EventId a, EventId b) {
  return relations(Semantics::kCausal).holds(RelationKind::kCCW, a, b);
}

bool OrderingAnalyzer::must_have_been_ordered(EventId a, EventId b) {
  return relations(Semantics::kCausal).holds(RelationKind::kMOW, a, b);
}

bool OrderingAnalyzer::could_have_been_ordered(EventId a, EventId b) {
  return relations(Semantics::kCausal).holds(RelationKind::kCOW, a, b);
}

std::optional<std::vector<EventId>> OrderingAnalyzer::witness_happened_before(
    EventId a, EventId b, Semantics semantics) {
  return witness_could_happen_before(session_->trace(), a, b, semantics,
                                     session_->options());
}

std::optional<std::vector<EventId>> OrderingAnalyzer::witness_concurrent(
    EventId a, EventId b) {
  return witness_could_be_concurrent(session_->trace(), a, b,
                                     session_->options());
}

const VectorClockResult& OrderingAnalyzer::vector_clocks() {
  return session_->vector_clocks();
}

const HmwResult& OrderingAnalyzer::hmw() { return session_->hmw(); }

const EgpResult& OrderingAnalyzer::egp() { return session_->egp(); }

const CombinedResult& OrderingAnalyzer::combined() {
  return session_->combined();
}

const DeadlockReport& OrderingAnalyzer::deadlocks() {
  if (deadlocks_ == nullptr) deadlocks_ = session_->deadlocks();
  return *deadlocks_;
}

bool OrderingAnalyzer::could_have_coexisted(EventId a, EventId b) {
  if (coexist_ == nullptr) coexist_ = session_->coexistence();
  return coexist_->can_coexist[a].test(b);
}

const RaceReport& OrderingAnalyzer::races(RaceDetector detector) {
  auto& slot = races_[static_cast<std::size_t>(detector)];
  if (slot == nullptr) slot = session_->races(detector);
  return *slot;
}

AnytimeQuery& OrderingAnalyzer::anytime(
    const std::vector<QueryBudget>& ladder) {
  return session_->anytime(ladder);
}

BoundedVerdict OrderingAnalyzer::anytime_must_have_happened_before(
    EventId a, EventId b, Semantics semantics) {
  return anytime().must_have_happened_before(a, b, semantics);
}

BoundedVerdict OrderingAnalyzer::anytime_could_have_been_concurrent(
    EventId a, EventId b) {
  return anytime().could_have_been_concurrent(a, b);
}

BoundedVerdict OrderingAnalyzer::anytime_can_deadlock() {
  return anytime().can_deadlock();
}

const search::SearchStats& OrderingAnalyzer::search_stats(
    Semantics semantics) {
  return relations(semantics).search;
}

std::string OrderingAnalyzer::report(Semantics semantics) {
  std::ostringstream os;
  os << format_event_table(session_->trace());
  os << summarize_relations(session_->trace(), relations(semantics));
  return os.str();
}

}  // namespace evord
