#include "core/analyzer.hpp"

#include <sstream>

#include "core/report.hpp"
#include "trace/axioms.hpp"
#include "util/check.hpp"

namespace evord {

OrderingAnalyzer::OrderingAnalyzer(Trace trace, ExactOptions options)
    : trace_(std::move(trace)), options_(options) {
  const AxiomReport axioms = validate_axioms(trace_);
  EVORD_CHECK(axioms.ok(),
              "trace violates model axioms:\n" << axioms.text());
}

const OrderingRelations& OrderingAnalyzer::relations(Semantics semantics) {
  auto& slot = cached_[static_cast<std::size_t>(semantics)];
  if (!slot.has_value()) {
    slot = compute_exact(trace_, semantics, options_);
  }
  return *slot;
}

bool OrderingAnalyzer::must_have_happened_before(EventId a, EventId b,
                                                 Semantics semantics) {
  return relations(semantics).holds(RelationKind::kMHB, a, b);
}

bool OrderingAnalyzer::could_have_happened_before(EventId a, EventId b,
                                                  Semantics semantics) {
  return relations(semantics).holds(RelationKind::kCHB, a, b);
}

bool OrderingAnalyzer::must_have_been_concurrent(EventId a, EventId b) {
  return relations(Semantics::kCausal).holds(RelationKind::kMCW, a, b);
}

bool OrderingAnalyzer::could_have_been_concurrent(EventId a, EventId b) {
  return relations(Semantics::kCausal).holds(RelationKind::kCCW, a, b);
}

bool OrderingAnalyzer::must_have_been_ordered(EventId a, EventId b) {
  return relations(Semantics::kCausal).holds(RelationKind::kMOW, a, b);
}

bool OrderingAnalyzer::could_have_been_ordered(EventId a, EventId b) {
  return relations(Semantics::kCausal).holds(RelationKind::kCOW, a, b);
}

std::optional<std::vector<EventId>> OrderingAnalyzer::witness_happened_before(
    EventId a, EventId b, Semantics semantics) {
  return witness_could_happen_before(trace_, a, b, semantics, options_);
}

std::optional<std::vector<EventId>> OrderingAnalyzer::witness_concurrent(
    EventId a, EventId b) {
  return witness_could_be_concurrent(trace_, a, b, options_);
}

const VectorClockResult& OrderingAnalyzer::vector_clocks() {
  if (!vc_.has_value()) vc_ = compute_vector_clocks(trace_);
  return *vc_;
}

const HmwResult& OrderingAnalyzer::hmw() {
  if (!hmw_.has_value()) hmw_ = compute_hmw(trace_);
  return *hmw_;
}

const EgpResult& OrderingAnalyzer::egp() {
  if (!egp_.has_value()) egp_ = compute_egp(trace_);
  return *egp_;
}

const CombinedResult& OrderingAnalyzer::combined() {
  if (!combined_.has_value()) combined_ = compute_combined(trace_);
  return *combined_;
}

const DeadlockReport& OrderingAnalyzer::deadlocks() {
  if (!deadlocks_.has_value()) {
    DeadlockOptions options;
    options.stepper.respect_dependences = options_.respect_dependences;
    options.max_states = options_.max_states;
    options.time_budget_seconds = options_.time_budget_seconds;
    options.num_threads = options_.num_threads;
    options.steal = options_.steal;
    deadlocks_ = analyze_deadlocks(trace_, options);
  }
  return *deadlocks_;
}

bool OrderingAnalyzer::could_have_coexisted(EventId a, EventId b) {
  if (!coexist_.has_value()) {
    ScheduleSpaceOptions options;
    options.stepper.respect_dependences = options_.respect_dependences;
    options.max_states = options_.max_states;
    options.time_budget_seconds = options_.time_budget_seconds;
    options.num_threads = options_.num_threads;
    options.steal = options_.steal;
    options.build_coexist = true;
    coexist_ = compute_can_precede(trace_, options);
  }
  return coexist_->can_coexist[a].test(b);
}

RaceReport OrderingAnalyzer::races(RaceDetector detector) {
  return detect_races(trace_, detector, options_);
}

AnytimeQuery& OrderingAnalyzer::anytime(
    const std::vector<QueryBudget>& ladder) {
  if (!anytime_.has_value() || !ladder.empty()) {
    AnytimeOptions options;
    options.ladder = ladder;
    options.exact = options_;
    anytime_.emplace(trace_, std::move(options));
  }
  return *anytime_;
}

BoundedVerdict OrderingAnalyzer::anytime_must_have_happened_before(
    EventId a, EventId b, Semantics semantics) {
  return anytime().must_have_happened_before(a, b, semantics);
}

BoundedVerdict OrderingAnalyzer::anytime_could_have_been_concurrent(
    EventId a, EventId b) {
  return anytime().could_have_been_concurrent(a, b);
}

BoundedVerdict OrderingAnalyzer::anytime_can_deadlock() {
  return anytime().can_deadlock();
}

const search::SearchStats& OrderingAnalyzer::search_stats(
    Semantics semantics) {
  return relations(semantics).search;
}

std::string OrderingAnalyzer::report(Semantics semantics) {
  std::ostringstream os;
  os << format_event_table(trace_);
  os << summarize_relations(trace_, relations(semantics));
  return os.str();
}

}  // namespace evord
