// Human-readable rendering of traces and relations.
#pragma once

#include <string>

#include "ordering/relations.hpp"
#include "trace/trace.hpp"

namespace evord {

/// One line per event: id, process, kind, operand, label, accesses.
std::string format_event_table(const Trace& trace);

/// An n-by-n character grid of a relation ('.' absent, 'X' present).
std::string format_relation_grid(const RelationMatrix& relation,
                                 const std::string& title);

/// Pair counts, provenance and per-relation sizes for a full analysis.
std::string summarize_relations(const Trace& trace,
                                const OrderingRelations& relations);

/// DOT rendering of a happened-before-style relation, transitively
/// reduced for readability; node labels describe the events.
std::string relation_dot(const Trace& trace, const RelationMatrix& relation,
                         const std::string& name);

/// DOT rendering of the trace's static structure (program order,
/// fork/join, dependences highlighted).
std::string trace_dot(const Trace& trace);

/// CSV export of a relation: header "from,to" then one row per pair.
std::string relation_csv(const RelationMatrix& relation);

/// JSON export of a full analysis: semantics, provenance and the six
/// relations as pair arrays.  Stable key order; suitable for diffing.
std::string relations_json(const Trace& trace,
                           const OrderingRelations& relations);

}  // namespace evord
