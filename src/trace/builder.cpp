#include "trace/builder.hpp"

#include <algorithm>

#include "trace/axioms.hpp"
#include "util/check.hpp"

namespace evord {

TraceBuilder::TraceBuilder() { trace_.processes_.emplace_back(); }

ObjectId TraceBuilder::semaphore(std::string name, int initial) {
  EVORD_CHECK(initial >= 0, "semaphore '" << name
                                          << "' initial count must be >= 0");
  trace_.semaphores_.push_back({std::move(name), initial, /*binary=*/false});
  return static_cast<ObjectId>(trace_.semaphores_.size() - 1);
}

ObjectId TraceBuilder::binary_semaphore(std::string name, int initial) {
  EVORD_CHECK(initial == 0 || initial == 1,
              "binary semaphore '" << name << "' initial must be 0 or 1");
  trace_.semaphores_.push_back({std::move(name), initial, /*binary=*/true});
  return static_cast<ObjectId>(trace_.semaphores_.size() - 1);
}

ObjectId TraceBuilder::event_var(std::string name, bool initially_posted) {
  trace_.event_vars_.push_back({std::move(name), initially_posted});
  return static_cast<ObjectId>(trace_.event_vars_.size() - 1);
}

VarId TraceBuilder::variable(std::string name) {
  trace_.variables_.push_back(std::move(name));
  return static_cast<VarId>(trace_.variables_.size() - 1);
}

ProcId TraceBuilder::add_process() {
  trace_.processes_.emplace_back();
  return static_cast<ProcId>(trace_.processes_.size() - 1);
}

EventId TraceBuilder::append(ProcId p, EventKind kind, ObjectId object,
                             std::string label, std::vector<VarId> reads,
                             std::vector<VarId> writes) {
  EVORD_CHECK(p < trace_.processes_.size(), "unknown process p" << p);
  Event e;
  e.id = static_cast<EventId>(trace_.events_.size());
  e.process = p;
  e.index_in_process =
      static_cast<std::uint32_t>(trace_.processes_[p].events.size());
  e.kind = kind;
  e.object = object;
  e.label = std::move(label);
  std::sort(reads.begin(), reads.end());
  reads.erase(std::unique(reads.begin(), reads.end()), reads.end());
  std::sort(writes.begin(), writes.end());
  writes.erase(std::unique(writes.begin(), writes.end()), writes.end());
  e.reads = std::move(reads);
  e.writes = std::move(writes);
  trace_.processes_[p].events.push_back(e.id);
  trace_.observed_order_.push_back(e.id);
  trace_.events_.push_back(std::move(e));
  return trace_.events_.back().id;
}

EventId TraceBuilder::compute(ProcId p, std::string label,
                              std::vector<VarId> reads,
                              std::vector<VarId> writes) {
  for (VarId v : reads) {
    EVORD_CHECK(v < trace_.variables_.size(), "unknown variable v" << v);
  }
  for (VarId v : writes) {
    EVORD_CHECK(v < trace_.variables_.size(), "unknown variable v" << v);
  }
  return append(p, EventKind::kCompute, kNoObject, std::move(label),
                std::move(reads), std::move(writes));
}

EventId TraceBuilder::sem_p(ProcId p, ObjectId sem, std::string label) {
  EVORD_CHECK(sem < trace_.semaphores_.size(), "unknown semaphore s" << sem);
  return append(p, EventKind::kSemP, sem, std::move(label));
}

EventId TraceBuilder::sem_v(ProcId p, ObjectId sem, std::string label) {
  EVORD_CHECK(sem < trace_.semaphores_.size(), "unknown semaphore s" << sem);
  return append(p, EventKind::kSemV, sem, std::move(label));
}

EventId TraceBuilder::post(ProcId p, ObjectId ev, std::string label) {
  EVORD_CHECK(ev < trace_.event_vars_.size(), "unknown event variable " << ev);
  return append(p, EventKind::kPost, ev, std::move(label));
}

EventId TraceBuilder::wait(ProcId p, ObjectId ev, std::string label) {
  EVORD_CHECK(ev < trace_.event_vars_.size(), "unknown event variable " << ev);
  return append(p, EventKind::kWait, ev, std::move(label));
}

EventId TraceBuilder::clear(ProcId p, ObjectId ev, std::string label) {
  EVORD_CHECK(ev < trace_.event_vars_.size(), "unknown event variable " << ev);
  return append(p, EventKind::kClear, ev, std::move(label));
}

ProcId TraceBuilder::fork(ProcId parent) {
  const auto child = static_cast<ProcId>(trace_.processes_.size());
  const EventId fork_event = append(parent, EventKind::kFork, child);
  ProcessInfo info;
  info.parent = parent;
  info.creating_fork = fork_event;
  trace_.processes_.push_back(std::move(info));
  return child;
}

EventId TraceBuilder::fork_existing(ProcId parent, ProcId child) {
  EVORD_CHECK(child < trace_.processes_.size(), "unknown process p" << child);
  EVORD_CHECK(child != parent, "process cannot fork itself");
  EVORD_CHECK(trace_.processes_[child].creating_fork == kNoEvent,
              "process p" << child << " already has a creating fork");
  const EventId fork_event = append(parent, EventKind::kFork, child);
  trace_.processes_[child].parent = parent;
  trace_.processes_[child].creating_fork = fork_event;
  return fork_event;
}

EventId TraceBuilder::join(ProcId parent, ProcId child) {
  EVORD_CHECK(child < trace_.processes_.size(), "unknown process p" << child);
  return append(parent, EventKind::kJoin, child);
}

EventId TraceBuilder::creating_fork(ProcId child) const {
  EVORD_CHECK(child < trace_.processes_.size(), "unknown process p" << child);
  return trace_.processes_[child].creating_fork;
}

void TraceBuilder::add_dependence(EventId a, EventId b) {
  EVORD_CHECK(a < trace_.events_.size() && b < trace_.events_.size(),
              "dependence endpoint out of range");
  explicit_deps_.emplace_back(a, b);
}

Trace TraceBuilder::build_unchecked() const {
  Trace t = trace_;
  t.observed_pos_.assign(t.events_.size(), 0);
  for (std::size_t i = 0; i < t.observed_order_.size(); ++i) {
    t.observed_pos_[t.observed_order_[i]] = i;
  }
  t.dependences_ = explicit_deps_;
  if (auto_dependences_) {
    auto computed = compute_dependences(t.events_, t.observed_order_);
    t.dependences_.insert(t.dependences_.end(), computed.begin(),
                          computed.end());
  }
  std::sort(t.dependences_.begin(), t.dependences_.end());
  t.dependences_.erase(
      std::unique(t.dependences_.begin(), t.dependences_.end()),
      t.dependences_.end());
  return t;
}

Trace TraceBuilder::build() const {
  Trace t = build_unchecked();
  const AxiomReport report = validate_axioms(t);
  EVORD_CHECK(report.ok(), "trace violates model axioms:\n" << report.text());
  return t;
}

}  // namespace evord
