#include "trace/trace.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace evord {

namespace {
template <typename Infos>
ObjectId find_by_name(const Infos& infos, std::string_view name) {
  for (std::size_t i = 0; i < infos.size(); ++i) {
    if (infos[i].name == name) return static_cast<ObjectId>(i);
  }
  return kNoObject;
}
}  // namespace

ObjectId Trace::find_semaphore(std::string_view name) const {
  return find_by_name(semaphores_, name);
}

ObjectId Trace::find_event_var(std::string_view name) const {
  return find_by_name(event_vars_, name);
}

VarId Trace::find_variable(std::string_view name) const {
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    if (variables_[i] == name) return static_cast<VarId>(i);
  }
  return kNoVar;
}

EventId Trace::find_event_by_label(std::string_view label) const {
  EventId found = kNoEvent;
  for (const Event& e : events_) {
    if (e.label == label) {
      if (found != kNoEvent) return kNoEvent;  // ambiguous
      found = e.id;
    }
  }
  return found;
}

std::uint64_t Trace::fingerprint() const {
  // A salted running mix: every field lands at a fixed position in the
  // chain, so the hash is order-sensitive (swapping two events, two
  // dependence edges or two observed positions changes it), while
  // presentation-only fields (names, labels) never enter the chain.
  std::uint64_t h = hash_mix(0x5eaf00d5, events_.size(), processes_.size());
  for (const Event& e : events_) {
    h = hash_mix(0x01, h, (static_cast<std::uint64_t>(e.process) << 32) |
                              e.index_in_process);
    h = hash_mix(0x02, h, (static_cast<std::uint64_t>(e.kind) << 32) |
                              e.object);
    for (const VarId v : e.reads) h = hash_mix(0x03, h, v);
    for (const VarId v : e.writes) h = hash_mix(0x04, h, v);
  }
  for (const ProcessInfo& p : processes_) {
    h = hash_mix(0x05, h, (static_cast<std::uint64_t>(p.parent) << 32) |
                              p.creating_fork);
  }
  for (const SemaphoreInfo& s : semaphores_) {
    h = hash_mix(0x06, h,
                 (static_cast<std::uint64_t>(s.binary) << 32) |
                     static_cast<std::uint32_t>(s.initial));
  }
  for (const EventVarInfo& v : event_vars_) {
    h = hash_mix(0x07, h, static_cast<std::uint64_t>(v.initially_posted));
  }
  h = hash_mix(0x08, h, variables_.size());
  for (const EventId e : observed_order_) h = hash_mix(0x09, h, e);
  for (const auto& [a, b] : dependences_) {
    h = hash_mix(0x0a, h, (static_cast<std::uint64_t>(a) << 32) | b);
  }
  return h;
}

Digraph Trace::static_order_graph() const {
  Digraph g(num_events());
  for (const ProcessInfo& proc : processes_) {
    for (std::size_t i = 1; i < proc.events.size(); ++i) {
      g.add_edge(proc.events[i - 1], proc.events[i]);
    }
  }
  for (const Event& e : events_) {
    if (e.kind == EventKind::kFork) {
      const ProcessInfo& child = processes_[e.object];
      if (!child.events.empty()) g.add_edge(e.id, child.events.front());
    } else if (e.kind == EventKind::kJoin) {
      const ProcessInfo& child = processes_[e.object];
      if (!child.events.empty()) g.add_edge(child.events.back(), e.id);
    }
  }
  g.finalize();
  return g;
}

Digraph Trace::constraint_graph() const {
  Digraph g = static_order_graph();
  for (const auto& [a, b] : dependences_) g.add_edge(a, b);
  g.finalize();
  return g;
}

std::vector<EventId> Trace::events_of_kind(EventKind kind) const {
  std::vector<EventId> result;
  for (const Event& e : events_) {
    if (e.kind == kind) result.push_back(e.id);
  }
  return result;
}

std::vector<DependenceEdge> Trace::conflicting_pairs() const {
  std::vector<DependenceEdge> result;
  std::vector<EventId> accessors;
  for (const Event& e : events_) {
    if (e.accesses_shared_data()) accessors.push_back(e.id);
  }
  for (std::size_t i = 0; i < accessors.size(); ++i) {
    for (std::size_t j = i + 1; j < accessors.size(); ++j) {
      const Event& a = events_[accessors[i]];
      const Event& b = events_[accessors[j]];
      if (a.process != b.process && a.conflicts_with(b)) {
        result.emplace_back(a.id, b.id);
      }
    }
  }
  return result;
}

}  // namespace evord
