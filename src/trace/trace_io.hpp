// Text serialization of traces.
//
// Format (one directive per line, '#' starts a comment):
//
//   evord-trace 1
//   sem <name> <initial> [binary]     # declare a semaphore
//   event <name> [posted]             # declare an event variable
//   var <name>                        # declare a shared variable
//   procs <count>                     # total number of processes (>= 1)
//   autodeps off                      # optional: do not derive D
//   schedule                          # events follow, in observed order
//   <proc> P <sem>
//   <proc> V <sem>
//   <proc> post <event>
//   <proc> wait <event>
//   <proc> clear <event>
//   <proc> fork <child-proc>
//   <proc> join <child-proc>
//   <proc> compute [label=<quoted>] [r=<v1,v2>] [w=<v1,v2>]
//   end
//   dep <event-id> <event-id>         # optional explicit D edges
//
// Event ids are assigned in schedule order starting from 0, so the file's
// line order *is* the observed temporal order T.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "trace/trace.hpp"

namespace evord {

/// Thrown on malformed input; carries a 1-based line number.
class TraceParseError : public std::runtime_error {
 public:
  TraceParseError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Ingestion caps.  Untrusted input must not be able to allocate
/// unbounded memory before validation rejects it, so the parser fails
/// fast (TraceParseError with the offending line) once any of these is
/// exceeded.  The defaults comfortably cover every workload generator in
/// this repo; raise them explicitly for bigger traces.
struct TraceParseLimits {
  std::size_t max_events = 1'000'000;   ///< schedule lines
  std::size_t max_processes = 10'000;   ///< `procs` count
  std::size_t max_line_bytes = 65'536;  ///< raw line length, pre-trim
};

/// Parses a trace; validates the model axioms before returning.
Trace parse_trace(std::istream& in, const TraceParseLimits& limits = {});
Trace parse_trace_string(const std::string& text,
                         const TraceParseLimits& limits = {});
Trace load_trace_file(const std::string& path,
                      const TraceParseLimits& limits = {});

/// Serializes so that parse_trace(write_trace(t)) reproduces `t`.
/// All D edges are written as explicit `dep` lines (with `autodeps off`),
/// which makes the round trip exact regardless of how D was obtained.
std::string write_trace(const Trace& trace);
void save_trace_file(const Trace& trace, const std::string& path);

}  // namespace evord
