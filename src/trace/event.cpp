#include "trace/event.hpp"

#include <algorithm>
#include <sstream>

namespace evord {

bool is_semaphore_op(EventKind kind) {
  return kind == EventKind::kSemP || kind == EventKind::kSemV;
}

bool is_event_op(EventKind kind) {
  return kind == EventKind::kPost || kind == EventKind::kWait ||
         kind == EventKind::kClear;
}

bool is_synchronization(EventKind kind) { return kind != EventKind::kCompute; }

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kCompute:
      return "compute";
    case EventKind::kFork:
      return "fork";
    case EventKind::kJoin:
      return "join";
    case EventKind::kSemP:
      return "P";
    case EventKind::kSemV:
      return "V";
    case EventKind::kPost:
      return "post";
    case EventKind::kWait:
      return "wait";
    case EventKind::kClear:
      return "clear";
  }
  return "?";
}

namespace {
/// True iff the sorted ranges intersect.
bool sorted_intersects(const std::vector<VarId>& a,
                       const std::vector<VarId>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}
}  // namespace

bool Event::conflicts_with(const Event& other) const {
  return sorted_intersects(writes, other.writes) ||
         sorted_intersects(writes, other.reads) ||
         sorted_intersects(reads, other.writes);
}

std::string describe(const Event& e) {
  std::ostringstream os;
  os << 'e' << e.id << "=p" << e.process << ':' << to_string(e.kind);
  if (e.object != kNoObject) os << '(' << e.object << ')';
  if (!e.label.empty()) os << '[' << e.label << ']';
  return os.str();
}

}  // namespace evord
