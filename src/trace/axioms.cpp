#include "trace/axioms.hpp"

#include <sstream>

namespace evord {

std::string AxiomReport::text() const {
  std::ostringstream os;
  for (const AxiomViolation& v : violations) {
    os << '[' << v.axiom << "] " << v.message << '\n';
  }
  return os.str();
}

namespace {

class Checker {
 public:
  explicit Checker(const Trace& trace) : t_(trace) {}

  AxiomReport run() {
    check_structure();
    check_permutation();
    if (report_.ok()) {
      // Order-sensitive checks assume a well-formed observed order.
      check_program_order();
      check_fork_join();
      check_semaphores();
      check_event_vars();
      check_dependences();
    }
    return std::move(report_);
  }

 private:
  void fail(const char* axiom, const std::string& message) {
    report_.violations.push_back({axiom, message});
  }

  void check_structure() {
    for (EventId i = 0; i < t_.num_events(); ++i) {
      const Event& e = t_.event(i);
      if (e.id != i) {
        fail("A1", "event at index " + std::to_string(i) +
                       " has inconsistent id " + std::to_string(e.id));
      }
      if (e.process >= t_.num_processes()) {
        fail("A1", describe(e) + ": unknown process");
        continue;
      }
      const auto po = t_.program_order(e.process);
      if (e.index_in_process >= po.size() ||
          po[e.index_in_process] != e.id) {
        fail("A1", describe(e) + ": index_in_process does not match the "
                                 "process's program order");
      }
      switch (e.kind) {
        case EventKind::kSemP:
        case EventKind::kSemV:
          if (e.object >= t_.semaphores().size()) {
            fail("A1", describe(e) + ": undeclared semaphore");
          }
          break;
        case EventKind::kPost:
        case EventKind::kWait:
        case EventKind::kClear:
          if (e.object >= t_.event_vars().size()) {
            fail("A1", describe(e) + ": undeclared event variable");
          }
          break;
        case EventKind::kFork:
        case EventKind::kJoin:
          if (e.object >= t_.num_processes()) {
            fail("A1", describe(e) + ": unknown target process");
          }
          break;
        case EventKind::kCompute:
          break;
      }
      if (e.kind != EventKind::kCompute && e.accesses_shared_data()) {
        fail("A1", describe(e) +
                       ": synchronization events carry no shared accesses");
      }
      for (VarId v : e.reads) {
        if (v >= t_.variables().size()) {
          fail("A1", describe(e) + ": undeclared variable read");
        }
      }
      for (VarId v : e.writes) {
        if (v >= t_.variables().size()) {
          fail("A1", describe(e) + ": undeclared variable write");
        }
      }
    }
  }

  void check_permutation() {
    if (t_.observed_order().size() != t_.num_events()) {
      fail("A2", "observed order has " +
                     std::to_string(t_.observed_order().size()) +
                     " entries for " + std::to_string(t_.num_events()) +
                     " events");
      return;
    }
    std::vector<bool> seen(t_.num_events(), false);
    for (EventId e : t_.observed_order()) {
      if (e >= t_.num_events() || seen[e]) {
        fail("A2", "observed order is not a permutation of E");
        return;
      }
      seen[e] = true;
    }
  }

  void check_program_order() {
    for (ProcId p = 0; p < t_.num_processes(); ++p) {
      const auto po = t_.program_order(p);
      for (std::size_t i = 1; i < po.size(); ++i) {
        if (t_.observed_position(po[i - 1]) >= t_.observed_position(po[i])) {
          fail("A3", "process p" + std::to_string(p) +
                         ": observed order violates program order between " +
                         describe(t_.event(po[i - 1])) + " and " +
                         describe(t_.event(po[i])));
        }
      }
    }
  }

  void check_fork_join() {
    for (ProcId p = 0; p < t_.num_processes(); ++p) {
      const ProcessInfo& info = t_.process(p);
      if (info.creating_fork != kNoEvent) {
        const Event& f = t_.event(info.creating_fork);
        if (f.kind != EventKind::kFork || f.object != p) {
          fail("A4", "process p" + std::to_string(p) +
                         ": creating fork event is not a fork of it");
        } else if (!info.events.empty() &&
                   t_.observed_position(f.id) >
                       t_.observed_position(info.events.front())) {
          fail("A4", "process p" + std::to_string(p) +
                         " starts before its creating fork");
        }
      }
    }
    for (const Event& e : t_.events()) {
      if (e.kind == EventKind::kJoin) {
        if (e.object == e.process) {
          fail("A4", describe(e) + ": process joins itself");
          continue;
        }
        const ProcessInfo& child = t_.process(e.object);
        if (!child.events.empty() &&
            t_.observed_position(child.events.back()) >
                t_.observed_position(e.id)) {
          fail("A4", describe(e) + ": join precedes the completion of p" +
                         std::to_string(e.object));
        }
      }
    }
  }

  void check_semaphores() {
    std::vector<int> count;
    count.reserve(t_.semaphores().size());
    for (const SemaphoreInfo& s : t_.semaphores()) count.push_back(s.initial);
    for (EventId id : t_.observed_order()) {
      const Event& e = t_.event(id);
      if (e.kind == EventKind::kSemV) {
        const SemaphoreInfo& s = t_.semaphores()[e.object];
        if (!(s.binary && count[e.object] == 1)) ++count[e.object];
      } else if (e.kind == EventKind::kSemP) {
        if (count[e.object] == 0) {
          fail("A5", describe(e) + ": P on semaphore '" +
                         t_.semaphores()[e.object].name +
                         "' with zero count in the observed order");
        } else {
          --count[e.object];
        }
      }
    }
  }

  void check_event_vars() {
    std::vector<bool> posted;
    posted.reserve(t_.event_vars().size());
    for (const EventVarInfo& v : t_.event_vars()) {
      posted.push_back(v.initially_posted);
    }
    for (EventId id : t_.observed_order()) {
      const Event& e = t_.event(id);
      if (e.kind == EventKind::kPost) {
        posted[e.object] = true;
      } else if (e.kind == EventKind::kClear) {
        posted[e.object] = false;
      } else if (e.kind == EventKind::kWait && !posted[e.object]) {
        fail("A6", describe(e) + ": wait on cleared event variable '" +
                       t_.event_vars()[e.object].name +
                       "' in the observed order");
      }
    }
  }

  void check_dependences() {
    for (const auto& [a, b] : t_.dependences()) {
      if (a >= t_.num_events() || b >= t_.num_events()) {
        fail("A7", "dependence endpoint out of range");
        continue;
      }
      if (t_.observed_position(a) >= t_.observed_position(b)) {
        fail("A7", "dependence " + describe(t_.event(a)) + " -> " +
                       describe(t_.event(b)) +
                       " contradicts the observed order");
      }
    }
  }

  const Trace& t_;
  AxiomReport report_;
};

}  // namespace

AxiomReport validate_axioms(const Trace& trace) {
  return Checker(trace).run();
}

}  // namespace evord
