// Events: execution instances of program statements (paper §2).
//
// A *synchronization event* is an instance of a synchronization operation
// (fork, join, semaphore P/V, Post/Wait/Clear); a *computation event* is an
// instance of a group of same-process statements containing no
// synchronization.  Computation events carry read/write sets over shared
// variables, from which the shared-data-dependence relation D is derived.
#pragma once

#include <string>
#include <vector>

#include "trace/ids.hpp"

namespace evord {

enum class EventKind : std::uint8_t {
  kCompute,  ///< computation event (may read/write shared variables)
  kFork,     ///< creates process `object` (an existing ProcId in the trace)
  kJoin,     ///< waits for termination of process `object`
  kSemP,     ///< semaphore P (wait / decrement) on semaphore `object`
  kSemV,     ///< semaphore V (signal / increment) on semaphore `object`
  kPost,     ///< event-variable Post on `object`
  kWait,     ///< event-variable Wait on `object`
  kClear,    ///< event-variable Clear on `object`
};

/// True for kinds that operate on a semaphore.
bool is_semaphore_op(EventKind kind);
/// True for kinds that operate on an event variable.
bool is_event_op(EventKind kind);
/// True for every kind except kCompute.
bool is_synchronization(EventKind kind);

const char* to_string(EventKind kind);

struct Event {
  EventId id = kNoEvent;
  ProcId process = kNoProc;
  /// Position of this event within its process's program order.
  std::uint32_t index_in_process = 0;
  EventKind kind = EventKind::kCompute;
  /// Target object: semaphore / event variable / forked / joined process.
  /// kNoObject for computation events.
  ObjectId object = kNoObject;
  /// Shared variables read / written (computation events only).  Sorted,
  /// deduplicated.  A variable present in both sets is a read-modify-write.
  std::vector<VarId> reads;
  std::vector<VarId> writes;
  /// Optional human-readable label ("X := 1", "a", ...).
  std::string label;

  bool is_sync() const { return is_synchronization(kind); }
  bool accesses_shared_data() const {
    return !reads.empty() || !writes.empty();
  }
  /// True iff the two events access a common variable and at least one of
  /// the colliding accesses is a write — the paper's conflict condition.
  bool conflicts_with(const Event& other) const;
};

/// Compact rendering, e.g. "e7=p2:V(s1)" or "e3=p0:compute[X := 1]".
std::string describe(const Event& e);

}  // namespace evord
