// Validation of the model axioms (paper §2, F2 of §3.1), made operational.
//
// A trace is a *valid program execution* iff:
//   A1  structure: dense consistent ids, events belong to their processes,
//       sync operands name declared objects;
//   A2  the observed order is a permutation of E;
//   A3  program order: each process's events appear in order within the
//       observed order;
//   A4  fork/join: a process's events follow its creating fork; a join
//       follows every event of the joined process; no process joins
//       itself; a fork's target is the process it created;
//   A5  semaphore semantics: along the observed order no semaphore count
//       goes negative (binary semaphores clamp at 1, so V at count 1 is a
//       no-op);
//   A6  event-variable semantics: every Wait executes while its variable
//       is posted (some Post since the last Clear, or initially posted);
//   A7  dependence consistency: every D edge (a, b) has a preceding b in
//       the observed order.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace evord {

struct AxiomViolation {
  std::string axiom;    ///< "A1" .. "A7"
  std::string message;  ///< human-readable diagnostic
};

struct AxiomReport {
  std::vector<AxiomViolation> violations;

  bool ok() const { return violations.empty(); }
  /// All diagnostics, one per line.
  std::string text() const;
};

/// Checks every axiom and reports all violations found (it does not stop
/// at the first).
AxiomReport validate_axioms(const Trace& trace);

}  // namespace evord
