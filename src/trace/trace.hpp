// The program-execution model P = <E, T, D> (paper §2).
//
// A `Trace` is an immutable observed execution of a shared-memory parallel
// program on a sequentially consistent machine:
//   * E — the event set, grouped into per-process program orders, with a
//     fork/join process tree;
//   * T — the observed temporal order, represented by the observed total
//     order (schedule) in which the events completed;
//   * D — the shared-data-dependence relation, either derived from the
//     events' read/write sets under the observed order, or supplied
//     explicitly.
//
// Traces are constructed with `TraceBuilder` (or parsed from the text
// format in trace_io.hpp) and validated against the model axioms by
// `validate_axioms`.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "trace/event.hpp"
#include "trace/ids.hpp"

namespace evord {

struct SemaphoreInfo {
  std::string name;
  int initial = 0;      ///< initial count (>= 0)
  bool binary = false;  ///< binary semaphores clamp the count at 1
};

struct EventVarInfo {
  std::string name;
  bool initially_posted = false;
};

struct ProcessInfo {
  ProcId parent = kNoProc;           ///< kNoProc for the root process
  EventId creating_fork = kNoEvent;  ///< the parent's fork event
  std::vector<EventId> events;       ///< program order within the process
};

/// An edge (a, b) of the shared-data-dependence relation D: event a
/// accesses a shared variable that b later accesses, at least one of the
/// two accesses being a write.
using DependenceEdge = std::pair<EventId, EventId>;

class TraceBuilder;

class Trace {
 public:
  Trace() = default;

  // ----- E: events and processes ------------------------------------
  std::size_t num_events() const { return events_.size(); }
  const Event& event(EventId e) const { return events_[e]; }
  const std::vector<Event>& events() const { return events_; }

  std::size_t num_processes() const { return processes_.size(); }
  const ProcessInfo& process(ProcId p) const { return processes_[p]; }
  std::span<const EventId> program_order(ProcId p) const {
    return {processes_[p].events.data(), processes_[p].events.size()};
  }

  // ----- synchronization objects and shared variables ---------------
  const std::vector<SemaphoreInfo>& semaphores() const { return semaphores_; }
  const std::vector<EventVarInfo>& event_vars() const { return event_vars_; }
  const std::vector<std::string>& variables() const { return variables_; }

  /// Name lookups; return kNoObject / kNoVar when absent.
  ObjectId find_semaphore(std::string_view name) const;
  ObjectId find_event_var(std::string_view name) const;
  VarId find_variable(std::string_view name) const;
  /// Label lookup; returns kNoEvent when absent or ambiguous.
  EventId find_event_by_label(std::string_view label) const;

  // ----- T: the observed temporal order ------------------------------
  /// The observed completion order of all events.  Every trace built by
  /// TraceBuilder has one (it is the build order).
  const std::vector<EventId>& observed_order() const {
    return observed_order_;
  }
  /// Position of event `e` in the observed order.
  std::size_t observed_position(EventId e) const {
    return observed_pos_[e];
  }

  // ----- D: shared-data dependences ----------------------------------
  const std::vector<DependenceEdge>& dependences() const {
    return dependences_;
  }

  // ----- identity ------------------------------------------------------
  /// Order-sensitive 64-bit content fingerprint over every semantics-
  /// relevant field of the model P = <E, T, D>: per-event (process,
  /// position, kind, object, read/write sets), the process tree
  /// (parent, creating fork), synchronization-object initial states,
  /// the observed total order and the dependence edges.  Presentation
  /// fields — event labels, semaphore / event-variable / shared-variable
  /// NAMES — are deliberately excluded: two traces that differ only in
  /// naming have identical feasible executions and identical analysis
  /// results, so the service layer (src/service/) dedups them to one
  /// registry entry.  Computed on demand in O(|E| + |D|); callers that
  /// need it repeatedly (TraceRegistry, AnalysisSession) store it.
  std::uint64_t fingerprint() const;

  // ----- derived graphs ----------------------------------------------
  /// Program-order + fork/join edges: successive events of one process,
  /// fork event -> first event of child, last event of child -> join.
  /// These orderings hold in *every* feasible execution.
  Digraph static_order_graph() const;

  /// static_order_graph() plus one edge per dependence in D.
  Digraph constraint_graph() const;

  /// Events of a given kind, in id order.
  std::vector<EventId> events_of_kind(EventKind kind) const;

  /// All unordered pairs of conflicting computation events (candidate data
  /// races before ordering analysis).
  std::vector<DependenceEdge> conflicting_pairs() const;

 private:
  friend class TraceBuilder;

  std::vector<Event> events_;
  std::vector<ProcessInfo> processes_;
  std::vector<SemaphoreInfo> semaphores_;
  std::vector<EventVarInfo> event_vars_;
  std::vector<std::string> variables_;
  std::vector<EventId> observed_order_;
  std::vector<std::size_t> observed_pos_;
  std::vector<DependenceEdge> dependences_;
};

}  // namespace evord
