// Computation of the shared-data-dependence relation D from the events'
// read/write sets and the observed order (paper §2, footnote ‡).
//
// a D b holds iff a accesses a shared variable that b later accesses and
// at least one of the two accesses is a write.  This combines flow-, anti-
// and output-dependence and does not name the variable, exactly as the
// paper defines it.
#pragma once

#include <vector>

#include "trace/trace.hpp"

namespace evord {

struct DependenceOptions {
  /// Include dependences between events of the same process.  They are
  /// subsumed by program order as scheduling constraints, so they are
  /// excluded by default; enable for a literal rendering of D.
  bool include_intra_process = false;
};

/// All D edges of `events` under the completion order `observed_order`
/// (earlier position = earlier completion).  Every conflicting pair
/// produces an edge directed from the earlier to the later event.
std::vector<DependenceEdge> compute_dependences(
    const std::vector<Event>& events,
    const std::vector<EventId>& observed_order,
    const DependenceOptions& options = {});

}  // namespace evord
