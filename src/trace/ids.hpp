// Dense integer identifiers for the execution model.
//
// Events, processes, synchronization objects and shared variables are all
// referred to by dense indices so relation matrices and bitsets index
// directly (Per.16).
#pragma once

#include <cstdint>
#include <limits>

namespace evord {

using EventId = std::uint32_t;   ///< index into Trace::events()
using ProcId = std::uint32_t;    ///< index into Trace::processes()
using ObjectId = std::uint32_t;  ///< semaphore or event-variable index
using VarId = std::uint32_t;     ///< shared-variable index

inline constexpr EventId kNoEvent = std::numeric_limits<EventId>::max();
inline constexpr ProcId kNoProc = std::numeric_limits<ProcId>::max();
inline constexpr ObjectId kNoObject = std::numeric_limits<ObjectId>::max();
inline constexpr VarId kNoVar = std::numeric_limits<VarId>::max();

}  // namespace evord
