#include "trace/trace_io.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "trace/axioms.hpp"
#include "trace/builder.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace evord {

namespace {

class Parser {
 public:
  Parser(std::istream& in, const TraceParseLimits& limits)
      : in_(in), limits_(limits) {}

  Trace run() {
    expect_header();
    parse_declarations();
    parse_schedule();
    parse_trailer();
    Trace t = [&] {
      try {
        return builder_.build_unchecked();
      } catch (const CheckError& err) {
        fail(err.what());
      }
    }();
    const AxiomReport report = validate_axioms(t);
    if (!report.ok()) {
      throw TraceParseError(line_no_,
                            "trace violates model axioms:\n" + report.text());
    }
    return t;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw TraceParseError(line_no_, what);
  }

  /// Next meaningful line (comments stripped), or nullopt at EOF.
  std::optional<std::string> next_line() {
    std::string raw;
    while (std::getline(in_, raw)) {
      ++line_no_;
      if (raw.size() > limits_.max_line_bytes) {
        fail("line exceeds " + std::to_string(limits_.max_line_bytes) +
             " bytes");
      }
      const std::size_t hash = raw.find('#');
      if (hash != std::string::npos) raw.resize(hash);
      const std::string_view body = trim(raw);
      if (!body.empty()) return std::string(body);
    }
    return std::nullopt;
  }

  void expect_header() {
    auto line = next_line();
    if (!line || split_ws(*line) != std::vector<std::string_view>{
                                        "evord-trace", "1"}) {
      fail("expected header 'evord-trace 1'");
    }
  }

  void parse_declarations() {
    while (auto line = next_line()) {
      const auto tokens = split_ws(*line);
      const std::string_view kw = tokens.front();
      if (kw == "schedule") {
        if (tokens.size() != 1) fail("'schedule' takes no arguments");
        return;
      }
      if (kw == "sem") {
        if (tokens.size() < 3 || tokens.size() > 4) {
          fail("usage: sem <name> <initial> [binary]");
        }
        const auto initial = parse_int(tokens[2]);
        if (!initial || *initial < 0) fail("bad semaphore initial count");
        const std::string name(tokens[1]);
        if (sems_.count(name) != 0) {
          fail("duplicate semaphore '" + name + "'");
        }
        if (tokens.size() == 4) {
          if (tokens[3] != "binary") fail("expected 'binary'");
          if (*initial > 1) fail("binary semaphore initial must be 0 or 1");
          sems_[name] = builder_.binary_semaphore(name,
                                                  static_cast<int>(*initial));
        } else {
          sems_[name] = builder_.semaphore(name, static_cast<int>(*initial));
        }
      } else if (kw == "event") {
        if (tokens.size() < 2 || tokens.size() > 3) {
          fail("usage: event <name> [posted]");
        }
        bool posted = false;
        if (tokens.size() == 3) {
          if (tokens[2] != "posted") fail("expected 'posted'");
          posted = true;
        }
        const std::string name(tokens[1]);
        if (events_.count(name) != 0) {
          fail("duplicate event variable '" + name + "'");
        }
        events_[name] = builder_.event_var(name, posted);
      } else if (kw == "var") {
        if (tokens.size() != 2) fail("usage: var <name>");
        const std::string name(tokens[1]);
        if (vars_.count(name) != 0) fail("duplicate variable '" + name + "'");
        vars_[name] = builder_.variable(name);
      } else if (kw == "procs") {
        if (tokens.size() != 2) fail("usage: procs <count>");
        const auto count = parse_int(tokens[1]);
        if (!count || *count < 1) fail("process count must be >= 1");
        if (static_cast<std::uint64_t>(*count) > limits_.max_processes) {
          fail("process count exceeds limit of " +
               std::to_string(limits_.max_processes));
        }
        for (std::int64_t i = 1; i < *count; ++i) builder_.add_process();
        num_procs_ = static_cast<std::size_t>(*count);
      } else if (kw == "autodeps") {
        if (tokens.size() != 2 || (tokens[1] != "on" && tokens[1] != "off")) {
          fail("usage: autodeps on|off");
        }
        builder_.set_auto_dependences(tokens[1] == "on");
      } else {
        fail("unknown declaration '" + std::string(kw) + "'");
      }
    }
    fail("missing 'schedule' section");
  }

  ProcId parse_proc(std::string_view token) const {
    const auto p = parse_int(token);
    if (!p || *p < 0 || static_cast<std::size_t>(*p) >= num_procs_) {
      fail("bad process id '" + std::string(token) + "'");
    }
    return static_cast<ProcId>(*p);
  }

  ObjectId lookup(const std::map<std::string, ObjectId>& table,
                  std::string_view name, const char* what) const {
    const auto it = table.find(std::string(name));
    if (it == table.end()) {
      fail(std::string("undeclared ") + what + " '" + std::string(name) +
           "'");
    }
    return it->second;
  }

  void parse_schedule() {
    while (auto line = next_line()) {
      const auto tokens = split_ws(*line);
      if (tokens.front() == "end") {
        if (tokens.size() != 1) fail("'end' takes no arguments");
        return;
      }
      if (tokens.size() < 2) fail("expected '<proc> <op> ...'");
      if (builder_.num_events() >= limits_.max_events) {
        fail("event count exceeds limit of " +
             std::to_string(limits_.max_events));
      }
      const ProcId p = parse_proc(tokens[0]);
      const std::string_view op = tokens[1];
      // Any builder-level invariant violation on malformed input is a
      // parse error with a line number, never an escaping CheckError.
      try {
        dispatch_op(p, op, tokens, *line);
      } catch (const CheckError& err) {
        fail(err.what());
      }
    }
    fail("missing 'end' after schedule");
  }

  void dispatch_op(ProcId p, std::string_view op,
                   const std::vector<std::string_view>& tokens,
                   const std::string& line) {
    if (op == "P" || op == "V") {
      if (tokens.size() != 3) fail("usage: <proc> P|V <sem>");
      const ObjectId s = lookup(sems_, tokens[2], "semaphore");
      if (op == "P") {
        builder_.sem_p(p, s);
      } else {
        builder_.sem_v(p, s);
      }
    } else if (op == "post" || op == "wait" || op == "clear") {
      if (tokens.size() != 3) fail("usage: <proc> post|wait|clear <event>");
      const ObjectId e = lookup(events_, tokens[2], "event variable");
      if (op == "post") {
        builder_.post(p, e);
      } else if (op == "wait") {
        builder_.wait(p, e);
      } else {
        builder_.clear(p, e);
      }
    } else if (op == "fork" || op == "join") {
      if (tokens.size() != 3) fail("usage: <proc> fork|join <proc>");
      const ProcId child = parse_proc(tokens[2]);
      if (op == "fork") {
        builder_.fork_existing(p, child);
      } else {
        builder_.join(p, child);
      }
    } else if (op == "compute") {
      parse_compute(p, line);
    } else {
      fail("unknown operation '" + std::string(op) + "'");
    }
  }

  void parse_compute(ProcId p, const std::string& line) {
    // <proc> compute [label="..."] [r=a,b] [w=c]
    std::string label;
    std::vector<VarId> reads;
    std::vector<VarId> writes;
    // Tokenize respecting the quoted label.
    std::string_view rest = line;
    rest.remove_prefix(rest.find("compute") + 7);
    while (!trim(rest).empty()) {
      rest = trim(rest);
      if (starts_with(rest, "label=")) {
        rest.remove_prefix(6);
        if (rest.empty() || rest.front() != '"') {
          fail("label value must be quoted");
        }
        rest.remove_prefix(1);
        const std::size_t close = rest.find('"');
        if (close == std::string_view::npos) fail("unterminated label");
        label = std::string(rest.substr(0, close));
        rest.remove_prefix(close + 1);
      } else if (starts_with(rest, "r=") || starts_with(rest, "w=")) {
        const bool is_read = rest.front() == 'r';
        rest.remove_prefix(2);
        std::size_t stop = rest.find(' ');
        if (stop == std::string_view::npos) stop = rest.size();
        for (std::string_view name : split(rest.substr(0, stop), ',')) {
          const auto it = vars_.find(std::string(name));
          if (it == vars_.end()) {
            fail("undeclared variable '" + std::string(name) + "'");
          }
          (is_read ? reads : writes).push_back(it->second);
        }
        rest.remove_prefix(stop);
      } else {
        fail("unknown compute attribute near '" + std::string(rest) + "'");
      }
    }
    builder_.compute(p, std::move(label), std::move(reads),
                     std::move(writes));
  }

  void parse_trailer() {
    while (auto line = next_line()) {
      const auto tokens = split_ws(*line);
      if (tokens.front() != "dep" || tokens.size() != 3) {
        fail("only 'dep <a> <b>' lines may follow 'end'");
      }
      const auto a = parse_int(tokens[1]);
      const auto b = parse_int(tokens[2]);
      if (!a || !b || *a < 0 || *b < 0 ||
          static_cast<std::size_t>(*a) >= builder_.num_events() ||
          static_cast<std::size_t>(*b) >= builder_.num_events()) {
        fail("dependence event id out of range");
      }
      try {
        builder_.add_dependence(static_cast<EventId>(*a),
                                static_cast<EventId>(*b));
      } catch (const CheckError& err) {
        fail(err.what());
      }
    }
  }

  std::istream& in_;
  TraceParseLimits limits_;
  std::size_t line_no_ = 0;
  TraceBuilder builder_;
  std::size_t num_procs_ = 1;
  std::map<std::string, ObjectId> sems_;
  std::map<std::string, ObjectId> events_;
  std::map<std::string, VarId> vars_;
};

}  // namespace

Trace parse_trace(std::istream& in, const TraceParseLimits& limits) {
  return Parser(in, limits).run();
}

Trace parse_trace_string(const std::string& text,
                         const TraceParseLimits& limits) {
  std::istringstream in(text);
  return parse_trace(in, limits);
}

Trace load_trace_file(const std::string& path,
                      const TraceParseLimits& limits) {
  std::ifstream in(path);
  EVORD_CHECK(in.good(), "cannot open trace file '" << path << "'");
  return parse_trace(in, limits);
}

std::string write_trace(const Trace& trace) {
  std::ostringstream os;
  os << "evord-trace 1\n";
  for (const SemaphoreInfo& s : trace.semaphores()) {
    os << "sem " << s.name << ' ' << s.initial << (s.binary ? " binary" : "")
       << '\n';
  }
  for (const EventVarInfo& v : trace.event_vars()) {
    os << "event " << v.name << (v.initially_posted ? " posted" : "") << '\n';
  }
  for (const std::string& v : trace.variables()) os << "var " << v << '\n';
  os << "procs " << trace.num_processes() << '\n';
  os << "autodeps off\n";
  os << "schedule\n";
  // Event ids in the emitted file are observed positions; remember the
  // mapping so `dep` lines refer to the new ids.
  std::vector<EventId> new_id(trace.num_events());
  for (std::size_t pos = 0; pos < trace.observed_order().size(); ++pos) {
    const Event& e = trace.event(trace.observed_order()[pos]);
    new_id[e.id] = static_cast<EventId>(pos);
    os << e.process << ' ';
    switch (e.kind) {
      case EventKind::kSemP:
        os << "P " << trace.semaphores()[e.object].name;
        break;
      case EventKind::kSemV:
        os << "V " << trace.semaphores()[e.object].name;
        break;
      case EventKind::kPost:
        os << "post " << trace.event_vars()[e.object].name;
        break;
      case EventKind::kWait:
        os << "wait " << trace.event_vars()[e.object].name;
        break;
      case EventKind::kClear:
        os << "clear " << trace.event_vars()[e.object].name;
        break;
      case EventKind::kFork:
        os << "fork " << e.object;
        break;
      case EventKind::kJoin:
        os << "join " << e.object;
        break;
      case EventKind::kCompute: {
        os << "compute";
        if (!e.label.empty()) os << " label=\"" << e.label << '"';
        auto emit_vars = [&](const char* key, const std::vector<VarId>& vs) {
          if (vs.empty()) return;
          os << ' ' << key << '=';
          for (std::size_t i = 0; i < vs.size(); ++i) {
            if (i != 0) os << ',';
            os << trace.variables()[vs[i]];
          }
        };
        emit_vars("r", e.reads);
        emit_vars("w", e.writes);
        break;
      }
    }
    os << '\n';
  }
  os << "end\n";
  for (const auto& [a, b] : trace.dependences()) {
    os << "dep " << new_id[a] << ' ' << new_id[b] << '\n';
  }
  return os.str();
}

void save_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  EVORD_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << write_trace(trace);
  EVORD_CHECK(out.good(), "write to '" << path << "' failed");
}

}  // namespace evord
