// Fluent construction of traces.
//
// The builder records events in the order the calls are made; that global
// call order becomes the trace's observed temporal order T.  Example:
//
//   TraceBuilder b;
//   ObjectId s = b.semaphore("s");
//   VarId x = b.variable("x");
//   ProcId p1 = b.fork(b.root());
//   b.compute(b.root(), "X := 1", /*reads=*/{}, /*writes=*/{x});
//   b.sem_v(b.root(), s);
//   b.sem_p(p1, s);
//   b.compute(p1, "read X", /*reads=*/{x}, /*writes=*/{});
//   b.join(b.root(), p1);
//   Trace t = b.build();
//
// `build()` derives D from the read/write sets (unless auto-dependences
// are disabled), validates the model axioms and returns the immutable
// Trace.  Violations throw CheckError with a diagnostic.
#pragma once

#include <string>
#include <vector>

#include "trace/dependence.hpp"
#include "trace/trace.hpp"

namespace evord {

class TraceBuilder {
 public:
  /// A new builder holds a single root process.
  TraceBuilder();

  ProcId root() const { return 0; }

  // ----- declarations -------------------------------------------------
  /// Declares a counting semaphore with the given initial count.
  ObjectId semaphore(std::string name, int initial = 0);
  /// Declares a binary semaphore (count clamped to {0, 1}).
  ObjectId binary_semaphore(std::string name, int initial = 0);
  /// Declares an event variable, initially cleared unless stated.
  ObjectId event_var(std::string name, bool initially_posted = false);
  /// Declares a shared variable.
  VarId variable(std::string name);

  /// Creates a process with no creating fork (a "static" process that
  /// exists from the start, as in the paper's reduction programs).
  ProcId add_process();

  // ----- events (appended in observed order) ---------------------------
  EventId compute(ProcId p, std::string label = {},
                  std::vector<VarId> reads = {},
                  std::vector<VarId> writes = {});
  EventId sem_p(ProcId p, ObjectId sem, std::string label = {});
  EventId sem_v(ProcId p, ObjectId sem, std::string label = {});
  EventId post(ProcId p, ObjectId ev, std::string label = {});
  EventId wait(ProcId p, ObjectId ev, std::string label = {});
  EventId clear(ProcId p, ObjectId ev, std::string label = {});
  /// Appends a fork event to `parent` and returns the new child process.
  ProcId fork(ProcId parent);
  /// Appends a fork event to `parent` creating the already-declared
  /// process `child` (which must not yet have a creating fork).  Used by
  /// the trace parser, where process ids are fixed by the file.
  EventId fork_existing(ProcId parent, ProcId child);
  /// Appends a join event to `parent` waiting on `child`.
  EventId join(ProcId parent, ProcId child);

  /// The fork event that created `child` (for tests).
  EventId creating_fork(ProcId child) const;

  // ----- dependences ---------------------------------------------------
  /// When true (default), D is computed from read/write sets at build().
  void set_auto_dependences(bool enabled) { auto_dependences_ = enabled; }
  /// Adds an explicit D edge (kept in addition to any computed ones).
  void add_dependence(EventId a, EventId b);

  // ----- finalization ---------------------------------------------------
  /// Validates axioms and returns the trace.  The builder may be reused
  /// to build further (identical) traces.
  Trace build() const;
  /// Returns the trace without axiom validation; for validator tests.
  Trace build_unchecked() const;

  std::size_t num_events() const { return trace_.events_.size(); }

 private:
  EventId append(ProcId p, EventKind kind, ObjectId object,
                 std::string label = {}, std::vector<VarId> reads = {},
                 std::vector<VarId> writes = {});

  Trace trace_;
  std::vector<DependenceEdge> explicit_deps_;
  bool auto_dependences_ = true;
};

}  // namespace evord
