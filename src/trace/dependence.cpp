#include "trace/dependence.hpp"

#include <algorithm>

namespace evord {

namespace {
struct Access {
  EventId event;
  bool write;
};
}  // namespace

std::vector<DependenceEdge> compute_dependences(
    const std::vector<Event>& events,
    const std::vector<EventId>& observed_order,
    const DependenceOptions& options) {
  // Group accesses per variable in observed order, then emit every
  // conflicting ordered pair.
  VarId max_var = 0;
  for (const Event& e : events) {
    for (VarId v : e.reads) max_var = std::max(max_var, v + 1);
    for (VarId v : e.writes) max_var = std::max(max_var, v + 1);
  }
  std::vector<std::vector<Access>> per_var(max_var);
  for (EventId id : observed_order) {
    const Event& e = events[id];
    for (VarId v : e.reads) {
      // A variable in both sets is a read-modify-write: record it once,
      // as a write.
      if (!std::binary_search(e.writes.begin(), e.writes.end(), v)) {
        per_var[v].push_back({id, false});
      }
    }
    for (VarId v : e.writes) per_var[v].push_back({id, true});
  }

  std::vector<DependenceEdge> edges;
  for (const auto& accesses : per_var) {
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      for (std::size_t j = i + 1; j < accesses.size(); ++j) {
        if (!accesses[i].write && !accesses[j].write) continue;
        const Event& a = events[accesses[i].event];
        const Event& b = events[accesses[j].event];
        if (!options.include_intra_process && a.process == b.process)
          continue;
        edges.emplace_back(a.id, b.id);
      }
    }
  }
  // Distinct variables can produce duplicate (a, b) pairs; D is a relation,
  // so dedupe.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace evord
