// Resource-governed anytime queries.
//
// Theorems 1-4 say the exact ordering relations cannot be computed in
// polynomial time (assuming P != NP), so any exact query can exhaust a
// realistic resource budget.  This module makes that failure mode a
// first-class result instead of an error: AnytimeQuery runs a query
// through an escalating ladder of budgets (states / schedules / bytes /
// seconds) and, when even the largest rung is exhausted, degrades to a
// sound one-sided answer built from
//
//   * the truncated exact run's partial matrices — a budget-stopped
//     search visits a SUBSET of the feasible causal classes, so its
//     could-relations are under-approximate (every set bit is a proof)
//     and its must-relations over-approximate (every clear bit is a
//     refutation);
//   * the polynomial approximations of the paper's §4 — the combined
//     HMW + EGP + closest-common-ancestor fixpoint (approx/combined.hpp)
//     whose guaranteed orderings are a sound subset of exact causal MHB,
//     and the observed execution's vector clocks, which exhibit one
//     concrete feasible execution;
//   * partial-search witnesses: a stuck prefix found by a truncated
//     deadlock search is a valid deadlock witness regardless of
//     truncation, and a schedule witnessing a could-relation replays
//     validly no matter which budget found it.
//
// Every verdict carries full provenance: which engine answered, which
// budget tripped, and the resources spent getting there.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "approx/combined.hpp"
#include "approx/vector_clock.hpp"
#include "feasible/deadlock.hpp"
#include "ordering/exact.hpp"
#include "ordering/sat_oracle.hpp"
#include "race/race_detector.hpp"
#include "trace/trace.hpp"

namespace evord {

/// Three-valued answer of a budgeted query.  kProven / kRefuted are
/// definitive (backed by sound evidence); kUnknown means every rung
/// truncated and no one-sided bound decided the pair.
enum class VerdictState : std::uint8_t {
  kUnknown = 0,
  kProven = 1,
  kRefuted = 2,
};

const char* to_string(VerdictState state);

/// One rung of the escalation ladder.  Zero means "unlimited" for that
/// axis, exactly as in ExactOptions / SearchOptions.
struct QueryBudget {
  std::size_t max_states = 0;         ///< interleaving / deadlock engines
  std::uint64_t max_schedules = 0;    ///< causal / interval engines
  std::uint64_t max_memory_bytes = 0; ///< strict global byte budget
  double time_budget_seconds = 0.0;
  /// SAT-oracle portfolio rung: per-call conflict budget for the CDCL
  /// solver (maps to CdclOptions::max_conflicts) when the explicit
  /// engines truncate and the oracle is consulted.  0 = the oracle's
  /// own default budget, NOT unlimited.
  std::uint64_t max_conflicts = 0;

  friend bool operator==(const QueryBudget&, const QueryBudget&) = default;
};

/// Order-sensitive 64-bit digest of a budget ladder; the service layer
/// stamps cached anytime verdicts with it so an `unknown` produced by
/// one ladder is recomputed (and upgraded in place) when a caller
/// presents a different — e.g. bigger-budget — ladder.
std::uint64_t ladder_digest(const std::vector<QueryBudget>& ladder);

/// Where a verdict came from and what it cost.
struct QueryProvenance {
  /// The engine whose evidence decided (or failed to decide) the query:
  /// "exact" (un-truncated run), "exact-partial" (one-sided bit of a
  /// truncated run), "combined" (sound guaranteed-orderings fixpoint),
  /// "vector-clock" (the observed execution as an existence proof),
  /// "guaranteed-races" (superset race detector), or "none".
  std::string engine = "none";
  /// True iff an exact run completed without truncation (the verdict is
  /// then the exact Table-1 answer, not a bound).
  bool exact_complete = false;
  /// True iff the final exact rung was truncated.
  bool truncated = false;
  /// Which budget tripped on the final exact rung (kNone if complete).
  search::StopReason stop_reason = search::StopReason::kNone;
  /// Ladder rungs attempted (1-based count; 0 if the ladder was empty).
  std::size_t rungs_tried = 0;
  std::uint64_t states_visited = 0;  ///< final rung's engine states
  std::uint64_t memo_bytes = 0;      ///< final rung's store footprint
  double seconds_spent = 0.0;        ///< wall clock across ALL rungs
  /// True iff the SAT-oracle portfolio was consulted and gave up by
  /// exhausting its per-call conflict budget (as opposed to not being
  /// consulted at all).  Repeated exhaustions on one trace are the
  /// signal the daemon's circuit breaker trips on — the oracle is
  /// burning its budget without deciding, so stop consulting it.
  bool oracle_exhausted = false;

  /// One line: engine, completeness, stop reason, resources.
  std::string summary() const;
};

/// A query answer that is honest about resource exhaustion.
struct BoundedVerdict {
  VerdictState state = VerdictState::kUnknown;
  QueryProvenance provenance;
  /// Supporting schedule when one exists: a witness schedule for proven
  /// could-queries, a counterexample schedule for refuted must-queries,
  /// a stuck prefix for a proven deadlock.  May be absent even for
  /// definitive verdicts (e.g. refutations need no schedule).
  std::optional<std::vector<EventId>> witness;

  bool proven() const { return state == VerdictState::kProven; }
  bool refuted() const { return state == VerdictState::kRefuted; }
  bool unknown() const { return state == VerdictState::kUnknown; }

  /// One line: verdict + provenance summary.
  std::string summary() const;
};

struct AnytimeOptions {
  /// Escalating budgets, tried in order; the first un-truncated rung
  /// answers exactly.  Empty = default_ladder().
  std::vector<QueryBudget> ladder;
  /// Base exact configuration (semantics knobs, thread count, reduction
  /// mode...).  The per-rung budgets override max_states, max_schedules,
  /// max_memory_bytes and time_budget_seconds.
  ExactOptions exact;
  /// Portfolio mode: when every explicit rung truncated and the
  /// polynomial bounds fail to decide an ordering pair, consult the
  /// SAT-backed oracle (ordering/sat_oracle.hpp) before answering
  /// kUnknown.  Its verdicts are definitive (engine "sat-oracle"),
  /// witness schedules are replay-validated, and a conflict-budget
  /// exhaustion still degrades to kUnknown — never unsound.  Applies to
  /// the three ordering queries; race/deadlock queries are unaffected.
  bool use_sat_oracle = true;

  /// Three rungs escalating states/schedules/bytes by ~16x each, no
  /// time budgets (deterministic across machines).
  static std::vector<QueryBudget> default_ladder();
};

/// A ladder for a caller with a wall-clock deadline: the default
/// ladder's deterministic caps with each rung additionally time-boxed
/// to a slice of `deadline_seconds` (1/8, 1/4, 5/8 — early rungs stay
/// cheap so the big rung inherits most of the remaining time; the sum
/// leaves no rung past the deadline).  Each slice is floored at 1 ms so
/// a tight deadline still lets every rung make SOME progress instead of
/// tripping at state 0.  `deadline_seconds` <= 0 means "no deadline"
/// and returns default_ladder() unchanged.  The daemon maps a client's
/// deadline header through this, so an expiring deadline degrades to a
/// sound BoundedVerdict instead of a timeout error.
std::vector<QueryBudget> deadline_ladder(double deadline_seconds);

/// Runs ordering / race / deadlock queries under the budget ladder.
/// Exact results are cached per semantics (like OrderingAnalyzer), so
/// querying many pairs costs one ladder climb.  The referenced trace
/// must outlive the query object.
class AnytimeQuery {
 public:
  explicit AnytimeQuery(const Trace& trace, AnytimeOptions options = {});

  const AnytimeOptions& options() const { return options_; }

  // ----- ordering queries (Table 1) ------------------------------------
  BoundedVerdict must_have_happened_before(
      EventId a, EventId b, Semantics semantics = Semantics::kCausal);
  BoundedVerdict could_have_happened_before(
      EventId a, EventId b, Semantics semantics = Semantics::kCausal);
  BoundedVerdict could_have_been_concurrent(EventId a, EventId b);

  // ----- applications ---------------------------------------------------
  /// Does the conflicting pair (a, b) race?  Proven by a (possibly
  /// truncated) exact detector hit; refuted when even the superset
  /// guaranteed detector reports no race.
  BoundedVerdict race_between(EventId a, EventId b);
  /// Could any feasible schedule prefix wedge?  A stuck witness from a
  /// truncated search still proves; refutation needs exhaustion.
  BoundedVerdict can_deadlock();

  // ----- warm-state introspection ---------------------------------------
  /// Number of budget-ladder climbs this object has performed (one per
  /// distinct cached computation: exact relations per semantics, the
  /// race sweep, the deadlock sweep).  A caller that keeps reusing one
  /// AnytimeQuery sees this stay flat across repeated queries — the
  /// regression signal for the historic rebuild-on-equal-ladder bug in
  /// OrderingAnalyzer::anytime().
  std::size_t ladder_climbs() const { return climbs_; }
  /// True iff the exact ladder run for `semantics` is already cached.
  bool has_cached_run(Semantics semantics) const {
    return exact_[static_cast<std::size_t>(semantics)].has_value();
  }

 private:
  struct LadderRun {
    OrderingRelations relations;
    QueryProvenance provenance;
  };

  /// Climbs the ladder for `semantics` (cached): stops at the first
  /// un-truncated rung, else keeps the final (largest) truncated run.
  const LadderRun& exact_run(Semantics semantics);
  ExactOptions rung_options(const QueryBudget& rung) const;
  /// Budgets of the rung that produced a cached result (the last rung
  /// that provenance records as attempted) — used for witness searches.
  ExactOptions witness_options(const QueryProvenance& provenance) const;
  /// True iff the polynomial causal bounds (combined / vector clocks)
  /// are comparable with the configured exact causal order.
  bool causal_bounds_apply(Semantics semantics) const;
  const CombinedResult& combined();
  const VectorClockResult& observed();
  /// Lazily-built SAT oracle shared by all semantics (one solver build).
  SatOracle& oracle();
  /// Portfolio escape hatch: asks the oracle to settle a pair the
  /// truncated run + polynomial bounds left unknown.  On success fills
  /// `v` (state, engine "sat-oracle", witness) and returns true.
  bool oracle_decides(RelationKind kind, EventId a, EventId b,
                      Semantics semantics, BoundedVerdict& v);

  const Trace& trace_;
  AnytimeOptions options_;
  std::array<std::optional<LadderRun>, 3> exact_;
  std::optional<std::pair<DeadlockReport, QueryProvenance>> deadlock_;
  std::optional<std::pair<RaceReport, QueryProvenance>> races_;
  std::optional<RaceReport> guaranteed_races_;
  std::optional<CombinedResult> combined_;
  std::optional<VectorClockResult> observed_;
  std::unique_ptr<SatOracle> oracle_;
  std::size_t climbs_ = 0;
};

}  // namespace evord
