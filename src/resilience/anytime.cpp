#include "resilience/anytime.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>

#include "ordering/witness.hpp"
#include "trace/axioms.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace evord {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Hard cap on witness-extraction enumeration when the rung that
/// produced the verdict carries no schedule budget of its own.
constexpr std::uint64_t kWitnessScheduleCap = 1 << 14;

}  // namespace

const char* to_string(VerdictState state) {
  switch (state) {
    case VerdictState::kUnknown:
      return "unknown";
    case VerdictState::kProven:
      return "proven";
    case VerdictState::kRefuted:
      return "refuted";
  }
  return "?";
}

std::string QueryProvenance::summary() const {
  std::ostringstream os;
  os << "engine=" << engine;
  if (exact_complete) {
    os << " (complete)";
  } else if (truncated) {
    os << " (truncated)";
  }
  os << " rungs=" << rungs_tried;
  if (stop_reason != search::StopReason::kNone) {
    os << " stopped-by=" << search::to_string(stop_reason);
  }
  os << " states=" << states_visited << " memo-bytes=" << memo_bytes
     << " seconds=" << seconds_spent;
  if (oracle_exhausted) os << " oracle-exhausted";
  return os.str();
}

std::string BoundedVerdict::summary() const {
  std::string line = to_string(state);
  line += " [";
  line += provenance.summary();
  line += ']';
  if (witness.has_value()) {
    line += " witness-length=" + std::to_string(witness->size());
  }
  return line;
}

std::uint64_t ladder_digest(const std::vector<QueryBudget>& ladder) {
  std::uint64_t h = hash_mix(0x1adde4, ladder.size(), 0);
  for (const QueryBudget& rung : ladder) {
    h = hash_mix(0x01, h, rung.max_states);
    h = hash_mix(0x02, h, rung.max_schedules);
    h = hash_mix(0x03, h, rung.max_memory_bytes);
    std::uint64_t seconds_bits = 0;
    static_assert(sizeof(seconds_bits) == sizeof(rung.time_budget_seconds));
    std::memcpy(&seconds_bits, &rung.time_budget_seconds,
                sizeof(seconds_bits));
    h = hash_mix(0x04, h, seconds_bits);
    h = hash_mix(0x05, h, rung.max_conflicts);
  }
  return h;
}

std::vector<QueryBudget> AnytimeOptions::default_ladder() {
  // Deterministic axes only (no wall-clock rungs): states/schedules and
  // bytes escalate ~16x per rung, so an answer the small rung can give
  // is never paid for at the big rung's price.
  return {
      QueryBudget{.max_states = std::size_t{1} << 12,
                  .max_schedules = std::uint64_t{1} << 12,
                  .max_memory_bytes = std::uint64_t{1} << 20,
                  .time_budget_seconds = 0.0,
                  .max_conflicts = std::uint64_t{1} << 14},
      QueryBudget{.max_states = std::size_t{1} << 16,
                  .max_schedules = std::uint64_t{1} << 16,
                  .max_memory_bytes = std::uint64_t{16} << 20,
                  .time_budget_seconds = 0.0,
                  .max_conflicts = std::uint64_t{1} << 17},
      QueryBudget{.max_states = std::size_t{1} << 20,
                  .max_schedules = std::uint64_t{1} << 20,
                  .max_memory_bytes = std::uint64_t{256} << 20,
                  .time_budget_seconds = 0.0,
                  .max_conflicts = std::uint64_t{1} << 20},
  };
}

std::vector<QueryBudget> deadline_ladder(double deadline_seconds) {
  std::vector<QueryBudget> ladder = AnytimeOptions::default_ladder();
  if (deadline_seconds <= 0.0) return ladder;
  // Slices sum to 1 so the ladder as a whole respects the deadline;
  // early rungs get small shares because they usually answer in far
  // less (their state caps trip first) and any unused slice implicitly
  // rolls forward as the later rungs start sooner.
  constexpr double kSlices[] = {0.125, 0.25, 0.625};
  constexpr double kMinSlice = 0.001;  // 1 ms: always allow some progress
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const double share = i < std::size(kSlices) ? kSlices[i] : kSlices[2];
    ladder[i].time_budget_seconds =
        std::max(kMinSlice, deadline_seconds * share);
  }
  return ladder;
}

AnytimeQuery::AnytimeQuery(const Trace& trace, AnytimeOptions options)
    : trace_(trace), options_(std::move(options)) {
  if (options_.ladder.empty()) {
    options_.ladder = AnytimeOptions::default_ladder();
  }
  const AxiomReport axioms = validate_axioms(trace_);
  EVORD_CHECK(axioms.ok(),
              "trace violates model axioms:\n" << axioms.text());
}

ExactOptions AnytimeQuery::rung_options(const QueryBudget& rung) const {
  ExactOptions eo = options_.exact;
  eo.max_states = rung.max_states;
  eo.max_schedules = rung.max_schedules;
  eo.max_memory_bytes = rung.max_memory_bytes;
  eo.time_budget_seconds = rung.time_budget_seconds;
  return eo;
}

ExactOptions AnytimeQuery::witness_options(
    const QueryProvenance& provenance) const {
  const std::size_t rung =
      provenance.rungs_tried == 0
          ? 0
          : std::min(provenance.rungs_tried, options_.ladder.size()) - 1;
  ExactOptions eo = rung_options(options_.ladder[rung]);
  // Witnesses are best-effort decoration on an already-sound verdict,
  // and their extraction enumerates plain schedules — which charge no
  // dedup store, so a bytes-only rung would leave them unbounded.
  // Always cap the enumeration; a missed witness just stays nullopt.
  if (eo.max_schedules == 0) eo.max_schedules = kWitnessScheduleCap;
  return eo;
}

bool AnytimeQuery::causal_bounds_apply(Semantics semantics) const {
  // The combined fixpoint's guaranteed orderings are a subset of exact
  // causal MHB under full F3 feasibility with data edges in the causal
  // order; under any other exact configuration the inclusion argument
  // does not hold, so the bound is not used.
  return semantics == Semantics::kCausal &&
         options_.exact.respect_dependences &&
         options_.exact.causal_data_edges;
}

const CombinedResult& AnytimeQuery::combined() {
  if (!combined_.has_value()) combined_ = compute_combined(trace_);
  return *combined_;
}

SatOracle& AnytimeQuery::oracle() {
  if (oracle_ == nullptr) {
    SatOracleOptions so;
    so.respect_dependences = options_.exact.respect_dependences;
    so.causal_data_edges = options_.exact.causal_data_edges;
    oracle_ = std::make_unique<SatOracle>(trace_, so);
  }
  return *oracle_;
}

bool AnytimeQuery::oracle_decides(RelationKind kind, EventId a, EventId b,
                                  Semantics semantics, BoundedVerdict& v) {
  if (!options_.use_sat_oracle) return false;
  SatOracle& o = oracle();
  if (!o.available()) return false;
  // Conflict budget of the rung whose run produced this verdict (the
  // last one attempted); 0 falls back to the oracle's own default.
  const std::size_t rung =
      v.provenance.rungs_tried == 0
          ? 0
          : std::min(v.provenance.rungs_tried, options_.ladder.size()) - 1;
  o.set_max_conflicts(options_.ladder[rung].max_conflicts);
  const std::uint64_t undecided_before = o.stats().sat_undecided;
  const OracleVerdict ov = o.query(kind, a, b, semantics);
  if (ov == OracleVerdict::kUnknown) {
    // Distinguish "the oracle burned its conflict budget" from "the
    // oracle was structurally unable to answer": only the former grows
    // sat_undecided, and only the former should feed a circuit breaker.
    if (o.stats().sat_undecided > undecided_before) {
      v.provenance.oracle_exhausted = true;
    }
    return false;
  }
  v.state = ov == OracleVerdict::kProven ? VerdictState::kProven
                                         : VerdictState::kRefuted;
  // Keep the base run's truncation provenance (it is what forced the
  // portfolio consult); only the deciding engine changes.
  v.provenance.engine = "sat-oracle";
  if (o.last_witness().has_value()) v.witness = *o.last_witness();
  return true;
}

const VectorClockResult& AnytimeQuery::observed() {
  if (!observed_.has_value()) {
    // Match the exact causal order's edge set, so that an observed
    // ordering / incomparability is an existence proof for the same
    // relation the exact engine computes.
    observed_ = compute_vector_clocks(
        trace_, {.include_data_edges = options_.exact.causal_data_edges,
                 .build_matrix = true});
  }
  return *observed_;
}

const AnytimeQuery::LadderRun& AnytimeQuery::exact_run(Semantics semantics) {
  auto& slot = exact_[static_cast<std::size_t>(semantics)];
  if (slot.has_value()) return *slot;
  ++climbs_;
  const Clock::time_point start = Clock::now();
  LadderRun run;
  for (std::size_t i = 0; i < options_.ladder.size(); ++i) {
    run.relations =
        compute_exact(trace_, semantics, rung_options(options_.ladder[i]));
    run.provenance.rungs_tried = i + 1;
    if (!run.relations.truncated) break;
  }
  QueryProvenance& p = run.provenance;
  p.truncated = run.relations.truncated;
  p.exact_complete = !p.truncated;
  p.engine = p.exact_complete ? "exact" : "exact-partial";
  p.stop_reason = run.relations.search.stop_reason;
  p.states_visited = run.relations.search.states_visited;
  p.memo_bytes = run.relations.search.memo_bytes;
  p.seconds_spent = seconds_since(start);
  slot = std::move(run);
  return *slot;
}

BoundedVerdict AnytimeQuery::must_have_happened_before(EventId a, EventId b,
                                                       Semantics semantics) {
  const LadderRun& run = exact_run(semantics);
  BoundedVerdict v;
  v.provenance = run.provenance;
  // Complete: the bit IS the Table-1 answer.  Truncated: the must-matrix
  // intersects over a SUBSET of the feasible causal classes, so it
  // over-approximates — a clear bit is still a sound refutation.
  if (!run.relations.holds(RelationKind::kMHB, a, b)) {
    v.state = VerdictState::kRefuted;
    v.witness =
        refute_must_happen_before(trace_, a, b, semantics,
                                  witness_options(run.provenance));
    return v;
  }
  if (run.provenance.exact_complete) {
    v.state = VerdictState::kProven;
    return v;
  }
  // Degrade: the combined fixpoint is a sound subset of exact MHB.
  if (causal_bounds_apply(semantics) && combined().guaranteed.holds(a, b)) {
    v.state = VerdictState::kProven;
    v.provenance.engine = "combined";
    return v;
  }
  // Portfolio: the SAT oracle settles pairs the enumeration wall hid.
  if (oracle_decides(RelationKind::kMHB, a, b, semantics, v)) return v;
  v.state = VerdictState::kUnknown;
  return v;
}

BoundedVerdict AnytimeQuery::could_have_happened_before(EventId a, EventId b,
                                                        Semantics semantics) {
  const LadderRun& run = exact_run(semantics);
  BoundedVerdict v;
  v.provenance = run.provenance;
  // The could-matrix unions over the visited classes: a set bit is a
  // sound proof whether or not the run truncated.
  if (run.relations.holds(RelationKind::kCHB, a, b)) {
    v.state = VerdictState::kProven;
    v.witness = witness_could_happen_before(trace_, a, b, semantics,
                                            witness_options(run.provenance));
    return v;
  }
  if (run.provenance.exact_complete) {
    v.state = VerdictState::kRefuted;
    return v;
  }
  if (causal_bounds_apply(semantics)) {
    // The observed execution is itself feasible: an observed ordering is
    // an existence proof.
    if (observed().happened_before.holds(a, b)) {
      v.state = VerdictState::kProven;
      v.provenance.engine = "vector-clock";
      v.witness = witness_could_happen_before(
          trace_, a, b, semantics, witness_options(run.provenance));
      return v;
    }
    // b guaranteed-before a in EVERY feasible execution refutes a T b
    // (the temporal order is a strict order).
    if (a != b && combined().guaranteed.holds(b, a)) {
      v.state = VerdictState::kRefuted;
      v.provenance.engine = "combined";
      return v;
    }
  }
  if (oracle_decides(RelationKind::kCHB, a, b, semantics, v)) return v;
  v.state = VerdictState::kUnknown;
  return v;
}

BoundedVerdict AnytimeQuery::could_have_been_concurrent(EventId a,
                                                        EventId b) {
  const LadderRun& run = exact_run(Semantics::kCausal);
  BoundedVerdict v;
  v.provenance = run.provenance;
  if (run.relations.holds(RelationKind::kCCW, a, b)) {
    v.state = VerdictState::kProven;
    v.witness = witness_could_be_concurrent(trace_, a, b,
                                            witness_options(run.provenance));
    return v;
  }
  if (run.provenance.exact_complete) {
    v.state = VerdictState::kRefuted;
    return v;
  }
  if (causal_bounds_apply(Semantics::kCausal)) {
    if (a != b && !observed().happened_before.holds(a, b) &&
        !observed().happened_before.holds(b, a)) {
      v.state = VerdictState::kProven;
      v.provenance.engine = "vector-clock";
      v.witness = witness_could_be_concurrent(
          trace_, a, b, witness_options(run.provenance));
      return v;
    }
    if (combined().guaranteed.holds(a, b) ||
        combined().guaranteed.holds(b, a)) {
      // Ordered in every feasible execution: never concurrent.
      v.state = VerdictState::kRefuted;
      v.provenance.engine = "combined";
      return v;
    }
  }
  if (oracle_decides(RelationKind::kCCW, a, b, Semantics::kCausal, v)) {
    return v;
  }
  v.state = VerdictState::kUnknown;
  return v;
}

BoundedVerdict AnytimeQuery::race_between(EventId a, EventId b) {
  if (!races_.has_value()) {
    ++climbs_;
    const Clock::time_point start = Clock::now();
    QueryProvenance p;
    RaceReport report;
    for (std::size_t i = 0; i < options_.ladder.size(); ++i) {
      report = detect_races_exact(trace_, rung_options(options_.ladder[i]));
      p.rungs_tried = i + 1;
      if (!report.truncated) break;
    }
    p.truncated = report.truncated;
    p.exact_complete = !p.truncated;
    p.engine = p.exact_complete ? "exact" : "exact-partial";
    p.stop_reason = report.search.stop_reason;
    p.states_visited = report.search.states_visited;
    p.memo_bytes = report.search.memo_bytes;
    p.seconds_spent = seconds_since(start);
    races_ = {std::move(report), std::move(p)};
  }
  const auto& [report, base] = *races_;
  BoundedVerdict v;
  v.provenance = base;
  // Race semantics judges concurrency against synchronization-only
  // causal orders; witnesses follow suit.
  ExactOptions wo = witness_options(base);
  wo.causal_data_edges = false;
  if (report.contains(a, b)) {
    // A truncated exact detector under-reports, so a reported race is
    // a reported race.
    v.state = VerdictState::kProven;
    v.witness = witness_could_be_concurrent(trace_, a, b, wo);
    return v;
  }
  if (base.exact_complete) {
    v.state = VerdictState::kRefuted;
    return v;
  }
  // Degrade: the guaranteed detector never misses a race (it clears a
  // pair only on sound must-orderings), so its silence refutes.
  if (!guaranteed_races_.has_value()) {
    guaranteed_races_ = detect_races_guaranteed(trace_);
  }
  if (!guaranteed_races_->contains(a, b)) {
    v.state = VerdictState::kRefuted;
    v.provenance.engine = "guaranteed-races";
    return v;
  }
  v.state = VerdictState::kUnknown;
  return v;
}

BoundedVerdict AnytimeQuery::can_deadlock() {
  if (!deadlock_.has_value()) {
    ++climbs_;
    const Clock::time_point start = Clock::now();
    QueryProvenance p;
    DeadlockReport report;
    for (std::size_t i = 0; i < options_.ladder.size(); ++i) {
      const QueryBudget& rung = options_.ladder[i];
      DeadlockOptions dopts;
      dopts.stepper.respect_dependences = options_.exact.respect_dependences;
      dopts.max_states = rung.max_states;
      dopts.max_memory_bytes = rung.max_memory_bytes;
      dopts.time_budget_seconds = rung.time_budget_seconds;
      dopts.num_threads = options_.exact.num_threads;
      dopts.steal = options_.exact.steal;
      report = analyze_deadlocks(trace_, dopts);
      p.rungs_tried = i + 1;
      // A stuck witness is valid however far the search got; no need to
      // escalate once one is in hand, nor after an exhaustive run.
      if (report.can_deadlock || !report.truncated) break;
    }
    p.truncated = report.truncated;
    p.exact_complete = !p.truncated;
    p.engine = p.exact_complete ? "exact" : "exact-partial";
    p.stop_reason = report.search.stop_reason;
    p.states_visited = report.search.states_visited;
    p.memo_bytes = report.search.memo_bytes;
    p.seconds_spent = seconds_since(start);
    deadlock_ = {std::move(report), std::move(p)};
  }
  const auto& [report, base] = *deadlock_;
  BoundedVerdict v;
  v.provenance = base;
  if (report.can_deadlock) {
    v.state = VerdictState::kProven;
    v.witness = report.witness_prefix;
    return v;
  }
  // Refuting deadlock freedom needs the whole space.
  v.state = base.exact_complete ? VerdictState::kRefuted
                                : VerdictState::kUnknown;
  return v;
}

}  // namespace evord
