#include "workload/generators.hpp"

#include <string>

#include "util/check.hpp"

namespace evord {

Trace random_semaphore_trace(const SemTraceConfig& config, Rng& rng) {
  EVORD_CHECK(config.num_processes >= 1, "need a process");
  TraceBuilder b;
  std::vector<ObjectId> sems;
  for (std::size_t s = 0; s < config.num_semaphores; ++s) {
    const std::string name = "s" + std::to_string(s);
    sems.push_back(config.binary_semaphores ? b.binary_semaphore(name)
                                            : b.semaphore(name));
  }
  std::vector<VarId> vars;
  for (std::size_t v = 0; v < config.num_variables; ++v) {
    vars.push_back(b.variable("x" + std::to_string(v)));
  }
  std::vector<ProcId> procs{b.root()};
  while (procs.size() < config.num_processes) procs.push_back(b.add_process());

  std::vector<int> count(config.num_semaphores, 0);
  for (std::size_t i = 0; i < config.num_events; ++i) {
    const ProcId p = procs[rng.below(procs.size())];
    if (!sems.empty() && rng.chance(config.sync_probability)) {
      const std::size_t s = rng.below(sems.size());
      if (count[s] > 0 && rng.chance(0.5)) {
        b.sem_p(p, sems[s]);
        --count[s];
      } else {
        b.sem_v(p, sems[s]);
        if (!(config.binary_semaphores && count[s] == 1)) ++count[s];
      }
    } else {
      std::vector<VarId> reads;
      std::vector<VarId> writes;
      if (!vars.empty()) {
        if (rng.chance(0.6)) reads.push_back(vars[rng.below(vars.size())]);
        if (rng.chance(0.5)) writes.push_back(vars[rng.below(vars.size())]);
      }
      b.compute(p, "c" + std::to_string(i), std::move(reads),
                std::move(writes));
    }
  }
  return b.build();
}

Trace random_event_trace(const EventTraceConfig& config, Rng& rng) {
  EVORD_CHECK(config.num_processes >= 1 && config.num_event_vars >= 1,
              "need a process and an event variable");
  TraceBuilder b;
  std::vector<ObjectId> evs;
  for (std::size_t v = 0; v < config.num_event_vars; ++v) {
    evs.push_back(b.event_var("e" + std::to_string(v)));
  }
  std::vector<VarId> vars;
  for (std::size_t v = 0; v < config.num_variables; ++v) {
    vars.push_back(b.variable("x" + std::to_string(v)));
  }
  std::vector<ProcId> procs{b.root()};
  while (procs.size() < config.num_processes) procs.push_back(b.add_process());

  std::vector<bool> posted(config.num_event_vars, false);
  for (std::size_t i = 0; i < config.num_events; ++i) {
    const ProcId p = procs[rng.below(procs.size())];
    if (!vars.empty() && rng.chance(0.3)) {
      const bool write = rng.chance(0.5);
      const VarId v = vars[rng.below(vars.size())];
      b.compute(p, "c" + std::to_string(i),
                write ? std::vector<VarId>{} : std::vector<VarId>{v},
                write ? std::vector<VarId>{v} : std::vector<VarId>{});
      continue;
    }
    const std::size_t v = rng.below(evs.size());
    if (posted[v] && rng.chance(config.wait_probability)) {
      b.wait(p, evs[v]);
    } else if (posted[v] && rng.chance(config.clear_probability)) {
      b.clear(p, evs[v]);
      posted[v] = false;
    } else {
      b.post(p, evs[v]);
      posted[v] = true;
    }
  }
  return b.build();
}

Trace random_fork_join_trace(std::size_t num_children,
                             std::size_t events_per_child, Rng& rng) {
  EVORD_CHECK(num_children >= 1, "need a child");
  TraceBuilder b;
  const ObjectId s = b.semaphore("s");
  const VarId x = b.variable("x");
  std::vector<ProcId> children;
  for (std::size_t c = 0; c < num_children; ++c) {
    children.push_back(b.fork(b.root()));
  }
  int count = 0;
  for (std::size_t i = 0; i < num_children * events_per_child; ++i) {
    const ProcId p = children[rng.below(children.size())];
    const auto choice = rng.below(3);
    if (choice == 0) {
      b.sem_v(p, s);
      ++count;
    } else if (choice == 1 && count > 0) {
      b.sem_p(p, s);
      --count;
    } else {
      const bool write = rng.chance(0.5);
      b.compute(p, "", write ? std::vector<VarId>{} : std::vector<VarId>{x},
                write ? std::vector<VarId>{x} : std::vector<VarId>{});
    }
  }
  for (ProcId c : children) b.join(b.root(), c);
  return b.build();
}

Trace wide_fork_trace(std::size_t num_children,
                      std::size_t events_per_child) {
  EVORD_CHECK(num_children >= 1, "need a child");
  TraceBuilder b;
  std::vector<ProcId> children;
  std::vector<VarId> slots;
  for (std::size_t c = 0; c < num_children; ++c) {
    children.push_back(b.fork(b.root()));
    slots.push_back(b.variable("slot" + std::to_string(c)));
  }
  for (std::size_t i = 0; i < events_per_child; ++i) {
    for (std::size_t c = 0; c < num_children; ++c) {
      b.compute(children[c], "", {}, {slots[c]});
    }
  }
  for (ProcId c : children) b.join(b.root(), c);
  return b.build();
}

Trace pipeline_trace(std::size_t stages, std::size_t items) {
  EVORD_CHECK(stages >= 2 && items >= 1, "need >= 2 stages and an item");
  TraceBuilder b;
  // `links` carries "cell full" tokens downstream; `acks` carries "cell
  // free" tokens back upstream (capacity-1 bounded buffer).  Without the
  // acks a producer could overwrite a cell while the consumer reads it —
  // a genuine race this generator must not contain.
  std::vector<ObjectId> links;
  std::vector<ObjectId> acks;
  for (std::size_t s = 0; s + 1 < stages; ++s) {
    links.push_back(b.semaphore("link" + std::to_string(s)));
    acks.push_back(b.semaphore("ack" + std::to_string(s), 1));
  }
  std::vector<VarId> cells;
  for (std::size_t s = 0; s + 1 < stages; ++s) {
    cells.push_back(b.variable("cell" + std::to_string(s)));
  }
  std::vector<ProcId> procs{b.root()};
  for (std::size_t s = 1; s < stages; ++s) procs.push_back(b.add_process());

  // Observed order: item-by-item through the whole pipeline (any valid
  // order would do; this one is simplest to emit).
  for (std::size_t item = 0; item < items; ++item) {
    for (std::size_t s = 0; s < stages; ++s) {
      const std::string tag =
          "i" + std::to_string(item) + "s" + std::to_string(s);
      if (s > 0) b.sem_p(procs[s], links[s - 1]);
      if (s + 1 < stages) b.sem_p(procs[s], acks[s]);
      std::vector<VarId> reads;
      std::vector<VarId> writes;
      if (s > 0) reads.push_back(cells[s - 1]);
      if (s + 1 < stages) writes.push_back(cells[s]);
      b.compute(procs[s], "work" + tag, std::move(reads), std::move(writes));
      if (s > 0) b.sem_v(procs[s], acks[s - 1]);
      if (s + 1 < stages) b.sem_v(procs[s], links[s]);
    }
  }
  return b.build();
}

Trace barrier_trace(std::size_t num_processes, std::size_t phases) {
  EVORD_CHECK(num_processes >= 2, "need >= 2 processes");
  TraceBuilder b;
  // One arrive/depart semaphore pair per phase; the last arriver (in the
  // observed order, process 0 acts as coordinator) releases everyone.
  std::vector<ObjectId> arrive;
  std::vector<ObjectId> depart;
  for (std::size_t ph = 0; ph < phases; ++ph) {
    arrive.push_back(b.semaphore("arrive" + std::to_string(ph)));
    depart.push_back(b.semaphore("depart" + std::to_string(ph)));
  }
  std::vector<VarId> slots;
  for (std::size_t p = 0; p < num_processes; ++p) {
    slots.push_back(b.variable("slot" + std::to_string(p)));
  }
  const VarId shared = b.variable("shared");
  std::vector<ProcId> procs{b.root()};
  while (procs.size() < num_processes) procs.push_back(b.add_process());

  for (std::size_t ph = 0; ph < phases; ++ph) {
    // Everyone (including the coordinator) writes its slot and arrives.
    for (std::size_t p = 0; p < num_processes; ++p) {
      b.compute(procs[p], "", {}, {slots[p]});
      if (p != 0) b.sem_v(procs[p], arrive[ph]);
    }
    // Coordinator collects arrivals, writes the shared cell, releases.
    for (std::size_t p = 1; p < num_processes; ++p) {
      b.sem_p(procs[0], arrive[ph]);
    }
    b.compute(procs[0], "publish" + std::to_string(ph), {}, {shared});
    for (std::size_t p = 1; p < num_processes; ++p) {
      b.sem_v(procs[0], depart[ph]);
    }
    for (std::size_t p = 1; p < num_processes; ++p) {
      b.sem_p(procs[p], depart[ph]);
      b.compute(procs[p], "", {shared}, {});
    }
  }
  return b.build();
}

Program dining_philosophers(std::size_t seats, std::size_t rounds) {
  EVORD_CHECK(seats >= 2, "need >= 2 philosophers");
  Program prog;
  std::vector<ObjectId> forks;
  for (std::size_t f = 0; f < seats; ++f) {
    forks.push_back(prog.binary_semaphore("fork" + std::to_string(f), 1));
  }
  for (std::size_t p = 0; p < seats; ++p) {
    const ProcId proc = prog.add_process("phil" + std::to_string(p));
    // Asymmetric acquisition order breaks the circular wait.
    const ObjectId first =
        p + 1 == seats ? forks[0] : forks[p];
    const ObjectId second =
        p + 1 == seats ? forks[p] : forks[(p + 1) % seats];
    for (std::size_t r = 0; r < rounds; ++r) {
      prog.append(proc, Stmt::sem_p(first));
      prog.append(proc, Stmt::sem_p(second));
      prog.append(proc, Stmt::skip("eat" + std::to_string(p) + "_" +
                                   std::to_string(r)));
      prog.append(proc, Stmt::sem_v(second));
      prog.append(proc, Stmt::sem_v(first));
    }
  }
  return prog;
}

}  // namespace evord
