// Workload generators: parameterized families of valid traces and
// programs for tests, benches and experiments.
//
// Trace generators emit operations only when the semantics allow them at
// emission time, so the build order is a valid observed order and the
// resulting Trace always passes the axiom validator.
#pragma once

#include <cstdint>

#include "sync/program.hpp"
#include "trace/builder.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace evord {

struct SemTraceConfig {
  std::size_t num_processes = 3;
  std::size_t num_semaphores = 2;
  std::size_t num_variables = 2;
  std::size_t num_events = 12;
  double sync_probability = 0.55;  ///< semaphore op vs computation
  bool binary_semaphores = false;
};

/// Random semaphore/computation trace.
Trace random_semaphore_trace(const SemTraceConfig& config, Rng& rng);

struct EventTraceConfig {
  std::size_t num_processes = 3;
  std::size_t num_event_vars = 2;
  std::size_t num_variables = 0;
  std::size_t num_events = 12;
  double wait_probability = 0.4;   ///< when posted
  double clear_probability = 0.3;  ///< when posted and not waiting
};

/// Random Post/Wait/Clear trace.
Trace random_event_trace(const EventTraceConfig& config, Rng& rng);

/// Fork/join tree: the root forks `num_children` workers that perform
/// random semaphore/computation events, then joins them all.
Trace random_fork_join_trace(std::size_t num_children,
                             std::size_t events_per_child, Rng& rng);

/// Deterministic wide fork/join: the root forks `num_children` workers,
/// each computing `events_per_child` times on its OWN private variable,
/// then joins them all.  The children are pairwise independent, so the
/// schedule tree is maximally interleaved — the canonical stress case
/// for partial-order reduction (one representative order suffices).
Trace wide_fork_trace(std::size_t num_children,
                      std::size_t events_per_child);

/// A producer/consumer pipeline of `stages` processes connected by
/// semaphores; stage i writes x_i and signals stage i+1.  Fully
/// synchronized: race-free by construction, MHB-dense.
Trace pipeline_trace(std::size_t stages, std::size_t items);

/// `phases` barrier rounds over `num_processes` processes, implemented
/// with a pair of counting semaphores per phase (arrive/depart).  Each
/// process writes a private slot each phase and reads a shared cell
/// after the barrier — race-free, heavily concurrent within phases.
Trace barrier_trace(std::size_t num_processes, std::size_t phases);

/// Dining philosophers as a Program (forks = binary semaphores, with the
/// classic asymmetric deadlock-avoidance order).  Runnable on the
/// scheduler; every schedule completes.
Program dining_philosophers(std::size_t seats, std::size_t rounds);

}  // namespace evord
