// Packed state layer for the unified search core.
//
// Three pieces, shared by every explorer:
//
//   * PackedStateLayout — the bit-level schema of a scheduling state:
//     per-process positions at ceil(log2(len+1)) bits each, one bit per
//     event variable and one parity bit per binary semaphore, packed
//     little-endian into 64-bit words.  TraceStepper maintains the
//     packed words incrementally (O(1) per apply/undo); when the whole
//     state fits one word (single_word()), that word IS an exact,
//     collision-free state key and the engines dedup on it directly
//     instead of on a 64-bit hash.  to_legacy_key() expands the packed
//     words into the historical TraceStepper::encode_key() layout, so
//     the two encodings can be cross-checked bit for bit.
//
//   * PerStateBitset / BitRow — a row arena for per-state side data
//     (closure matrices, done-before rows).  All rows share one
//     contiguous word vector, so trackers and accumulators stop paying
//     a heap allocation per state/row; BitRow exposes the word-parallel
//     operations the closure kernels need, plus transpose64() — an
//     in-place 64x64 bit-matrix transpose used to turn row-oriented
//     reachability into column-oriented ancestor masks in O(n^2/64).
//
//   * PackedStateRegistry — the sharded state store behind
//     ShardedFingerprintSet / FingerprintBoolMap.  Keys are quotiented:
//     an invertible mix of the key's low key_bits selects shard and
//     bucket from its low bits, and only the remaining
//     (key_bits - shard_bits - bucket_bits) remainder bits are stored,
//     bit-packed into per-bucket arrays.  With exact single-word keys
//     this stores states at a fraction of the historical 8 bytes each;
//     with 64-bit hash fingerprints it still undercuts the old
//     unordered_set node overhead.  Buckets double (one remainder bit
//     moves into the bucket index) when average fill passes a
//     threshold, so lookups stay short scans of packed words.
//
//     Tiered spill: with spill enabled and a MemoryAccountant attached,
//     reaching ~90% of the byte budget freezes every shard's resident
//     entries into a sorted run of full-width keys in an unlinked
//     mmap-backed temp file, releases the RAM charges, and restarts the
//     shards empty; membership checks consult the mapped runs (binary
//     search) before the resident buckets.  Results are bit-identical
//     to an unbudgeted run — spilling changes where entries live, never
//     what is or is not a duplicate.  With spill off (the default) the
//     store behaves exactly as before: the accountant trips and the
//     search stops with StopReason::kMemory.
//
// Memory accounting is real: bytes() reports the store's actual heap
// footprint (bucket arrays + packed words + retained debug payloads),
// and the attached accountant is charged/released the same deltas.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "search/memory.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/dynamic_bitset.hpp"

namespace evord::search {

// ---------------------------------------------------------------------------
// PackedStateLayout
// ---------------------------------------------------------------------------

class PackedStateLayout {
 public:
  static constexpr std::uint32_t kNoBit = 0xffffffffu;

  PackedStateLayout() = default;
  explicit PackedStateLayout(const Trace& trace);

  /// Total bits of one packed state.
  std::uint32_t key_bits() const noexcept { return key_bits_; }
  /// Words backing one packed state (always >= 1 so word 0 is valid).
  std::size_t num_words() const noexcept { return num_words_; }
  /// True iff the whole state fits one 64-bit word — the packed word is
  /// then an exact (injective) state key.
  bool single_word() const noexcept { return key_bits_ <= 64; }

  std::size_t num_processes() const noexcept { return positions_.size(); }
  std::uint32_t position_offset(ProcId p) const { return positions_[p].offset; }
  std::uint32_t position_width(ProcId p) const { return positions_[p].width; }
  std::uint32_t posted_offset(ObjectId v) const { return posted_offset_[v]; }
  /// Parity-bit offset for semaphore `s`, or kNoBit for non-binary sems.
  std::uint32_t binary_offset(ObjectId s) const { return binary_offset_[s]; }

  /// Words of the historical TraceStepper::encode_key() encoding.
  std::size_t legacy_key_words() const noexcept {
    return legacy_pos_words_ + legacy_posted_words_ + legacy_bin_words_;
  }

  // ----- word-level field access (hot path; inline) ---------------------
  static std::uint64_t read_field(const std::uint64_t* words,
                                  std::uint32_t offset,
                                  std::uint32_t width) noexcept {
    if (width == 0) return 0;
    const std::uint64_t mask =
        width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
    const std::size_t wi = offset >> 6;
    const std::uint32_t bo = offset & 63u;
    std::uint64_t v = words[wi] >> bo;
    if (bo + width > 64) v |= words[wi + 1] << (64 - bo);
    return v & mask;
  }
  static void write_field(std::uint64_t* words, std::uint32_t offset,
                          std::uint32_t width, std::uint64_t value) noexcept {
    if (width == 0) return;
    const std::uint64_t mask =
        width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
    const std::size_t wi = offset >> 6;
    const std::uint32_t bo = offset & 63u;
    words[wi] = (words[wi] & ~(mask << bo)) | ((value & mask) << bo);
    if (bo + width > 64) {
      const std::uint64_t hi_mask = mask >> (64 - bo);
      words[wi + 1] =
          (words[wi + 1] & ~hi_mask) | ((value & mask) >> (64 - bo));
    }
  }
  static void toggle_bit(std::uint64_t* words, std::uint32_t offset) noexcept {
    words[offset >> 6] ^= std::uint64_t{1} << (offset & 63u);
  }
  static bool test_bit(const std::uint64_t* words,
                       std::uint32_t offset) noexcept {
    return (words[offset >> 6] >> (offset & 63u)) & 1u;
  }

  void set_position(std::uint64_t* words, ProcId p,
                    std::uint32_t pos) const noexcept {
    write_field(words, positions_[p].offset, positions_[p].width, pos);
  }
  std::uint32_t position(const std::uint64_t* words, ProcId p) const noexcept {
    return static_cast<std::uint32_t>(
        read_field(words, positions_[p].offset, positions_[p].width));
  }
  bool posted(const std::uint64_t* words, ObjectId v) const noexcept {
    return test_bit(words, posted_offset_[v]);
  }
  bool binary_parity(const std::uint64_t* words, ObjectId s) const noexcept {
    return test_bit(words, binary_offset_[s]);
  }

  /// Packs a full state (positions, event-variable flags, binary-sem
  /// parities) into `words` (resized to num_words()).
  void encode(const std::vector<std::uint32_t>& positions,
              const DynamicBitset& posted, const std::vector<int>& counts,
              const std::vector<bool>& binary,
              std::vector<std::uint64_t>& words) const;

  /// Expands packed `words` into the historical encode_key() layout:
  /// positions four-per-word at 16 bits, then all event-variable words,
  /// then (iff any binary semaphore exists) the parity bits.
  void to_legacy_key(const std::uint64_t* words,
                     std::vector<std::uint64_t>& out) const;

 private:
  struct Field {
    std::uint32_t offset = 0;
    std::uint32_t width = 0;
  };
  std::vector<Field> positions_;               ///< per process
  std::vector<std::uint32_t> posted_offset_;   ///< per event variable
  std::vector<std::uint32_t> binary_offset_;   ///< per semaphore (kNoBit
                                               ///< when not binary)
  std::uint32_t key_bits_ = 0;
  std::size_t num_words_ = 1;
  std::size_t legacy_pos_words_ = 0;
  std::size_t legacy_posted_words_ = 0;
  std::size_t legacy_bin_words_ = 0;
};

// ---------------------------------------------------------------------------
// 64x64 bit-matrix transpose
// ---------------------------------------------------------------------------

/// In-place transpose of a 64x64 bit matrix (m[i] bit j -> m[j] bit i);
/// the standard recursive block-swap, O(64 log 64) word ops.
void transpose64(std::uint64_t m[64]) noexcept;

// ---------------------------------------------------------------------------
// PerStateBitset: a row arena with word-parallel row operations
// ---------------------------------------------------------------------------

class ConstBitRow {
 public:
  ConstBitRow(const std::uint64_t* words, std::size_t bits) noexcept
      : words_(words), bits_(bits) {}

  std::size_t size() const noexcept { return bits_; }
  std::size_t word_count() const noexcept { return (bits_ + 63) / 64; }
  std::uint64_t word(std::size_t w) const noexcept { return words_[w]; }
  const std::uint64_t* words() const noexcept { return words_; }

  bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63u)) & 1u;
  }
  std::size_t count() const noexcept;
  std::uint64_t hash_words(std::uint64_t seed) const noexcept;
  bool intersects(const ConstBitRow& o) const noexcept;
  /// Copies the row into `out` (resized to size()).
  void to_bitset(DynamicBitset& out) const;
  /// Appends the row's words to `out`.
  void append_words(std::vector<std::uint64_t>& out) const;

 private:
  const std::uint64_t* words_;
  std::size_t bits_;
};

class BitRow {
 public:
  BitRow(std::uint64_t* words, std::size_t bits) noexcept
      : words_(words), bits_(bits) {}

  operator ConstBitRow() const noexcept { return ConstBitRow(words_, bits_); }

  std::size_t size() const noexcept { return bits_; }
  std::size_t word_count() const noexcept { return (bits_ + 63) / 64; }
  std::uint64_t word(std::size_t w) const noexcept { return words_[w]; }
  std::uint64_t& word(std::size_t w) noexcept { return words_[w]; }
  std::uint64_t* words() noexcept { return words_; }

  bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63u)) & 1u;
  }
  void set(std::size_t i) noexcept {
    words_[i >> 6] |= std::uint64_t{1} << (i & 63u);
  }
  void reset(std::size_t i) noexcept {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63u));
  }
  void set(std::size_t i, bool v) noexcept { v ? set(i) : reset(i); }

  void reset_all() noexcept {
    for (std::size_t w = 0; w < word_count(); ++w) words_[w] = 0;
  }
  void set_all() noexcept {
    for (std::size_t w = 0; w < word_count(); ++w) words_[w] = ~std::uint64_t{0};
    trim();
  }
  std::size_t count() const noexcept {
    return ConstBitRow(words_, bits_).count();
  }
  std::uint64_t hash_words(std::uint64_t seed) const noexcept {
    return ConstBitRow(words_, bits_).hash_words(seed);
  }
  void to_bitset(DynamicBitset& out) const {
    ConstBitRow(words_, bits_).to_bitset(out);
  }

  BitRow& operator|=(ConstBitRow o) noexcept {
    for (std::size_t w = 0; w < word_count(); ++w) words_[w] |= o.word(w);
    return *this;
  }
  BitRow& operator&=(ConstBitRow o) noexcept {
    for (std::size_t w = 0; w < word_count(); ++w) words_[w] &= o.word(w);
    return *this;
  }
  BitRow& subtract(ConstBitRow o) noexcept {
    for (std::size_t w = 0; w < word_count(); ++w) words_[w] &= ~o.word(w);
    return *this;
  }
  /// this := this | ~o, bits past size() kept clear.
  BitRow& or_complement(ConstBitRow o) noexcept {
    for (std::size_t w = 0; w < word_count(); ++w) words_[w] |= ~o.word(w);
    trim();
    return *this;
  }
  BitRow& assign(ConstBitRow o) noexcept {
    for (std::size_t w = 0; w < word_count(); ++w) words_[w] = o.word(w);
    return *this;
  }
  void trim() noexcept {
    const std::size_t rem = bits_ & 63u;
    if (rem != 0 && bits_ != 0) {
      words_[word_count() - 1] &= ~std::uint64_t{0} >> (64 - rem);
    }
  }

 private:
  std::uint64_t* words_;
  std::size_t bits_;
};

/// A read-only row view over a DynamicBitset's words, so the row
/// kernels mix arena rows and standalone bitsets freely.
inline ConstBitRow row_view(const DynamicBitset& b) noexcept {
  return ConstBitRow(b.data(), b.size());
}

/// Arena of `rows` equally sized bit rows backed by one word vector: no
/// per-row allocation, rows are cache-contiguous, and row r word w is at
/// a fixed offset for the transpose kernel.
class PerStateBitset {
 public:
  PerStateBitset() = default;
  PerStateBitset(std::size_t rows, std::size_t bits) { reset(rows, bits); }

  /// Re-shapes the arena to `rows` x `bits`, all zero.
  void reset(std::size_t rows, std::size_t bits) {
    rows_ = rows;
    bits_ = bits;
    wpr_ = (bits + 63) / 64;
    words_.assign(rows * wpr_, 0);
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t bits() const noexcept { return bits_; }
  std::size_t words_per_row() const noexcept { return wpr_; }
  std::uint64_t bytes() const noexcept { return words_.capacity() * 8; }

  BitRow row(std::size_t r) noexcept {
    return BitRow(words_.data() + r * wpr_, bits_);
  }
  ConstBitRow row(std::size_t r) const noexcept {
    return ConstBitRow(words_.data() + r * wpr_, bits_);
  }
  std::uint64_t* data() noexcept { return words_.data(); }
  const std::uint64_t* data() const noexcept { return words_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t bits_ = 0;
  std::size_t wpr_ = 0;
  std::vector<std::uint64_t> words_;
};

// ---------------------------------------------------------------------------
// PackedStateRegistry
// ---------------------------------------------------------------------------

class PackedStateRegistry {
 public:
  /// Legacy nominal release-build bytes per retained fingerprint — the
  /// pre-packed-layer cost, kept as the bench baseline for the
  /// bytes/state comparison rows.
  static constexpr std::uint64_t kBytesPerEntry = 8;
#ifndef NDEBUG
  static constexpr bool kVerifyByDefault = true;
#else
  static constexpr bool kVerifyByDefault = false;
#endif

  struct Config {
    /// Rounded up to a power of two (minimum 1; clamped to 2^key_bits).
    std::size_t num_shards = 16;
    /// Retain full key payloads and check every hash-equal access for
    /// genuine equality (debug collision safety net).
    bool verify_collisions = kVerifyByDefault;
    /// Significant low bits of every key (1..64).  With exact packed
    /// keys this is the layout's key_bits; hashes use all 64.
    std::uint32_t key_bits = 64;
    /// Keys are injective state encodings, not hashes: a duplicate key
    /// IS a duplicate state, so no collision cross-check is needed.
    bool exact_keys = false;
    /// With false, per-shard locking is skipped entirely — valid only
    /// for single-threaded use.
    bool synchronized = true;
    /// 0 = membership set; 1 = one value bit per key (bool map).
    std::uint32_t value_bits = 0;
    /// Spill resident shards to an mmap-backed temp file when the
    /// attached accountant passes ~90% of its byte budget.
    bool spill = false;
  };

  explicit PackedStateRegistry(Config config);
  /// ShardedFingerprintSet-compatible constructor: 64-bit hash keys,
  /// membership only.
  explicit PackedStateRegistry(std::size_t num_shards = 16,
                               bool verify_collisions = kVerifyByDefault)
      : PackedStateRegistry(Config{num_shards, verify_collisions, 64, false,
                                   true, 0, false}) {}
  ~PackedStateRegistry();

  PackedStateRegistry(const PackedStateRegistry&) = delete;
  PackedStateRegistry& operator=(const PackedStateRegistry&) = delete;

  bool verify_collisions() const noexcept { return verify_; }
  bool exact_keys() const noexcept { return exact_keys_; }
  std::uint32_t key_bits() const noexcept { return key_bits_; }
  std::size_t num_shards() const noexcept { return shards_.size(); }
  bool spill_enabled() const noexcept { return spill_; }

  /// Attaches the accountant; the store's current resident bytes are
  /// charged immediately and future growth is charged/released as it
  /// happens.  Call before any concurrent use; nullptr detaches (and
  /// releases the store's charges).
  void set_accountant(MemoryAccountant* accountant) noexcept;

  /// Inserts `key`; returns true iff it was not present (the caller owns
  /// this element).  Thread-safe.  When collision verification is on and
  /// `payload` is non-null, the payload is retained on first insert and
  /// compared on every hash-equal re-insert; a mismatch (a true 64-bit
  /// collision) throws CheckError.
  bool insert(std::uint64_t key,
              const std::vector<std::uint64_t>* payload = nullptr);

  /// Memoizes `key` -> `value` (requires value_bits == 1); returns true
  /// iff newly inserted.  A re-store must carry the same value (checked).
  bool store(std::uint64_t key, bool value,
             const std::vector<std::uint64_t>* payload = nullptr);

  /// If `key` is memoized, writes its value to `*value` and returns
  /// true (requires value_bits == 1).
  bool lookup(std::uint64_t key, bool* value,
              const std::vector<std::uint64_t>* payload = nullptr);

  /// Total distinct keys (resident + spilled).  Thread-safe snapshot.
  std::uint64_t size() const;

  /// Actual resident heap bytes (bucket arrays, packed entry words,
  /// retained debug payloads).  Matches what the accountant was charged.
  std::uint64_t bytes() const noexcept {
    return charged_.load(std::memory_order_relaxed);
  }
  /// Bytes written to the spill tier so far / spill sweeps performed.
  std::uint64_t spilled_bytes() const noexcept {
    return spilled_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t spill_events() const noexcept {
    return spill_events_.load(std::memory_order_relaxed);
  }

  /// Per-shard distinct-key counts (load-factor diagnostics).  Snapshot
  /// under concurrency.
  std::vector<std::uint64_t> shard_sizes() const;

 private:
  struct Bucket {
    std::vector<std::uint64_t> words;  ///< entries bit-packed LE
    std::uint32_t count = 0;
  };
  struct SpillRun {
    const std::uint64_t* keys = nullptr;  ///< sorted mixed keys (mmap)
    std::uint64_t count = 0;
    const std::uint64_t* values = nullptr;  ///< value bits (maps only)
  };
  struct Shard {
    mutable std::mutex mu;
    std::vector<Bucket> buckets;
    std::uint32_t bucket_bits = 0;
    std::uint64_t count = 0;           ///< distinct keys, resident + spilled
    std::uint64_t resident_count = 0;  ///< keys currently in the buckets
    std::uint64_t resident_bytes = 0;  ///< tracked bucket heap bytes
    std::uint64_t payload_bytes = 0;   ///< retained debug payload bytes
    std::vector<SpillRun> runs;
    /// Populated only in collision-verification mode.
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> payloads;
  };

  std::uint32_t rem_bits(const Shard& s) const noexcept {
    return key_bits_ - shard_bits_ - s.bucket_bits;
  }
  std::uint32_t entry_width(const Shard& s) const noexcept {
    return rem_bits(s) + value_bits_;
  }

  /// Looks up `rem` in `b`; returns the entry index or -1.
  static std::int64_t find_in_bucket(const Bucket& b, std::uint64_t rem,
                                     std::uint32_t width,
                                     std::uint32_t value_bits) noexcept;
  static std::uint64_t read_entry(const Bucket& b, std::uint64_t idx,
                                  std::uint32_t width) noexcept;
  void append_entry(Shard& s, Bucket& b, std::uint64_t entry);
  void maybe_grow(Shard& s);
  std::uint64_t shard_heap_bytes(const Shard& s) const noexcept;
  void recount_shard_bytes(Shard& s) noexcept;
  void charge_delta(Shard& s, std::uint64_t new_bytes) noexcept;

  /// True (with the result) iff `mixed` is present in a spilled run.
  bool find_in_runs(const Shard& s, std::uint64_t mixed,
                    bool* value) const noexcept;
  void maybe_spill();
  void spill_shard(Shard& s);
  void check_payload(Shard& s, std::uint64_t key, bool first_insert,
                     const std::vector<std::uint64_t>* payload);

  std::uint64_t mix(std::uint64_t key) const noexcept;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint32_t shard_bits_ = 0;
  std::uint32_t key_bits_ = 64;
  std::uint32_t value_bits_ = 0;
  std::uint32_t init_bucket_bits_ = 0;
  std::uint32_t max_bucket_bits_ = 0;
  bool verify_ = false;
  bool exact_keys_ = false;
  bool synchronized_ = true;
  bool spill_ = false;
  MemoryAccountant* accountant_ = nullptr;
  std::atomic<std::uint64_t> charged_{0};
  std::atomic<std::uint64_t> spilled_bytes_{0};
  std::atomic<std::uint64_t> spill_events_{0};

  // Spill tier: one unlinked temp file per store, mapped read-only a
  // run at a time (mappings stay valid for the store's lifetime).
  std::mutex spill_mu_;
  int spill_fd_ = -1;
  std::uint64_t spill_file_bytes_ = 0;
  std::vector<std::pair<void*, std::size_t>> spill_maps_;
  const std::uint64_t* spill_append(const std::vector<std::uint64_t>& words);
};

/// RAII attachment of a store to a memory accountant: charges the
/// store's current footprint on construction, releases it (detaches) on
/// destruction.  A null store is a no-op, so callers can attach an
/// optional store unconditionally.
class ScopedAccountant {
 public:
  ScopedAccountant(PackedStateRegistry* store, MemoryAccountant* accountant)
      : store_(store) {
    if (store_ != nullptr) store_->set_accountant(accountant);
  }
  ~ScopedAccountant() {
    if (store_ != nullptr) store_->set_accountant(nullptr);
  }
  ScopedAccountant(const ScopedAccountant&) = delete;
  ScopedAccountant& operator=(const ScopedAccountant&) = delete;

 private:
  PackedStateRegistry* store_;
};

}  // namespace evord::search
