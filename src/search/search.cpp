#include "search/search.hpp"

#include <algorithm>

namespace evord::search {

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kMaxStates:
      return "max-states";
    case StopReason::kMaxTerminals:
      return "max-terminals";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kVisitor:
      return "visitor";
    case StopReason::kMemory:
      return "memory";
  }
  return "unknown";
}

const char* to_string(ReductionMode mode) {
  switch (mode) {
    case ReductionMode::kOff:
      return "off";
    case ReductionMode::kSleep:
      return "sleep";
    case ReductionMode::kSleepPersistent:
      return "sleep+persistent";
    case ReductionMode::kSourceWakeup:
      return "source+wakeup";
  }
  return "unknown";
}

void WorkerStats::merge(const WorkerStats& other) {
  tasks_executed += other.tasks_executed;
  tasks_stolen += other.tasks_stolen;
  tasks_spawned += other.tasks_spawned;
  steal_attempts += other.steal_attempts;
  idle_nanos += other.idle_nanos;
}

void SearchStats::merge(const SearchStats& other) {
  states_visited += other.states_visited;
  dedup_hits += other.dedup_hits;
  terminals += other.terminals;
  deadlocked_prefixes += other.deadlocked_prefixes;
  sleep_pruned += other.sleep_pruned;
  persistent_skipped += other.persistent_skipped;
  dyn_excused += other.dyn_excused;
  memo_bytes += other.memo_bytes;
  spilled_bytes += other.spilled_bytes;
  spill_events += other.spill_events;
  truncated = truncated || other.truncated;
  stopped_by_visitor = stopped_by_visitor || other.stopped_by_visitor;
  if (stop_reason == StopReason::kNone) stop_reason = other.stop_reason;
  if (depth_states.size() < other.depth_states.size()) {
    depth_states.resize(other.depth_states.size(), 0);
  }
  for (std::size_t d = 0; d < other.depth_states.size(); ++d) {
    depth_states[d] += other.depth_states[d];
  }
  if (workers.size() < other.workers.size()) {
    workers.resize(other.workers.size());
  }
  for (std::size_t w = 0; w < other.workers.size(); ++w) {
    workers[w].merge(other.workers[w]);
  }
  if (shard_sizes.empty()) shard_sizes = other.shard_sizes;
}

std::uint64_t SearchStats::tasks_executed() const {
  std::uint64_t n = 0;
  for (const WorkerStats& w : workers) n += w.tasks_executed;
  return n;
}

std::uint64_t SearchStats::tasks_stolen() const {
  std::uint64_t n = 0;
  for (const WorkerStats& w : workers) n += w.tasks_stolen;
  return n;
}

std::uint64_t SearchStats::tasks_spawned() const {
  std::uint64_t n = 0;
  for (const WorkerStats& w : workers) n += w.tasks_spawned;
  return n;
}

std::uint64_t SearchStats::steal_attempts() const {
  std::uint64_t n = 0;
  for (const WorkerStats& w : workers) n += w.steal_attempts;
  return n;
}

std::uint64_t SearchStats::idle_nanos() const {
  std::uint64_t n = 0;
  for (const WorkerStats& w : workers) n += w.idle_nanos;
  return n;
}

std::uint64_t SearchStats::peak_depth() const {
  if (depth_states.empty()) return 0;
  const auto it = std::max_element(depth_states.begin(), depth_states.end());
  return static_cast<std::uint64_t>(it - depth_states.begin());
}

double SearchStats::shard_imbalance() const {
  if (shard_sizes.empty()) return 0.0;
  std::uint64_t total = 0;
  std::uint64_t peak = 0;
  for (std::uint64_t s : shard_sizes) {
    total += s;
    peak = std::max(peak, s);
  }
  if (total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(shard_sizes.size());
  return static_cast<double>(peak) / mean;
}

}  // namespace evord::search
