#include "search/search.hpp"

namespace evord::search {

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kMaxStates:
      return "max-states";
    case StopReason::kMaxTerminals:
      return "max-terminals";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kVisitor:
      return "visitor";
  }
  return "unknown";
}

void SearchStats::merge(const SearchStats& other) {
  states_visited += other.states_visited;
  dedup_hits += other.dedup_hits;
  terminals += other.terminals;
  deadlocked_prefixes += other.deadlocked_prefixes;
  memo_bytes += other.memo_bytes;
  truncated = truncated || other.truncated;
  stopped_by_visitor = stopped_by_visitor || other.stopped_by_visitor;
  if (stop_reason == StopReason::kNone) stop_reason = other.stop_reason;
}

}  // namespace evord::search
