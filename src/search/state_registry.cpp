#include "search/state_registry.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "util/fault.hpp"
#include "util/hash.hpp"

namespace evord::search {

// ---------------------------------------------------------------------------
// PackedStateLayout
// ---------------------------------------------------------------------------

PackedStateLayout::PackedStateLayout(const Trace& trace) {
  std::uint32_t off = 0;
  positions_.reserve(trace.num_processes());
  for (ProcId p = 0; p < trace.num_processes(); ++p) {
    const auto len = trace.program_order(p).size();
    // positions range over [0, len]: ceil(log2(len + 1)) bits.
    const auto width = static_cast<std::uint32_t>(std::bit_width(len));
    positions_.push_back(Field{off, width});
    off += width;
  }
  posted_offset_.reserve(trace.event_vars().size());
  for (std::size_t v = 0; v < trace.event_vars().size(); ++v) {
    posted_offset_.push_back(off++);
  }
  std::size_t num_binary = 0;
  binary_offset_.reserve(trace.semaphores().size());
  for (const SemaphoreInfo& s : trace.semaphores()) {
    if (s.binary) {
      binary_offset_.push_back(off++);
      ++num_binary;
    } else {
      binary_offset_.push_back(kNoBit);
    }
  }
  key_bits_ = off;
  num_words_ = std::max<std::size_t>(1, (key_bits_ + 63) / 64);
  legacy_pos_words_ = (trace.num_processes() + 3) / 4;
  legacy_posted_words_ = (trace.event_vars().size() + 63) / 64;
  legacy_bin_words_ = num_binary == 0 ? 0 : (num_binary + 63) / 64;
}

void PackedStateLayout::encode(const std::vector<std::uint32_t>& positions,
                               const DynamicBitset& posted,
                               const std::vector<int>& counts,
                               const std::vector<bool>& binary,
                               std::vector<std::uint64_t>& words) const {
  words.assign(num_words_, 0);
  for (ProcId p = 0; p < positions_.size(); ++p) {
    set_position(words.data(), p, positions[p]);
  }
  for (std::size_t v = 0; v < posted_offset_.size(); ++v) {
    if (posted.test(v)) toggle_bit(words.data(), posted_offset_[v]);
  }
  for (std::size_t s = 0; s < binary_offset_.size(); ++s) {
    if (binary[s] && (counts[s] & 1) != 0) {
      toggle_bit(words.data(), binary_offset_[s]);
    }
  }
}

void PackedStateLayout::to_legacy_key(const std::uint64_t* words,
                                      std::vector<std::uint64_t>& out) const {
  out.assign(legacy_key_words(), 0);
  for (ProcId p = 0; p < positions_.size(); ++p) {
    const std::uint64_t pos = position(words, p);
    out[p / 4] |= pos << (16 * (p % 4));
  }
  for (std::size_t v = 0; v < posted_offset_.size(); ++v) {
    if (test_bit(words, posted_offset_[v])) {
      out[legacy_pos_words_ + v / 64] |= std::uint64_t{1} << (v % 64);
    }
  }
  std::size_t k = 0;
  for (std::size_t s = 0; s < binary_offset_.size(); ++s) {
    if (binary_offset_[s] == kNoBit) continue;
    if (test_bit(words, binary_offset_[s])) {
      out[legacy_pos_words_ + legacy_posted_words_ + k / 64] |=
          std::uint64_t{1} << (k % 64);
    }
    ++k;
  }
}

// ---------------------------------------------------------------------------
// transpose64
// ---------------------------------------------------------------------------

void transpose64(std::uint64_t m[64]) noexcept {
  // Recursive block swap (Hacker's Delight 7-3), LSB-first convention:
  // bit j of m[i] is M[i][j].
  std::uint64_t mask = 0x00000000ffffffffull;
  for (std::uint32_t j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (std::uint32_t k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((m[k] >> j) ^ m[k + j]) & mask;
      m[k] ^= t << j;
      m[k + j] ^= t;
    }
  }
}

// ---------------------------------------------------------------------------
// ConstBitRow
// ---------------------------------------------------------------------------

std::size_t ConstBitRow::count() const noexcept {
  std::size_t n = 0;
  for (std::size_t w = 0; w < word_count(); ++w) {
    n += static_cast<std::size_t>(std::popcount(words_[w]));
  }
  return n;
}

std::uint64_t ConstBitRow::hash_words(std::uint64_t seed) const noexcept {
  for (std::size_t w = 0; w < word_count(); ++w) {
    seed ^= words_[w];
    seed *= 1099511628211ull;  // FNV prime
  }
  return seed;
}

bool ConstBitRow::intersects(const ConstBitRow& o) const noexcept {
  const std::size_t n = std::min(word_count(), o.word_count());
  for (std::size_t w = 0; w < n; ++w) {
    if ((words_[w] & o.words_[w]) != 0) return true;
  }
  return false;
}

void ConstBitRow::to_bitset(DynamicBitset& out) const {
  out.resize(bits_);
  for (std::size_t w = 0; w < word_count(); ++w) out.word(w) = words_[w];
}

void ConstBitRow::append_words(std::vector<std::uint64_t>& out) const {
  out.insert(out.end(), words_, words_ + word_count());
}

// ---------------------------------------------------------------------------
// PackedStateRegistry
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kTargetFill = 64;  ///< avg entries/bucket before grow
constexpr std::uint64_t kSpillFloorBytes = 4096;  ///< don't spill near-empty

std::uint64_t mask_bits(std::uint32_t bits) noexcept {
  return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

/// Reads `width` bits at absolute bit offset `bit` (width <= 64; the
/// word vector is sized so the read never runs past the end).
std::uint64_t read_bits(const std::vector<std::uint64_t>& words,
                        std::uint64_t bit, std::uint32_t width) noexcept {
  if (width == 0) return 0;
  const std::size_t wi = static_cast<std::size_t>(bit >> 6);
  const std::uint32_t bo = static_cast<std::uint32_t>(bit & 63u);
  std::uint64_t v = words[wi] >> bo;
  if (bo + width > 64) v |= words[wi + 1] << (64 - bo);
  return v & mask_bits(width);
}

void write_bits(std::vector<std::uint64_t>& words, std::uint64_t bit,
                std::uint32_t width, std::uint64_t value) noexcept {
  if (width == 0) return;
  const std::uint64_t mask = mask_bits(width);
  const std::size_t wi = static_cast<std::size_t>(bit >> 6);
  const std::uint32_t bo = static_cast<std::uint32_t>(bit & 63u);
  words[wi] = (words[wi] & ~(mask << bo)) | ((value & mask) << bo);
  if (bo + width > 64) {
    const std::uint64_t hi_mask = mask >> (64 - bo);
    words[wi + 1] = (words[wi + 1] & ~hi_mask) | ((value & mask) >> (64 - bo));
  }
}

/// Appends one `width`-bit entry with exact (reserve-then-resize) word
/// growth, so resident bytes track the live entries tightly.
void raw_append(std::vector<std::uint64_t>& words, std::uint32_t count,
                std::uint32_t width, std::uint64_t entry) {
  const std::uint64_t end_bit =
      (static_cast<std::uint64_t>(count) + 1) * width;
  const std::size_t need = static_cast<std::size_t>((end_bit + 63) / 64);
  if (need > words.size()) {
    if (need > words.capacity()) words.reserve(need);
    words.resize(need, 0);
  }
  write_bits(words, static_cast<std::uint64_t>(count) * width, width, entry);
}

}  // namespace

PackedStateRegistry::PackedStateRegistry(Config config)
    : verify_(config.verify_collisions),
      exact_keys_(config.exact_keys),
      synchronized_(config.synchronized),
      spill_(config.spill) {
  key_bits_ = std::clamp<std::uint32_t>(config.key_bits, 1, 64);
  value_bits_ = config.value_bits;
  EVORD_CHECK(value_bits_ <= 1, "registry supports at most one value bit");
  std::size_t n = std::bit_ceil(std::max<std::size_t>(1, config.num_shards));
  auto sb = static_cast<std::uint32_t>(std::countr_zero(n));
  if (sb > key_bits_) {
    sb = key_bits_;
    n = std::size_t{1} << sb;
  }
  shard_bits_ = sb;
  max_bucket_bits_ = key_bits_ - shard_bits_;
  // Entries must fit one 64-bit read: rem_bits + value_bits <= 64.
  init_bucket_bits_ = 0;
  while (key_bits_ - shard_bits_ - init_bucket_bits_ + value_bits_ > 64) {
    ++init_bucket_bits_;
  }
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    Shard& s = *shards_.back();
    s.bucket_bits = init_bucket_bits_;
    s.buckets.resize(std::size_t{1} << init_bucket_bits_);
    s.resident_bytes = shard_heap_bytes(s);
    charged_.fetch_add(s.resident_bytes, std::memory_order_relaxed);
  }
}

PackedStateRegistry::~PackedStateRegistry() {
  for (const auto& [addr, len] : spill_maps_) munmap(addr, len);
  if (spill_fd_ >= 0) close(spill_fd_);
}

void PackedStateRegistry::set_accountant(MemoryAccountant* accountant) noexcept {
  if (accountant_ == accountant) return;
  const std::uint64_t held = charged_.load(std::memory_order_relaxed);
  if (accountant_ != nullptr) accountant_->release(held);
  accountant_ = accountant;
  if (accountant_ != nullptr) accountant_->charge(held);
}

std::uint64_t PackedStateRegistry::mix(std::uint64_t key) const noexcept {
  if (key_bits_ >= 64) return splitmix64(key);
  // Invertible mix within key_bits: odd multiplications mod 2^bits and
  // xorshifts are bijections, so distinct keys stay distinct and the
  // full key is recoverable from shard + bucket + remainder bits.
  const std::uint64_t mask = mask_bits(key_bits_);
  const std::uint32_t h = (key_bits_ + 1) / 2;
  std::uint64_t x = key & mask;
  x ^= x >> h;
  x = (x * 0x9e3779b97f4a7c15ull) & mask;
  x ^= x >> h;
  x = (x * 0xbf58476d1ce4e5b9ull) & mask;
  x ^= x >> h;
  return x;
}

std::int64_t PackedStateRegistry::find_in_bucket(
    const Bucket& b, std::uint64_t rem, std::uint32_t width,
    std::uint32_t value_bits) noexcept {
  for (std::uint32_t i = 0; i < b.count; ++i) {
    const std::uint64_t e =
        read_bits(b.words, static_cast<std::uint64_t>(i) * width, width);
    if ((e >> value_bits) == rem) return i;
  }
  return -1;
}

std::uint64_t PackedStateRegistry::read_entry(const Bucket& b,
                                              std::uint64_t idx,
                                              std::uint32_t width) noexcept {
  return read_bits(b.words, idx * width, width);
}

std::uint64_t PackedStateRegistry::shard_heap_bytes(
    const Shard& s) const noexcept {
  std::uint64_t b = s.buckets.capacity() * sizeof(Bucket);
  for (const Bucket& bk : s.buckets) b += bk.words.capacity() * 8;
  return b;
}

void PackedStateRegistry::recount_shard_bytes(Shard& s) noexcept {
  const std::uint64_t now = shard_heap_bytes(s);
  if (now >= s.resident_bytes) {
    const std::uint64_t d = now - s.resident_bytes;
    charged_.fetch_add(d, std::memory_order_relaxed);
    if (accountant_ != nullptr) accountant_->charge(d);
  } else {
    const std::uint64_t d = s.resident_bytes - now;
    charged_.fetch_sub(d, std::memory_order_relaxed);
    if (accountant_ != nullptr) accountant_->release(d);
  }
  s.resident_bytes = now;
}

void PackedStateRegistry::append_entry(Shard& s, Bucket& b,
                                       std::uint64_t entry) {
  const std::uint32_t w = entry_width(s);
  const std::size_t old_cap = b.words.capacity();
  raw_append(b.words, b.count, w, entry);
  ++b.count;
  if (b.words.capacity() != old_cap) {
    const std::uint64_t d = (b.words.capacity() - old_cap) * 8;
    s.resident_bytes += d;
    charged_.fetch_add(d, std::memory_order_relaxed);
    if (accountant_ != nullptr) accountant_->charge(d);
  }
}

void PackedStateRegistry::maybe_grow(Shard& s) {
  if (s.bucket_bits >= max_bucket_bits_) return;
  const std::uint64_t buckets = std::uint64_t{1} << s.bucket_bits;
  if (s.resident_count + 1 <= kTargetFill * buckets) return;
  if (accountant_ != nullptr && accountant_->limit() != 0) {
    // A rehash transiently ~doubles this shard's footprint.  Near the
    // budget we skip it (scans lengthen, results are unaffected) so the
    // memory overshoot past the limit stays small.
    if (accountant_->bytes() + shard_heap_bytes(s) >= accountant_->limit()) {
      return;
    }
  }
  const std::uint32_t old_w = entry_width(s);
  const std::uint32_t old_bb = s.bucket_bits;
  const std::uint32_t new_w = old_w - 1;
  std::vector<Bucket> grown(std::size_t{1} << (old_bb + 1));
  const std::uint64_t vmask = mask_bits(value_bits_);
  for (std::size_t bi = 0; bi < s.buckets.size(); ++bi) {
    const Bucket& ob = s.buckets[bi];
    for (std::uint32_t i = 0; i < ob.count; ++i) {
      const std::uint64_t e = read_entry(ob, i, old_w);
      const std::uint64_t value = e & vmask;
      const std::uint64_t rem = e >> value_bits_;
      // One remainder bit moves into the bucket index.
      Bucket& nb = grown[bi | ((rem & 1) << old_bb)];
      raw_append(nb.words, nb.count, new_w,
                 ((rem >> 1) << value_bits_) | value);
      ++nb.count;
    }
  }
  s.buckets = std::move(grown);
  s.bucket_bits = old_bb + 1;
  recount_shard_bytes(s);
}

void PackedStateRegistry::check_payload(
    Shard& s, std::uint64_t key, bool /*first_insert*/,
    const std::vector<std::uint64_t>* payload) {
  if (!verify_ || payload == nullptr) return;
  const auto [it, inserted] = s.payloads.try_emplace(key, *payload);
  if (inserted) {
    const std::uint64_t d = payload->size() * sizeof(std::uint64_t);
    s.payload_bytes += d;
    charged_.fetch_add(d, std::memory_order_relaxed);
    if (accountant_ != nullptr) accountant_->charge(d);
  } else {
    EVORD_CHECK(it->second == *payload,
                "64-bit fingerprint collision: distinct payloads hash to "
                    << key);
  }
}

bool PackedStateRegistry::find_in_runs(const Shard& s, std::uint64_t mixed,
                                       bool* value) const noexcept {
  for (const SpillRun& r : s.runs) {
    const std::uint64_t* end = r.keys + r.count;
    const std::uint64_t* it = std::lower_bound(r.keys, end, mixed);
    if (it != end && *it == mixed) {
      if (value != nullptr && r.values != nullptr) {
        const std::uint64_t idx = static_cast<std::uint64_t>(it - r.keys);
        *value = ((r.values[idx >> 6] >> (idx & 63u)) & 1u) != 0;
      }
      return true;
    }
  }
  return false;
}

bool PackedStateRegistry::insert(std::uint64_t key,
                                 const std::vector<std::uint64_t>* payload) {
  if (fault::enabled() && fault::on_store_insert() && accountant_ != nullptr) {
    // Injected insertion failure: the store refuses to grow, surfaced
    // through the governed memory path (StopReason::kMemory).
    accountant_->exhaust();
  }
  EVORD_DCHECK(key_bits_ >= 64 || (key >> key_bits_) == 0,
               "key wider than the registry's key_bits");
  const std::uint64_t mixed = mix(key);
  Shard& s = *shards_[mixed & mask_bits(shard_bits_)];
  bool inserted = false;
  {
    std::unique_lock<std::mutex> lock(s.mu, std::defer_lock);
    if (synchronized_) lock.lock();
    if (!find_in_runs(s, mixed, nullptr)) {
      const std::uint32_t w = entry_width(s);
      const std::uint64_t bi = (mixed >> shard_bits_) & mask_bits(s.bucket_bits);
      const std::uint64_t rem = mixed >> (shard_bits_ + s.bucket_bits);
      if (find_in_bucket(s.buckets[bi], rem, w, value_bits_) < 0) {
        maybe_grow(s);
        const std::uint64_t bi2 =
            (mixed >> shard_bits_) & mask_bits(s.bucket_bits);
        const std::uint64_t rem2 = mixed >> (shard_bits_ + s.bucket_bits);
        append_entry(s, s.buckets[bi2], rem2 << value_bits_);
        ++s.count;
        ++s.resident_count;
        inserted = true;
      }
    }
    check_payload(s, key, inserted, payload);
  }
  if (spill_) maybe_spill();
  return inserted;
}

bool PackedStateRegistry::store(std::uint64_t key, bool value,
                                const std::vector<std::uint64_t>* payload) {
  EVORD_DCHECK(value_bits_ == 1, "store() requires a value bit");
  if (fault::enabled() && fault::on_store_insert() && accountant_ != nullptr) {
    accountant_->exhaust();
  }
  const std::uint64_t mixed = mix(key);
  Shard& s = *shards_[mixed & mask_bits(shard_bits_)];
  bool inserted = false;
  {
    std::unique_lock<std::mutex> lock(s.mu, std::defer_lock);
    if (synchronized_) lock.lock();
    bool spilled_value = false;
    if (find_in_runs(s, mixed, &spilled_value)) {
      EVORD_CHECK(spilled_value == value,
                  "memoized value mismatch for fingerprint " << key);
    } else {
      const std::uint32_t w = entry_width(s);
      const std::uint64_t bi = (mixed >> shard_bits_) & mask_bits(s.bucket_bits);
      const std::uint64_t rem = mixed >> (shard_bits_ + s.bucket_bits);
      const std::int64_t at =
          find_in_bucket(s.buckets[bi], rem, w, value_bits_);
      if (at >= 0) {
        const std::uint64_t e =
            read_entry(s.buckets[bi], static_cast<std::uint64_t>(at), w);
        EVORD_CHECK((e & 1u) == static_cast<std::uint64_t>(value),
                    "memoized value mismatch for fingerprint " << key);
      } else {
        maybe_grow(s);
        const std::uint64_t bi2 =
            (mixed >> shard_bits_) & mask_bits(s.bucket_bits);
        const std::uint64_t rem2 = mixed >> (shard_bits_ + s.bucket_bits);
        append_entry(s, s.buckets[bi2],
                     (rem2 << 1) | static_cast<std::uint64_t>(value));
        ++s.count;
        ++s.resident_count;
        inserted = true;
      }
    }
    check_payload(s, key, inserted, payload);
  }
  if (spill_) maybe_spill();
  return inserted;
}

bool PackedStateRegistry::lookup(std::uint64_t key, bool* value,
                                 const std::vector<std::uint64_t>* payload) {
  EVORD_DCHECK(value_bits_ == 1, "lookup() requires a value bit");
  const std::uint64_t mixed = mix(key);
  Shard& s = *shards_[mixed & mask_bits(shard_bits_)];
  std::unique_lock<std::mutex> lock(s.mu, std::defer_lock);
  if (synchronized_) lock.lock();
  bool spilled_value = false;
  if (find_in_runs(s, mixed, &spilled_value)) {
    *value = spilled_value;
    check_payload(s, key, false, payload);
    return true;
  }
  const std::uint32_t w = entry_width(s);
  const std::uint64_t bi = (mixed >> shard_bits_) & mask_bits(s.bucket_bits);
  const std::uint64_t rem = mixed >> (shard_bits_ + s.bucket_bits);
  const std::int64_t at = find_in_bucket(s.buckets[bi], rem, w, value_bits_);
  if (at < 0) return false;
  const std::uint64_t e =
      read_entry(s.buckets[bi], static_cast<std::uint64_t>(at), w);
  *value = (e & 1u) != 0;
  check_payload(s, key, false, payload);
  return true;
}

std::uint64_t PackedStateRegistry::size() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu, std::defer_lock);
    if (synchronized_) lock.lock();
    total += shard->count;
  }
  return total;
}

std::vector<std::uint64_t> PackedStateRegistry::shard_sizes() const {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu, std::defer_lock);
    if (synchronized_) lock.lock();
    sizes.push_back(shard->count);
  }
  return sizes;
}

// ----- spill tier ----------------------------------------------------------

const std::uint64_t* PackedStateRegistry::spill_append(
    const std::vector<std::uint64_t>& words) {
  if (spill_fd_ < 0) {
    const char* dir = std::getenv("TMPDIR");
    if (dir == nullptr || *dir == '\0') dir = "/tmp";
    std::string path = std::string(dir) + "/evord-spill-XXXXXX";
    std::vector<char> buf(path.begin(), path.end());
    buf.push_back('\0');
    spill_fd_ = mkstemp(buf.data());
    EVORD_CHECK(spill_fd_ >= 0, "spill tier: cannot create temp file");
    unlink(buf.data());  // anonymous: the file dies with the store
  }
  const std::uint64_t off = spill_file_bytes_;
  const std::size_t nbytes = words.size() * 8;
  const char* p = reinterpret_cast<const char*>(words.data());
  std::size_t left = nbytes;
  std::uint64_t o = off;
  while (left > 0) {
    const ssize_t k = pwrite(spill_fd_, p, left, static_cast<off_t>(o));
    EVORD_CHECK(k > 0, "spill tier: write failed");
    p += k;
    o += static_cast<std::uint64_t>(k);
    left -= static_cast<std::size_t>(k);
  }
  // Keep every run page-aligned so it can be mapped independently.
  spill_file_bytes_ = (off + nbytes + 4095) & ~std::uint64_t{4095};
  void* m = mmap(nullptr, nbytes, PROT_READ, MAP_SHARED, spill_fd_,
                 static_cast<off_t>(off));
  EVORD_CHECK(m != MAP_FAILED, "spill tier: mmap failed");
  spill_maps_.emplace_back(m, nbytes);
  return static_cast<const std::uint64_t*>(m);
}

void PackedStateRegistry::maybe_spill() {
  if (accountant_ == nullptr) return;
  const std::uint64_t limit = accountant_->limit();
  if (limit == 0) return;
  const std::uint64_t watermark = limit - limit / 10;  // ~90%
  if (accountant_->bytes() < watermark) return;
  if (charged_.load(std::memory_order_relaxed) < kSpillFloorBytes) {
    // This store holds almost nothing resident; spilling it cannot
    // relieve the budget (another consumer owns the bytes).
    return;
  }
  std::lock_guard<std::mutex> spill_lock(spill_mu_);
  if (accountant_->bytes() < watermark) return;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    std::unique_lock<std::mutex> lock(s.mu, std::defer_lock);
    if (synchronized_) lock.lock();
    if (s.resident_count == 0) continue;
    const std::uint32_t w = entry_width(s);
    // Reconstruct the full mixed keys (the mix is invertible, so these
    // are exact) and freeze them as one sorted run.
    std::vector<std::pair<std::uint64_t, std::uint8_t>> entries;
    entries.reserve(s.resident_count);
    for (std::size_t bi = 0; bi < s.buckets.size(); ++bi) {
      const Bucket& b = s.buckets[bi];
      for (std::uint32_t j = 0; j < b.count; ++j) {
        const std::uint64_t e = read_entry(b, j, w);
        const std::uint64_t rem = e >> value_bits_;
        const std::uint64_t mixed = (rem << (shard_bits_ + s.bucket_bits)) |
                                    (static_cast<std::uint64_t>(bi)
                                     << shard_bits_) |
                                    i;
        entries.emplace_back(mixed,
                             static_cast<std::uint8_t>(e & mask_bits(value_bits_)));
      }
    }
    std::sort(entries.begin(), entries.end());
    std::vector<std::uint64_t> keys;
    keys.reserve(entries.size());
    for (const auto& [mixed, v] : entries) keys.push_back(mixed);
    SpillRun run;
    run.count = keys.size();
    run.keys = spill_append(keys);
    std::uint64_t written = keys.size() * 8;
    if (value_bits_ != 0) {
      std::vector<std::uint64_t> values((entries.size() + 63) / 64, 0);
      for (std::size_t j = 0; j < entries.size(); ++j) {
        if (entries[j].second != 0) values[j >> 6] |= std::uint64_t{1} << (j & 63u);
      }
      run.values = spill_append(values);
      written += values.size() * 8;
    }
    s.runs.push_back(run);
    spilled_bytes_.fetch_add(written, std::memory_order_relaxed);
    // Restart the shard empty; the spilled entries answer membership
    // from the mapped run.
    s.buckets.assign(std::size_t{1} << init_bucket_bits_, Bucket{});
    s.buckets.shrink_to_fit();
    s.bucket_bits = init_bucket_bits_;
    s.resident_count = 0;
    recount_shard_bytes(s);
  }
  spill_events_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace evord::search
