#include "search/fingerprint_set.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/hash.hpp"

namespace evord::search {

ShardedFingerprintSet::ShardedFingerprintSet(std::size_t num_shards,
                                             bool verify_collisions)
    : verify_(verify_collisions) {
  const std::size_t n = std::bit_ceil(std::max<std::size_t>(1, num_shards));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    // Head-start on rehashing: enumeration inserts are the hot path.
    shards_.back()->fingerprints.reserve(1024);
  }
}

ShardedFingerprintSet::Shard& ShardedFingerprintSet::shard_for(
    std::uint64_t fingerprint) noexcept {
  // Finalizer mix: the low bits pick the shard, so they must depend on
  // every input bit even though the fingerprint is already a hash.
  return *shards_[splitmix64(fingerprint) & (shards_.size() - 1)];
}

bool ShardedFingerprintSet::insert(std::uint64_t fingerprint,
                                   const std::vector<std::uint64_t>* payload) {
  if (fault::enabled() && fault::on_store_insert() && accountant_ != nullptr) {
    // Injected insertion failure: the store refuses to grow, surfaced
    // through the governed memory path (StopReason::kMemory).
    accountant_->exhaust();
  }
  Shard& shard = shard_for(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  const bool inserted = shard.fingerprints.insert(fingerprint).second;
  if (inserted && accountant_ != nullptr) {
    accountant_->charge(kBytesPerEntry +
                        (verify_ && payload != nullptr
                             ? payload->size() * sizeof(std::uint64_t)
                             : 0));
  }
  if (verify_ && payload != nullptr) {
    if (inserted) {
      shard.payloads.emplace(fingerprint, *payload);
    } else {
      const auto it = shard.payloads.find(fingerprint);
      EVORD_CHECK(it == shard.payloads.end() || it->second == *payload,
                  "64-bit fingerprint collision: distinct payloads hash to "
                      << fingerprint);
    }
  }
  return inserted;
}

std::uint64_t ShardedFingerprintSet::size() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->fingerprints.size();
  }
  return total;
}

std::vector<std::uint64_t> ShardedFingerprintSet::shard_sizes() const {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    sizes.push_back(shard->fingerprints.size());
  }
  return sizes;
}

FingerprintBoolMap::FingerprintBoolMap(std::size_t num_shards,
                                       bool synchronized,
                                       bool verify_collisions)
    : synchronized_(synchronized), verify_(verify_collisions) {
  const std::size_t n = std::bit_ceil(std::max<std::size_t>(1, num_shards));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->values.reserve(1024);
  }
}

FingerprintBoolMap::Shard& FingerprintBoolMap::shard_for(
    std::uint64_t fingerprint) noexcept {
  return *shards_[splitmix64(fingerprint) & (shards_.size() - 1)];
}

void FingerprintBoolMap::check_payload(
    Shard& shard, std::uint64_t fingerprint,
    const std::vector<std::uint64_t>* payload) {
  if (!verify_ || payload == nullptr) return;
  const auto [it, inserted] = shard.payloads.try_emplace(fingerprint, *payload);
  EVORD_CHECK(inserted || it->second == *payload,
              "64-bit fingerprint collision: distinct payloads hash to "
                  << fingerprint);
}

bool FingerprintBoolMap::lookup(std::uint64_t fingerprint, bool* value,
                                const std::vector<std::uint64_t>* payload) {
  Shard& shard = shard_for(fingerprint);
  std::unique_lock<std::mutex> lock(shard.mu, std::defer_lock);
  if (synchronized_) lock.lock();
  const auto it = shard.values.find(fingerprint);
  if (it == shard.values.end()) return false;
  check_payload(shard, fingerprint, payload);
  *value = it->second;
  return true;
}

bool FingerprintBoolMap::store(std::uint64_t fingerprint, bool value,
                               const std::vector<std::uint64_t>* payload) {
  if (fault::enabled() && fault::on_store_insert() && accountant_ != nullptr) {
    accountant_->exhaust();
  }
  Shard& shard = shard_for(fingerprint);
  std::unique_lock<std::mutex> lock(shard.mu, std::defer_lock);
  if (synchronized_) lock.lock();
  const auto [it, inserted] = shard.values.emplace(fingerprint, value);
  EVORD_CHECK(inserted || it->second == value,
              "memoized value mismatch for fingerprint " << fingerprint);
  if (inserted && accountant_ != nullptr) {
    accountant_->charge(kBytesPerEntry +
                        (verify_ && payload != nullptr
                             ? payload->size() * sizeof(std::uint64_t)
                             : 0));
  }
  check_payload(shard, fingerprint, payload);
  return inserted;
}

std::uint64_t FingerprintBoolMap::size() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu, std::defer_lock);
    if (synchronized_) lock.lock();
    total += shard->values.size();
  }
  return total;
}

std::vector<std::uint64_t> FingerprintBoolMap::shard_sizes() const {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu, std::defer_lock);
    if (synchronized_) lock.lock();
    sizes.push_back(shard->values.size());
  }
  return sizes;
}

}  // namespace evord::search
