// Sharded 64-bit fingerprint containers for state-space deduplication.
//
// Every explorer in the unified search core dedups or memoizes states
// through one of the two containers here, so a visited state costs 8
// bytes (set) or 9 bytes (bool map) in release builds no matter which
// analysis is running:
//   * ShardedFingerprintSet — membership only.  Used to dedup causal
//     classes, causal-class prefixes and deadlock-search states.
//   * FingerprintBoolMap    — fingerprint -> bool memo.  Used by the
//     memoized completability search (can-precede / coexistence), where
//     each state memoizes "is a complete schedule reachable from here".
//
// Both are sharded by fingerprint with one mutex per shard, so the
// root-split parallel engine's workers share one store with minimal
// contention; the same types serve the serial engines (the map can skip
// locking entirely when constructed unsynchronized).
//
// Collision safety net: with `verify_collisions` on (the default in
// !NDEBUG builds) the full word payload of each state key is retained
// per fingerprint and every hash-equal access is checked for genuine
// equality — a 64-bit collision between distinct payloads throws
// CheckError instead of silently pruning an unexplored state or reusing
// a wrong memo value.  Release builds keep nothing beyond the
// fingerprints.
// Memory accounting: attach a MemoryAccountant (search/memory.hpp) via
// set_accountant() and every newly retained entry charges its release-
// build footprint (kBytesPerEntry), plus the retained payload words in
// collision-verification builds.  The deterministic fault layer
// (util/fault.hpp, kStoreFailAt) can make the K-th insertion "fail":
// the store then force-exhausts the accountant, so the owning search
// stops with StopReason::kMemory exactly as if the byte budget tripped.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "search/memory.hpp"

namespace evord::search {

class ShardedFingerprintSet {
 public:
  /// Release-build bytes per retained fingerprint.
  static constexpr std::uint64_t kBytesPerEntry = 8;
#ifndef NDEBUG
  static constexpr bool kVerifyByDefault = true;
#else
  static constexpr bool kVerifyByDefault = false;
#endif

  /// `num_shards` is rounded up to a power of two (minimum 1).
  explicit ShardedFingerprintSet(std::size_t num_shards = 16,
                                 bool verify_collisions = kVerifyByDefault);

  ShardedFingerprintSet(const ShardedFingerprintSet&) = delete;
  ShardedFingerprintSet& operator=(const ShardedFingerprintSet&) = delete;

  bool verify_collisions() const noexcept { return verify_; }
  std::size_t num_shards() const noexcept { return shards_.size(); }

  /// Attaches the accountant newly retained entries are charged to.
  /// Call before any concurrent use; nullptr detaches.
  void set_accountant(MemoryAccountant* accountant) noexcept {
    accountant_ = accountant;
  }

  /// Inserts `fingerprint`; returns true iff it was not present (the
  /// caller owns this element).  Thread-safe.  When collision
  /// verification is on and `payload` is non-null, the payload is
  /// retained on first insert and compared on every hash-equal re-insert;
  /// a mismatch (a true 64-bit collision) throws CheckError.
  bool insert(std::uint64_t fingerprint,
              const std::vector<std::uint64_t>* payload = nullptr);

  /// Total distinct fingerprints across all shards.  Thread-safe, but
  /// only a snapshot while inserts are in flight.
  std::uint64_t size() const;

  /// Per-shard element counts (load-factor diagnostics; the sharding
  /// hash should spread these evenly).  Snapshot under concurrency.
  std::vector<std::uint64_t> shard_sizes() const;

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_set<std::uint64_t> fingerprints;
    /// Populated only in collision-verification mode.
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> payloads;
  };

  Shard& shard_for(std::uint64_t fingerprint) noexcept;

  std::vector<std::unique_ptr<Shard>> shards_;
  bool verify_;
  MemoryAccountant* accountant_ = nullptr;
};

/// Sharded fingerprint -> bool memo table.  Duplicate stores of the same
/// value are permitted (concurrent workers may race to memoize the same
/// state; the memoized predicate is deterministic, so every store agrees).
class FingerprintBoolMap {
 public:
  /// Release-build bytes per memoized state (fingerprint + bool).
  static constexpr std::uint64_t kBytesPerEntry = 9;

  /// `num_shards` is rounded up to a power of two (minimum 1).  With
  /// `synchronized` false, per-shard locking is skipped entirely — valid
  /// only for single-threaded use.
  explicit FingerprintBoolMap(
      std::size_t num_shards = 16, bool synchronized = true,
      bool verify_collisions = ShardedFingerprintSet::kVerifyByDefault);

  FingerprintBoolMap(const FingerprintBoolMap&) = delete;
  FingerprintBoolMap& operator=(const FingerprintBoolMap&) = delete;

  bool verify_collisions() const noexcept { return verify_; }
  std::size_t num_shards() const noexcept { return shards_.size(); }

  /// Attaches the accountant newly memoized entries are charged to.
  /// Call before any concurrent use; nullptr detaches.
  void set_accountant(MemoryAccountant* accountant) noexcept {
    accountant_ = accountant;
  }

  /// If `fingerprint` is memoized, writes its value to `*value` and
  /// returns true.  When verification is on and `payload` is non-null, a
  /// hash-equal hit with a different retained payload throws CheckError.
  bool lookup(std::uint64_t fingerprint, bool* value,
              const std::vector<std::uint64_t>* payload = nullptr);

  /// Memoizes `fingerprint` -> `value`; returns true iff the fingerprint
  /// was newly inserted.  A re-store must carry the same value (checked);
  /// payload handling is as in lookup().
  bool store(std::uint64_t fingerprint, bool value,
             const std::vector<std::uint64_t>* payload = nullptr);

  /// Total memoized states across all shards (snapshot under concurrency).
  std::uint64_t size() const;

  /// Per-shard element counts (load-factor diagnostics).  Snapshot under
  /// concurrency.
  std::vector<std::uint64_t> shard_sizes() const;

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, bool> values;
    /// Populated only in collision-verification mode.
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> payloads;
  };

  void check_payload(Shard& shard, std::uint64_t fingerprint,
                     const std::vector<std::uint64_t>* payload);
  Shard& shard_for(std::uint64_t fingerprint) noexcept;

  std::vector<std::unique_ptr<Shard>> shards_;
  bool synchronized_;
  bool verify_;
  MemoryAccountant* accountant_ = nullptr;
};

}  // namespace evord::search
