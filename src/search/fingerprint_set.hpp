// Sharded state-key containers for state-space deduplication.
//
// Every explorer in the unified search core dedups or memoizes states
// through one of the two containers here, both thin fronts over the
// packed state layer (search/state_registry.hpp):
//   * ShardedFingerprintSet — membership only.  Used to dedup causal
//     classes, causal-class prefixes and deadlock-search states.
//   * FingerprintBoolMap    — key -> bool memo.  Used by the memoized
//     completability search (can-precede / coexistence), where each
//     state memoizes "is a complete schedule reachable from here".
//
// Both are sharded with one mutex per shard, so the root-split parallel
// engine's workers share one store with minimal contention; the same
// types serve the serial engines (the map can skip locking entirely
// when constructed unsynchronized).  Keys are quotiented and bit-packed
// (see PackedStateRegistry), so a retained state costs a fraction of
// the historical 8/9 bytes; with exact packed keys (Config::exact_keys)
// the stores dedup collision-free.  With Config::spill and a byte
// budget attached, cold shards spill to an mmap-backed temp file
// instead of stopping the search with StopReason::kMemory.
//
// Collision safety net: with `verify_collisions` on (the default in
// !NDEBUG builds) the full word payload of each state key is retained
// per fingerprint and every hash-equal access is checked for genuine
// equality — a 64-bit collision between distinct payloads throws
// CheckError instead of silently pruning an unexplored state or reusing
// a wrong memo value.
// Memory accounting: attach a MemoryAccountant (search/memory.hpp) via
// set_accountant() and the store's real heap footprint (bucket arrays,
// packed entry words, retained payloads) is charged as it grows.  The
// deterministic fault layer (util/fault.hpp, kStoreFailAt) can make the
// K-th insertion "fail": the store then force-exhausts the accountant,
// so the owning search stops with StopReason::kMemory exactly as if the
// byte budget tripped.
#pragma once

#include <cstdint>
#include <vector>

#include "search/memory.hpp"
#include "search/search.hpp"
#include "search/state_registry.hpp"

namespace evord::search {

using ShardedFingerprintSet = PackedStateRegistry;

/// Store configuration for an explorer's dedup/memo store.  Engages
/// exact packed keys when the trace's whole scheduling state fits one
/// 64-bit word AND the search runs unreduced with no tracker state in
/// the dedup key (`pure_state_key`) — the store then dedups
/// collision-free on key_bits, storing each state in a fraction of 8
/// bytes.  Collision verification is dropped when keys are exact (no
/// collisions exist) or when spilling (payload retention would defeat
/// the byte budget).
inline PackedStateRegistry::Config make_store_config(
    const Trace& trace, const SearchOptions& options, std::size_t num_shards,
    bool synchronized = true, bool pure_state_key = true) {
  PackedStateRegistry::Config cfg;
  cfg.num_shards = num_shards;
  cfg.synchronized = synchronized;
  cfg.spill = options.spill;
  if (pure_state_key && options.reduction == ReductionMode::kOff) {
    const PackedStateLayout layout(trace);
    if (layout.single_word() && layout.key_bits() > 0) {
      cfg.exact_keys = true;
      cfg.key_bits = layout.key_bits();
    }
  }
  if (cfg.exact_keys || cfg.spill) cfg.verify_collisions = false;
  return cfg;
}

/// Sharded key -> bool memo table.  Duplicate stores of the same value
/// are permitted (concurrent workers may race to memoize the same
/// state; the memoized predicate is deterministic, so every store
/// agrees); a re-store with a different value throws CheckError.
class FingerprintBoolMap {
 public:
  /// Legacy nominal release-build bytes per memoized state, kept as the
  /// bench baseline for the bytes/state comparison rows.
  static constexpr std::uint64_t kBytesPerEntry = 9;

  /// `num_shards` is rounded up to a power of two (minimum 1).  With
  /// `synchronized` false, per-shard locking is skipped entirely — valid
  /// only for single-threaded use.
  explicit FingerprintBoolMap(
      std::size_t num_shards = 16, bool synchronized = true,
      bool verify_collisions = PackedStateRegistry::kVerifyByDefault)
      : core_(PackedStateRegistry::Config{num_shards, verify_collisions, 64,
                                          false, synchronized, 1, false}) {}
  /// Full-config constructor (exact keys, spill tier); value_bits is
  /// forced to 1.
  explicit FingerprintBoolMap(PackedStateRegistry::Config config)
      : core_((config.value_bits = 1, config)) {}

  FingerprintBoolMap(const FingerprintBoolMap&) = delete;
  FingerprintBoolMap& operator=(const FingerprintBoolMap&) = delete;

  bool verify_collisions() const noexcept { return core_.verify_collisions(); }
  bool exact_keys() const noexcept { return core_.exact_keys(); }
  std::size_t num_shards() const noexcept { return core_.num_shards(); }

  /// Attaches the accountant the store's footprint is charged to.
  /// Call before any concurrent use; nullptr detaches.
  void set_accountant(MemoryAccountant* accountant) noexcept {
    core_.set_accountant(accountant);
  }

  /// If `key` is memoized, writes its value to `*value` and returns
  /// true.  When verification is on and `payload` is non-null, a
  /// hash-equal hit with a different retained payload throws CheckError.
  bool lookup(std::uint64_t key, bool* value,
              const std::vector<std::uint64_t>* payload = nullptr) {
    return core_.lookup(key, value, payload);
  }

  /// Memoizes `key` -> `value`; returns true iff the key was newly
  /// inserted.  A re-store must carry the same value (checked); payload
  /// handling is as in lookup().
  bool store(std::uint64_t key, bool value,
             const std::vector<std::uint64_t>* payload = nullptr) {
    return core_.store(key, value, payload);
  }

  /// Total memoized states across all shards (snapshot under
  /// concurrency).
  std::uint64_t size() const { return core_.size(); }
  /// Actual resident heap bytes (matches the accountant's charges).
  std::uint64_t bytes() const noexcept { return core_.bytes(); }
  std::uint64_t spilled_bytes() const noexcept {
    return core_.spilled_bytes();
  }
  std::uint64_t spill_events() const noexcept { return core_.spill_events(); }

  /// Per-shard element counts (load-factor diagnostics).  Snapshot under
  /// concurrency.
  std::vector<std::uint64_t> shard_sizes() const {
    return core_.shard_sizes();
  }

 private:
  PackedStateRegistry core_;
};

}  // namespace evord::search
