// Work-stealing scheduler for the state-space search core.
//
// The scheduler replaces the one-level root split of PR 2: instead of
// statically assigning one first-level subtree per pool slot (which
// leaves cores idle on skewed trees), every worker owns a Chase–Lev
// deque of SearchTasks.  A task is a schedule prefix plus its canonical
// position in the serial DFS order (the "dewey" key: the sibling index
// chosen at each depth).  Workers pop their own deque LIFO; when it is
// empty they steal FIFO from a seeded-random victim.  A hungry worker
// raises a demand flag that running engines poll; an engine answering
// the demand donates the *deepest* unexplored siblings of its current
// DFS path as new tasks (adaptive subtree splitting), subject to the
// StealOptions grain/depth cutoffs so the task grain stays coarse.
//
// Determinism: lexicographic order on dewey keys equals serial DFS
// order, so any partition of the tree into tasks — however the splits
// and steals land — covers exactly the serial state space, and
// order-sensitive results (the deadlock witness) are merged by dewey
// key, not completion order.  See docs/SEARCH.md §"Parallel execution".
//
// Termination is lock-free: an atomic outstanding-task counter is
// incremented before each spawn and decremented after the task runs;
// workers exit when it reaches zero (no task can appear afterwards,
// because only running tasks spawn).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "search/search.hpp"
#include "trace/ids.hpp"

namespace evord::search {

struct SharedContext;
class WorkStealingScheduler;

/// One unit of search work: a schedule prefix to explore, plus its
/// canonical id.  `dewey[d]` is the sibling index (position within the
/// enabled-event list) chosen at depth d to reach `seed[d]`, counted
/// from the explorer's own seed point; lexicographic order on dewey
/// keys is exactly the serial DFS visit order of the subtree roots.
struct SearchTask {
  std::vector<EventId> seed;
  std::vector<std::uint32_t> dewey;
  /// Partial-order reduction only: the sleep set of the subtree root
  /// this task replays to (sorted event ids).  Donors compute it at
  /// donation time — sleep sets are inherited along DFS edges, so a
  /// stolen subtree must start from exactly the sleep set the serial
  /// walk would carry into it; engines install it via
  /// set_initial_sleep().  Under kSourceWakeup the donor derives it
  /// from its per-depth wakeup frame (the dynamic-independence masks it
  /// computed when expanding the donated child's parent), so donation
  /// serializes the frame: the thief starts from the exact conditional
  /// sleep set the donor's in-walk child would carry, and the parallel
  /// walk stays bit-identical to serial.  Empty when reduction is off.
  std::vector<EventId> sleep;
};

/// Per-worker face of the scheduler, handed to the task runner.  The
/// engines use it to poll steal demand and donate split-off subtrees.
class WorkerHandle {
 public:
  std::size_t worker_id() const noexcept { return id_; }
  /// True iff some worker is out of work right now (relaxed load; cheap
  /// enough to poll per expanded state).
  bool split_wanted() const noexcept;
  /// Donates a task split off the one currently running; it becomes
  /// stealable immediately.
  void spawn(SearchTask task);

 private:
  friend class WorkStealingScheduler;
  WorkerHandle(WorkStealingScheduler* sched, std::size_t id)
      : sched_(sched), id_(id) {}
  WorkStealingScheduler* sched_;
  std::size_t id_;
};

/// Runs one task to completion and returns its engine's stats.  Called
/// concurrently from scheduler worker threads.
using TaskRunner = std::function<SearchStats(const SearchTask&, WorkerHandle&)>;

/// Executes `roots` — and every task split off them — on `num_workers`
/// work-stealing workers sharing `ctx` for budgets and stop requests.
/// Returns the associatively merged per-task stats with
/// SearchStats::workers filled in (per-worker scheduler counters).
/// Victim selection is seeded with `steal_seed` (results never depend
/// on it).  Rethrows the first task exception after all workers join.
SearchStats run_work_stealing(std::vector<SearchTask> roots,
                              std::size_t num_workers,
                              std::uint64_t steal_seed, SharedContext& ctx,
                              const TaskRunner& run);

/// Hard cap on worker threads: std::thread::hardware_concurrency(),
/// overridable upward via the EVORD_MAX_THREADS environment variable
/// (a testing/CI knob: the determinism stress tests must run genuinely
/// multi-threaded even on small CI boxes).
std::size_t max_worker_threads();

/// Resolves a requested worker count: 0 means "hardware concurrency",
/// and every request is clamped to max_worker_threads() so
/// oversubscription is impossible.
std::size_t resolve_num_threads(std::size_t requested);

}  // namespace evord::search
