// Global memory accounting for the state-space search core.
//
// Every byte-bounded search shares one MemoryAccountant through its
// SharedContext: the fingerprint/memo stores charge it per retained
// entry (and per retained collision-check payload in verify builds),
// the scheduler charges donated task descriptors (seed / dewey / sleep
// buffers), and explorer front-ends charge witness buffers.  Engines
// poll exceeded() once per expanded state and stop with
// StopReason::kMemory — the same strict global contract as max_states:
// a budget of N bytes caps the COMBINED total across all workers at
// roughly N (overshoot is bounded by one state's charge per worker,
// since the poll follows the charge).
//
// charge() is monotone except for release(), which un-charges
// transient allocations (a donated task's buffers die with the task).
// exhaust() force-trips the budget regardless of the limit — the
// deterministic fault-injection layer uses it to model a failed store
// insertion (util/fault.hpp).
#pragma once

#include <atomic>
#include <cstdint>

namespace evord::search {

class MemoryAccountant {
 public:
  MemoryAccountant() = default;
  /// `limit_bytes` == 0 means unlimited (charges are still counted so
  /// stats can report them).
  explicit MemoryAccountant(std::uint64_t limit_bytes)
      : limit_(limit_bytes) {}

  MemoryAccountant(const MemoryAccountant&) = delete;
  MemoryAccountant& operator=(const MemoryAccountant&) = delete;

  std::uint64_t limit() const noexcept {
    return limit_.load(std::memory_order_relaxed);
  }

  /// Re-targets the budget (0 = unlimited).  Searches never resize their
  /// budget mid-run; this exists for long-lived accountants — the service
  /// layer's result cache shrinks or grows its byte budget at runtime and
  /// then evicts down to the new limit.
  void set_limit(std::uint64_t limit_bytes) noexcept {
    limit_.store(limit_bytes, std::memory_order_relaxed);
  }

  void charge(std::uint64_t bytes) noexcept {
    charged_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Un-charges a transient allocation (never drops below zero in
  /// well-paired use; pairing is the caller's contract).
  void release(std::uint64_t bytes) noexcept {
    charged_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Bytes currently charged across all threads (relaxed snapshot).
  std::uint64_t bytes() const noexcept {
    return charged_.load(std::memory_order_relaxed);
  }

  /// True once the budget is tripped: the charged total reached the
  /// limit, or exhaust() was called.  One relaxed load on the common
  /// (unlimited, un-exhausted) path.
  bool exceeded() const noexcept {
    if (exhausted_.load(std::memory_order_relaxed)) return true;
    const std::uint64_t limit = limit_.load(std::memory_order_relaxed);
    return limit != 0 &&
           charged_.load(std::memory_order_relaxed) >= limit;
  }

  /// Force-trips the budget (fault injection: a store insertion that
  /// "failed" behaves exactly like running out of memory).
  void exhaust() noexcept {
    exhausted_.store(true, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> limit_{0};
  std::atomic<std::uint64_t> charged_{0};
  std::atomic<bool> exhausted_{false};
};

}  // namespace evord::search
