// Trace-level independence relation, persistent-set and source-set
// selection, and dynamic (state-aware) independence for partial-order
// reduction (search/engine.hpp, SearchOptions::reduction).
//
// Two events are *independent* when, whenever both are enabled, executing
// them in either order reaches the same state — same stepper frontier AND
// same causal-tracker state — and neither disables the other.  The
// relation here is static (computed once per trace, O(n^2) bits) and
// conservative: a pair is declared dependent unless one of the proofs in
// docs/SEARCH.md §POR applies.  Concretely, (a, b) with a != b is
// DEPENDENT iff any of
//   * same process (program order; never co-enabled, kept dependent for
//     conceptual safety — no query ever needs this pair),
//   * both semaphore ops on the same semaphore (P/P compete for tokens,
//     binary V's clamp, V/V order is FIFO-queue-visible to the causal
//     tracker),
//   * both event-variable ops on the same variable, EXCEPT Wait/Wait
//     (Waits read the posted flag and the establisher; they commute),
//   * conflicting shared-data accesses (Event::conflicts_with) or an
//     observed dependence edge of D (either direction).
// Fork/join pairs are NOT dependent on the events of the forked/joined
// process: fork(c) before any event of c, and every event of c before
// join(c), is forced by enabledness, so such pairs are never co-enabled
// and independence is vacuous (and required — marking them dependent
// would glue every child to its parent and erase the reduction on
// fork/join-parallel workloads).
//
// The persistent-set selector returns, for a given state, a subset P of
// the enabled events such that every schedule from the state that avoids
// P executes only events independent of all of P.  Construction (one
// candidate per enabled seed event, smallest wins):
//   W := {proc(seed)};  repeat: for p in W with next event a, add every
//   process q not in W that still has an unexecuted event dependent with
//   a; give up (return all enabled) if some p in W has its next event
//   disabled.  P := {next event of p : p in W}.
// Soundness: a schedule avoiding P never executes an event of a W
// process (its next event is in P and program order gates the rest), and
// by the closure no event of a non-W process is dependent with any next
// event of W, so every executed event is independent of all of P.  The
// "∃ unexecuted dependent event" test is O(1) via a precomputed
// per-(event, process) maximum dependent position.
//
// The source-set selector (ReductionMode::kSourceWakeup) refines this in
// two ways, following Abdulla et al.'s source sets and Valmari-style
// stubborn sets:
//   * a DISABLED closure head no longer aborts the candidate — instead
//     the head's *necessary enabling set* joins W (processes holding an
//     unexecuted V for a blocked P, an unexecuted Post for a blocked
//     Wait, the joined child for a blocked Join, the forking process for
//     an unstarted process, the processes of unexecuted D-predecessors).
//     Any run that ever executes the head must first execute one of
//     those, so the persistence argument is preserved while P shrinks to
//     the ENABLED heads only;
//   * statically dependent pairs can be *dynamically excused* at the
//     current state (DynamicIndependence below): semaphore V/V when the
//     current count already covers every remaining P (new tokens are
//     never popped, so the token-queue order is causally invisible),
//     Post/Post and Post/Wait when the variable is already posted (the
//     Post is a no-op), and Clear/Clear always.  Only conditions that
//     stay true along every P-avoiding run are used inside the closure
//     (count can only grow while all P-holders are in W; posted cannot
//     flip while all Clear-holders are in W), which is exactly what the
//     persistence proof needs.  Engines with no causal tracker
//     (deadlock, the memoized sweep) get the unconditional variants:
//     they only need stepper-state commutation, which V/V, Post/Post,
//     Post/Wait and Clear/Clear satisfy from any state where both are
//     enabled.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "feasible/stepper.hpp"
#include "trace/trace.hpp"
#include "util/dynamic_bitset.hpp"
#include "util/hash.hpp"

namespace evord::search {

class IndependenceRelation {
 public:
  explicit IndependenceRelation(const Trace& trace);

  const Trace& trace() const { return *trace_; }
  std::size_t num_events() const { return n_; }
  std::size_t num_processes() const { return num_procs_; }

  bool dependent(EventId a, EventId b) const { return dep_[a].test(b); }
  bool independent(EventId a, EventId b) const { return !dep_[a].test(b); }

  /// Does process `q` still have an unexecuted event dependent with `a`,
  /// given that `q` has executed its first `pos_q` events?
  bool process_has_dependent_after(EventId a, ProcId q,
                                   std::uint32_t pos_q) const {
    const std::int64_t m = max_dep_index_[a * num_procs_ + q];
    return m >= static_cast<std::int64_t>(pos_q);
  }

  /// True when per-event process masks are available (<= 64 processes),
  /// enabling the word-parallel persistent-set closure.
  bool has_proc_masks() const { return num_procs_ <= 64; }
  /// Bit q set iff process q has any event dependent with `a`.  All-zero
  /// when has_proc_masks() is false.
  std::uint64_t dep_proc_mask(EventId a) const { return dep_proc_mask_[a]; }

  // ----- dynamic-independence support tables --------------------------
  // "Hard" dependence = shared-data conflict or explicit D edge: never
  // dynamically excusable (the causal rows record edge direction).
  bool hard_dependent(EventId a, EventId b) const {
    return hard_dep_[a].test(b);
  }
  bool process_has_hard_dep_after(EventId a, ProcId q,
                                  std::uint32_t pos_q) const {
    return max_hard_index_[a * num_procs_ + q] >=
           static_cast<std::int64_t>(pos_q);
  }
  /// Per-(object, process) maximum index_in_process of the given op
  /// kind, or -1 — "does q still hold an unexecuted P/V/Post/Clear/Wait
  /// on this object" in O(1), the category-wise analogue of
  /// process_has_dependent_after.
  std::int64_t sem_p_max(ObjectId sem, ProcId q) const {
    return sem_p_max_[sem * num_procs_ + q];
  }
  std::int64_t sem_v_max(ObjectId sem, ProcId q) const {
    return sem_v_max_[sem * num_procs_ + q];
  }
  std::int64_t ev_post_max(ObjectId var, ProcId q) const {
    return ev_post_max_[var * num_procs_ + q];
  }
  std::int64_t ev_clear_max(ObjectId var, ProcId q) const {
    return ev_clear_max_[var * num_procs_ + q];
  }
  std::int64_t ev_wait_max(ObjectId var, ProcId q) const {
    return ev_wait_max_[var * num_procs_ + q];
  }
  /// Total number of P operations on `sem` in the whole trace.
  std::uint32_t sem_p_total(ObjectId sem) const { return sem_p_total_[sem]; }
  /// D-edge predecessors of `e` (the stepper's F3 gate), for the
  /// source-set selector's necessary enabling sets.
  const std::vector<EventId>& dep_preds(EventId e) const {
    return dpreds_[e];
  }

 private:
  const Trace* trace_;
  std::size_t n_;
  std::size_t num_procs_;
  std::vector<DynamicBitset> dep_;  ///< symmetric n x n dependence
  /// max index_in_process over events of process q dependent with event
  /// a, or -1; indexed [a * num_procs_ + q].
  std::vector<std::int64_t> max_dep_index_;
  /// One word per event: the processes holding a dependent event.
  std::vector<std::uint64_t> dep_proc_mask_;
  std::vector<DynamicBitset> hard_dep_;  ///< data conflicts + D edges
  std::vector<std::int64_t> max_hard_index_;  ///< [a * num_procs_ + q]
  std::vector<std::int64_t> sem_p_max_;   ///< [sem * num_procs_ + q]
  std::vector<std::int64_t> sem_v_max_;   ///< [sem * num_procs_ + q]
  std::vector<std::int64_t> ev_post_max_;   ///< [var * num_procs_ + q]
  std::vector<std::int64_t> ev_clear_max_;  ///< [var * num_procs_ + q]
  std::vector<std::int64_t> ev_wait_max_;   ///< [var * num_procs_ + q]
  std::vector<std::uint32_t> sem_p_total_;
  std::vector<std::vector<EventId>> dpreds_;
};

/// State-aware (conditional) independence over the static relation.
/// `tracker_sensitive` distinguishes engines whose results depend on the
/// causal tracker's state (class enumeration: token queues, establisher
/// edges) from engines that only need stepper-state commutation
/// (deadlock, the memoized completability sweep):
///
///   pair            tracker-sensitive condition      untracked condition
///   V/V   (same s)  count(s) >= remaining P ops      always
///   V/P   (same s)  non-binary and count(s) >= 1     same
///   Post/Post (v)   posted(v)                        always
///   Post/Wait (v)   posted(v)                        always
///   Clear/Clear     always                           always
///
/// Tracker-sensitive proofs: V/V — pops on a semaphore are fixed by the
/// trace, so once the current count covers every remaining P, no token
/// pushed from here on is ever consumed and the FIFO queue order of the
/// two V's is causally invisible; V/P — under FIFO attribution the k-th
/// P on a semaphore attributes to the (k - initial)-th pushed V in push
/// order, and swapping an adjacent V/P changes neither ranking, so the
/// swap is causally invisible whenever a token is already present (the P
/// does not need THIS V) and no V can clamp (non-binary — a clamped V
/// pushes nothing, so the two orders reach different states); Post/Post
/// and Post/Wait — a Post on an already-posted variable is a no-op (the
/// establisher is unchanged), so order does not matter; Clear/Clear —
/// both leave the flag down and no establisher.  P/P is NEVER excused:
/// the swap exchanges which P takes which token rank (tracked), and the
/// closure condition would not be monotone (a later P can fire with one
/// token left, where P/P does not commute).  Untracked proofs: each pair
/// reaches the same stepper state from ANY state where both are enabled,
/// and neither side disables the other.  Pairs with a hard (data/D)
/// dependence are never excused.  All conditions are pure functions of
/// the stepper state — exactly what keeps (state, sleep)-keyed dedup and
/// donated subtrees deterministic.
class DynamicIndependence {
 public:
  DynamicIndependence(const IndependenceRelation* rel, bool tracker_sensitive)
      : rel_(rel), tracked_(tracker_sensitive) {}

  const IndependenceRelation& relation() const { return *rel_; }
  bool tracker_sensitive() const { return tracked_; }

  /// Do the remaining P ops on `sem` all have tokens already available?
  bool surplus_tokens(const TraceStepper& s, ObjectId sem) const {
    const std::uint32_t remaining =
        rel_->sem_p_total(sem) - s.executed_p(sem);
    return s.sem_count(sem) >= static_cast<int>(remaining);
  }

  /// True when the statically dependent pair (a, b) provably commutes at
  /// the stepper's current state (see the class comment for the table).
  bool excused(const TraceStepper& s, EventId a, EventId b) const {
    const Trace& trace = rel_->trace();
    const Event& ea = trace.event(a);
    const Event& eb = trace.event(b);
    if (ea.process == eb.process) return false;
    if (rel_->hard_dependent(a, b)) return false;
    if (is_semaphore_op(ea.kind) && is_semaphore_op(eb.kind) &&
        ea.object == eb.object) {
      if (ea.kind == EventKind::kSemV && eb.kind == EventKind::kSemV) {
        return !tracked_ || surplus_tokens(s, ea.object);
      }
      if (ea.kind == EventKind::kSemP && eb.kind == EventKind::kSemP) {
        return false;  // P/P compete for tokens (and swap attribution)
      }
      // V/P: commutes exactly when the P does not need this V — a token
      // is already present — and the semaphore is not binary (a clamped
      // V pushes nothing, so the two orders reach different states).
      return !trace.semaphores()[ea.object].binary &&
             s.sem_count(ea.object) >= 1;
    }
    if (is_event_op(ea.kind) && is_event_op(eb.kind) &&
        ea.object == eb.object) {
      if (ea.kind == EventKind::kClear && eb.kind == EventKind::kClear) {
        return true;
      }
      if (ea.kind == EventKind::kClear || eb.kind == EventKind::kClear) {
        return false;  // Clear/Post and Clear/Wait: flag outcome flips
      }
      // Post/Post and Post/Wait (Wait/Wait is statically independent).
      return !tracked_ || s.posted(ea.object);
    }
    return false;
  }

  bool independent_at(const TraceStepper& s, EventId a, EventId b) const {
    return rel_->independent(a, b) || excused(s, a, b);
  }

  /// Closure test for the source-set selector: does process `q` still
  /// hold an unexecuted event dependent with head `a` that is NOT
  /// dynamically excused at the current state?  Only monotone conditions
  /// are consulted (see the file comment), so a `false` here stays false
  /// along every P-avoiding run.  `excused_ctr`, when non-null, counts
  /// static dependencies the dynamic conditions waived.
  bool process_blocks(const TraceStepper& s, EventId a, ProcId q,
                      std::uint64_t* excused_ctr) const {
    const Event& ea = rel_->trace().event(a);
    const auto pos = static_cast<std::int64_t>(s.position(q));
    if (rel_->process_has_hard_dep_after(a, q, s.position(q))) return true;
    switch (ea.kind) {
      case EventKind::kSemP:
        if (rel_->sem_p_max(ea.object, q) >= pos) return true;
        if (rel_->sem_v_max(ea.object, q) >= pos) {
          // V/P: the head P is enabled, so a token is present, and only
          // other P's (every holder of which joins W) can drain it —
          // the pairwise diamond holds at every reachable fire state.
          // Binary semaphores are excluded (clamped V's).
          if (rel_->trace().semaphores()[ea.object].binary ||
              s.sem_count(ea.object) < 1) {
            return true;
          }
          if (excused_ctr != nullptr) ++*excused_ctr;
        }
        return false;
      case EventKind::kSemV:
        if (rel_->sem_p_max(ea.object, q) >= pos) {
          // P/V mirror: with a token already present, q's P's can only
          // fire at states with a token — where the swap diamond holds.
          if (rel_->trace().semaphores()[ea.object].binary ||
              s.sem_count(ea.object) < 1) {
            return true;
          }
          if (excused_ctr != nullptr) ++*excused_ctr;
        }
        if (rel_->sem_v_max(ea.object, q) >= pos) {
          if (tracked_ && !surplus_tokens(s, ea.object)) return true;
          if (excused_ctr != nullptr) ++*excused_ctr;
        }
        return false;
      case EventKind::kPost:
        if (rel_->ev_clear_max(ea.object, q) >= pos) return true;
        if (rel_->ev_post_max(ea.object, q) >= pos ||
            rel_->ev_wait_max(ea.object, q) >= pos) {
          if (tracked_ && !s.posted(ea.object)) return true;
          if (excused_ctr != nullptr) ++*excused_ctr;
        }
        return false;
      case EventKind::kClear:
        if (rel_->ev_post_max(ea.object, q) >= pos ||
            rel_->ev_wait_max(ea.object, q) >= pos) {
          return true;
        }
        if (rel_->ev_clear_max(ea.object, q) >= pos &&
            excused_ctr != nullptr) {
          ++*excused_ctr;
        }
        return false;
      case EventKind::kWait:
        if (rel_->ev_clear_max(ea.object, q) >= pos) return true;
        if (rel_->ev_post_max(ea.object, q) >= pos) {
          if (tracked_ && !s.posted(ea.object)) return true;
          if (excused_ctr != nullptr) ++*excused_ctr;
        }
        return false;
      default:
        // Cross-process dependences of other kinds are all hard.
        return false;
    }
  }

  /// Necessary enabling set for a DISABLED head `a`: processes such that
  /// any run from the current state that ever enables `a` must first
  /// execute an event of one of them.  The first blocking condition (in
  /// a fixed order) decides; an EMPTY result means `a` is permanently
  /// disabled from this state and constrains nothing.
  void enabling_processes(const TraceStepper& s, EventId a,
                          std::vector<ProcId>& out) const {
    out.clear();
    const Trace& trace = rel_->trace();
    const Event& ea = trace.event(a);
    if (ea.index_in_process == 0) {
      const EventId creator = trace.process(ea.process).creating_fork;
      if (creator != kNoEvent && !s.executed(creator)) {
        out.push_back(trace.event(creator).process);
        return;
      }
    }
    switch (ea.kind) {
      case EventKind::kSemP:
        if (s.sem_count(ea.object) <= 0) {
          // The count must rise, so some other process's V must run.
          for (ProcId q = 0; q < trace.num_processes(); ++q) {
            if (q == ea.process) continue;
            if (rel_->sem_v_max(ea.object, q) >=
                static_cast<std::int64_t>(s.position(q))) {
              out.push_back(q);
            }
          }
          return;
        }
        break;
      case EventKind::kWait:
        if (!s.posted(ea.object)) {
          for (ProcId q = 0; q < trace.num_processes(); ++q) {
            if (q == ea.process) continue;
            if (rel_->ev_post_max(ea.object, q) >=
                static_cast<std::int64_t>(s.position(q))) {
              out.push_back(q);
            }
          }
          return;
        }
        break;
      case EventKind::kJoin: {
        const auto child = static_cast<ProcId>(ea.object);
        if (s.position(child) < trace.program_order(child).size()) {
          out.push_back(child);
          return;
        }
        const EventId creator = trace.process(child).creating_fork;
        if (creator != kNoEvent && !s.executed(creator)) {
          out.push_back(trace.event(creator).process);
          return;
        }
        break;
      }
      default:
        break;
    }
    if (s.respects_dependences()) {
      for (const EventId pred : rel_->dep_preds(a)) {
        if (!s.executed(pred)) {
          out.push_back(trace.event(pred).process);
          return;
        }
      }
    }
  }

 private:
  const IndependenceRelation* rel_;
  bool tracked_;
};

/// Per-engine scratch for persistent-set selection (reused per state).
/// With at most 64 processes the closure runs word-parallel: candidate
/// processes for each head event come from one AND of the event's
/// dependent-process mask with the still-active, not-yet-in-W mask,
/// then only the surviving bits pay the per-process position check.
/// `force_scalar` keeps the per-process scan (bench comparison knob);
/// both paths produce identical sets.
class PersistentSetSelector {
 public:
  explicit PersistentSetSelector(const IndependenceRelation* indep,
                                 bool force_scalar = false)
      : indep_(indep),
        masked_(indep != nullptr && indep->has_proc_masks() &&
                !force_scalar) {}

  /// Writes into `out` a persistent subset of `enabled` (which must be
  /// the state's full enabled list in process-id order, non-empty),
  /// preserving that order.  Falls back to the full enabled list when
  /// every closure gives up.  Deterministic: a pure function of the
  /// stepper state.
  void select(const TraceStepper& stepper, const std::vector<EventId>& enabled,
              std::vector<EventId>& out) {
    const Trace& trace = stepper.trace();
    const std::size_t num_procs = indep_->num_processes();
    // Processes with any unexecuted event; fixed for the whole state.
    std::uint64_t active = 0;
    if (masked_) {
      for (ProcId q = 0; q < num_procs; ++q) {
        if (stepper.next_of(q) != kNoEvent) active |= std::uint64_t{1} << q;
      }
    }
    best_.clear();
    for (const EventId seed : enabled) {
      std::uint64_t w_mask = 0;
      if (masked_) {
        w_mask = std::uint64_t{1} << trace.event(seed).process;
      } else {
        in_w_.assign(num_procs, false);
        in_w_[trace.event(seed).process] = true;
      }
      w_.clear();
      w_.push_back(trace.event(seed).process);
      bool ok = true;
      for (std::size_t head = 0; ok && head < w_.size(); ++head) {
        const EventId a = stepper.next_of(w_[head]);
        // Every W process has an unexecuted event (it was added because
        // one of them is dependent with a next event of W), but that
        // next event must also be ENABLED: a schedule avoiding a
        // disabled next event could still be blocked by it forever, so
        // the persistence argument needs all of P enabled.
        if (a == kNoEvent || !stepper.enabled(a)) {
          ok = false;
          break;
        }
        if (masked_) {
          std::uint64_t cand = indep_->dep_proc_mask(a) & active & ~w_mask;
          while (cand != 0) {
            const ProcId q = static_cast<ProcId>(std::countr_zero(cand));
            cand &= cand - 1;
            if (indep_->process_has_dependent_after(a, q,
                                                    stepper.position(q))) {
              w_mask |= std::uint64_t{1} << q;
              w_.push_back(q);
            }
          }
          continue;
        }
        for (ProcId q = 0; q < num_procs; ++q) {
          if (in_w_[q] || stepper.next_of(q) == kNoEvent) continue;
          if (indep_->process_has_dependent_after(a, q,
                                                  stepper.position(q))) {
            in_w_[q] = true;
            w_.push_back(q);
          }
        }
      }
      if (!ok) continue;
      if (best_.empty() || w_.size() < best_.size()) best_ = w_;
      if (best_.size() == 1) break;
    }
    out.clear();
    if (best_.empty()) {  // every closure hit a disabled next event
      out = enabled;
      return;
    }
    // P = the next (enabled) events of the chosen processes, in the
    // enabled list's process-id order.
    for (const EventId e : enabled) {
      if (std::find(best_.begin(), best_.end(), trace.event(e).process) !=
          best_.end()) {
        out.push_back(e);
      }
    }
  }

 private:
  const IndependenceRelation* indep_;
  bool masked_;
  std::vector<ProcId> w_;
  std::vector<ProcId> best_;
  std::vector<bool> in_w_;
};

/// Per-engine scratch for source-set selection (ReductionMode::
/// kSourceWakeup).  Same stubborn-set closure shape as the persistent
/// selector, with the two refinements from the file comment: disabled
/// heads pull in their necessary enabling set instead of aborting the
/// candidate, and dependent-process tests go through the dynamic
/// (state-aware) independence oracle.  The returned set P is the ENABLED
/// next events of the closure's process set W; candidates are scored by
/// (|P|, |W|), smallest wins.  Deterministic: a pure function of the
/// stepper state.
class SourceSetSelector {
 public:
  SourceSetSelector(const IndependenceRelation* indep,
                    const DynamicIndependence* dyn)
      : indep_(indep),
        dyn_(dyn),
        masked_(indep != nullptr && indep->has_proc_masks()) {}

  /// Writes into `out` a source subset of `enabled` (the state's full
  /// enabled list in process-id order, non-empty), preserving that
  /// order.  Never empty: the chosen seed is always in its own P.
  /// `excused_ctr`, when non-null, accumulates dynamic excusals.
  void select(const TraceStepper& stepper, const std::vector<EventId>& enabled,
              std::vector<EventId>& out, std::uint64_t* excused_ctr) {
    const Trace& trace = stepper.trace();
    const std::size_t num_procs = indep_->num_processes();
    std::uint64_t active = 0;
    if (masked_) {
      for (ProcId q = 0; q < num_procs; ++q) {
        if (stepper.next_of(q) != kNoEvent) active |= std::uint64_t{1} << q;
      }
    }
    best_.clear();
    std::size_t best_heads = 0;
    for (const EventId seed : enabled) {
      std::uint64_t w_mask = 0;
      if (!masked_) in_w_.assign(num_procs, false);
      w_.clear();
      add_process(trace.event(seed).process, w_mask);
      for (std::size_t head = 0; head < w_.size(); ++head) {
        const EventId a = stepper.next_of(w_[head]);
        if (a == kNoEvent) continue;  // finished process: nothing to add
        if (!stepper.enabled(a)) {
          // A disabled head never runs before its enabling set does, so
          // only the enabling set joins W (no dependent-closure needed).
          dyn_->enabling_processes(stepper, a, procs_scratch_);
          for (const ProcId q : procs_scratch_) add_process(q, w_mask);
          continue;
        }
        if (masked_) {
          std::uint64_t cand = indep_->dep_proc_mask(a) & active & ~w_mask;
          while (cand != 0) {
            const ProcId q = static_cast<ProcId>(std::countr_zero(cand));
            cand &= cand - 1;
            if (!indep_->process_has_dependent_after(a, q,
                                                     stepper.position(q))) {
              continue;
            }
            if (dyn_->process_blocks(stepper, a, q, excused_ctr)) {
              add_process(q, w_mask);
            }
          }
          continue;
        }
        for (ProcId q = 0; q < num_procs; ++q) {
          if (in_w_[q] || stepper.next_of(q) == kNoEvent) continue;
          if (!indep_->process_has_dependent_after(a, q,
                                                   stepper.position(q))) {
            continue;
          }
          if (dyn_->process_blocks(stepper, a, q, excused_ctr)) {
            add_process(q, w_mask);
          }
        }
      }
      std::size_t heads = 0;
      for (const ProcId p : w_) {
        const EventId a = stepper.next_of(p);
        if (a != kNoEvent && stepper.enabled(a)) ++heads;
      }
      if (best_.empty() || heads < best_heads ||
          (heads == best_heads && w_.size() < best_.size())) {
        best_ = w_;
        best_heads = heads;
      }
      if (best_heads == 1) break;
    }
    out.clear();
    for (const EventId e : enabled) {
      if (std::find(best_.begin(), best_.end(), trace.event(e).process) !=
          best_.end()) {
        out.push_back(e);
      }
    }
  }

 private:
  void add_process(ProcId q, std::uint64_t& w_mask) {
    if (masked_) {
      const std::uint64_t bit = std::uint64_t{1} << q;
      if ((w_mask & bit) != 0) return;
      w_mask |= bit;
    } else {
      if (in_w_[q]) return;
      in_w_[q] = true;
    }
    w_.push_back(q);
  }

  const IndependenceRelation* indep_;
  const DynamicIndependence* dyn_;
  bool masked_;
  std::vector<ProcId> w_;
  std::vector<ProcId> best_;
  std::vector<bool> in_w_;
  std::vector<ProcId> procs_scratch_;
};

// ----------------------------------------------------------------------
// Sleep-set plumbing shared by the engines and the explorer front-ends
// (root claims must fold exactly like engine claims).

inline constexpr std::uint64_t kSleepHashSeed = 0x632be59bd9b4e019ull;
inline constexpr std::uint64_t kSleepHashSalt = 0xd6e8feb86659fd93ull;
inline constexpr std::uint64_t kSleepFoldSalt = 0xa0761d6478bd642full;
inline constexpr std::uint64_t kSleepKeySentinel = 0xe7037ed1a0b428dbull;

/// Order-sensitive hash of a sorted sleep set.
inline std::uint64_t sleep_set_hash(const std::vector<EventId>& sleep) {
  std::uint64_t h = kSleepHashSeed;
  for (const EventId e : sleep) h = hash_mix(kSleepHashSalt, h, e);
  return h;
}

/// Folds the sleep-set hash into a state fingerprint.  Under reduction
/// the dedup/memo key is the (state, sleep set) pair: the reduced
/// subtree below a node is a deterministic function of exactly that
/// pair, so claims keyed this way prune only genuinely identical
/// subtrees (the classical sleep-sets-with-state-matching pitfall is
/// avoided by construction).
inline std::uint64_t fold_sleep(std::uint64_t fp, std::uint64_t sleep_hash) {
  return hash_mix(kSleepFoldSalt, fp, sleep_hash);
}

/// Extends a debug collision-check payload with the sleep set, matching
/// fold_sleep's contribution to the fingerprint.
inline void extend_key_with_sleep(const std::vector<EventId>& sleep,
                                  std::vector<std::uint64_t>& key) {
  key.push_back(kSleepKeySentinel ^ sleep.size());
  for (const EventId e : sleep) key.push_back(e);
}

/// The sleep set a child inherits: keep every event of the parent's
/// sleep set and every earlier-explored sibling that is independent of
/// the chosen event, sorted by id (sleep and earlier siblings are
/// disjoint — siblings are drawn from P \ sleep).
inline void child_sleep_set(const IndependenceRelation& indep,
                            const std::vector<EventId>& sleep,
                            const std::vector<EventId>& selected,
                            std::size_t chosen_index,
                            std::vector<EventId>& out) {
  const EventId chosen = selected[chosen_index];
  out.clear();
  for (const EventId x : sleep) {
    if (indep.independent(x, chosen)) out.push_back(x);
  }
  for (std::size_t j = 0; j < chosen_index; ++j) {
    if (indep.independent(selected[j], chosen)) out.push_back(selected[j]);
  }
  std::sort(out.begin(), out.end());
}

// ----------------------------------------------------------------------
// Wakeup frames (ReductionMode::kSourceWakeup).
//
// Under dynamic independence the sleep set a child inherits depends on
// independence evaluated AT the parent state — and a donated subtree's
// root sleep must be computed from the DONOR's ancestor state, not the
// thief's.  Each engine therefore keeps one wakeup frame per DFS depth:
// for every event x in (sleep ∪ selected), a bitmask over the selected
// indices j with x independent-of-selected[j] at that state.  The frame
// is computed once per expanded state and read by both the in-walk
// child-sleep computation and try_split donation, which is what
// serializes the wakeup scheduling state across work stealing (the
// donated SearchTask::sleep is a pure function of the frame).  Frames
// need selected.size() <= 64; beyond that engines fall back to the
// static child_sleep_set — still sound, just coarser, and a
// deterministic function of the state either way.

/// Fills `masks` (one word per event of sleep ++ selected; bit j =
/// independent of selected[j] at the stepper's state).  Requires
/// selected.size() <= 64.
inline void compute_wakeup_masks(const DynamicIndependence& dyn,
                                 const TraceStepper& stepper,
                                 const std::vector<EventId>& sleep,
                                 const std::vector<EventId>& selected,
                                 std::vector<std::uint64_t>& masks,
                                 std::uint64_t* excused_ctr) {
  const IndependenceRelation& rel = dyn.relation();
  masks.assign(sleep.size() + selected.size(), 0);
  for (std::size_t i = 0; i < masks.size(); ++i) {
    const EventId x = i < sleep.size() ? sleep[i] : selected[i - sleep.size()];
    std::uint64_t m = 0;
    for (std::size_t j = 0; j < selected.size(); ++j) {
      const EventId y = selected[j];
      if (x == y) continue;
      if (rel.independent(x, y)) {
        m |= std::uint64_t{1} << j;
      } else if (dyn.excused(stepper, x, y)) {
        m |= std::uint64_t{1} << j;
        if (excused_ctr != nullptr) ++*excused_ctr;
      }
    }
    masks[i] = m;
  }
}

/// child_sleep_set evaluated through a wakeup frame: keep every sleeping
/// event and every earlier sibling whose frame bit for the chosen index
/// is set, sorted by id.  `sleep` must be the frame's sleep set;
/// `selected` may have had its tail donated away (indices are stable).
inline void child_sleep_from_masks(const std::vector<EventId>& sleep,
                                   const std::vector<EventId>& selected,
                                   std::size_t chosen_index,
                                   const std::vector<std::uint64_t>& masks,
                                   std::vector<EventId>& out) {
  const std::uint64_t bit = std::uint64_t{1} << chosen_index;
  out.clear();
  for (std::size_t i = 0; i < sleep.size(); ++i) {
    if ((masks[i] & bit) != 0) out.push_back(sleep[i]);
  }
  for (std::size_t j = 0; j < chosen_index; ++j) {
    if ((masks[sleep.size() + j] & bit) != 0) out.push_back(selected[j]);
  }
  std::sort(out.begin(), out.end());
}

}  // namespace evord::search
