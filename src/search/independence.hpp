// Trace-level independence relation and persistent-set selection for
// partial-order reduction (search/engine.hpp, SearchOptions::reduction).
//
// Two events are *independent* when, whenever both are enabled, executing
// them in either order reaches the same state — same stepper frontier AND
// same causal-tracker state — and neither disables the other.  The
// relation here is static (computed once per trace, O(n^2) bits) and
// conservative: a pair is declared dependent unless one of the proofs in
// docs/SEARCH.md §POR applies.  Concretely, (a, b) with a != b is
// DEPENDENT iff any of
//   * same process (program order; never co-enabled, kept dependent for
//     conceptual safety — no query ever needs this pair),
//   * both semaphore ops on the same semaphore (P/P compete for tokens,
//     binary V's clamp, V/V order is FIFO-queue-visible to the causal
//     tracker),
//   * both event-variable ops on the same variable, EXCEPT Wait/Wait
//     (Waits read the posted flag and the establisher; they commute),
//   * conflicting shared-data accesses (Event::conflicts_with) or an
//     observed dependence edge of D (either direction).
// Fork/join pairs are NOT dependent on the events of the forked/joined
// process: fork(c) before any event of c, and every event of c before
// join(c), is forced by enabledness, so such pairs are never co-enabled
// and independence is vacuous (and required — marking them dependent
// would glue every child to its parent and erase the reduction on
// fork/join-parallel workloads).
//
// The persistent-set selector returns, for a given state, a subset P of
// the enabled events such that every schedule from the state that avoids
// P executes only events independent of all of P.  Construction (one
// candidate per enabled seed event, smallest wins):
//   W := {proc(seed)};  repeat: for p in W with next event a, add every
//   process q not in W that still has an unexecuted event dependent with
//   a; give up (return all enabled) if some p in W has its next event
//   disabled.  P := {next event of p : p in W}.
// Soundness: a schedule avoiding P never executes an event of a W
// process (its next event is in P and program order gates the rest), and
// by the closure no event of a non-W process is dependent with any next
// event of W, so every executed event is independent of all of P.  The
// "∃ unexecuted dependent event" test is O(1) via a precomputed
// per-(event, process) maximum dependent position.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "feasible/stepper.hpp"
#include "trace/trace.hpp"
#include "util/dynamic_bitset.hpp"
#include "util/hash.hpp"

namespace evord::search {

class IndependenceRelation {
 public:
  explicit IndependenceRelation(const Trace& trace);

  std::size_t num_events() const { return n_; }
  std::size_t num_processes() const { return num_procs_; }

  bool dependent(EventId a, EventId b) const { return dep_[a].test(b); }
  bool independent(EventId a, EventId b) const { return !dep_[a].test(b); }

  /// Does process `q` still have an unexecuted event dependent with `a`,
  /// given that `q` has executed its first `pos_q` events?
  bool process_has_dependent_after(EventId a, ProcId q,
                                   std::uint32_t pos_q) const {
    const std::int64_t m = max_dep_index_[a * num_procs_ + q];
    return m >= static_cast<std::int64_t>(pos_q);
  }

  /// True when per-event process masks are available (<= 64 processes),
  /// enabling the word-parallel persistent-set closure.
  bool has_proc_masks() const { return num_procs_ <= 64; }
  /// Bit q set iff process q has any event dependent with `a`.  All-zero
  /// when has_proc_masks() is false.
  std::uint64_t dep_proc_mask(EventId a) const { return dep_proc_mask_[a]; }

 private:
  std::size_t n_;
  std::size_t num_procs_;
  std::vector<DynamicBitset> dep_;  ///< symmetric n x n dependence
  /// max index_in_process over events of process q dependent with event
  /// a, or -1; indexed [a * num_procs_ + q].
  std::vector<std::int64_t> max_dep_index_;
  /// One word per event: the processes holding a dependent event.
  std::vector<std::uint64_t> dep_proc_mask_;
};

/// Per-engine scratch for persistent-set selection (reused per state).
/// With at most 64 processes the closure runs word-parallel: candidate
/// processes for each head event come from one AND of the event's
/// dependent-process mask with the still-active, not-yet-in-W mask,
/// then only the surviving bits pay the per-process position check.
/// `force_scalar` keeps the per-process scan (bench comparison knob);
/// both paths produce identical sets.
class PersistentSetSelector {
 public:
  explicit PersistentSetSelector(const IndependenceRelation* indep,
                                 bool force_scalar = false)
      : indep_(indep),
        masked_(indep != nullptr && indep->has_proc_masks() &&
                !force_scalar) {}

  /// Writes into `out` a persistent subset of `enabled` (which must be
  /// the state's full enabled list in process-id order, non-empty),
  /// preserving that order.  Falls back to the full enabled list when
  /// every closure gives up.  Deterministic: a pure function of the
  /// stepper state.
  void select(const TraceStepper& stepper, const std::vector<EventId>& enabled,
              std::vector<EventId>& out) {
    const Trace& trace = stepper.trace();
    const std::size_t num_procs = indep_->num_processes();
    // Processes with any unexecuted event; fixed for the whole state.
    std::uint64_t active = 0;
    if (masked_) {
      for (ProcId q = 0; q < num_procs; ++q) {
        if (stepper.next_of(q) != kNoEvent) active |= std::uint64_t{1} << q;
      }
    }
    best_.clear();
    for (const EventId seed : enabled) {
      std::uint64_t w_mask = 0;
      if (masked_) {
        w_mask = std::uint64_t{1} << trace.event(seed).process;
      } else {
        in_w_.assign(num_procs, false);
        in_w_[trace.event(seed).process] = true;
      }
      w_.clear();
      w_.push_back(trace.event(seed).process);
      bool ok = true;
      for (std::size_t head = 0; ok && head < w_.size(); ++head) {
        const EventId a = stepper.next_of(w_[head]);
        // Every W process has an unexecuted event (it was added because
        // one of them is dependent with a next event of W), but that
        // next event must also be ENABLED: a schedule avoiding a
        // disabled next event could still be blocked by it forever, so
        // the persistence argument needs all of P enabled.
        if (a == kNoEvent || !stepper.enabled(a)) {
          ok = false;
          break;
        }
        if (masked_) {
          std::uint64_t cand = indep_->dep_proc_mask(a) & active & ~w_mask;
          while (cand != 0) {
            const ProcId q = static_cast<ProcId>(std::countr_zero(cand));
            cand &= cand - 1;
            if (indep_->process_has_dependent_after(a, q,
                                                    stepper.position(q))) {
              w_mask |= std::uint64_t{1} << q;
              w_.push_back(q);
            }
          }
          continue;
        }
        for (ProcId q = 0; q < num_procs; ++q) {
          if (in_w_[q] || stepper.next_of(q) == kNoEvent) continue;
          if (indep_->process_has_dependent_after(a, q,
                                                  stepper.position(q))) {
            in_w_[q] = true;
            w_.push_back(q);
          }
        }
      }
      if (!ok) continue;
      if (best_.empty() || w_.size() < best_.size()) best_ = w_;
      if (best_.size() == 1) break;
    }
    out.clear();
    if (best_.empty()) {  // every closure hit a disabled next event
      out = enabled;
      return;
    }
    // P = the next (enabled) events of the chosen processes, in the
    // enabled list's process-id order.
    for (const EventId e : enabled) {
      if (std::find(best_.begin(), best_.end(), trace.event(e).process) !=
          best_.end()) {
        out.push_back(e);
      }
    }
  }

 private:
  const IndependenceRelation* indep_;
  bool masked_;
  std::vector<ProcId> w_;
  std::vector<ProcId> best_;
  std::vector<bool> in_w_;
};

// ----------------------------------------------------------------------
// Sleep-set plumbing shared by the engines and the explorer front-ends
// (root claims must fold exactly like engine claims).

inline constexpr std::uint64_t kSleepHashSeed = 0x632be59bd9b4e019ull;
inline constexpr std::uint64_t kSleepHashSalt = 0xd6e8feb86659fd93ull;
inline constexpr std::uint64_t kSleepFoldSalt = 0xa0761d6478bd642full;
inline constexpr std::uint64_t kSleepKeySentinel = 0xe7037ed1a0b428dbull;

/// Order-sensitive hash of a sorted sleep set.
inline std::uint64_t sleep_set_hash(const std::vector<EventId>& sleep) {
  std::uint64_t h = kSleepHashSeed;
  for (const EventId e : sleep) h = hash_mix(kSleepHashSalt, h, e);
  return h;
}

/// Folds the sleep-set hash into a state fingerprint.  Under reduction
/// the dedup/memo key is the (state, sleep set) pair: the reduced
/// subtree below a node is a deterministic function of exactly that
/// pair, so claims keyed this way prune only genuinely identical
/// subtrees (the classical sleep-sets-with-state-matching pitfall is
/// avoided by construction).
inline std::uint64_t fold_sleep(std::uint64_t fp, std::uint64_t sleep_hash) {
  return hash_mix(kSleepFoldSalt, fp, sleep_hash);
}

/// Extends a debug collision-check payload with the sleep set, matching
/// fold_sleep's contribution to the fingerprint.
inline void extend_key_with_sleep(const std::vector<EventId>& sleep,
                                  std::vector<std::uint64_t>& key) {
  key.push_back(kSleepKeySentinel ^ sleep.size());
  for (const EventId e : sleep) key.push_back(e);
}

/// The sleep set a child inherits: keep every event of the parent's
/// sleep set and every earlier-explored sibling that is independent of
/// the chosen event, sorted by id (sleep and earlier siblings are
/// disjoint — siblings are drawn from P \ sleep).
inline void child_sleep_set(const IndependenceRelation& indep,
                            const std::vector<EventId>& sleep,
                            const std::vector<EventId>& selected,
                            std::size_t chosen_index,
                            std::vector<EventId>& out) {
  const EventId chosen = selected[chosen_index];
  out.clear();
  for (const EventId x : sleep) {
    if (indep.independent(x, chosen)) out.push_back(x);
  }
  for (std::size_t j = 0; j < chosen_index; ++j) {
    if (indep.independent(selected[j], chosen)) out.push_back(selected[j]);
  }
  std::sort(out.begin(), out.end());
}

}  // namespace evord::search
