#include "search/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "search/engine.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace evord::search {

namespace {

/// Heap footprint of a task descriptor (charged while it sits queued).
std::uint64_t task_bytes(const SearchTask& task) {
  return sizeof(SearchTask) + task.seed.size() * sizeof(EventId) +
         task.dewey.size() * sizeof(std::uint32_t) +
         task.sleep.size() * sizeof(EventId);
}

/// Chase–Lev work-stealing deque of SearchTask*.  The owner pushes and
/// pops at the bottom (LIFO, so it keeps working near its current
/// frontier); thieves CAS the top (FIFO, so they take the largest,
/// oldest subtrees).  This is the classic lock-free algorithm; all
/// ordering-critical accesses use seq_cst operations on the indices
/// rather than standalone fences (equivalent ordering, and
/// ThreadSanitizer models atomics but not fences).  Grown buffers are
/// retired, not freed, until destruction: a thief may still be reading
/// a slot of the old buffer after the owner swaps in a bigger one.
class TaskDeque {
 public:
  TaskDeque() : buffer_(new Buffer(kInitialCapacity)) {
    retired_.emplace_back(buffer_.load(std::memory_order_relaxed));
  }

  TaskDeque(const TaskDeque&) = delete;
  TaskDeque& operator=(const TaskDeque&) = delete;

  ~TaskDeque() {
    // Single-threaded by now (workers joined); drop any undrained tasks.
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    for (std::int64_t i = t; i < b; ++i) delete buf->get(i);
  }

  /// Owner only.
  void push(SearchTask* task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, task);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only; nullptr when empty.
  SearchTask* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    SearchTask* task = nullptr;
    if (t <= b) {
      task = buf->get(b);
      if (t == b) {
        // Last element: race against thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          task = nullptr;  // a thief got it
        }
        bottom_.store(b + 1, std::memory_order_seq_cst);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_seq_cst);
    }
    return task;
  }

  /// Any thread; nullptr when empty or when the CAS race was lost.
  SearchTask* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    SearchTask* task = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race; the caller may retry elsewhere
    }
    return task;
  }

 private:
  static constexpr std::size_t kInitialCapacity = 64;

  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap),
          mask(cap - 1),
          slots(std::make_unique<std::atomic<SearchTask*>[]>(cap)) {}
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<SearchTask*>[]> slots;

    SearchTask* get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, SearchTask* task) {
      slots[static_cast<std::size_t>(i) & mask].store(
          task, std::memory_order_relaxed);
    }
  };

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    Buffer* raw = bigger.get();
    retired_.emplace_back(std::move(bigger));
    buffer_.store(raw, std::memory_order_release);
    return raw;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  /// Owner-only (grow is called from push); keeps every buffer alive for
  /// the deque's lifetime so in-flight thief reads stay valid.
  std::vector<std::unique_ptr<Buffer>> retired_;
};

}  // namespace

class WorkStealingScheduler {
 public:
  WorkStealingScheduler(std::size_t num_workers, std::uint64_t steal_seed,
                        SharedContext& ctx, const TaskRunner& run)
      : ctx_(&ctx), run_(&run), workers_(num_workers) {
    for (std::size_t i = 0; i < num_workers; ++i) {
      // splitmix-style decorrelation so nearby worker ids probe
      // different victim sequences even with steal_seed == 0.
      workers_[i] = std::make_unique<Worker>(
          steal_seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
    }
  }

  SearchStats execute(std::vector<SearchTask> roots) {
    outstanding_.store(static_cast<std::int64_t>(roots.size()),
                       std::memory_order_relaxed);
    // Round-robin initial distribution; single-threaded here, so owner
    // pushes into foreign deques are safe.
    for (std::size_t i = 0; i < roots.size(); ++i) {
      ctx_->memory.charge(task_bytes(roots[i]));
      workers_[i % workers_.size()]->deque.push(
          new SearchTask(std::move(roots[i])));
    }
    std::vector<std::thread> threads;
    threads.reserve(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      threads.emplace_back([this, i] { worker_main(i); });
    }
    for (std::thread& t : threads) t.join();
    if (first_error_) std::rethrow_exception(first_error_);
    total_.workers.resize(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      total_.workers[i] = workers_[i]->stats;
    }
    return std::move(total_);
  }

  bool split_wanted() const noexcept {
    return hungry_.load(std::memory_order_relaxed) > 0;
  }

  void spawn(std::size_t worker_id, SearchTask task) {
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    ++workers_[worker_id]->stats.tasks_spawned;
    // Donated tasks are real allocations a budgeted search must answer
    // for: charge while queued, released when the task is consumed.
    ctx_->memory.charge(task_bytes(task));
    workers_[worker_id]->deque.push(new SearchTask(std::move(task)));
  }

 private:
  struct Worker {
    explicit Worker(std::uint64_t rng_seed) : rng(rng_seed) {}
    TaskDeque deque;
    Rng rng;
    WorkerStats stats;
  };

  void worker_main(std::size_t id) {
    Worker& self = *workers_[id];
    WorkerHandle handle(this, id);
    bool hungry = false;
    std::chrono::steady_clock::time_point idle_since;
    const auto stop_hunger = [&] {
      if (!hungry) return;
      hungry = false;
      hungry_.fetch_sub(1, std::memory_order_relaxed);
      self.stats.idle_nanos += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - idle_since)
              .count());
    };
    for (;;) {
      bool stolen = false;
      SearchTask* task = self.deque.pop();
      if (task == nullptr) task = steal_task(self, id, &stolen);
      if (task != nullptr) {
        stop_hunger();
        ++self.stats.tasks_executed;
        if (stolen) ++self.stats.tasks_stolen;
        run_task(task, handle);
        // Decrement last: a running task may spawn, so outstanding_
        // can only hit zero once no spawner is left.
        outstanding_.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      if (!hungry) {
        hungry = true;
        hungry_.fetch_add(1, std::memory_order_relaxed);
        idle_since = std::chrono::steady_clock::now();
      }
      if (outstanding_.load(std::memory_order_acquire) == 0) break;
      std::this_thread::yield();
    }
    stop_hunger();
  }

  void run_task(SearchTask* task, WorkerHandle& handle) {
    std::unique_ptr<SearchTask> owned(task);
    ctx_->memory.release(task_bytes(*owned));
    if (abort_.load(std::memory_order_acquire)) return;  // drain only
    try {
      const SearchStats stats = (*run_)(*owned, handle);
      std::lock_guard<std::mutex> lock(merge_mu_);
      total_.merge(stats);
    } catch (...) {
      abort_.store(true, std::memory_order_release);
      ctx_->request_stop(StopReason::kVisitor);
      std::lock_guard<std::mutex> lock(merge_mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }

  SearchTask* steal_task(Worker& self, std::size_t id, bool* stolen) {
    const std::size_t n = workers_.size();
    if (n <= 1) return nullptr;
    if (fault::enabled() &&
        fault::on_steal_attempt(id) == fault::StealAction::kPoison) {
      // Injected steal failure: this worker's probe round reports empty.
      // Every queued task is still consumed by its owner's LIFO pop, so
      // the search completes with identical results.
      return nullptr;
    }
    // One round of seeded-random victim probes; the outer loop retries
    // until global termination, so one pass per wakeup is enough.
    for (std::size_t attempt = 0; attempt + 1 < 2 * n; ++attempt) {
      const std::size_t victim = static_cast<std::size_t>(self.rng.below(n));
      if (victim == id) continue;
      ++self.stats.steal_attempts;
      SearchTask* task = workers_[victim]->deque.steal();
      if (task != nullptr) {
        *stolen = true;
        return task;
      }
    }
    return nullptr;
  }

  SharedContext* ctx_;
  const TaskRunner* run_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::int64_t> outstanding_{0};
  std::atomic<std::uint32_t> hungry_{0};
  std::atomic<bool> abort_{false};
  std::mutex merge_mu_;
  SearchStats total_;
  std::exception_ptr first_error_;
};

bool WorkerHandle::split_wanted() const noexcept {
  return sched_->split_wanted();
}

void WorkerHandle::spawn(SearchTask task) {
  sched_->spawn(id_, std::move(task));
}

SearchStats run_work_stealing(std::vector<SearchTask> roots,
                              std::size_t num_workers,
                              std::uint64_t steal_seed, SharedContext& ctx,
                              const TaskRunner& run) {
  if (roots.empty()) return {};
  WorkStealingScheduler scheduler(std::max<std::size_t>(num_workers, 1),
                                  steal_seed, ctx, run);
  return scheduler.execute(std::move(roots));
}

std::size_t max_worker_threads() {
  static const std::size_t cap = [] {
    std::size_t limit = std::thread::hardware_concurrency();
    if (limit == 0) limit = 1;
    if (const char* env = std::getenv("EVORD_MAX_THREADS")) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(env, &end, 10);
      if (end != env && parsed > 0) limit = static_cast<std::size_t>(parsed);
    }
    return limit;
  }();
  return cap;
}

std::size_t resolve_num_threads(std::size_t requested) {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }
  return std::min(requested, max_worker_threads());
}

}  // namespace evord::search
