// Generic memoized/deduped DFS engines over TraceStepper.
//
// Two engine shapes cover every trace-level explorer in the repo:
//
//   * EnumerationSearch<Tracker, Dedup, Hooks> — walks the schedule tree,
//     delivering terminal (complete) schedules and stuck prefixes to the
//     hooks.  A pluggable per-event Tracker rides along the DFS (the
//     causal-class tracker maintains closure rows / token queues); a
//     pluggable Dedup policy prunes revisited states by 64-bit
//     fingerprint.  Used by schedule enumeration, causal-class
//     enumeration and deadlock search.
//
//   * MemoizedSearch<Hooks> — computes "is a complete schedule reachable
//     from this state" per state, memoized in a FingerprintBoolMap.
//     Used by the can-precede/coexistence sweep and the pairwise
//     ordering query.
//
// Contracts (see docs/SEARCH.md for the full write-up):
//
//   Tracker: `Undo apply(EventId e, const DynamicBitset& done_before)`
//   is called BEFORE the stepper executes e (done_before is the executed
//   set without e); `void undo(const Undo&)` reverts it (LIFO);
//   `std::uint64_t fingerprint(std::uint64_t stepper_hash)` folds the
//   tracker's own state hash into the stepper's; `void extend_key(const
//   DynamicBitset& done, std::vector<std::uint64_t>&)` appends the
//   tracker's full payload words for the debug collision cross-check.
//
//   Dedup: `ClaimResult claim(fp, payload)` — `expand` says this engine
//   should expand the state; `first_claim` says the state was never seen
//   by any engine sharing the store (it counts toward the global
//   distinct-state budget).
//
//   Enumeration hooks: `bool on_terminal(const std::vector<EventId>&)`
//   (false stops the whole search), `void on_stuck(const
//   std::vector<EventId>& path, std::uint64_t fp, const
//   std::vector<std::uint32_t>& dewey)` — `dewey` is the stuck state's
//   canonical DFS key (sibling index per depth, absolute from the
//   explorer's seed point): lexicographic order on (length, dewey) is
//   exactly the serial discovery order, which is what the deadlock
//   witness merge keys on.
//
//   Memoized hooks: `kFirstHit` (stop at the first completable child),
//   `bool child_allowed(EventId, const TraceStepper&)`,
//   `void on_child_completable(EventId, const DynamicBitset&
//   done_before)` (called after undo, so the bitset is the state the
//   child was applied from), and `void on_completable_state(Search&,
//   std::size_t depth)` (called once per completable state, before it is
//   memoized; may re-enter the search via pair_completable()).
//
// Partial-order reduction (SearchOptions::reduction != kOff): both
// engines thread a sleep set through the DFS — inherited along edges,
// extended across explored siblings — and, under kSleepPersistent,
// expand only a persistent subset of the enabled events at each state
// (search/independence.hpp).  kSourceWakeup sharpens both halves:
// selection uses source sets with necessary enabling closures and
// dynamic (state-aware) independence, and sleep inheritance uses
// per-depth wakeup frames (compute_wakeup_masks) — one independence
// mask per sleeping/selected event, evaluated at the expanded state —
// so excused pairs (surplus-token V/V, already-posted Post ops)
// propagate into child sleep sets instead of being re-split.  The
// frames are a pure function of (stepper state, sleep set), so dedup/
// memo claims still key on exactly the (state, sleep set) pair: the
// reduced subtree below a node is a deterministic function of that
// pair, which keeps pruning sound and the parallel walk bit-identical
// to serial.  Donated tasks carry their subtree root's sleep set in
// SearchTask::sleep, derived from the donor's frame under kSourceWakeup
// (the same masks the in-walk children use, so donation is just
// serialization of the frame).  Stuck states are still reported under
// their raw state fingerprint (not sleep-folded), so distinct-stuck-
// state counting is reduction-blind.  Soundness per explorer is a
// front-end decision; see docs/SEARCH.md §POR.
//
// Work stealing: in parallel mode each engine instance runs one
// SearchTask on a scheduler worker (search/scheduler.hpp).  After
// seeding, attach_worker() hands the engine its WorkerHandle; the DFS
// then polls steal demand once per expanded state and answers it by
// donating the deepest unexplored siblings of its current path as new
// tasks (adaptive subtree splitting).  EnumerationSearch removes the
// donated siblings from its own walk (the visit sets partition);
// MemoizedSearch keeps them (a donated warming task and the donor may
// race on the same states — the memo is idempotent, and the donor's own
// completable verdicts must still OR over every child).
//
// Budget semantics (shared, via SharedContext):
//   max_states    — claim-then-check: state #max_states is still claimed
//                   and counted but not expanded; siblings continue (no
//                   global unwind), matching the historical per-explorer
//                   behaviour.  In MemoizedSearch a budgeted state
//                   returns "not completable" WITHOUT memoizing it —
//                   unsound once truncated, which is why `truncated` is
//                   flagged.
//   max_terminals — strict and global: a shared atomic counter ensures
//                   the combined number of terminal visits never exceeds
//                   the budget, serial or parallel.
//   deadline      — polled every 256 states (memo hits included); trips
//                   request a global stop.
//   max_memory_bytes — strict and global: the stores/scheduler/witness
//                   buffers charge one shared MemoryAccountant and both
//                   engines poll it per expanded state, stopping with
//                   StopReason::kMemory (overshoot bounded by one
//                   state's charge per worker).  The deterministic
//                   fault hooks (util/fault.hpp) ride the same polls.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "feasible/stepper.hpp"
#include "search/fingerprint_set.hpp"
#include "search/independence.hpp"
#include "search/memory.hpp"
#include "search/scheduler.hpp"
#include "search/search.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace evord::search {

/// Tracker that tracks nothing (fingerprint = the stepper's state hash).
struct NullTracker {
  struct Undo {};
  Undo apply(EventId /*e*/, const DynamicBitset& /*done_before*/) {
    return {};
  }
  void undo(const Undo& /*u*/) {}
  std::uint64_t fingerprint(std::uint64_t stepper_hash) const {
    return stepper_hash;
  }
  void extend_key(const DynamicBitset& /*done*/,
                  std::vector<std::uint64_t>& /*key*/) const {}
};

struct ClaimResult {
  bool expand = true;       ///< this engine should expand the state
  bool first_claim = true;  ///< no engine sharing the store saw it before
};

/// No deduplication: every state is expanded wherever reached.
struct NoDedup {
  static constexpr bool kEnabled = false;
  bool verify_collisions() const { return false; }
  bool exact_keys() const { return false; }
  ClaimResult claim(std::uint64_t /*fp*/,
                    const std::vector<std::uint64_t>* /*payload*/) {
    return {true, true};
  }
};

/// Dedup against a (possibly shared) sharded set: whoever inserts first
/// expands the state; everyone else prunes.
class SharedSetDedup {
 public:
  static constexpr bool kEnabled = true;
  explicit SharedSetDedup(ShardedFingerprintSet* set) : set_(set) {}
  bool verify_collisions() const { return set_->verify_collisions(); }
  bool exact_keys() const { return set_->exact_keys(); }
  ClaimResult claim(std::uint64_t fp,
                    const std::vector<std::uint64_t>* payload) {
    const bool won = set_->insert(fp, payload);
    return {won, won};
  }

 private:
  ShardedFingerprintSet* set_;
};

/// Per-task full exploration with global distinct-state accounting:
/// each task prunes only against its own private set (so every task
/// expands its whole region deterministically, exactly as a serial
/// search of that region would), while the shared set decides which
/// task's visit counts as the first claim.
class PrivateSetDedup {
 public:
  static constexpr bool kEnabled = true;
  explicit PrivateSetDedup(ShardedFingerprintSet* shared) : shared_(shared) {}
  bool verify_collisions() const { return shared_->verify_collisions(); }
  bool exact_keys() const { return shared_->exact_keys(); }
  ClaimResult claim(std::uint64_t fp,
                    const std::vector<std::uint64_t>* payload) {
    if (!private_.insert(fp).second) return {false, false};
    return {true, shared_->insert(fp, payload)};
  }

 private:
  std::unordered_set<std::uint64_t> private_;
  ShardedFingerprintSet* shared_;
};

/// State shared by every engine instance of one logical search (one
/// instance per scheduler task in parallel mode; the serial case uses a
/// single context the same way).
struct SharedContext {
  explicit SharedContext(const SearchOptions& options)
      : deadline(options.time_budget_seconds),
        memory(options.max_memory_bytes) {}

  Deadline deadline;
  /// Strict global max_memory_bytes gate; the stores, scheduler and
  /// witness buffers charge it, the engines poll it (search/memory.hpp).
  MemoryAccountant memory;
  std::atomic<std::uint64_t> terminals{0};  ///< strict max_terminals gate
  std::atomic<std::uint64_t> states{0};     ///< global distinct states
  std::atomic<bool> stop{false};
  std::atomic<std::uint8_t> stop_reason{0};

  /// First caller's reason sticks; everyone observes the stop flag.
  void request_stop(StopReason reason) {
    std::uint8_t expected = 0;
    stop_reason.compare_exchange_strong(expected,
                                        static_cast<std::uint8_t>(reason));
    stop.store(true, std::memory_order_release);
  }
  bool stop_requested() const {
    return stop.load(std::memory_order_acquire);
  }
  StopReason reason() const {
    return static_cast<StopReason>(stop_reason.load());
  }
};

/// The first-level enabled events after `seed_prefix` — the initial task
/// partition: every schedule extends exactly one of them, so subtrees
/// can be explored independently.
inline std::vector<EventId> root_events(
    const Trace& trace, const StepperOptions& stepper_options,
    const std::vector<EventId>& seed_prefix = {}) {
  TraceStepper stepper(trace, stepper_options);
  for (EventId e : seed_prefix) {
    EVORD_CHECK(stepper.enabled(e), "seed prefix is not schedulable");
    stepper.apply(e);
  }
  std::vector<EventId> first;
  stepper.enabled_events(first);
  return first;
}

/// Builds the initial work-stealing tasks: one per first-level enabled
/// event after `seed_prefix`, with dewey key {i}.  Empty when the seeded
/// state is already terminal or stuck (callers fall back to serial).
/// Under reduction the first level is reduced exactly as the serial
/// engine would reduce it — tasks cover the persistent/source subset
/// only, and each carries the sleep set its subtree root inherits from
/// its earlier siblings — so the parallel walk covers the same reduced
/// tree.  `tracker_sensitive` must match the engine the tasks will run
/// on (kSourceWakeup only), mirroring the engines' own
/// DynamicIndependence construction: false only for MemoizedSearch and
/// for NullTracker engines running with state_only_excusals set;
/// true otherwise.
inline std::vector<SearchTask> root_tasks(
    const Trace& trace, const StepperOptions& stepper_options,
    const std::vector<EventId>& seed_prefix = {},
    ReductionMode reduction = ReductionMode::kOff,
    const IndependenceRelation* indep = nullptr,
    bool tracker_sensitive = true) {
  TraceStepper stepper(trace, stepper_options);
  for (EventId e : seed_prefix) {
    EVORD_CHECK(stepper.enabled(e), "seed prefix is not schedulable");
    stepper.apply(e);
  }
  std::vector<EventId> first;
  stepper.enabled_events(first);
  const DynamicIndependence dyn(indep, tracker_sensitive);
  if (indep != nullptr && !first.empty()) {
    std::vector<EventId> chosen;
    if (reduction == ReductionMode::kSleepPersistent) {
      PersistentSetSelector selector(indep);
      selector.select(stepper, first, chosen);
      first = std::move(chosen);
    } else if (reduction == ReductionMode::kSourceWakeup) {
      SourceSetSelector selector(indep, &dyn);
      selector.select(stepper, first, chosen, nullptr);
      first = std::move(chosen);
    }
  }
  // The root's wakeup frame (empty sleep set), for the dynamic child
  // sleeps — exactly what the serial engine computes at depth 0.
  const std::vector<EventId> no_sleep;
  std::vector<std::uint64_t> masks;
  if (reduction == ReductionMode::kSourceWakeup && indep != nullptr &&
      first.size() <= 64) {
    compute_wakeup_masks(dyn, stepper, no_sleep, first, masks, nullptr);
  }
  std::vector<SearchTask> tasks(first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    tasks[i].seed.push_back(first[i]);
    tasks[i].dewey.push_back(static_cast<std::uint32_t>(i));
    if (reduction != ReductionMode::kOff && indep != nullptr) {
      if (!masks.empty()) {
        child_sleep_from_masks(no_sleep, first, i, masks, tasks[i].sleep);
      } else {
        child_sleep_set(*indep, no_sleep, first, i, tasks[i].sleep);
      }
    }
  }
  return tasks;
}

/// DFS over the schedule tree; delivers terminals and stuck prefixes.
template <class Tracker, class Dedup, class Hooks>
class EnumerationSearch {
 public:
  EnumerationSearch(const Trace& trace, const StepperOptions& stepper_options,
                    const SearchOptions& options, SharedContext* ctx,
                    Tracker tracker, Dedup dedup, Hooks hooks,
                    const IndependenceRelation* indep = nullptr)
      : options_(options),
        ctx_(ctx),
        stepper_(trace, stepper_options),
        tracker_(std::move(tracker)),
        dedup_(std::move(dedup)),
        hooks_(std::move(hooks)),
        indep_(indep),
        selector_(indep),
        // Dynamic independence must preserve the tracker's state exactly
        // when the engine carries one; NullTracker engines may opt into
        // the broader stepper-state-only excusals (SearchOptions::
        // state_only_excusals) when their results are pure functions of
        // the reachable stepper states.
        dyn_(indep, !std::is_same_v<Tracker, NullTracker> ||
                        !options.state_only_excusals),
        source_selector_(indep, &dyn_),
        reduce_(options.reduction != ReductionMode::kOff),
        persistent_(options.reduction == ReductionMode::kSleepPersistent),
        source_(options.reduction == ReductionMode::kSourceWakeup),
        num_events_(trace.num_events()) {
    EVORD_CHECK(!reduce_ || indep_ != nullptr,
                "reduction requires an IndependenceRelation");
    // Exact-key mode: when the store holds injective single-word packed
    // states (front-end contract: NullTracker, reduction off, layout
    // fits one word), dedup directly on the packed word — collision-free
    // and cheaper than hashing.
    if constexpr (Dedup::kEnabled) {
      exact_ = dedup_.exact_keys() && !reduce_;
      EVORD_CHECK(!exact_ || (stepper_.layout().single_word() &&
                              std::is_same_v<Tracker, NullTracker>),
                  "exact-key dedup requires a single-word packed layout "
                  "and no tracker state");
    }
    path_.reserve(num_events_);
    enabled_stack_.reserve(num_events_ + 1);
    sibling_index_.reserve(num_events_ + 1);
    stats_.depth_states.assign(num_events_ + 1, 0);
  }

  /// Fast-forwards through `prefix` before searching (task seeding and
  /// user seed prefixes).  Every event must be enabled in sequence.
  void seed(const std::vector<EventId>& prefix) {
    for (EventId e : prefix) {
      EVORD_CHECK(stepper_.enabled(e), "seed prefix is not schedulable");
      tracker_.apply(e, stepper_.done_bits());
      stepper_.apply(e);
      path_.push_back(e);
    }
  }

  /// Enables adaptive subtree splitting for this scheduler task.  Must
  /// be called after all seed() calls; `task->seed` must be the suffix
  /// of the seeded path that belongs to the task (the rest is the user
  /// seed prefix shared by every task).
  void attach_worker(WorkerHandle* worker, const SearchTask* task) {
    worker_ = worker;
    task_ = task;
    EVORD_CHECK(task->seed.size() <= path_.size(),
                "task seed longer than the seeded path");
    user_seed_len_ = path_.size() - task->seed.size();
  }

  /// Installs the sleep set of the engine's start state (the subtree
  /// root a task replays to; see SearchTask::sleep).  Reduction only;
  /// must be called before run().
  void set_initial_sleep(std::vector<EventId> sleep) {
    initial_sleep_ = std::move(sleep);
  }

  SearchStats run() {
    if (reduce_) sleep_stack_.assign(1, initial_sleep_);
    dfs(0);
    return stats_;
  }

  const TraceStepper& stepper() const { return stepper_; }
  Tracker& tracker() { return tracker_; }

 private:
  void set_reason(StopReason reason) {
    if (stats_.stop_reason == StopReason::kNone) stats_.stop_reason = reason;
  }

  const std::vector<std::uint64_t>* payload(std::size_t depth) {
    if (!dedup_.verify_collisions()) return nullptr;
    stepper_.encode_key(key_scratch_);
    tracker_.extend_key(stepper_.done_bits(), key_scratch_);
    // Under reduction the claim keys the (state, sleep set) pair, so the
    // collision-check payload must cover the sleep set too.
    if (reduce_) extend_key_with_sleep(sleep_stack_[depth], key_scratch_);
    return &key_scratch_;
  }

  /// Visits one complete schedule under the strict global terminal
  /// budget; returns false to unwind the whole search.
  bool visit_terminal() {
    const std::uint64_t count =
        ctx_->terminals.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.max_terminals != 0 && count > options_.max_terminals) {
      stats_.truncated = true;
      set_reason(StopReason::kMaxTerminals);
      ctx_->request_stop(StopReason::kMaxTerminals);
      return false;
    }
    ++stats_.terminals;
    if (!hooks_.on_terminal(path_)) {
      stats_.stopped_by_visitor = true;
      set_reason(StopReason::kVisitor);
      ctx_->request_stop(StopReason::kVisitor);
      return false;
    }
    if (options_.max_terminals != 0 && count >= options_.max_terminals) {
      stats_.truncated = true;
      set_reason(StopReason::kMaxTerminals);
      ctx_->request_stop(StopReason::kMaxTerminals);
      return false;
    }
    return true;
  }

  /// The stuck state's canonical DFS key: the task's dewey prefix plus
  /// the sibling index chosen at each depth of this walk.
  const std::vector<std::uint32_t>& stuck_key(std::size_t depth) {
    dewey_scratch_.clear();
    if (task_ != nullptr) dewey_scratch_ = task_->dewey;
    dewey_scratch_.insert(dewey_scratch_.end(), sibling_index_.begin(),
                          sibling_index_.begin() + depth);
    return dewey_scratch_;
  }

  /// Answers steal demand by donating the deepest unexplored siblings of
  /// the current path that satisfy the grain/depth cutoffs, as one task
  /// each.  The donated siblings are removed from this walk: the
  /// enumeration visit sets partition across tasks, so the donor must
  /// not revisit them.
  void try_split(std::size_t cur_depth) {
    const std::size_t seed_len = path_.size() - cur_depth;
    for (std::size_t d = cur_depth; d-- > 0;) {
      if (sibling_index_[d] + 1 >= enabled_stack_[d].size()) continue;
      // Depth of a subtree donated from here, in events executed.
      const std::size_t donated_depth = seed_len + d + 1;
      if (options_.steal.max_split_depth != 0 &&
          donated_depth > options_.steal.max_split_depth) {
        continue;
      }
      if (num_events_ - donated_depth < options_.steal.grain) continue;
      std::vector<EventId>& siblings = enabled_stack_[d];
      for (std::size_t j = sibling_index_[d] + 1; j < siblings.size(); ++j) {
        SearchTask task;
        task.seed.assign(path_.begin() +
                             static_cast<std::ptrdiff_t>(user_seed_len_),
                         path_.begin() +
                             static_cast<std::ptrdiff_t>(seed_len + d));
        task.seed.push_back(siblings[j]);
        task.dewey = task_->dewey;
        task.dewey.insert(task.dewey.end(), sibling_index_.begin(),
                          sibling_index_.begin() + d);
        task.dewey.push_back(static_cast<std::uint32_t>(j));
        if (reduce_) {
          // The stolen subtree starts from exactly the sleep set the
          // serial walk would carry into sibling j — under kSourceWakeup
          // that means the ancestor state's wakeup frame, since dynamic
          // independence must be evaluated at the DONOR's state d.
          if (source_ && !mask_stack_[d].empty()) {
            child_sleep_from_masks(sleep_stack_[d], enabled_stack_[d], j,
                                   mask_stack_[d], task.sleep);
          } else {
            child_sleep_set(*indep_, sleep_stack_[d], enabled_stack_[d], j,
                            task.sleep);
          }
        }
        worker_->spawn(std::move(task));
      }
      siblings.resize(sibling_index_[d] + 1);
      return;
    }
  }

  /// Returns false to unwind the whole search (stop / strict budgets).
  bool dfs(std::size_t depth) {
    if (ctx_->stop_requested()) return false;
    if (worker_ != nullptr && worker_->split_wanted()) try_split(depth);
    if (stepper_.complete()) return visit_terminal();

    std::uint64_t fp = 0;
    if constexpr (Dedup::kEnabled) {
      fp = exact_ ? stepper_.packed_word()
                  : tracker_.fingerprint(stepper_.state_hash());
      const std::uint64_t claim_fp =
          reduce_ ? fold_sleep(fp, sleep_set_hash(sleep_stack_[depth])) : fp;
      const ClaimResult claim = dedup_.claim(claim_fp, payload(depth));
      if (!claim.expand) {
        ++stats_.dedup_hits;
        return true;
      }
      std::uint64_t global;
      if (claim.first_claim) {
        ++stats_.states_visited;
        ++stats_.depth_states[stepper_.num_executed()];
        global = ctx_->states.fetch_add(1, std::memory_order_relaxed) + 1;
      } else {
        global = ctx_->states.load(std::memory_order_relaxed);
      }
      // Claim-then-check: this state is counted but not expanded once the
      // budget is reached; siblings keep getting claimed (no unwind).
      if (options_.max_states != 0 && global >= options_.max_states) {
        stats_.truncated = true;
        set_reason(StopReason::kMaxStates);
        return true;
      }
    } else {
      ++stats_.states_visited;
      ++stats_.depth_states[stepper_.num_executed()];
    }
    if ((((++budget_poll_ & 255u) == 0) && ctx_->deadline.expired()) ||
        (fault::enabled() && fault::on_state_expanded())) {
      stats_.truncated = true;
      set_reason(StopReason::kDeadline);
      ctx_->request_stop(StopReason::kDeadline);
      return false;
    }
    // Memory is polled per expanded state (one relaxed load): the store
    // charge for this state has just landed, so a budget of N bytes
    // overshoots by at most one state's charge per worker.
    if (ctx_->memory.exceeded()) {
      stats_.truncated = true;
      set_reason(StopReason::kMemory);
      ctx_->request_stop(StopReason::kMemory);
      return false;
    }

    // One vector per depth, reused across siblings (capacity kept); the
    // ctor reserve keeps per-depth slots stable across recursion.
    if (depth == enabled_stack_.size()) {
      enabled_stack_.emplace_back();
      sibling_index_.push_back(0);
    }
    if (reduce_) {
      stepper_.enabled_events(full_enabled_);
      if (full_enabled_.empty()) {
        ++stats_.deadlocked_prefixes;
        if constexpr (!Dedup::kEnabled) {
          fp = tracker_.fingerprint(stepper_.state_hash());
        }
        // Stuck states report their RAW state fingerprint: the same
        // deadlocked frontier reached under different sleep contexts is
        // one stuck state, not several.
        hooks_.on_stuck(path_, fp, stuck_key(depth));
        return true;
      }
      std::vector<EventId>& selected = enabled_stack_[depth];
      if (persistent_) {
        selector_.select(stepper_, full_enabled_, selected);
        stats_.persistent_skipped += full_enabled_.size() - selected.size();
      } else if (source_) {
        source_selector_.select(stepper_, full_enabled_, selected,
                                &stats_.dyn_excused);
        stats_.persistent_skipped += full_enabled_.size() - selected.size();
      } else {
        selected = full_enabled_;
      }
      // Drop sleeping events (every schedule through them is equivalent
      // to one already explored from an earlier sibling of an ancestor).
      const std::vector<EventId>& zset = sleep_stack_[depth];
      if (!zset.empty()) {
        std::size_t kept = 0;
        for (std::size_t i = 0; i < selected.size(); ++i) {
          if (std::binary_search(zset.begin(), zset.end(), selected[i])) {
            ++stats_.sleep_pruned;
          } else {
            selected[kept++] = selected[i];
          }
        }
        selected.resize(kept);
      }
      // Fully slept: not stuck — the state has enabled events, they are
      // just all covered by earlier exploration.
      if (selected.empty()) return true;
      // This state's wakeup frame: dynamic-independence masks over the
      // post-filter selected events, read by the child-sleep computation
      // below AND by try_split donation from this depth (empty = static
      // fallback for > 64 selected events).
      if (source_) {
        if (mask_stack_.size() < depth + 1) mask_stack_.resize(depth + 1);
        if (selected.size() <= 64) {
          compute_wakeup_masks(dyn_, stepper_, sleep_stack_[depth], selected,
                               mask_stack_[depth], &stats_.dyn_excused);
        } else {
          mask_stack_[depth].clear();
        }
      }
    } else {
      stepper_.enabled_events(enabled_stack_[depth]);
      if (enabled_stack_[depth].empty()) {
        ++stats_.deadlocked_prefixes;
        if constexpr (!Dedup::kEnabled) {
          fp = tracker_.fingerprint(stepper_.state_hash());
        }
        hooks_.on_stuck(path_, fp, stuck_key(depth));
        return true;
      }
    }
    bool keep_going = true;
    // The loop re-reads size() each iteration: try_split() deeper in the
    // recursion may shrink this very vector to donate its tail.
    for (std::size_t i = 0;
         keep_going && i < enabled_stack_[depth].size(); ++i) {
      sibling_index_[depth] = static_cast<std::uint32_t>(i);
      const EventId e = enabled_stack_[depth][i];
      if (reduce_) {
        if (sleep_stack_.size() < depth + 2) sleep_stack_.resize(depth + 2);
        if (source_ && !mask_stack_[depth].empty()) {
          child_sleep_from_masks(sleep_stack_[depth], enabled_stack_[depth],
                                 i, mask_stack_[depth],
                                 sleep_stack_[depth + 1]);
        } else {
          child_sleep_set(*indep_, sleep_stack_[depth], enabled_stack_[depth],
                          i, sleep_stack_[depth + 1]);
        }
      }
      const typename Tracker::Undo tu = tracker_.apply(e, stepper_.done_bits());
      const TraceStepper::Undo su = stepper_.apply(e);
      path_.push_back(e);
      keep_going = dfs(depth + 1);
      path_.pop_back();
      stepper_.undo(su);
      tracker_.undo(tu);
    }
    return keep_going;
  }

  SearchOptions options_;
  SharedContext* ctx_;
  TraceStepper stepper_;
  Tracker tracker_;
  Dedup dedup_;
  Hooks hooks_;
  SearchStats stats_;
  std::vector<EventId> path_;
  std::vector<std::vector<EventId>> enabled_stack_;
  std::vector<std::uint32_t> sibling_index_;
  std::vector<std::uint32_t> dewey_scratch_;
  std::vector<std::uint64_t> key_scratch_;
  const IndependenceRelation* indep_;
  PersistentSetSelector selector_;
  DynamicIndependence dyn_;
  SourceSetSelector source_selector_;
  bool reduce_;
  bool persistent_;
  bool source_;
  bool exact_ = false;  ///< dedup on the packed word, not a hash
  std::vector<std::vector<EventId>> sleep_stack_;  ///< sleep set per depth
  /// Wakeup frame per depth (kSourceWakeup): dynamic-independence masks
  /// for (sleep ∪ selected) at that state, shared by the in-walk
  /// child-sleep computation and try_split donation.
  std::vector<std::vector<std::uint64_t>> mask_stack_;
  std::vector<EventId> initial_sleep_;
  std::vector<EventId> full_enabled_;  ///< pre-reduction enabled scratch
  WorkerHandle* worker_ = nullptr;
  const SearchTask* task_ = nullptr;
  std::size_t user_seed_len_ = 0;
  std::size_t num_events_;
  std::uint32_t budget_poll_ = 0;
};

/// Memoized completability search: per state, "is a complete schedule
/// reachable from here", with the answer cached in a FingerprintBoolMap
/// keyed by the stepper's 64-bit state hash.  The state graph is acyclic,
/// so the memoized recursion terminates.
template <class Hooks>
class MemoizedSearch {
 public:
  MemoizedSearch(const Trace& trace, const StepperOptions& stepper_options,
                 const SearchOptions& options, SharedContext* ctx,
                 FingerprintBoolMap* memo, Hooks hooks,
                 const IndependenceRelation* indep = nullptr)
      : options_(options),
        ctx_(ctx),
        memo_(memo),
        stepper_(trace, stepper_options),
        hooks_(std::move(hooks)),
        indep_(indep),
        selector_(indep),
        // Memoized completability depends only on stepper state, so the
        // untracked (unconditional) excusals apply.
        dyn_(indep, /*tracker_sensitive=*/false),
        source_selector_(indep, &dyn_),
        reduce_(options.reduction != ReductionMode::kOff),
        persistent_(options.reduction == ReductionMode::kSleepPersistent),
        source_(options.reduction == ReductionMode::kSourceWakeup),
        num_events_(trace.num_events()) {
    EVORD_CHECK(!reduce_ || indep_ != nullptr,
                "reduction requires an IndependenceRelation");
    // Exact-key mode: memoize directly on the injective packed word
    // (front-end contract: reduction off, layout fits one word).
    exact_ = memo_->exact_keys() && !reduce_;
    EVORD_CHECK(!exact_ || stepper_.layout().single_word(),
                "exact-key memo requires a single-word packed layout");
    enabled_stack_.reserve(num_events_ + 4);
    stats_.depth_states.assign(num_events_ + 1, 0);
  }

  void seed(const std::vector<EventId>& prefix) {
    for (EventId e : prefix) {
      EVORD_CHECK(stepper_.enabled(e), "seed prefix is not schedulable");
      stepper_.apply(e);
    }
  }

  /// Enables splitting (see try_split below).  Must be called after
  /// seed(); memoized tasks carry their whole seed (no user prefix).
  void attach_worker(WorkerHandle* worker, const SearchTask* task) {
    worker_ = worker;
    task_ = task;
  }

  /// Installs the sleep set of the engine's start state (see
  /// SearchTask::sleep).  Reduction only; call before explore(0).
  void set_initial_sleep(std::vector<EventId> sleep) {
    sleep_stack_.assign(1, std::move(sleep));
  }

  /// True iff the current state can be extended to a complete schedule.
  /// `depth` indexes the per-depth scratch stack; re-entrant calls (from
  /// on_completable_state hooks) must pass an index beyond the depths in
  /// use.
  bool explore(std::size_t depth) {
    if (stepper_.complete()) return true;
    // The deadline/memory polls run BEFORE the memo lookup: the memo-hit
    // fast path is the common case in warmed sweeps, and a hit path that
    // never polls would let a memo-dominated run overrun its
    // time_budget_seconds arbitrarily.  Same 256-interval counter as the
    // enumeration engine.
    if ((((++budget_poll_ & 255u) == 0) && ctx_->deadline.expired()) ||
        (fault::enabled() && fault::on_state_expanded())) {
      stats_.truncated = true;
      set_reason(StopReason::kDeadline);
      ctx_->request_stop(StopReason::kDeadline);
      return false;
    }
    if (ctx_->memory.exceeded()) {
      stats_.truncated = true;
      set_reason(StopReason::kMemory);
      ctx_->request_stop(StopReason::kMemory);
      return false;  // unsound once truncated; flagged
    }
    // Under reduction the memo keys the (state, sleep set) pair: the
    // reduced completability verdict below a node is a deterministic
    // function of exactly that pair.  New slots start empty (Z = ∅).
    if (reduce_ && depth >= sleep_stack_.size()) {
      sleep_stack_.resize(depth + 1);
    }
    std::uint64_t fp = exact_ ? stepper_.packed_word() : stepper_.state_hash();
    if (reduce_) fp = fold_sleep(fp, sleep_set_hash(sleep_stack_[depth]));
    bool memoized = false;
    if (memo_->lookup(fp, &memoized, payload(depth))) {
      ++stats_.dedup_hits;
      return memoized;
    }
    if (ctx_->stop_requested()) {
      stats_.truncated = true;
      return false;  // unsound once truncated; flagged
    }
    if (options_.max_states != 0 &&
        ctx_->states.load(std::memory_order_relaxed) >= options_.max_states) {
      stats_.truncated = true;
      set_reason(StopReason::kMaxStates);
      return false;  // unsound once truncated; flagged
    }

    const bool tracked = worker_ != nullptr && suspend_ == 0;
    if (depth >= enabled_stack_.size()) {
      enabled_stack_.resize(depth + 1);
      sibling_index_.resize(depth + 1, 0);
      donated_upto_.resize(depth + 1, 0);
    }
    stepper_.enabled_events(enabled_stack_[depth]);
    if (reduce_ && !enabled_stack_[depth].empty()) reduce_enabled(depth);
    if (tracked) {
      donated_upto_[depth] = 0;
      if (worker_->split_wanted()) try_split(depth);
    }
    bool completable = false;
    // Iterate by index: recursion reuses deeper enabled_stack_ slots.
    for (std::size_t i = 0; i < enabled_stack_[depth].size(); ++i) {
      const EventId e = enabled_stack_[depth][i];
      if (!hooks_.child_allowed(e, stepper_)) continue;
      if (tracked) {
        sibling_index_[depth] = static_cast<std::uint32_t>(i);
        path_.push_back(e);
      }
      if (reduce_) {
        if (sleep_stack_.size() < depth + 2) sleep_stack_.resize(depth + 2);
        if (source_ && !mask_stack_[depth].empty()) {
          child_sleep_from_masks(sleep_stack_[depth], enabled_stack_[depth], i,
                                 mask_stack_[depth], sleep_stack_[depth + 1]);
        } else {
          child_sleep_set(*indep_, sleep_stack_[depth], enabled_stack_[depth],
                          i, sleep_stack_[depth + 1]);
        }
      }
      const TraceStepper::Undo u = stepper_.apply(e);
      const bool child_ok = explore(depth + 1);
      stepper_.undo(u);
      if (tracked) path_.pop_back();
      if (child_ok) {
        completable = true;
        hooks_.on_child_completable(e, stepper_.done_bits());
        if constexpr (Hooks::kFirstHit) break;
      }
    }
    if (completable) hooks_.on_completable_state(*this, depth);
    if (memo_->store(fp, completable, payload(depth))) {
      ++stats_.states_visited;
      ++stats_.depth_states[stepper_.num_executed()];
      ctx_->states.fetch_add(1, std::memory_order_relaxed);
    }
    return completable;
  }

  /// Can `first` then immediately `second` run from the current state and
  /// still complete?  Used by coexistence marking; re-enters explore() at
  /// `depth` (pass an unused stack index, e.g. current depth + 2).
  bool pair_completable(EventId first, EventId second, std::size_t depth) {
    // The re-entrant walk is off the main DFS path: suspend path/sibling
    // tracking (and thus splitting) until it returns.  Under reduction
    // it starts from an empty sleep set — the query is about THIS
    // specific continuation, not about schedules covered elsewhere.
    if (reduce_) {
      if (depth >= sleep_stack_.size()) sleep_stack_.resize(depth + 1);
      sleep_stack_[depth].clear();
    }
    ++suspend_;
    const TraceStepper::Undo u1 = stepper_.apply(first);
    bool ok = false;
    if (stepper_.enabled(second)) {
      const TraceStepper::Undo u2 = stepper_.apply(second);
      ok = explore(depth);
      stepper_.undo(u2);
    }
    stepper_.undo(u1);
    --suspend_;
    return ok;
  }

  const std::vector<EventId>& enabled_at(std::size_t depth) const {
    return enabled_stack_[depth];
  }
  const TraceStepper& stepper() const { return stepper_; }
  const SearchStats& stats() const { return stats_; }
  SearchStats take_stats() { return stats_; }

 private:
  void set_reason(StopReason reason) {
    if (stats_.stop_reason == StopReason::kNone) stats_.stop_reason = reason;
  }

  const std::vector<std::uint64_t>* payload(std::size_t depth) {
    if (!memo_->verify_collisions()) return nullptr;
    stepper_.encode_key(key_scratch_);
    if (reduce_) extend_key_with_sleep(sleep_stack_[depth], key_scratch_);
    return &key_scratch_;
  }

  /// Persistent-selects and sleep-filters enabled_stack_[depth] in
  /// place.  Also drops hook-disallowed children up front: sleep-set
  /// inheritance treats every earlier listed sibling as explored, so a
  /// child the hooks would skip must not enter later siblings' sleep.
  void reduce_enabled(std::size_t depth) {
    std::vector<EventId>& selected = enabled_stack_[depth];
    if (persistent_) {
      full_enabled_.swap(selected);
      selector_.select(stepper_, full_enabled_, selected);
      stats_.persistent_skipped += full_enabled_.size() - selected.size();
    } else if (source_) {
      full_enabled_.swap(selected);
      source_selector_.select(stepper_, full_enabled_, selected,
                              &stats_.dyn_excused);
      stats_.persistent_skipped += full_enabled_.size() - selected.size();
    }
    const std::vector<EventId>& zset = sleep_stack_[depth];
    if (!zset.empty()) {
      std::size_t kept = 0;
      for (std::size_t i = 0; i < selected.size(); ++i) {
        if (std::binary_search(zset.begin(), zset.end(), selected[i])) {
          ++stats_.sleep_pruned;
        } else {
          selected[kept++] = selected[i];
        }
      }
      selected.resize(kept);
    }
    selected.erase(
        std::remove_if(selected.begin(), selected.end(),
                       [&](EventId e) {
                         return !hooks_.child_allowed(e, stepper_);
                       }),
        selected.end());
    // Wakeup frame for this depth, computed once over the FINAL sibling
    // list (sibling indices below refer to it): consumed by the child
    // sleep sets in explore() and by try_split donation.  Empty = static
    // child_sleep_set fallback (> 64 siblings).
    if (source_) {
      if (mask_stack_.size() < depth + 1) mask_stack_.resize(depth + 1);
      if (selected.size() <= 64) {
        compute_wakeup_masks(dyn_, stepper_, sleep_stack_[depth], selected,
                             mask_stack_[depth], &stats_.dyn_excused);
      } else {
        mask_stack_[depth].clear();
      }
    }
  }

  /// Answers steal demand by donating the deepest eligible unexplored
  /// siblings of the main walk as warming tasks.  Unlike the
  /// enumeration engine, the donor KEEPS the donated children in its own
  /// loop: the memoized verdict of each state must OR over all children,
  /// so dropping any would store wrong memo values.  The donor's later
  /// visit of a donated subtree hits whatever the thief already
  /// memoized, so the duplicated walk collapses to memo lookups.
  /// donated_upto_ stops re-donating the same siblings on every poll.
  void try_split(std::size_t cur_depth) {
    for (std::size_t d = cur_depth + 1; d-- > 0;) {
      std::vector<EventId>& siblings = enabled_stack_[d];
      const std::size_t from =
          std::max<std::size_t>(d == cur_depth ? 0 : sibling_index_[d] + 1,
                                donated_upto_[d]);
      if (from >= siblings.size()) continue;
      const std::size_t donated_depth = task_->seed.size() + d + 1;
      if (options_.steal.max_split_depth != 0 &&
          donated_depth > options_.steal.max_split_depth) {
        continue;
      }
      if (num_events_ - donated_depth < options_.steal.grain) continue;
      for (std::size_t j = from; j < siblings.size(); ++j) {
        SearchTask task;
        task.seed = task_->seed;
        task.seed.insert(task.seed.end(), path_.begin(),
                         path_.begin() + static_cast<std::ptrdiff_t>(d));
        task.seed.push_back(siblings[j]);
        task.dewey = task_->dewey;
        task.dewey.insert(task.dewey.end(), sibling_index_.begin(),
                          sibling_index_.begin() + d);
        task.dewey.push_back(static_cast<std::uint32_t>(j));
        if (reduce_) {
          if (source_ && !mask_stack_[d].empty()) {
            child_sleep_from_masks(sleep_stack_[d], enabled_stack_[d], j,
                                   mask_stack_[d], task.sleep);
          } else {
            child_sleep_set(*indep_, sleep_stack_[d], enabled_stack_[d], j,
                            task.sleep);
          }
        }
        worker_->spawn(std::move(task));
      }
      donated_upto_[d] = siblings.size();
      return;
    }
  }

  SearchOptions options_;
  SharedContext* ctx_;
  FingerprintBoolMap* memo_;
  TraceStepper stepper_;
  Hooks hooks_;
  SearchStats stats_;
  std::vector<EventId> path_;
  std::vector<std::vector<EventId>> enabled_stack_;
  std::vector<std::uint32_t> sibling_index_;
  std::vector<std::size_t> donated_upto_;
  std::vector<std::uint64_t> key_scratch_;
  const IndependenceRelation* indep_;
  PersistentSetSelector selector_;
  DynamicIndependence dyn_;
  SourceSetSelector source_selector_;
  bool reduce_;
  bool persistent_;
  bool source_;
  bool exact_ = false;  ///< memoize on the packed word, not a hash
  std::vector<std::vector<EventId>> sleep_stack_;  ///< sleep set per depth
  /// Per-depth wakeup frame (see compute_wakeup_masks); source mode only.
  std::vector<std::vector<std::uint64_t>> mask_stack_;
  std::vector<EventId> full_enabled_;  ///< pre-reduction enabled scratch
  WorkerHandle* worker_ = nullptr;
  const SearchTask* task_ = nullptr;
  std::size_t num_events_;
  int suspend_ = 0;
  std::uint32_t budget_poll_ = 0;
};

}  // namespace evord::search
