// Generic memoized/deduped DFS engines over TraceStepper.
//
// Two engine shapes cover every trace-level explorer in the repo:
//
//   * EnumerationSearch<Tracker, Dedup, Hooks> — walks the schedule tree,
//     delivering terminal (complete) schedules and stuck prefixes to the
//     hooks.  A pluggable per-event Tracker rides along the DFS (the
//     causal-class tracker maintains closure rows / token queues); a
//     pluggable Dedup policy prunes revisited states by 64-bit
//     fingerprint.  Used by schedule enumeration, causal-class
//     enumeration and deadlock search.
//
//   * MemoizedSearch<Hooks> — computes "is a complete schedule reachable
//     from this state" per state, memoized in a FingerprintBoolMap.
//     Used by the can-precede/coexistence sweep and the pairwise
//     ordering query.
//
// Contracts (see docs/SEARCH.md for the full write-up):
//
//   Tracker: `Undo apply(EventId e, const DynamicBitset& done_before)`
//   is called BEFORE the stepper executes e (done_before is the executed
//   set without e); `void undo(const Undo&)` reverts it (LIFO);
//   `std::uint64_t fingerprint(std::uint64_t stepper_hash)` folds the
//   tracker's own state hash into the stepper's; `void extend_key(const
//   DynamicBitset& done, std::vector<std::uint64_t>&)` appends the
//   tracker's full payload words for the debug collision cross-check.
//
//   Dedup: `ClaimResult claim(fp, payload)` — `expand` says this engine
//   should expand the state; `first_claim` says the state was never seen
//   by any engine sharing the store (it counts toward the global
//   distinct-state budget).
//
//   Enumeration hooks: `bool on_terminal(const std::vector<EventId>&)`
//   (false stops the whole search), `void on_stuck(const
//   std::vector<EventId>& path, std::uint64_t fp)`.
//
//   Memoized hooks: `kFirstHit` (stop at the first completable child),
//   `bool child_allowed(EventId, const TraceStepper&)`,
//   `void on_child_completable(EventId, const DynamicBitset&
//   done_before)` (called after undo, so the bitset is the state the
//   child was applied from), and `void on_completable_state(Search&,
//   std::size_t depth)` (called once per completable state, before it is
//   memoized; may re-enter the search via pair_completable()).
//
// Budget semantics (shared, via SharedContext):
//   max_states    — claim-then-check: state #max_states is still claimed
//                   and counted but not expanded; siblings continue (no
//                   global unwind), matching the historical per-explorer
//                   behaviour.  In MemoizedSearch a budgeted state
//                   returns "not completable" WITHOUT memoizing it —
//                   unsound once truncated, which is why `truncated` is
//                   flagged.
//   max_terminals — strict and global: a shared atomic counter ensures
//                   the combined number of terminal visits never exceeds
//                   the budget, serial or parallel.
//   deadline      — polled every 256 states; trips request a global stop.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "feasible/stepper.hpp"
#include "search/fingerprint_set.hpp"
#include "search/search.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace evord::search {

/// Tracker that tracks nothing (fingerprint = the stepper's state hash).
struct NullTracker {
  struct Undo {};
  Undo apply(EventId /*e*/, const DynamicBitset& /*done_before*/) {
    return {};
  }
  void undo(const Undo& /*u*/) {}
  std::uint64_t fingerprint(std::uint64_t stepper_hash) const {
    return stepper_hash;
  }
  void extend_key(const DynamicBitset& /*done*/,
                  std::vector<std::uint64_t>& /*key*/) const {}
};

struct ClaimResult {
  bool expand = true;       ///< this engine should expand the state
  bool first_claim = true;  ///< no engine sharing the store saw it before
};

/// No deduplication: every state is expanded wherever reached.
struct NoDedup {
  static constexpr bool kEnabled = false;
  bool verify_collisions() const { return false; }
  ClaimResult claim(std::uint64_t /*fp*/,
                    const std::vector<std::uint64_t>* /*payload*/) {
    return {true, true};
  }
};

/// Dedup against a (possibly shared) sharded set: whoever inserts first
/// expands the state; everyone else prunes.
class SharedSetDedup {
 public:
  static constexpr bool kEnabled = true;
  explicit SharedSetDedup(ShardedFingerprintSet* set) : set_(set) {}
  bool verify_collisions() const { return set_->verify_collisions(); }
  ClaimResult claim(std::uint64_t fp,
                    const std::vector<std::uint64_t>* payload) {
    const bool won = set_->insert(fp, payload);
    return {won, won};
  }

 private:
  ShardedFingerprintSet* set_;
};

/// Per-worker full exploration with global distinct-state accounting:
/// each worker prunes only against its own private set (so every worker
/// expands its whole subtree deterministically, exactly as a serial
/// search of that subtree would), while the shared set decides which
/// worker's visit counts as the first claim.
class PrivateSetDedup {
 public:
  static constexpr bool kEnabled = true;
  explicit PrivateSetDedup(ShardedFingerprintSet* shared) : shared_(shared) {}
  bool verify_collisions() const { return shared_->verify_collisions(); }
  ClaimResult claim(std::uint64_t fp,
                    const std::vector<std::uint64_t>* payload) {
    if (!private_.insert(fp).second) return {false, false};
    return {true, shared_->insert(fp, payload)};
  }

 private:
  std::unordered_set<std::uint64_t> private_;
  ShardedFingerprintSet* shared_;
};

/// State shared by every engine instance of one logical search (one
/// instance per worker in root-split mode; the serial case uses a single
/// context the same way).
struct SharedContext {
  explicit SharedContext(const SearchOptions& options)
      : deadline(options.time_budget_seconds) {}

  Deadline deadline;
  std::atomic<std::uint64_t> terminals{0};  ///< strict max_terminals gate
  std::atomic<std::uint64_t> states{0};     ///< global distinct states
  std::atomic<bool> stop{false};
  std::atomic<std::uint8_t> stop_reason{0};

  /// First caller's reason sticks; everyone observes the stop flag.
  void request_stop(StopReason reason) {
    std::uint8_t expected = 0;
    stop_reason.compare_exchange_strong(expected,
                                        static_cast<std::uint8_t>(reason));
    stop.store(true, std::memory_order_release);
  }
  bool stop_requested() const {
    return stop.load(std::memory_order_acquire);
  }
  StopReason reason() const {
    return static_cast<StopReason>(stop_reason.load());
  }
};

inline std::size_t resolve_num_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// The first-level enabled events after `seed_prefix` — the root-split
/// partition: every schedule extends exactly one of them, so subtrees
/// can be explored independently.
inline std::vector<EventId> root_events(
    const Trace& trace, const StepperOptions& stepper_options,
    const std::vector<EventId>& seed_prefix = {}) {
  TraceStepper stepper(trace, stepper_options);
  for (EventId e : seed_prefix) {
    EVORD_CHECK(stepper.enabled(e), "seed prefix is not schedulable");
    stepper.apply(e);
  }
  std::vector<EventId> first;
  stepper.enabled_events(first);
  return first;
}

/// The one shared root-split runner: executes `subtree(i)` for each of
/// the `num_subtrees` first-level subtrees on `threads` pooled workers
/// (skipping subtrees once a global stop is requested) and returns the
/// associatively merged worker stats.  `subtree` builds, seeds and runs
/// its own engine instance and returns that engine's SearchStats;
/// engine-specific results (matrices, witnesses, accumulators) are
/// written to per-subtree slots or merged inside `subtree` under the
/// caller's own lock.
template <class Subtree>
SearchStats run_root_split(std::size_t num_subtrees, std::size_t threads,
                           SharedContext& ctx, Subtree&& subtree) {
  ThreadPool pool(threads);
  std::mutex merge_mu;
  SearchStats total;
  pool.parallel_for(num_subtrees, [&](std::size_t i) {
    if (ctx.stop_requested()) return;
    const SearchStats stats = subtree(i);
    std::lock_guard<std::mutex> lock(merge_mu);
    total.merge(stats);
  });
  return total;
}

/// DFS over the schedule tree; delivers terminals and stuck prefixes.
template <class Tracker, class Dedup, class Hooks>
class EnumerationSearch {
 public:
  EnumerationSearch(const Trace& trace, const StepperOptions& stepper_options,
                    const SearchOptions& options, SharedContext* ctx,
                    Tracker tracker, Dedup dedup, Hooks hooks)
      : options_(options),
        ctx_(ctx),
        stepper_(trace, stepper_options),
        tracker_(std::move(tracker)),
        dedup_(std::move(dedup)),
        hooks_(std::move(hooks)) {
    path_.reserve(trace.num_events());
    enabled_stack_.reserve(trace.num_events() + 1);
  }

  /// Fast-forwards through `prefix` before searching (root-split seeding
  /// and user seed prefixes).  Every event must be enabled in sequence.
  void seed(const std::vector<EventId>& prefix) {
    for (EventId e : prefix) {
      EVORD_CHECK(stepper_.enabled(e), "seed prefix is not schedulable");
      tracker_.apply(e, stepper_.done_bits());
      stepper_.apply(e);
      path_.push_back(e);
    }
  }

  SearchStats run() {
    dfs(0);
    return stats_;
  }

  const TraceStepper& stepper() const { return stepper_; }
  Tracker& tracker() { return tracker_; }

 private:
  void set_reason(StopReason reason) {
    if (stats_.stop_reason == StopReason::kNone) stats_.stop_reason = reason;
  }

  const std::vector<std::uint64_t>* payload() {
    if (!dedup_.verify_collisions()) return nullptr;
    stepper_.encode_key(key_scratch_);
    tracker_.extend_key(stepper_.done_bits(), key_scratch_);
    return &key_scratch_;
  }

  /// Visits one complete schedule under the strict global terminal
  /// budget; returns false to unwind the whole search.
  bool visit_terminal() {
    const std::uint64_t count =
        ctx_->terminals.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.max_terminals != 0 && count > options_.max_terminals) {
      stats_.truncated = true;
      set_reason(StopReason::kMaxTerminals);
      ctx_->request_stop(StopReason::kMaxTerminals);
      return false;
    }
    ++stats_.terminals;
    if (!hooks_.on_terminal(path_)) {
      stats_.stopped_by_visitor = true;
      set_reason(StopReason::kVisitor);
      ctx_->request_stop(StopReason::kVisitor);
      return false;
    }
    if (options_.max_terminals != 0 && count >= options_.max_terminals) {
      stats_.truncated = true;
      set_reason(StopReason::kMaxTerminals);
      ctx_->request_stop(StopReason::kMaxTerminals);
      return false;
    }
    return true;
  }

  /// Returns false to unwind the whole search (stop / strict budgets).
  bool dfs(std::size_t depth) {
    if (ctx_->stop_requested()) return false;
    if (stepper_.complete()) return visit_terminal();

    std::uint64_t fp = 0;
    if constexpr (Dedup::kEnabled) {
      fp = tracker_.fingerprint(stepper_.state_hash());
      const ClaimResult claim = dedup_.claim(fp, payload());
      if (!claim.expand) {
        ++stats_.dedup_hits;
        return true;
      }
      std::uint64_t global;
      if (claim.first_claim) {
        ++stats_.states_visited;
        global = ctx_->states.fetch_add(1, std::memory_order_relaxed) + 1;
      } else {
        global = ctx_->states.load(std::memory_order_relaxed);
      }
      // Claim-then-check: this state is counted but not expanded once the
      // budget is reached; siblings keep getting claimed (no unwind).
      if (options_.max_states != 0 && global >= options_.max_states) {
        stats_.truncated = true;
        set_reason(StopReason::kMaxStates);
        return true;
      }
    } else {
      ++stats_.states_visited;
    }
    if ((++budget_poll_ & 255u) == 0 && ctx_->deadline.expired()) {
      stats_.truncated = true;
      set_reason(StopReason::kDeadline);
      ctx_->request_stop(StopReason::kDeadline);
      return false;
    }

    // One vector per depth, reused across siblings (capacity kept); the
    // ctor reserve keeps per-depth slots stable across recursion.
    if (depth == enabled_stack_.size()) enabled_stack_.emplace_back();
    stepper_.enabled_events(enabled_stack_[depth]);
    if (enabled_stack_[depth].empty()) {
      ++stats_.deadlocked_prefixes;
      if constexpr (!Dedup::kEnabled) {
        fp = tracker_.fingerprint(stepper_.state_hash());
      }
      hooks_.on_stuck(path_, fp);
      return true;
    }
    bool keep_going = true;
    for (std::size_t i = 0;
         keep_going && i < enabled_stack_[depth].size(); ++i) {
      const EventId e = enabled_stack_[depth][i];
      const typename Tracker::Undo tu = tracker_.apply(e, stepper_.done_bits());
      const TraceStepper::Undo su = stepper_.apply(e);
      path_.push_back(e);
      keep_going = dfs(depth + 1);
      path_.pop_back();
      stepper_.undo(su);
      tracker_.undo(tu);
    }
    return keep_going;
  }

  SearchOptions options_;
  SharedContext* ctx_;
  TraceStepper stepper_;
  Tracker tracker_;
  Dedup dedup_;
  Hooks hooks_;
  SearchStats stats_;
  std::vector<EventId> path_;
  std::vector<std::vector<EventId>> enabled_stack_;
  std::vector<std::uint64_t> key_scratch_;
  std::uint32_t budget_poll_ = 0;
};

/// Memoized completability search: per state, "is a complete schedule
/// reachable from here", with the answer cached in a FingerprintBoolMap
/// keyed by the stepper's 64-bit state hash.  The state graph is acyclic,
/// so the memoized recursion terminates.
template <class Hooks>
class MemoizedSearch {
 public:
  MemoizedSearch(const Trace& trace, const StepperOptions& stepper_options,
                 const SearchOptions& options, SharedContext* ctx,
                 FingerprintBoolMap* memo, Hooks hooks)
      : options_(options),
        ctx_(ctx),
        memo_(memo),
        stepper_(trace, stepper_options),
        hooks_(std::move(hooks)) {
    enabled_stack_.reserve(trace.num_events() + 4);
  }

  void seed(const std::vector<EventId>& prefix) {
    for (EventId e : prefix) {
      EVORD_CHECK(stepper_.enabled(e), "seed prefix is not schedulable");
      stepper_.apply(e);
    }
  }

  /// True iff the current state can be extended to a complete schedule.
  /// `depth` indexes the per-depth scratch stack; re-entrant calls (from
  /// on_completable_state hooks) must pass an index beyond the depths in
  /// use.
  bool explore(std::size_t depth) {
    if (stepper_.complete()) return true;
    const std::uint64_t fp = stepper_.state_hash();
    bool memoized = false;
    if (memo_->lookup(fp, &memoized, payload())) {
      ++stats_.dedup_hits;
      return memoized;
    }
    if (ctx_->stop_requested()) {
      stats_.truncated = true;
      return false;  // unsound once truncated; flagged
    }
    if (options_.max_states != 0 &&
        ctx_->states.load(std::memory_order_relaxed) >= options_.max_states) {
      stats_.truncated = true;
      set_reason(StopReason::kMaxStates);
      return false;  // unsound once truncated; flagged
    }
    if ((++budget_poll_ & 1023u) == 0 && ctx_->deadline.expired()) {
      stats_.truncated = true;
      set_reason(StopReason::kDeadline);
      ctx_->request_stop(StopReason::kDeadline);
      return false;
    }

    if (depth >= enabled_stack_.size()) enabled_stack_.resize(depth + 1);
    stepper_.enabled_events(enabled_stack_[depth]);
    bool completable = false;
    // Iterate by index: recursion reuses deeper enabled_stack_ slots.
    for (std::size_t i = 0; i < enabled_stack_[depth].size(); ++i) {
      const EventId e = enabled_stack_[depth][i];
      if (!hooks_.child_allowed(e, stepper_)) continue;
      const TraceStepper::Undo u = stepper_.apply(e);
      const bool child_ok = explore(depth + 1);
      stepper_.undo(u);
      if (child_ok) {
        completable = true;
        hooks_.on_child_completable(e, stepper_.done_bits());
        if constexpr (Hooks::kFirstHit) break;
      }
    }
    if (completable) hooks_.on_completable_state(*this, depth);
    if (memo_->store(fp, completable, payload())) {
      ++stats_.states_visited;
      ctx_->states.fetch_add(1, std::memory_order_relaxed);
    }
    return completable;
  }

  /// Can `first` then immediately `second` run from the current state and
  /// still complete?  Used by coexistence marking; re-enters explore() at
  /// `depth` (pass an unused stack index, e.g. current depth + 2).
  bool pair_completable(EventId first, EventId second, std::size_t depth) {
    const TraceStepper::Undo u1 = stepper_.apply(first);
    bool ok = false;
    if (stepper_.enabled(second)) {
      const TraceStepper::Undo u2 = stepper_.apply(second);
      ok = explore(depth);
      stepper_.undo(u2);
    }
    stepper_.undo(u1);
    return ok;
  }

  const std::vector<EventId>& enabled_at(std::size_t depth) const {
    return enabled_stack_[depth];
  }
  const TraceStepper& stepper() const { return stepper_; }
  const SearchStats& stats() const { return stats_; }
  SearchStats take_stats() { return stats_; }

 private:
  void set_reason(StopReason reason) {
    if (stats_.stop_reason == StopReason::kNone) stats_.stop_reason = reason;
  }

  const std::vector<std::uint64_t>* payload() {
    if (!memo_->verify_collisions()) return nullptr;
    stepper_.encode_key(key_scratch_);
    return &key_scratch_;
  }

  SearchOptions options_;
  SharedContext* ctx_;
  FingerprintBoolMap* memo_;
  TraceStepper stepper_;
  Hooks hooks_;
  SearchStats stats_;
  std::vector<std::vector<EventId>> enabled_stack_;
  std::vector<std::uint64_t> key_scratch_;
  std::uint32_t budget_poll_ = 0;
};

}  // namespace evord::search
