#include "search/independence.hpp"

#include <bit>

#include "trace/event.hpp"

namespace evord::search {

// The relation is assembled class-by-class with word-parallel bitset
// unions instead of testing every O(n^2) pair individually:
//   * one mask per process (program-order pairs),
//   * one mask per semaphore over its ops (P/P, P/V, V/V all dependent),
//   * two masks per event variable — all ops, and the non-Wait ops —
//     so a Wait ORs in only posts/clears (Wait/Wait commutes) while a
//     post/clear ORs in everything on its variable.
// Only shared-data conflicts (a sparse subset: computation events with
// non-empty read/write sets) and explicit D edges fall back to scalar
// pair marking.  The result is bit-identical to the old per-pair loop.
IndependenceRelation::IndependenceRelation(const Trace& trace)
    : trace_(&trace),
      n_(trace.num_events()),
      num_procs_(trace.num_processes()),
      dep_(n_, DynamicBitset(n_)),
      max_dep_index_(n_ * num_procs_, -1),
      dep_proc_mask_(n_, 0),
      hard_dep_(n_, DynamicBitset(n_)),
      max_hard_index_(n_ * num_procs_, -1),
      sem_p_max_(trace.semaphores().size() * num_procs_, -1),
      sem_v_max_(trace.semaphores().size() * num_procs_, -1),
      ev_post_max_(trace.event_vars().size() * num_procs_, -1),
      ev_clear_max_(trace.event_vars().size() * num_procs_, -1),
      ev_wait_max_(trace.event_vars().size() * num_procs_, -1),
      sem_p_total_(trace.semaphores().size(), 0),
      dpreds_(n_) {
  std::vector<DynamicBitset> proc_events(num_procs_, DynamicBitset(n_));
  std::vector<DynamicBitset> sem_ops(trace.semaphores().size(),
                                     DynamicBitset(n_));
  std::vector<DynamicBitset> ev_ops(trace.event_vars().size(),
                                    DynamicBitset(n_));
  std::vector<DynamicBitset> ev_nonwait(trace.event_vars().size(),
                                        DynamicBitset(n_));
  std::vector<EventId> data_events;
  // Category-wise per-(object, process) maxima: the O(1) "does q still
  // hold an unexecuted P/V/Post/Clear/Wait on this object" tests behind
  // DynamicIndependence and the source-set enabling closures.
  const auto bump = [&](std::vector<std::int64_t>& table, ObjectId obj,
                        const Event& e) {
    std::int64_t& slot = table[obj * num_procs_ + e.process];
    slot = std::max(slot, static_cast<std::int64_t>(e.index_in_process));
  };
  for (EventId a = 0; a < n_; ++a) {
    const Event& e = trace.event(a);
    proc_events[e.process].set(a);
    if (is_semaphore_op(e.kind)) {
      sem_ops[e.object].set(a);
      if (e.kind == EventKind::kSemP) {
        bump(sem_p_max_, e.object, e);
        ++sem_p_total_[e.object];
      } else {
        bump(sem_v_max_, e.object, e);
      }
    }
    if (is_event_op(e.kind)) {
      ev_ops[e.object].set(a);
      if (e.kind != EventKind::kWait) ev_nonwait[e.object].set(a);
      if (e.kind == EventKind::kPost) bump(ev_post_max_, e.object, e);
      if (e.kind == EventKind::kClear) bump(ev_clear_max_, e.object, e);
      if (e.kind == EventKind::kWait) bump(ev_wait_max_, e.object, e);
    }
    if (e.accesses_shared_data()) data_events.push_back(a);
  }

  for (EventId a = 0; a < n_; ++a) {
    const Event& e = trace.event(a);
    DynamicBitset& row = dep_[a];
    // Program order; never co-enabled.  Kept dependent so the relation
    // reads as "definitely commute" only across processes.
    row |= proc_events[e.process];
    if (is_semaphore_op(e.kind)) row |= sem_ops[e.object];
    if (is_event_op(e.kind)) {
      row |= e.kind == EventKind::kWait ? ev_nonwait[e.object]
                                        : ev_ops[e.object];
    }
  }

  // Hard dependences (data conflicts + D edges) are recorded separately
  // too: they are never dynamically excusable, whatever the pair's kinds.
  const auto mark = [&](EventId a, EventId b) {
    dep_[a].set(b);
    dep_[b].set(a);
    hard_dep_[a].set(b);
    hard_dep_[b].set(a);
  };
  // Conflicting shared-data accesses: only computation events with
  // non-empty read/write sets can conflict, so scan that subset.
  for (std::size_t i = 0; i < data_events.size(); ++i) {
    const Event& ea = trace.event(data_events[i]);
    for (std::size_t j = i + 1; j < data_events.size(); ++j) {
      const Event& eb = trace.event(data_events[j]);
      if (ea.process != eb.process && ea.conflicts_with(eb)) {
        mark(data_events[i], data_events[j]);
      }
    }
  }
  // Observed shared-data dependences (D): dependent in either direction.
  // Cross-process D edges between computes are already conflict-marked;
  // this also covers any explicitly declared edges.
  for (const auto& [x, y] : trace.dependences()) {
    mark(x, y);
    dpreds_[y].push_back(x);
  }
  for (EventId a = 0; a < n_; ++a) {
    dep_[a].reset(a);
    hard_dep_[a].reset(a);
  }

  // max_dep_index_[a][q] (and its hard-only analogue): the largest
  // program-order position of an event of process q dependent with a
  // (the closures ask "does q still have a dependent event at position
  // >= pos_q?").  Iterated word-at-a-time over the dependence rows.
  const auto fill_max = [&](const std::vector<DynamicBitset>& rows,
                            std::vector<std::int64_t>& table) {
    for (EventId a = 0; a < n_; ++a) {
      const DynamicBitset& row = rows[a];
      const ProcId pa = trace.event(a).process;
      for (std::size_t w = 0; w < row.word_count(); ++w) {
        std::uint64_t bits = row.word(w);
        while (bits != 0) {
          const std::size_t b = w * 64 + std::countr_zero(bits);
          bits &= bits - 1;
          const Event& eb = trace.event(static_cast<EventId>(b));
          if (eb.process == pa) continue;
          std::int64_t& slot = table[a * num_procs_ + eb.process];
          slot = std::max(slot,
                          static_cast<std::int64_t>(eb.index_in_process));
        }
      }
    }
  };
  fill_max(dep_, max_dep_index_);
  fill_max(hard_dep_, max_hard_index_);
  // dep_proc_mask_[a]: bit q set iff process q has ANY event dependent
  // with a — the persistent-set closure's candidate filter, one word
  // per event when the trace has at most 64 processes.
  if (num_procs_ <= 64) {
    for (EventId a = 0; a < n_; ++a) {
      std::uint64_t m = 0;
      for (ProcId q = 0; q < num_procs_; ++q) {
        if (max_dep_index_[a * num_procs_ + q] >= 0) m |= std::uint64_t{1}
                                                         << q;
      }
      dep_proc_mask_[a] = m;
    }
  }
}

}  // namespace evord::search
