#include "search/independence.hpp"

#include "trace/event.hpp"

namespace evord::search {

namespace {

/// The static dependence test for one cross-process pair (see the file
/// comment in independence.hpp for the case-by-case argument).
bool statically_dependent(const Event& a, const Event& b) {
  if (is_semaphore_op(a.kind) && is_semaphore_op(b.kind)) {
    return a.object == b.object;
  }
  if (is_event_op(a.kind) && is_event_op(b.kind)) {
    if (a.object != b.object) return false;
    // Wait/Wait only reads (posted flag, establisher): commutes.
    return !(a.kind == EventKind::kWait && b.kind == EventKind::kWait);
  }
  // Conflicting shared-data accesses (covers every D edge between
  // computes; D edges are added explicitly by the caller anyway).
  return a.conflicts_with(b);
}

}  // namespace

IndependenceRelation::IndependenceRelation(const Trace& trace)
    : n_(trace.num_events()),
      num_procs_(trace.num_processes()),
      dep_(n_, DynamicBitset(n_)),
      max_dep_index_(n_ * num_procs_, -1) {
  const auto mark = [&](EventId a, EventId b) {
    dep_[a].set(b);
    dep_[b].set(a);
  };
  for (EventId a = 0; a < n_; ++a) {
    const Event& ea = trace.event(a);
    for (EventId b = a + 1; b < n_; ++b) {
      const Event& eb = trace.event(b);
      if (ea.process == eb.process) {
        // Program order; never co-enabled.  Kept dependent so the
        // relation reads as "definitely commute" only across processes.
        mark(a, b);
        continue;
      }
      if (statically_dependent(ea, eb)) mark(a, b);
    }
  }
  // Observed shared-data dependences (D): dependent in either direction.
  // Cross-process D edges between computes are already conflict-marked;
  // this also covers any explicitly declared edges.
  for (const auto& [x, y] : trace.dependences()) mark(x, y);
  for (EventId a = 0; a < n_; ++a) dep_[a].reset(a);

  // max_dep_index_[a][q]: the largest program-order position of an event
  // of process q dependent with a (the persistent-set closure asks
  // "does q still have a dependent event at position >= pos_q?").
  for (EventId a = 0; a < n_; ++a) {
    const DynamicBitset& row = dep_[a];
    for (std::size_t b = row.find_first(); b < row.size();
         b = row.find_next(b)) {
      const Event& eb = trace.event(static_cast<EventId>(b));
      if (eb.process == trace.event(a).process) continue;
      std::int64_t& slot = max_dep_index_[a * num_procs_ + eb.process];
      slot = std::max(slot, static_cast<std::int64_t>(eb.index_in_process));
    }
  }
}

}  // namespace evord::search
