// Unified options and statistics for the state-space search core.
//
// Every trace-level explorer (schedule enumeration, causal-class
// enumeration, the memoized can-precede/coexist sweep, deadlock search)
// runs on the generic engines in search/engine.hpp and reports through
// the SearchStats defined here, so budgets, truncation provenance and
// dedup behaviour look the same no matter which analysis ran.  See
// docs/SEARCH.md for the tracker/visitor contracts and the fingerprint
// safety argument.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace evord::search {

/// Why a search stopped early (kNone == ran to natural exhaustion).
enum class StopReason : std::uint8_t {
  kNone = 0,
  kMaxStates = 1,     ///< distinct-state budget (max_states)
  kMaxTerminals = 2,  ///< terminal budget (max_terminals / max_schedules)
  kDeadline = 3,      ///< wall-clock time budget
  kVisitor = 4,       ///< a visitor returned false
  kMemory = 5,        ///< byte budget (max_memory_bytes) or store failure
};

const char* to_string(StopReason reason);

/// Partial-order reduction mode for the engines in search/engine.hpp.
/// Reduction explores one representative schedule per Mazurkiewicz trace
/// (events reorderable when adjacent and independent) instead of every
/// interleaving.  Sound for per-trace facts — causal classes, deadlock
/// verdicts, exact causal/interval relations — and unsound for schedule
/// counts or interleaving-semantics matrices; each explorer front-end
/// picks the default that matches its semantics (docs/SEARCH.md §POR).
enum class ReductionMode : std::uint8_t {
  kOff = 0,
  /// Sleep sets only: every state is still reachable, but transitions
  /// whose trace was covered by an earlier sibling are pruned.
  kSleep = 1,
  /// Sleep sets + persistent sets (the full reduction): at each state
  /// only a provably sufficient subset of the enabled events is
  /// expanded.  All transition-less (terminal / stuck) states remain
  /// reachable, so verdict- and class-level results are preserved.
  kSleepPersistent = 2,
  /// Sleep sets + source sets + dynamic independence (the optimal-mode
  /// refinement, see docs/SEARCH.md §6): the source-set selector closes
  /// over *necessary enabling sets* instead of giving up when a closure
  /// head is disabled, and state-aware (conditional) independence
  /// reclaims commutations the static relation misses — semaphore V/V
  /// with enough surplus tokens, Post/Post and Post/Wait on an already
  /// posted variable, Clear/Clear — evaluated per state through the
  /// per-depth wakeup frames the engines maintain (and serialize across
  /// work-stealing donation).  Same soundness class as kSleepPersistent:
  /// every transition-less state stays reachable and causal classes are
  /// preserved, with strictly fewer explored schedules.
  kSourceWakeup = 3,
};

const char* to_string(ReductionMode mode);

/// Work-stealing scheduler tuning.  None of these affect results — the
/// deterministic merges key on canonical task ids, so any split pattern
/// and any victim order produce bit-identical output (the stress test in
/// tests/search_test.cpp perturbs `seed` to prove it).
struct StealOptions {
  /// Minimum number of still-unexecuted events below a donated subtree
  /// root.  Subtrees smaller than this are never split off, keeping the
  /// task grain coarse enough to amortise task setup (seed replay).
  std::size_t grain = 4;
  /// Maximum schedule depth (events executed, counting the seed prefix)
  /// at which a split may occur.  0 = no depth cutoff.
  std::size_t max_split_depth = 0;
  /// Seeds the per-worker victim-selection RNG.  Varying it perturbs the
  /// steal order without affecting results.
  std::uint64_t seed = 0;
};

/// Budgets shared by every engine.  All zero values mean "unlimited".
struct SearchOptions {
  /// Stop expanding new distinct states after this many (global across
  /// all workers in parallel mode).
  std::size_t max_states = 0;
  /// Stop after this many terminal (complete-schedule) visits.  Enforced
  /// strictly via a shared atomic counter: the combined visit count never
  /// exceeds the budget, serial or parallel.
  std::uint64_t max_terminals = 0;
  /// Stop after this many seconds of wall clock.
  double time_budget_seconds = 0.0;
  /// Stop once the search's charged memory — fingerprint/memo store
  /// entries, retained collision payloads, donated task descriptors,
  /// witness buffers — reaches this many bytes.  Strict and global
  /// across all workers (one shared MemoryAccountant per search, see
  /// search/memory.hpp): a budget of N caps the combined total at N,
  /// the same contract as max_states.  Engines poll per expanded state,
  /// so overshoot is bounded by one state's charge per worker.
  std::uint64_t max_memory_bytes = 0;
  /// Worker count: 0 = hardware concurrency, 1 = serial.  Clamped to
  /// max_worker_threads() (scheduler.hpp) so oversubscription is
  /// impossible.
  std::size_t num_threads = 1;
  /// Work-stealing knobs (steal_grain / max_split_depth / steal_seed).
  StealOptions steal;
  /// Partial-order reduction (sleep sets + persistent sets).  Engines
  /// running with a mode other than kOff must be handed an
  /// IndependenceRelation (search/independence.hpp).  Explorer
  /// front-ends choose soundness-matched defaults; see docs/SEARCH.md.
  ReductionMode reduction = ReductionMode::kOff;
  /// kSourceWakeup only: let the dynamic-independence excusals assume
  /// that ONLY the stepper state matters — V/V, Post/Post and Post/Wait
  /// commute unconditionally instead of under their class-preserving
  /// conditions (surplus tokens / already posted).  Sound solely for
  /// front-ends whose results are functions of reachable stepper states
  /// (deadlock search); front-ends that surface schedules or causal
  /// classes must leave it false.  Ignored by engines carrying a causal
  /// tracker (they always use the conditional excusals).
  bool state_only_excusals = false;
  /// Spill the dedup/memo store's cold shards to an mmap-backed temp
  /// file when the byte budget nears exhaustion, instead of stopping
  /// with StopReason::kMemory.  Only meaningful with max_memory_bytes
  /// set; results are bit-identical to an unbudgeted run.  Off keeps
  /// today's stop-at-budget behaviour exactly.
  bool spill = false;
};

/// Per-worker scheduler counters (SearchStats::workers, one entry per
/// worker thread of the work-stealing scheduler).
struct WorkerStats {
  std::uint64_t tasks_executed = 0;  ///< tasks this worker ran
  std::uint64_t tasks_stolen = 0;    ///< of those, taken from another deque
  std::uint64_t tasks_spawned = 0;   ///< tasks this worker split off
  std::uint64_t steal_attempts = 0;  ///< victim probes (successful or not)
  std::uint64_t idle_nanos = 0;      ///< time spent looking for work

  void merge(const WorkerStats& other);
};

/// What one engine run did.  Per-worker instances are merged
/// associatively by merge(); counters sum, flags OR, and the first
/// recorded stop reason wins.
struct SearchStats {
  std::uint64_t states_visited = 0;  ///< distinct states expanded
  std::uint64_t dedup_hits = 0;      ///< states pruned as already seen
  std::uint64_t terminals = 0;       ///< complete schedules delivered
  std::uint64_t deadlocked_prefixes = 0;  ///< stuck states reached
  /// Enabled events skipped because they were in the state's sleep set
  /// (their Mazurkiewicz trace was covered by an earlier sibling).  Zero
  /// unless SearchOptions::reduction enables sleep sets.
  std::uint64_t sleep_pruned = 0;
  /// Enabled events skipped because the chosen persistent set (or, under
  /// kSourceWakeup, the chosen source set) did not contain them.  Zero
  /// unless reduction selects subsets of the enabled events.
  std::uint64_t persistent_skipped = 0;
  /// Statically dependent pairs excused by dynamic (state-aware)
  /// independence — inside the source-set closure and the wakeup-frame
  /// sleep-inheritance masks.  Zero unless reduction == kSourceWakeup.
  std::uint64_t dyn_excused = 0;
  /// Bytes held by the dedup/memo store at the end of the search (the
  /// 8-byte-per-state fingerprint representation; debug payload retention
  /// is excluded — it exists only to cross-check collisions).  In
  /// parallel mode this is set once from the shared stores, never summed
  /// per worker (workers report 0), so shared-set insertions are not
  /// double-counted.
  std::uint64_t memo_bytes = 0;
  /// Bytes written to the spill tier (0 unless SearchOptions::spill) and
  /// the number of spill sweeps that ran.  Like memo_bytes, set once at
  /// top level from the shared stores.
  std::uint64_t spilled_bytes = 0;
  std::uint64_t spill_events = 0;
  bool truncated = false;          ///< a budget stopped the search
  bool stopped_by_visitor = false;
  StopReason stop_reason = StopReason::kNone;

  /// States counted per schedule depth (events executed, including any
  /// seed prefix), same counting rule as states_visited.  Element-wise
  /// summed by merge().
  std::vector<std::uint64_t> depth_states;
  /// Per-worker scheduler counters; empty for serial runs.  Index-wise
  /// merged (worker i of every task batch is the same OS thread).
  std::vector<WorkerStats> workers;
  /// Final per-shard sizes of the shared fingerprint store (load-factor
  /// diagnostics); empty when the explorer used no shared store.  Set
  /// once at top level; merge() adopts whichever side is non-empty.
  std::vector<std::uint64_t> shard_sizes;

  void merge(const SearchStats& other);

  std::uint64_t tasks_executed() const;
  std::uint64_t tasks_stolen() const;
  std::uint64_t tasks_spawned() const;
  std::uint64_t steal_attempts() const;
  std::uint64_t idle_nanos() const;
  /// Peak depth_states entry and its depth; {0, 0} when no histogram.
  std::uint64_t peak_depth() const;
  /// max(shard size) / mean(shard size); 0 when no shard data.
  double shard_imbalance() const;

  /// Approximate resident footprint of this stats object itself (struct
  /// plus histogram / per-worker / per-shard vectors) — results that
  /// embed a SearchStats charge it to the service result cache's byte
  /// budget through their own approx_bytes().
  std::uint64_t approx_bytes() const {
    return sizeof(SearchStats) +
           depth_states.capacity() * sizeof(std::uint64_t) +
           workers.capacity() * sizeof(WorkerStats) +
           shard_sizes.capacity() * sizeof(std::uint64_t);
  }
};

}  // namespace evord::search
