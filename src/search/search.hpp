// Unified options and statistics for the state-space search core.
//
// Every trace-level explorer (schedule enumeration, causal-class
// enumeration, the memoized can-precede/coexist sweep, deadlock search)
// runs on the generic engines in search/engine.hpp and reports through
// the SearchStats defined here, so budgets, truncation provenance and
// dedup behaviour look the same no matter which analysis ran.  See
// docs/SEARCH.md for the tracker/visitor contracts and the fingerprint
// safety argument.
#pragma once

#include <cstddef>
#include <cstdint>

namespace evord::search {

/// Why a search stopped early (kNone == ran to natural exhaustion).
enum class StopReason : std::uint8_t {
  kNone = 0,
  kMaxStates = 1,     ///< distinct-state budget (max_states)
  kMaxTerminals = 2,  ///< terminal budget (max_terminals / max_schedules)
  kDeadline = 3,      ///< wall-clock time budget
  kVisitor = 4,       ///< a visitor returned false
};

const char* to_string(StopReason reason);

/// Budgets shared by every engine.  All zero values mean "unlimited".
struct SearchOptions {
  /// Stop expanding new distinct states after this many (global across
  /// all workers in parallel mode).
  std::size_t max_states = 0;
  /// Stop after this many terminal (complete-schedule) visits.  Enforced
  /// strictly via a shared atomic counter: the combined visit count never
  /// exceeds the budget, serial or parallel.
  std::uint64_t max_terminals = 0;
  /// Stop after this many seconds of wall clock.
  double time_budget_seconds = 0.0;
  /// Root-split width: 0 = hardware concurrency, 1 = serial.
  std::size_t num_threads = 1;
};

/// What one engine run did.  Per-worker instances are merged
/// associatively by merge(); counters sum, flags OR, and the first
/// recorded stop reason wins.
struct SearchStats {
  std::uint64_t states_visited = 0;  ///< distinct states expanded
  std::uint64_t dedup_hits = 0;      ///< states pruned as already seen
  std::uint64_t terminals = 0;       ///< complete schedules delivered
  std::uint64_t deadlocked_prefixes = 0;  ///< stuck states reached
  /// Bytes held by the dedup/memo store at the end of the search (the
  /// 8-byte-per-state fingerprint representation; debug payload retention
  /// is excluded — it exists only to cross-check collisions).
  std::uint64_t memo_bytes = 0;
  bool truncated = false;          ///< a budget stopped the search
  bool stopped_by_visitor = false;
  StopReason stop_reason = StopReason::kNone;

  void merge(const SearchStats& other);
};

}  // namespace evord::search
