// Ablation: the causal-class prefix deduplication (DESIGN.md's
// partial-order-reduction analogue) against the plain schedule
// enumerator, on workloads where exponentially many schedules share a
// few causal orders.
//
// Counters report schedules actually visited by each engine; the results
// (all six relation matrices) are identical — asserted each iteration.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "ordering/exact.hpp"
#include "reductions/reduction.hpp"
#include "util/check.hpp"
#include "workload/generators.hpp"

namespace {

using namespace evord;
using namespace evord::bench;

void run_both(benchmark::State& state, const Trace& trace,
              bool run_plain) {
  ExactOptions dedup;
  dedup.class_dedup = true;
  ExactOptions plain;
  plain.class_dedup = false;

  std::uint64_t dedup_visits = 0;
  std::uint64_t plain_visits = 0;
  for (auto _ : state) {
    const OrderingRelations rd =
        compute_exact(trace, Semantics::kCausal, dedup);
    EVORD_CHECK(!rd.truncated, "dedup engine truncated");
    dedup_visits = rd.schedules_seen;
    benchmark::DoNotOptimize(rd);
    if (run_plain) {
      const OrderingRelations rp =
          compute_exact(trace, Semantics::kCausal, plain);
      EVORD_CHECK(!rp.truncated, "plain engine truncated");
      plain_visits = rp.schedules_seen;
      for (RelationKind k : kAllRelationKinds) {
        EVORD_CHECK(rd[k] == rp[k], "engines disagree on " << to_string(k));
      }
      benchmark::DoNotOptimize(rp);
    }
  }
  state.counters["dedup_visits"] = static_cast<double>(dedup_visits);
  if (run_plain) {
    state.counters["plain_visits"] = static_cast<double>(plain_visits);
  }
}

void BM_Ablation_IndependentGrid(benchmark::State& state) {
  // 3 processes x k events: multinomially many schedules, ONE class.
  const auto k = static_cast<std::size_t>(state.range(0));
  TraceBuilder b;
  const ProcId p1 = b.add_process();
  const ProcId p2 = b.add_process();
  for (std::size_t i = 0; i < k; ++i) {
    b.compute(b.root(), "");
    b.compute(p1, "");
    b.compute(p2, "");
  }
  run_both(state, b.build(), /*run_plain=*/k <= 4);
  state.SetLabel(k <= 4 ? "both engines (results asserted equal)"
                        : "dedup only (plain engine would be intractable)");
}
BENCHMARK(BM_Ablation_IndependentGrid)
    ->DenseRange(2, 6, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Ablation_SemReductionCausal(benchmark::State& state) {
  // Causal analysis of the Theorem-1 trace: previously out of reach for
  // the plain enumerator, routine with prefix dedup.
  const bool satisfiable = state.range(0) != 0;
  const ReductionExecution e = execute_reduction(
      reduce_3sat_semaphores(satisfiable ? tiny_sat() : tiny_unsat()));
  ExactOptions dedup;
  std::uint64_t classes = 0;
  for (auto _ : state) {
    const OrderingRelations r =
        compute_exact(e.trace, Semantics::kCausal, dedup);
    EVORD_CHECK(!r.truncated, "dedup engine truncated");
    EVORD_CHECK(r.holds(RelationKind::kMHB, e.a, e.b) == !satisfiable,
                "causal Theorem 1 violated");
    EVORD_CHECK(r.holds(RelationKind::kCCW, e.a, e.b) == satisfiable,
                "causal CCW biconditional violated");
    classes = r.causal_classes;
    benchmark::DoNotOptimize(r);
  }
  state.counters["causal_classes"] = static_cast<double>(classes);
  state.SetLabel(satisfiable ? "SAT: a CCW b" : "UNSAT: a MHB b, a MOW b");
}
BENCHMARK(BM_Ablation_SemReductionCausal)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_Ablation_RandomSemTraces(benchmark::State& state) {
  Rng rng(404);
  SemTraceConfig config;
  config.num_events = static_cast<std::size_t>(state.range(0));
  const Trace t = random_semaphore_trace(config, rng);
  run_both(state, t, /*run_plain=*/true);
}
BENCHMARK(BM_Ablation_RandomSemTraces)
    ->DenseRange(8, 12, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
