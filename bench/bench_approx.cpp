// Experiments E7 / E8: precision of the polynomial baselines against the
// exact must-have-happened-before relation (dependences ignored, the
// §5.3 feasibility both baselines target).
//
// Per trace-size bucket, counters report the aggregated recall of the
// baseline (fraction of exact MHB pairs it proves) and its soundness
// violations (always 0).  The baselines run in microseconds while the
// exact reference is exponential — the measured gap is the paper's §4
// critique quantified.
#include <benchmark/benchmark.h>

#include "approx/combined.hpp"
#include "approx/comparison.hpp"
#include "approx/egp.hpp"
#include "approx/hmw.hpp"
#include "bench_common.hpp"
#include "ordering/exact.hpp"
#include "util/check.hpp"

namespace {

using namespace evord;
using namespace evord::bench;

void BM_Hmw_Precision(benchmark::State& state) {
  const auto num_events = static_cast<std::size_t>(state.range(0));
  // Pre-generate traces and their exact references outside the timed loop.
  Rng rng(2026);
  std::vector<Trace> traces;
  std::vector<RelationMatrix> exact;
  for (int i = 0; i < 8; ++i) {
    traces.push_back(
        random_sem_trace(num_events, 3, 2, rng, /*num_vars=*/0));
    ExactOptions options;
    options.respect_dependences = false;
    exact.push_back(compute_exact(traces.back(), Semantics::kCausal,
                                  options)[RelationKind::kMHB]);
  }

  std::size_t agreed = 0;
  std::size_t exact_pairs = 0;
  std::size_t spurious = 0;
  for (auto _ : state) {
    agreed = exact_pairs = spurious = 0;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const HmwResult hmw = compute_hmw(traces[i]);
      const RelationComparison c =
          compare_relations(hmw.safe_happened_before, exact[i]);
      agreed += c.agreed;
      exact_pairs += c.exact_pairs;
      spurious += c.spurious;
      benchmark::DoNotOptimize(hmw);
    }
  }
  EVORD_CHECK(spurious == 0, "HMW produced an unsound ordering");
  state.counters["recall"] =
      exact_pairs == 0 ? 1.0
                       : static_cast<double>(agreed) /
                             static_cast<double>(exact_pairs);
  state.counters["exact_pairs"] = static_cast<double>(exact_pairs);
  state.counters["unsound"] = static_cast<double>(spurious);
}
BENCHMARK(BM_Hmw_Precision)
    ->Arg(8)
    ->Arg(10)
    ->Arg(12)
    ->Unit(benchmark::kMicrosecond);

void BM_Egp_Precision(benchmark::State& state) {
  const auto num_events = static_cast<std::size_t>(state.range(0));
  Rng rng(4052);
  std::vector<Trace> traces;
  std::vector<RelationMatrix> exact;
  for (int i = 0; i < 8; ++i) {
    traces.push_back(random_event_trace(num_events, 3, 2, rng));
    const OrderingRelations r =
        compute_exact(traces.back(), Semantics::kCausal);
    exact.push_back(r[RelationKind::kMHB]);
  }

  std::size_t agreed = 0;
  std::size_t exact_pairs = 0;
  std::size_t spurious = 0;
  for (auto _ : state) {
    agreed = exact_pairs = spurious = 0;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const EgpResult egp = compute_egp(traces[i]);
      const RelationComparison c =
          compare_relations(egp.guaranteed, exact[i]);
      agreed += c.agreed;
      exact_pairs += c.exact_pairs;
      spurious += c.spurious;
      benchmark::DoNotOptimize(egp);
    }
  }
  EVORD_CHECK(spurious == 0,
              "EGP produced an unsound ordering on a sync-only trace");
  state.counters["recall"] =
      exact_pairs == 0 ? 1.0
                       : static_cast<double>(agreed) /
                             static_cast<double>(exact_pairs);
  state.counters["exact_pairs"] = static_cast<double>(exact_pairs);
  state.counters["unsound"] = static_cast<double>(spurious);
}
BENCHMARK(BM_Egp_Precision)
    ->Arg(8)
    ->Arg(10)
    ->Arg(12)
    ->Unit(benchmark::kMicrosecond);

// The combined dependence-aware engine against the same references: it
// must dominate HMW on semaphore traces (same rule plus D plus the CCA
// rule) and stays sound.
void BM_Combined_Precision(benchmark::State& state) {
  const auto num_events = static_cast<std::size_t>(state.range(0));
  Rng rng(2026);
  std::vector<Trace> traces;
  std::vector<RelationMatrix> exact;
  for (int i = 0; i < 8; ++i) {
    traces.push_back(random_sem_trace(num_events, 3, 2, rng, /*num_vars=*/2));
    exact.push_back(compute_exact(traces.back(),
                                  Semantics::kCausal)[RelationKind::kMHB]);
  }
  std::size_t agreed = 0;
  std::size_t exact_pairs = 0;
  std::size_t spurious = 0;
  for (auto _ : state) {
    agreed = exact_pairs = spurious = 0;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const CombinedResult combined = compute_combined(traces[i]);
      const RelationComparison c =
          compare_relations(combined.guaranteed, exact[i]);
      agreed += c.agreed;
      exact_pairs += c.exact_pairs;
      spurious += c.spurious;
      benchmark::DoNotOptimize(combined);
    }
  }
  EVORD_CHECK(spurious == 0, "combined engine produced an unsound ordering");
  state.counters["recall"] =
      exact_pairs == 0 ? 1.0
                       : static_cast<double>(agreed) /
                             static_cast<double>(exact_pairs);
  state.counters["exact_pairs"] = static_cast<double>(exact_pairs);
  state.counters["unsound"] = static_cast<double>(spurious);
}
BENCHMARK(BM_Combined_Precision)
    ->Arg(8)
    ->Arg(10)
    ->Arg(12)
    ->Unit(benchmark::kMicrosecond);

// Runtime-only scaling of the baselines on traces far beyond the exact
// engine's reach: polynomial vs exponential, the other half of the story.
void BM_Hmw_Runtime(benchmark::State& state) {
  const auto num_events = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const Trace t = random_sem_trace(num_events, 6, 3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_hmw(t));
  }
  state.SetComplexityN(static_cast<std::int64_t>(num_events));
}
BENCHMARK(BM_Hmw_Runtime)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_Egp_Runtime(benchmark::State& state) {
  const auto num_events = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  const Trace t = random_event_trace(num_events, 6, 3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_egp(t));
  }
  state.SetComplexityN(static_cast<std::int64_t>(num_events));
}
BENCHMARK(BM_Egp_Runtime)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
