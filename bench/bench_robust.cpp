// Robustness experiment: the cost of the resource-governance machinery.
//
// Three question families, one BENCH_robust.json:
//
//   1. Fault-hook overhead.  The search core calls fault:: hooks on
//      every expanded state, store insertion and steal attempt.  Rows
//      compare the Theorem-1 causal sweep with hooks disarmed (the
//      production default) against hooks armed with a threshold that
//      never fires (the worst hot-path cost short of actually
//      injecting: every expanded state and store insertion pays an
//      atomic increment).  The acceptance bar is on the production
//      configuration: the DISARMED hook — one relaxed atomic load —
//      must cost <= 2% of the sweep.  Wall-clock A/B at that scale is
//      pure noise on a 1-CPU runner, so the bound is computed
//      deterministically: a microbenchmark times the disarmed hook
//      per-call, the armed run counts how often the sweep calls it, and
//      their product is compared against the sweep's wall time.  The
//      armed-idle wall time lands in the row as informational data, and
//      both sweeps' matrices are compared so a row can never describe a
//      wrong answer.
//
//   2. Memory-budget precision.  A budgeted sweep must stop with
//      StopReason::kMemory without overshooting the byte budget by more
//      than one state's charge per worker; rows record the ratio.
//
//   3. Anytime-ladder overhead.  AnytimeQuery answers through an
//      escalating budget ladder; rows compare a direct exhaustive
//      compute_exact against the ladder climb (which ends in the same
//      exhaustive run) and record a degraded truncated-ladder query's
//      provenance for reference.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ordering/exact.hpp"
#include "ordering/relations.hpp"
#include "reductions/reduction.hpp"
#include "resilience/anytime.hpp"
#include "sat/formula.hpp"
#include "search/search.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace {

using namespace evord;
using namespace evord::bench;

Trace theorem1_trace(const CnfFormula& formula) {
  return execute_reduction(reduce_3sat(formula, SyncStyle::kSemaphore))
      .trace;
}

bool same_matrices(const OrderingRelations& a, const OrderingRelations& b) {
  for (std::size_t k = 0; k < kNumRelationKinds; ++k) {
    if (!(a.matrices[k] == b.matrices[k])) return false;
  }
  return true;
}

// Best-of-N wall time for one configuration, interleaving is handled by
// the caller so slow drift hits both arms equally.
struct TimedSweep {
  OrderingRelations relations;
  double best_ms = 1e100;
};

void run_once(const Trace& trace, TimedSweep& sweep) {
  Timer timer;
  OrderingRelations rel = compute_exact(trace, Semantics::kCausal, {});
  const double ms = static_cast<double>(timer.micros()) / 1000.0;
  sweep.best_ms = std::min(sweep.best_ms, ms);
  sweep.relations = std::move(rel);
}

// ---------------------------------------------------------------------
// 1. Hook overhead: disarmed vs armed-but-never-firing.

/// Nanoseconds per disarmed on_state_expanded() call (one relaxed
/// atomic load; the cost every production search pays per state).
double disarmed_hook_ns() {
  constexpr std::uint64_t kCalls = 8'000'000;
  fault::disarm();
  bool sink = false;
  Timer timer;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    sink |= fault::on_state_expanded();
  }
  const double ns = static_cast<double>(timer.micros()) * 1000.0;
  benchmark::DoNotOptimize(sink);
  return ns / static_cast<double>(kCalls);
}

JsonRecord run_hook_overhead(const std::string& workload,
                             const Trace& trace) {
  constexpr int kReps = 9;
  TimedSweep disarmed;
  TimedSweep armed;
  fault::FaultPlan idle_plan;
  idle_plan.kind = fault::FaultKind::kDeadlineAtState;
  idle_plan.threshold = std::uint64_t{1} << 62;  // never reached
  // Interleave the arms so clock-speed drift cannot bias one side.
  for (int rep = 0; rep < kReps; ++rep) {
    run_once(trace, disarmed);
    {
      fault::ScopedFaultPlan scope(idle_plan);
      run_once(trace, armed);
    }
  }
  EVORD_CHECK(!armed.relations.truncated,
              workload << ": idle fault plan truncated the sweep");
  EVORD_CHECK(same_matrices(disarmed.relations, armed.relations),
              workload << ": armed-but-idle hooks changed the matrices");
  // The armed run's counters tell us exactly how many hook calls the
  // sweep makes (counts are the same disarmed — the sites don't move).
  const std::uint64_t hook_calls =
      fault::states_observed() + fault::inserts_observed();
  const double per_call_ns = disarmed_hook_ns();
  const double disarmed_overhead_pct =
      disarmed.best_ms > 0.0
          ? per_call_ns * static_cast<double>(hook_calls) /
                (disarmed.best_ms * 1e6) * 100.0
          : 0.0;
  EVORD_CHECK(disarmed_overhead_pct <= 2.0,
              workload << ": disarmed fault-hook overhead "
                       << disarmed_overhead_pct << "% exceeds the 2% bar ("
                       << hook_calls << " calls x " << per_call_ns
                       << "ns against " << disarmed.best_ms << "ms)");
  const double armed_overhead_pct =
      disarmed.best_ms > 0.0
          ? (armed.best_ms - disarmed.best_ms) / disarmed.best_ms * 100.0
          : 0.0;
  return JsonRecord{}
      .add("engine", std::string("exact_causal"))
      .add("variant", std::string("fault_hook_overhead"))
      .add("workload", workload)
      .add("events", static_cast<std::uint64_t>(trace.num_events()))
      .add("reps", static_cast<std::uint64_t>(kReps))
      .add("wall_ms_disarmed", disarmed.best_ms)
      .add("wall_ms_armed_idle", armed.best_ms)
      .add("hook_calls", hook_calls)
      .add("disarmed_hook_ns_per_call", per_call_ns)
      .add("disarmed_overhead_pct", disarmed_overhead_pct)
      .add("armed_idle_overhead_pct", armed_overhead_pct)
      .add("schedules_seen", disarmed.relations.schedules_seen);
}

// ---------------------------------------------------------------------
// 2. Memory-budget precision.

JsonRecord run_memory_budget(const std::string& workload, const Trace& trace,
                             std::uint64_t budget_bytes,
                             std::size_t num_threads) {
  ExactOptions options;
  options.max_memory_bytes = budget_bytes;
  options.num_threads = num_threads;
  Timer timer;
  const OrderingRelations rel =
      compute_exact(trace, Semantics::kCausal, options);
  const double wall_ms = static_cast<double>(timer.micros()) / 1000.0;
  EVORD_CHECK(rel.truncated, workload << ": budget " << budget_bytes
                                      << "B did not truncate the sweep");
  EVORD_CHECK(rel.search.stop_reason == search::StopReason::kMemory,
              workload << ": stopped with "
                       << search::to_string(rel.search.stop_reason)
                       << " instead of kMemory");
  const double ratio = static_cast<double>(rel.search.memo_bytes) /
                       static_cast<double>(budget_bytes);
  return JsonRecord{}
      .add("engine", std::string("exact_causal"))
      .add("variant", std::string("memory_budget"))
      .add("workload", workload)
      .add("threads", static_cast<std::uint64_t>(num_threads))
      .add("budget_bytes", budget_bytes)
      .add("memo_bytes_at_stop", rel.search.memo_bytes)
      .add("bytes_over_budget_ratio", ratio)
      .add("stop_reason",
           std::string(search::to_string(rel.search.stop_reason)))
      .add("wall_ms", wall_ms);
}

// ---------------------------------------------------------------------
// 3. Anytime-ladder overhead and degradation provenance.

std::vector<JsonRecord> run_ladder_rows(const std::string& workload,
                                        const Trace& trace) {
  std::vector<JsonRecord> rows;
  const EventId a = 0;
  const EventId b = static_cast<EventId>(trace.num_events() - 1);

  Timer direct_timer;
  const OrderingRelations direct =
      compute_exact(trace, Semantics::kCausal, {});
  const double direct_ms =
      static_cast<double>(direct_timer.micros()) / 1000.0;

  Timer ladder_timer;
  AnytimeQuery query(trace);
  const BoundedVerdict verdict = query.must_have_happened_before(a, b);
  const double ladder_ms =
      static_cast<double>(ladder_timer.micros()) / 1000.0;
  EVORD_CHECK(!verdict.unknown(),
              workload << ": exhaustible trace left an unknown verdict");
  EVORD_CHECK(verdict.proven() ==
                  direct[RelationKind::kMHB].holds(a, b),
              workload << ": ladder verdict disagrees with compute_exact");
  rows.push_back(
      JsonRecord{}
          .add("engine", std::string("anytime"))
          .add("variant", std::string("ladder_overhead"))
          .add("workload", workload)
          .add("events", static_cast<std::uint64_t>(trace.num_events()))
          .add("wall_ms_direct", direct_ms)
          .add("wall_ms_ladder", ladder_ms)
          .add("ladder_over_direct",
               direct_ms > 0.0 ? ladder_ms / direct_ms : 0.0)
          .add("rungs_tried",
               static_cast<std::uint64_t>(verdict.provenance.rungs_tried))
          .add("provenance_engine", verdict.provenance.engine)
          .add("verdict", std::string(to_string(verdict.state))));

  // Degraded path: a ladder too small to exhaust must still answer from
  // sound bounds, and its provenance must say so.
  AnytimeOptions tiny;
  tiny.ladder = {QueryBudget{0, 2, 0, 0.0}};
  Timer degraded_timer;
  AnytimeQuery degraded(trace, tiny);
  const BoundedVerdict bounded = degraded.must_have_happened_before(a, b);
  const double degraded_ms =
      static_cast<double>(degraded_timer.micros()) / 1000.0;
  EVORD_CHECK(bounded.provenance.truncated,
              workload << ": 2-schedule ladder was not truncated");
  if (bounded.proven()) {
    EVORD_CHECK(direct[RelationKind::kMHB].holds(a, b),
                workload << ": degraded proof contradicts compute_exact");
  }
  if (bounded.refuted()) {
    EVORD_CHECK(!direct[RelationKind::kMHB].holds(a, b),
                workload << ": degraded refutation contradicts exact");
  }
  rows.push_back(
      JsonRecord{}
          .add("engine", std::string("anytime"))
          .add("variant", std::string("degraded_verdict"))
          .add("workload", workload)
          .add("wall_ms", degraded_ms)
          .add("provenance_engine", bounded.provenance.engine)
          .add("stop_reason", std::string(search::to_string(
                                  bounded.provenance.stop_reason)))
          .add("verdict", std::string(to_string(bounded.state))));
  return rows;
}

std::vector<JsonRecord> run_robust_sweep() {
  const Trace sat = theorem1_trace(tiny_sat());
  const Trace unsat = theorem1_trace(tiny_unsat());
  std::vector<JsonRecord> rows;
  rows.push_back(run_hook_overhead("theorem1_sat", sat));
  rows.push_back(run_hook_overhead("theorem1_unsat", unsat));
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    rows.push_back(
        run_memory_budget("theorem1_unsat", unsat, 4096, threads));
  }
  for (auto& row : run_ladder_rows("theorem1_sat", sat)) {
    rows.push_back(std::move(row));
  }
  return rows;
}

// Timed pair for the interactive benchmark runner.
void BM_ExactCausal_HooksDisarmed(benchmark::State& state) {
  const Trace t = theorem1_trace(tiny_sat());
  for (auto _ : state) {
    const OrderingRelations rel = compute_exact(t, Semantics::kCausal, {});
    benchmark::DoNotOptimize(rel);
  }
}

void BM_ExactCausal_HooksArmedIdle(benchmark::State& state) {
  const Trace t = theorem1_trace(tiny_sat());
  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kDeadlineAtState;
  plan.threshold = std::uint64_t{1} << 62;
  fault::ScopedFaultPlan scope(plan);
  for (auto _ : state) {
    const OrderingRelations rel = compute_exact(t, Semantics::kCausal, {});
    benchmark::DoNotOptimize(rel);
  }
}

BENCHMARK(BM_ExactCausal_HooksDisarmed)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExactCausal_HooksArmedIdle)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!append_json_records("BENCH_robust.json", run_robust_sweep())) {
    return 1;
  }
  return 0;
}
