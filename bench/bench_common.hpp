// Shared fixtures for the experiment benches: the small 3CNF families
// the exact engines can exhaust, and trace generators mirroring
// tests/helpers.hpp (duplicated deliberately: benches must not depend on
// test code).
#pragma once

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sat/formula.hpp"
#include "trace/builder.hpp"
#include "util/rng.hpp"

namespace evord::bench {

/// One flat JSON object; fields keep insertion order.  Values are
/// rendered on add() so the writer stays a dumb string joiner.
struct JsonRecord {
  std::vector<std::pair<std::string, std::string>> fields;

  JsonRecord& add(const std::string& key, double value) {
    std::ostringstream os;
    os << value;
    fields.emplace_back(key, os.str());
    return *this;
  }
  JsonRecord& add(const std::string& key, std::uint64_t value) {
    fields.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonRecord& add(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted.push_back('\\');
      quoted.push_back(c);
    }
    quoted.push_back('"');
    fields.emplace_back(key, std::move(quoted));
    return *this;
  }
};

/// Writes `rows` as a JSON array of objects — the BENCH_*.json format the
/// experiment scripts ingest.  Returns false on I/O failure.
inline bool write_json_records(const std::string& path,
                               const std::vector<JsonRecord>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << "  {";
    for (std::size_t f = 0; f < rows[i].fields.size(); ++f) {
      if (f != 0) out << ", ";
      out << '"' << rows[i].fields[f].first
          << "\": " << rows[i].fields[f].second;
    }
    out << (i + 1 < rows.size() ? "},\n" : "}\n");
  }
  out << "]\n";
  return out.good();
}

/// (x v x v x): satisfiable, the smallest reduction instance.
inline CnfFormula tiny_sat() {
  CnfFormula f;
  f.add_clause({1, 1, 1});
  return f;
}

/// (x)(−x): unsatisfiable.
inline CnfFormula tiny_unsat() {
  CnfFormula f;
  f.add_clause({1, 1, 1});
  f.add_clause({-1, -1, -1});
  return f;
}

/// Graded UNSAT family over ONE variable: (x) plus m-1 copies of (-x).
/// Every member is unsatisfiable, so the exact decision must exhaust the
/// state space (the co-NP side).  Measured growth of the reduction's
/// reachable states: m=2 -> ~8e3, m=3 -> ~3e5, m=4 -> ~1.2e7 — about
/// x40 per clause, the paper's exponential wall.
inline CnfFormula scaling_unsat(std::int32_t num_clauses) {
  CnfFormula f;
  f.add_clause({1, 1, 1});
  for (std::int32_t c = 1; c < num_clauses; ++c) {
    f.add_clause({-1, -1, -1});
  }
  return f;
}

/// Satisfiable counterpart: m copies of (x).
inline CnfFormula scaling_sat(std::int32_t num_clauses) {
  CnfFormula f;
  for (std::int32_t c = 0; c < num_clauses; ++c) {
    f.add_clause({1, 1, 1});
  }
  return f;
}

/// Multi-variable UNSAT family (k vars, 2k clauses) for the SAT-oracle
/// side of the scaling experiment, where size is unconstrained.
inline CnfFormula scaling_unsat_vars(std::int32_t copies) {
  CnfFormula f;
  for (std::int32_t v = 1; v <= copies; ++v) {
    f.add_clause({v, v, v});
    f.add_clause({-v, -v, -v});
  }
  return f;
}

/// Random semaphore trace (valid by construction); same scheme as the
/// test helper.
inline Trace random_sem_trace(std::size_t num_events, std::size_t num_procs,
                              std::size_t num_sems, Rng& rng,
                              std::size_t num_vars = 2) {
  TraceBuilder b;
  std::vector<ObjectId> sems;
  for (std::size_t s = 0; s < num_sems; ++s) {
    sems.push_back(b.semaphore("s" + std::to_string(s)));
  }
  std::vector<VarId> vars;
  for (std::size_t v = 0; v < num_vars; ++v) {
    vars.push_back(b.variable("x" + std::to_string(v)));
  }
  std::vector<ProcId> procs{b.root()};
  while (procs.size() < num_procs) procs.push_back(b.add_process());
  std::vector<int> count(num_sems, 0);
  for (std::size_t i = 0; i < num_events; ++i) {
    const ProcId p = procs[rng.below(procs.size())];
    const std::size_t s = rng.below(num_sems);
    if (rng.chance(0.55)) {
      if (count[s] > 0 && rng.chance(0.5)) {
        b.sem_p(p, sems[s]);
        --count[s];
      } else {
        b.sem_v(p, sems[s]);
        ++count[s];
      }
    } else if (!vars.empty()) {
      const bool write = rng.chance(0.5);
      const VarId v = vars[rng.below(vars.size())];
      b.compute(p, "", write ? std::vector<VarId>{} : std::vector<VarId>{v},
                write ? std::vector<VarId>{v} : std::vector<VarId>{});
    }
  }
  return b.build();
}

/// Random event-style (Post/Wait/Clear) trace.
inline Trace random_event_trace(std::size_t num_events,
                                std::size_t num_procs, std::size_t num_evs,
                                Rng& rng) {
  TraceBuilder b;
  std::vector<ObjectId> evs;
  for (std::size_t v = 0; v < num_evs; ++v) {
    evs.push_back(b.event_var("e" + std::to_string(v)));
  }
  std::vector<ProcId> procs{b.root()};
  while (procs.size() < num_procs) procs.push_back(b.add_process());
  std::vector<bool> posted(num_evs, false);
  for (std::size_t i = 0; i < num_events; ++i) {
    const ProcId p = procs[rng.below(procs.size())];
    const std::size_t v = rng.below(num_evs);
    if (posted[v] && rng.chance(0.4)) {
      b.wait(p, evs[v]);
    } else if (posted[v] && rng.chance(0.3)) {
      b.clear(p, evs[v]);
      posted[v] = false;
    } else {
      b.post(p, evs[v]);
      posted[v] = true;
    }
  }
  return b.build();
}

}  // namespace evord::bench
