// Shared fixtures for the experiment benches: the small 3CNF families
// the exact engines can exhaust, and trace generators mirroring
// tests/helpers.hpp (duplicated deliberately: benches must not depend on
// test code).
#pragma once

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "feasible/stepper.hpp"
#include "sat/formula.hpp"
#include "search/search.hpp"
#include "trace/builder.hpp"
#include "util/dynamic_bitset.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace evord::bench {

/// One flat JSON object; fields keep insertion order.  Values are
/// rendered on add() so the writer stays a dumb string joiner.
struct JsonRecord {
  std::vector<std::pair<std::string, std::string>> fields;

  JsonRecord& add(const std::string& key, double value) {
    std::ostringstream os;
    os << value;
    fields.emplace_back(key, os.str());
    return *this;
  }
  JsonRecord& add(const std::string& key, std::uint64_t value) {
    fields.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonRecord& add(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted.push_back('\\');
      quoted.push_back(c);
    }
    quoted.push_back('"');
    fields.emplace_back(key, std::move(quoted));
    return *this;
  }
};

/// Writes `rows` as a JSON array of objects — the BENCH_*.json format the
/// experiment scripts ingest.  Returns false on I/O failure.
inline bool write_json_records(const std::string& path,
                               const std::vector<JsonRecord>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << "  {";
    for (std::size_t f = 0; f < rows[i].fields.size(); ++f) {
      if (f != 0) out << ", ";
      out << '"' << rows[i].fields[f].first
          << "\": " << rows[i].fields[f].second;
    }
    out << (i + 1 < rows.size() ? "},\n" : "}\n");
  }
  out << "]\n";
  return out.good();
}

/// Renders one record the way write_json_records does, without the
/// surrounding array syntax.
inline std::string render_json_record(const JsonRecord& row) {
  std::ostringstream os;
  os << '{';
  for (std::size_t f = 0; f < row.fields.size(); ++f) {
    if (f != 0) os << ", ";
    os << '"' << row.fields[f].first << "\": " << row.fields[f].second;
  }
  os << '}';
  return os.str();
}

/// Appends `rows` to the JSON array at `path`, creating it if absent —
/// several bench binaries contribute rows to one BENCH_*.json this way.
/// Only understands the one-object-per-line format of
/// write_json_records; anything else is overwritten.
inline bool append_json_records(const std::string& path,
                                const std::vector<JsonRecord>& rows) {
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (in && std::getline(in, line)) {
      const std::size_t begin = line.find('{');
      const std::size_t end = line.rfind('}');
      if (begin == std::string::npos || end == std::string::npos) continue;
      lines.push_back(line.substr(begin, end - begin + 1));
    }
  }
  for (const JsonRecord& row : rows) lines.push_back(render_json_record(row));
  std::ofstream out(path);
  if (!out) return false;
  out << "[\n";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out << "  " << lines[i] << (i + 1 < lines.size() ? ",\n" : "\n");
  }
  out << "]\n";
  return out.good();
}

// ----------------------------------------------------------------------
// Shared thread-sweep harness for the work-stealing scheduler benches:
// runs `work(threads)` at 1, 2, 4 and 8 requested workers, times each
// run and renders one BENCH row per thread count carrying the
// scheduler's steal counters and idle-time fraction.  `work` returns
// the run's SearchStats (the scheduler fills the per-worker vector in
// parallel mode; serial runs leave it empty).  Note that requested
// thread counts are clamped to search::max_worker_threads(), so
// `effective_threads` — the worker count that actually ran — is
// reported alongside the requested count for honest speedup reading on
// small machines.

inline std::vector<JsonRecord> run_thread_sweep(
    const std::string& engine, const std::string& workload,
    const std::function<search::SearchStats(std::size_t threads)>& work) {
  std::vector<JsonRecord> rows;
  double serial_ms = 0.0;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    Timer timer;
    const search::SearchStats stats = work(threads);
    const double wall_ms = static_cast<double>(timer.micros()) / 1000.0;
    if (threads == 1) serial_ms = wall_ms;
    const std::size_t effective = std::max<std::size_t>(
        stats.workers.size(), 1);
    // Idle fraction: time workers spent hungry (probing for steals)
    // over total worker-seconds.
    const double worker_ns = wall_ms * 1e6 * static_cast<double>(effective);
    rows.push_back(
        JsonRecord{}
            .add("engine", engine)
            .add("variant", std::string("thread_sweep"))
            .add("workload", workload)
            .add("threads", static_cast<std::uint64_t>(threads))
            .add("effective_threads", static_cast<std::uint64_t>(effective))
            .add("wall_ms", wall_ms)
            .add("speedup_vs_serial", wall_ms > 0.0 ? serial_ms / wall_ms
                                                    : 0.0)
            .add("tasks", stats.tasks_executed())
            .add("tasks_stolen", stats.tasks_stolen())
            .add("tasks_spawned", stats.tasks_spawned())
            .add("steal_attempts", stats.steal_attempts())
            .add("idle_fraction",
                 worker_ns > 0.0
                     ? static_cast<double>(stats.idle_nanos()) / worker_ns
                     : 0.0));
  }
  return rows;
}

// ----------------------------------------------------------------------
// Legacy memo-representation baselines for BENCH_search.json.
//
// Before the unified search core, the memoized engines keyed their
// memo/visited tables on full encode_key() word vectors; the core now
// keys them on 64-bit incremental fingerprints (8-9 bytes/state, with a
// debug collision cross-check).  The walkers below reconstruct the old
// representation — full key vector per state — so the benches can report
// measured before/after states/sec and bytes/state.  They live here, in
// bench code, on purpose: no analysis engine keeps a private DFS anymore.

struct KeyVectorHash {
  std::size_t operator()(const std::vector<std::uint64_t>& key) const {
    return static_cast<std::size_t>(
        fingerprint_words(key, DynamicBitset::kHashSeed));
  }
};

struct LegacyWalkStats {
  std::uint64_t states = 0;       ///< distinct states tabled
  std::uint64_t table_bytes = 0;  ///< payload bytes held by the table
  bool result = false;            ///< completable / can-deadlock verdict
};

/// The pre-refactor memoized completability sweep: memo maps each full
/// encode_key vector to "a complete schedule is reachable from here".
inline LegacyWalkStats legacy_keyvec_completable(const Trace& trace,
                                                 StepperOptions options = {}) {
  TraceStepper st(trace, options);
  std::unordered_map<std::vector<std::uint64_t>, bool, KeyVectorHash> memo;
  const auto explore = [&](const auto& self) -> bool {
    if (st.complete()) return true;
    std::vector<std::uint64_t> key;
    st.encode_key(key);
    const auto it = memo.find(key);
    if (it != memo.end()) return it->second;
    bool ok = false;
    std::vector<EventId> enabled;
    st.enabled_events(enabled);
    // No early exit: the old matrix-building engine explored every child
    // (it needed marks from all of them), and so does the new one — this
    // keeps the two sweeps' state sets identical for the comparison.
    for (const EventId e : enabled) {
      const TraceStepper::Undo u = st.apply(e);
      const bool child = self(self);
      st.undo(u);
      ok = ok || child;
    }
    memo.emplace(std::move(key), ok);
    return ok;
  };
  LegacyWalkStats stats;
  stats.result = explore(explore);
  stats.states = memo.size();
  for (const auto& [key, value] : memo) {
    stats.table_bytes += sizeof(key) + key.capacity() * sizeof(std::uint64_t) +
                         sizeof(value);
  }
  return stats;
}

/// The pre-refactor deadlock search: the visited set holds one full
/// encode_key vector per distinct state.
inline LegacyWalkStats legacy_keyvec_deadlock(const Trace& trace,
                                              StepperOptions options = {}) {
  TraceStepper st(trace, options);
  std::unordered_set<std::vector<std::uint64_t>, KeyVectorHash> visited;
  bool can_deadlock = false;
  const auto explore = [&](const auto& self) -> void {
    if (st.complete()) return;
    std::vector<std::uint64_t> key;
    st.encode_key(key);
    if (!visited.insert(std::move(key)).second) return;
    std::vector<EventId> enabled;
    st.enabled_events(enabled);
    if (enabled.empty()) {
      can_deadlock = true;
      return;
    }
    for (const EventId e : enabled) {
      const TraceStepper::Undo u = st.apply(e);
      self(self);
      st.undo(u);
    }
  };
  LegacyWalkStats stats;
  explore(explore);
  stats.result = can_deadlock;
  stats.states = visited.size();
  for (const auto& key : visited) {
    stats.table_bytes +=
        sizeof(key) + key.capacity() * sizeof(std::uint64_t);
  }
  return stats;
}

/// (x v x v x): satisfiable, the smallest reduction instance.
inline CnfFormula tiny_sat() {
  CnfFormula f;
  f.add_clause({1, 1, 1});
  return f;
}

/// (x)(−x): unsatisfiable.
inline CnfFormula tiny_unsat() {
  CnfFormula f;
  f.add_clause({1, 1, 1});
  f.add_clause({-1, -1, -1});
  return f;
}

/// Graded UNSAT family over ONE variable: (x) plus m-1 copies of (-x).
/// Every member is unsatisfiable, so the exact decision must exhaust the
/// state space (the co-NP side).  Measured growth of the reduction's
/// reachable states: m=2 -> ~8e3, m=3 -> ~3e5, m=4 -> ~1.2e7 — about
/// x40 per clause, the paper's exponential wall.
inline CnfFormula scaling_unsat(std::int32_t num_clauses) {
  CnfFormula f;
  f.add_clause({1, 1, 1});
  for (std::int32_t c = 1; c < num_clauses; ++c) {
    f.add_clause({-1, -1, -1});
  }
  return f;
}

/// Satisfiable counterpart: m copies of (x).
inline CnfFormula scaling_sat(std::int32_t num_clauses) {
  CnfFormula f;
  for (std::int32_t c = 0; c < num_clauses; ++c) {
    f.add_clause({1, 1, 1});
  }
  return f;
}

/// Multi-variable UNSAT family (k vars, 2k clauses) for the SAT-oracle
/// side of the scaling experiment, where size is unconstrained.
inline CnfFormula scaling_unsat_vars(std::int32_t copies) {
  CnfFormula f;
  for (std::int32_t v = 1; v <= copies; ++v) {
    f.add_clause({v, v, v});
    f.add_clause({-v, -v, -v});
  }
  return f;
}

/// Random semaphore trace (valid by construction); same scheme as the
/// test helper.
inline Trace random_sem_trace(std::size_t num_events, std::size_t num_procs,
                              std::size_t num_sems, Rng& rng,
                              std::size_t num_vars = 2) {
  TraceBuilder b;
  std::vector<ObjectId> sems;
  for (std::size_t s = 0; s < num_sems; ++s) {
    sems.push_back(b.semaphore("s" + std::to_string(s)));
  }
  std::vector<VarId> vars;
  for (std::size_t v = 0; v < num_vars; ++v) {
    vars.push_back(b.variable("x" + std::to_string(v)));
  }
  std::vector<ProcId> procs{b.root()};
  while (procs.size() < num_procs) procs.push_back(b.add_process());
  std::vector<int> count(num_sems, 0);
  for (std::size_t i = 0; i < num_events; ++i) {
    const ProcId p = procs[rng.below(procs.size())];
    const std::size_t s = rng.below(num_sems);
    if (rng.chance(0.55)) {
      if (count[s] > 0 && rng.chance(0.5)) {
        b.sem_p(p, sems[s]);
        --count[s];
      } else {
        b.sem_v(p, sems[s]);
        ++count[s];
      }
    } else if (!vars.empty()) {
      const bool write = rng.chance(0.5);
      const VarId v = vars[rng.below(vars.size())];
      b.compute(p, "", write ? std::vector<VarId>{} : std::vector<VarId>{v},
                write ? std::vector<VarId>{v} : std::vector<VarId>{});
    }
  }
  return b.build();
}

/// Random event-style (Post/Wait/Clear) trace.
inline Trace random_event_trace(std::size_t num_events,
                                std::size_t num_procs, std::size_t num_evs,
                                Rng& rng) {
  TraceBuilder b;
  std::vector<ObjectId> evs;
  for (std::size_t v = 0; v < num_evs; ++v) {
    evs.push_back(b.event_var("e" + std::to_string(v)));
  }
  std::vector<ProcId> procs{b.root()};
  while (procs.size() < num_procs) procs.push_back(b.add_process());
  std::vector<bool> posted(num_evs, false);
  for (std::size_t i = 0; i < num_events; ++i) {
    const ProcId p = procs[rng.below(procs.size())];
    const std::size_t v = rng.below(num_evs);
    if (posted[v] && rng.chance(0.4)) {
      b.wait(p, evs[v]);
    } else if (posted[v] && rng.chance(0.3)) {
      b.clear(p, evs[v]);
      posted[v] = false;
    } else {
      b.post(p, evs[v]);
      posted[v] = true;
    }
  }
  return b.build();
}

}  // namespace evord::bench
